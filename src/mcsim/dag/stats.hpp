// Workflow statistics: per-routine and per-level distributions of runtimes
// and data volumes.  This is the profile the paper's §5 says was fed to the
// simulator ("the sizes of these data files and the runtime of the tasks
// were taken from real runs") — exposed so users can characterize their own
// workloads the same way.
#pragma once

#include <map>
#include <string>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::dag {

struct Distribution {
  std::size_t count = 0;
  double total = 0.0;
  double minimum = 0.0;
  double maximum = 0.0;

  double mean() const { return count ? total / static_cast<double>(count) : 0.0; }
  void add(double value);
};

struct TypeStats {
  Distribution runtimeSeconds;
  Distribution outputBytes;  ///< Bytes produced per task of this type.
};

struct LevelStats {
  std::size_t tasks = 0;
  double runtimeSeconds = 0.0;  ///< Σ runtimes at this level.
  Bytes bytesProduced;          ///< Σ output sizes at this level.
};

struct WorkflowStats {
  std::map<std::string, TypeStats> byType;
  std::map<int, LevelStats> byLevel;
  Distribution fileSizes;  ///< Over all files.
};

/// Compute the full profile of a finalized workflow.
WorkflowStats computeStats(const Workflow& wf);

}  // namespace mcsim::dag
