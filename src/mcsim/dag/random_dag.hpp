// Seeded random layered-DAG generator for property-based tests.
//
// Generates workflows with the same gross anatomy as scientific workflows
// (layers of tasks, files flowing between adjacent layers, a fan-in sink)
// but with randomized shape, runtimes and file sizes, so invariants like
// "cleanup footprint <= regular footprint" and "transfer bytes are
// mode-ordered" can be checked over thousands of structurally distinct
// graphs instead of one hand-built example.
#pragma once

#include <cstdint>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::dag {

struct RandomDagOptions {
  int minLayers = 2;
  int maxLayers = 6;
  int minWidth = 1;
  int maxWidth = 12;
  double minRuntimeSeconds = 1.0;
  double maxRuntimeSeconds = 500.0;
  double minFileMB = 0.1;
  double maxFileMB = 64.0;
  /// Probability that a task consumes any given file from the previous
  /// layer (each task always gets at least one input).
  double extraInputProbability = 0.25;
  /// Probability a task emits a second output file.
  double secondOutputProbability = 0.3;
  /// Whether to append a single sink task consuming every terminal file
  /// (Montage-like fan-in producing one final product).
  bool addSink = true;
};

/// Build a random finalized workflow from `seed`.  The same seed and options
/// always produce the same workflow.
Workflow makeRandomWorkflow(std::uint64_t seed,
                            const RandomDagOptions& options = {});

}  // namespace mcsim::dag
