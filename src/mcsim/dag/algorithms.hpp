// Graph algorithms over finalized workflows: orderings, critical path,
// parallelism profile.  These are the structural quantities the paper
// reports (levels, maximum parallelism) and the analytic bounds the tests
// check the simulator against (makespan >= critical path, etc.).
#pragma once

#include <vector>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::dag {

/// A deterministic topological order (Kahn's algorithm with a min-id ready
/// set).  Requires a finalized workflow.
std::vector<TaskId> topologicalOrder(const Workflow& wf);

/// Length of the longest runtime-weighted path, in seconds: the makespan
/// lower bound with unlimited processors and free data movement.
double criticalPathSeconds(const Workflow& wf);

/// Tasks on one longest path, in execution order.
std::vector<TaskId> criticalPathTasks(const Workflow& wf);

/// Number of tasks at each level; index 0 is level 1.
std::vector<std::size_t> levelWidths(const Workflow& wf);

/// Widest level (a cheap upper bound on useful parallelism).
std::size_t maxLevelWidth(const Workflow& wf);

/// Peak number of concurrently *running* tasks when every task starts as
/// early as its parents allow on unlimited processors (data movement free).
/// This is the operational "maximum parallelism of the workflow" (§6,
/// Question 2a): provisioning this many processors lets every request run at
/// full parallelism.
std::size_t maxParallelism(const Workflow& wf);

/// Earliest start time of each task on unlimited processors with free data
/// movement (indexed by TaskId).
std::vector<double> earliestStartTimes(const Workflow& wf);

}  // namespace mcsim::dag
