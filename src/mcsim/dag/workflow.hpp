// Workflow DAG model: tasks, files, and the data dependencies between them.
//
// Matches the paper's abstraction (§2): vertices are tasks, edges are data
// dependencies; every file has at most one producer task and any number of
// consumers; files with no producer are the workflow's external inputs
// (initially "co-located with the application", §5) and files with no
// consumer are the net outputs staged back to the user.  Task levels follow
// the paper's definition: tasks with no parents are level 1; any other
// task's level is one plus the maximum level of its parents.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mcsim/util/units.hpp"

namespace mcsim::dag {

using TaskId = std::uint32_t;
using FileId = std::uint32_t;

inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/// A logical file flowing through the workflow.
struct File {
  FileId id = 0;
  std::string name;
  Bytes size;
  TaskId producer = kNoTask;     ///< kNoTask: external input.
  std::vector<TaskId> consumers; ///< Tasks that read this file.
  /// True if the file must be delivered to the user at workflow end.  By
  /// default every file without consumers is an output; producers of
  /// consumed files can additionally be flagged (e.g. a preview JPEG that a
  /// later task also reads).
  bool explicitOutput = false;
};

/// One executable task (a vertex of the DAG).
struct Task {
  TaskId id = 0;
  std::string name;        ///< Unique instance name, e.g. "mProject_0017".
  std::string type;        ///< Routine name, e.g. "mProject" (paper: all
                           ///< tasks at a level invoke the same routine).
  double runtimeSeconds = 0.0;  ///< On the reference CPU (paper's r(v)).
  std::vector<FileId> inputs;
  std::vector<FileId> outputs;
  /// Earliest time (seconds from run start) this task may begin — models a
  /// request arriving at a running service.  0 = available immediately.
  double earliestStartSeconds = 0.0;
  // Derived by finalize():
  std::vector<TaskId> parents;
  std::vector<TaskId> children;
  int level = 0;  ///< Paper's level; 1-based.  0 until finalize().
};

/// A complete workflow.  Build with addTask/addFile/bind calls, then call
/// finalize() to derive the task graph, validate acyclicity and compute
/// levels.  Structural mutation after finalize() throws; file sizes may be
/// rescaled at any time (CCR experiments change only sizes).
class Workflow {
 public:
  explicit Workflow(std::string name);

  // -- construction ---------------------------------------------------------
  /// Pre-size the task and file tables — one allocation each instead of a
  /// doubling cascade.  Batch composition (dag/merge) and generators that
  /// know their closed-form counts should call this first.
  void reserve(std::size_t tasks, std::size_t files);
  TaskId addTask(std::string name, std::string type, double runtimeSeconds);
  FileId addFile(std::string name, Bytes size);
  /// Declare `file` as an input of `task`.
  void addInput(TaskId task, FileId file);
  /// Declare `file` as an output of `task`.  A file may have at most one
  /// producer; a second producer throws.
  void addOutput(TaskId task, FileId file);
  /// Add an explicit control dependency (parent must finish before child
  /// starts) that is not mediated by a file.
  void addControlDependency(TaskId parent, TaskId child);
  /// Flag a consumed file as nonetheless being a user-visible output.
  void markExplicitOutput(FileId file);

  /// Derive parents/children from data flow plus control edges, de-duplicate,
  /// verify the graph is acyclic, and compute levels.  Idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  // -- size mutation (allowed post-finalize) --------------------------------
  void setFileSize(FileId file, Bytes size);
  /// Multiply every file size by `factor` (> 0) — the paper's CCR knob.
  void scaleAllFileSizes(double factor);
  /// Multiply every task runtime by `factor` (> 0) — used by workload
  /// calibration.  Structure (and levels) are unaffected.
  void scaleAllRuntimes(double factor);
  /// Set a task's release time (>= 0).  Allowed post-finalize.
  void setEarliestStart(TaskId task, double seconds);

  // -- accessors -------------------------------------------------------------
  const std::string& name() const { return name_; }
  std::size_t taskCount() const { return tasks_.size(); }
  std::size_t fileCount() const { return files_.size(); }
  const Task& task(TaskId id) const { return tasks_.at(id); }
  const File& file(FileId id) const { return files_.at(id); }
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<File>& files() const { return files_; }

  /// Files with no producer: staged in from the user/archive.
  std::vector<FileId> externalInputs() const;
  /// Files delivered to the user: no consumers, or explicitly flagged.
  std::vector<FileId> workflowOutputs() const;

  /// Σ r(v) over all tasks, in seconds.
  double totalRuntimeSeconds() const;
  /// Σ s(f) over all files (the paper's CCR numerator before dividing by B).
  Bytes totalFileBytes() const;
  Bytes externalInputBytes() const;
  Bytes workflowOutputBytes() const;

  /// The paper's communication-to-computation ratio:
  ///   CCR = (Σ s(f) / B) / Σ r(v)   with B in bytes/second.
  double ccr(double bandwidthBytesPerSecond) const;

  /// Highest level value (the number of levels).
  int levelCount() const;

  /// Explicit control-only edges as added (for serialization).
  const std::vector<std::pair<TaskId, TaskId>>& controlDependencies() const {
    return controlEdges_;
  }

 private:
  friend class WorkflowBuilder;

  void requireNotFinalized(const char* op) const;
  void requireValidTask(TaskId id) const;
  void requireValidFile(FileId id) const;

  std::string name_;
  std::vector<Task> tasks_;
  std::vector<File> files_;
  std::vector<std::pair<TaskId, TaskId>> controlEdges_;
  bool finalized_ = false;
};

/// Streaming, structure-of-arrays workflow construction for survey-scale
/// DAGs (10⁶–10⁷ tasks).
///
/// `Workflow`'s add*/finalize() path is convenient but pays per-call
/// allocation (two std::strings per task), per-binding duplicate scans and a
/// hash-set-per-task finalize — fine at 3,027 tasks, ruinous at 10⁷.  The
/// builder stages the same data in flat columns (one shared name arena,
/// interned type table, CSR input/output edge lists) and imposes one extra
/// contract in exchange for a one-pass, allocation-light finalize:
///
///   *Topological level order* — bindings attach only to the most recently
///   added task, and a file must be added (and, if produced, have its
///   producer declared) before any consumer binds it.  Generators that emit
///   level by level satisfy this naturally.  Violations throw immediately.
///
/// Under that contract every parent id is smaller than its child's id, so
/// build() derives parents/children/levels in a single forward sweep — no
/// Kahn queue, no cycle check needed (acyclicity holds by construction) —
/// and materializes a finalized `Workflow` indistinguishable from one built
/// through the legacy path with the same call sequence (differential-tested;
/// see tests/dag/builder_property_test.cpp).
class WorkflowBuilder {
 public:
  explicit WorkflowBuilder(std::string name);

  /// Pre-size every column.  `nameBytes` is the expected total length of all
  /// task+file names; pass 0 to let the arena grow geometrically.
  void reserve(std::size_t tasks, std::size_t files, std::size_t inputEdges,
               std::size_t outputEdges, std::size_t nameBytes = 0);

  TaskId addTask(std::string_view name, std::string_view type,
                 double runtimeSeconds);
  FileId addFile(std::string_view name, Bytes size);
  /// Bind `file` as an input of `task`.  `task` must be the most recently
  /// added task; `file` must already have its producer declared (or be
  /// external).  Duplicate bindings and produce-and-consume throw, exactly
  /// like Workflow::addInput.
  void addInput(TaskId task, FileId file);
  /// Declare `task` as the producer of `file`.  `task` must be the most
  /// recently added task and `file` must have no producer and no consumers
  /// yet (producers are declared before consumers in streaming order).
  void addOutput(TaskId task, FileId file);
  /// Control-only edge; `parent` must precede `child` (streaming order).
  void addControlDependency(TaskId parent, TaskId child);
  void markExplicitOutput(FileId file);
  void setEarliestStart(TaskId task, double seconds);

  std::size_t taskCount() const { return taskRuntime_.size(); }
  std::size_t fileCount() const { return fileSize_.size(); }
  const std::string& name() const { return name_; }

  /// Derive the task graph (parents/children/levels) in one forward pass and
  /// materialize a finalized Workflow.  The builder is left empty and may be
  /// reused.  Throws std::logic_error if called on an empty builder.
  Workflow build();

 private:
  struct NameRef {
    std::uint64_t offset;
    std::uint32_t length;
  };

  std::string_view nameAt(NameRef ref) const {
    return std::string_view(nameArena_).substr(ref.offset, ref.length);
  }
  NameRef internName(std::string_view name);
  std::uint32_t internType(std::string_view type);
  void requireNewestTask(TaskId task, const char* op) const;
  void clear();

  std::string name_;

  // One arena for every task and file name; NameRefs index into it.
  std::string nameArena_;

  // -- task columns -----------------------------------------------------------
  std::vector<NameRef> taskName_;
  std::vector<std::uint32_t> taskType_;  ///< Index into typeTable_.
  std::vector<double> taskRuntime_;
  std::vector<double> taskEarliestStart_;
  /// CSR edge storage: task i's inputs are taskInputs_[taskInputStart_[i] ..
  /// taskInputStart_[i+1]); the final fence is implicit (vector size) for
  /// the newest task.  Outputs likewise.
  std::vector<FileId> taskInputs_;
  std::vector<std::uint64_t> taskInputStart_;
  std::vector<FileId> taskOutputs_;
  std::vector<std::uint64_t> taskOutputStart_;

  // -- file columns -----------------------------------------------------------
  std::vector<NameRef> fileName_;
  std::vector<Bytes> fileSize_;
  std::vector<TaskId> fileProducer_;
  std::vector<std::uint32_t> fileConsumers_;  ///< Count only; lists derived.
  std::vector<bool> fileExplicitOutput_;

  std::vector<std::string> typeTable_;  ///< Few distinct routine names.
  std::vector<std::pair<TaskId, TaskId>> controlEdges_;
};

}  // namespace mcsim::dag
