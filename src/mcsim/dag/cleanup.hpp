// Pegasus-style dynamic-cleanup analysis (paper §3, "Dynamic cleanup";
// Ramakrishnan et al. CCGrid'07 / Singh et al. SciProg'07).
//
// "In the dynamic cleanup mode, we delete files from the storage resource
// when they are no longer required ... by performing an analysis of data use
// at the workflow level."  The static plan computed here gives, for each
// file, the set of tasks whose completion releases it; the engine turns that
// into runtime reference counting.  The sequential footprint predictor is
// the analytic cross-check for the simulated storage curves.
#pragma once

#include <vector>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::dag {

/// Static cleanup plan: per-file release conditions.
struct CleanupPlan {
  /// remainingUses[f]: number of task completions after which file f may be
  /// deleted.  For a consumed file this is its consumer count; for a leaf
  /// output it is 1 (its producer) but such files are workflow outputs and
  /// are retained for stage-out instead of deletion.
  std::vector<std::size_t> remainingUses;
  /// isOutput[f]: file must survive until stage-out regardless of uses.
  std::vector<bool> isOutput;
};

CleanupPlan analyzeCleanup(const Workflow& wf);

/// Result of the analytic (non-simulated) footprint model.
struct FootprintEstimate {
  Bytes peakRegular;   ///< Peak resident bytes, no cleanup.
  Bytes peakCleanup;   ///< Peak resident bytes with dynamic cleanup.
};

/// Predict peak storage footprints for a sequential execution in the given
/// topological order, assuming all external inputs are staged in before the
/// first task (the Regular-mode discipline).  Regular keeps everything until
/// the end; Cleanup deletes each non-output file right after its last
/// consumer completes.  Used by tests and by the planner to sanity-check the
/// simulated curves (simulated cleanup footprint == analytic value for
/// 1-processor runs).
FootprintEstimate predictSequentialFootprint(const Workflow& wf,
                                             const std::vector<TaskId>& order);

}  // namespace mcsim::dag
