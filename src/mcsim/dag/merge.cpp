#include "mcsim/dag/merge.hpp"

#include <set>
#include <stdexcept>

namespace mcsim::dag {

namespace {

/// Append one part into `merged`, every name prefixed with `prefix`.
/// `taskMap`/`fileMap` are caller-owned scratch so the per-part id tables
/// are allocated once per batch, not once per part.
void appendPart(Workflow& merged, const Workflow& part,
                const std::string& prefix, std::vector<TaskId>& taskMap,
                std::vector<FileId>& fileMap, std::string& nameScratch) {
  auto prefixed = [&](const std::string& name) {
    nameScratch.assign(prefix);
    nameScratch.append(name);
    return nameScratch;
  };

  fileMap.resize(part.fileCount());
  for (const File& f : part.files())
    fileMap[f.id] = merged.addFile(prefixed(f.name), f.size);
  taskMap.resize(part.taskCount());
  for (const Task& t : part.tasks())
    taskMap[t.id] = merged.addTask(prefixed(t.name), t.type, t.runtimeSeconds);
  for (const Task& t : part.tasks()) {
    for (FileId in : t.inputs) merged.addInput(taskMap[t.id], fileMap[in]);
    for (FileId out : t.outputs) merged.addOutput(taskMap[t.id], fileMap[out]);
  }
  for (const auto& [parent, child] : part.controlDependencies())
    merged.addControlDependency(taskMap[parent], taskMap[child]);
  for (const File& f : part.files())
    if (f.explicitOutput) merged.markExplicitOutput(fileMap[f.id]);
  for (const Task& t : part.tasks())
    if (t.earliestStartSeconds > 0.0)
      merged.setEarliestStart(taskMap[t.id], t.earliestStartSeconds);
}

}  // namespace

Workflow mergeWorkflows(const std::vector<Workflow>& parts,
                        const std::string& name) {
  if (parts.empty())
    throw std::invalid_argument("mergeWorkflows: no parts");

  // Choose prefixes: part names when unique, positional otherwise.
  std::vector<std::string> prefixes;
  {
    std::set<std::string> seen;
    bool unique = true;
    for (const Workflow& part : parts)
      unique = seen.insert(part.name()).second && unique;
    prefixes.reserve(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i)
      prefixes.push_back((unique ? parts[i].name()
                                 : "req" + std::to_string(i)) +
                         "/");
  }

  // Reserve the whole batch up front: at 10³+ parts the doubling cascade on
  // the merged task/file tables used to dominate build time.
  std::size_t totalTasks = 0;
  std::size_t totalFiles = 0;
  for (const Workflow& part : parts) {
    totalTasks += part.taskCount();
    totalFiles += part.fileCount();
  }

  Workflow merged(name);
  merged.reserve(totalTasks, totalFiles);
  std::vector<TaskId> taskMap;
  std::vector<FileId> fileMap;
  std::string nameScratch;
  for (std::size_t i = 0; i < parts.size(); ++i)
    appendPart(merged, parts[i], prefixes[i], taskMap, fileMap, nameScratch);
  merged.finalize();
  return merged;
}

Workflow mergeWorkflowsStaggered(const std::vector<Workflow>& parts,
                                 const std::vector<double>& releaseSeconds,
                                 const std::string& name) {
  if (releaseSeconds.size() != parts.size())
    throw std::invalid_argument(
        "mergeWorkflowsStaggered: one release time per part required");
  Workflow merged = mergeWorkflows(parts, name);
  const std::vector<TaskId> offsets = partTaskOffsets(parts);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (releaseSeconds[i] < 0.0)
      throw std::invalid_argument(
          "mergeWorkflowsStaggered: negative release time");
    // 0.0 is the exact "released at start" default, never a computed sum.
    // mcsim-lint: allow(float-equality)
    if (releaseSeconds[i] == 0.0) continue;
    for (const Task& t : parts[i].tasks())
      if (t.parents.empty())
        merged.setEarliestStart(offsets[i] + t.id, releaseSeconds[i]);
  }
  return merged;
}

std::vector<TaskId> partTaskOffsets(const std::vector<Workflow>& parts) {
  std::vector<TaskId> offsets;
  offsets.reserve(parts.size() + 1);
  TaskId cursor = 0;
  for (const Workflow& part : parts) {
    offsets.push_back(cursor);
    cursor += static_cast<TaskId>(part.taskCount());
  }
  offsets.push_back(cursor);
  return offsets;
}

Workflow replicateWorkflow(const Workflow& wf, int count,
                           const std::string& name) {
  if (count < 1)
    throw std::invalid_argument("replicateWorkflow: count must be >= 1");
  // Append straight from the single source `count` times — the previous
  // implementation materialized `count` deep copies of `wf` first, which is
  // quadratic-feeling memory pressure at survey scale.  Prefixes stay
  // positional ("req<i>/"), matching the non-unique-name path of
  // mergeWorkflows byte for byte.
  Workflow merged(name);
  merged.reserve(static_cast<std::size_t>(count) * wf.taskCount(),
                 static_cast<std::size_t>(count) * wf.fileCount());
  std::vector<TaskId> taskMap;
  std::vector<FileId> fileMap;
  std::string nameScratch;
  for (int i = 0; i < count; ++i)
    appendPart(merged, wf, "req" + std::to_string(i) + "/", taskMap, fileMap,
               nameScratch);
  merged.finalize();
  return merged;
}

}  // namespace mcsim::dag
