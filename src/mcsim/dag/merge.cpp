#include "mcsim/dag/merge.hpp"

#include <set>
#include <stdexcept>

namespace mcsim::dag {

Workflow mergeWorkflows(const std::vector<Workflow>& parts,
                        const std::string& name) {
  if (parts.empty())
    throw std::invalid_argument("mergeWorkflows: no parts");

  // Choose prefixes: part names when unique, positional otherwise.
  std::vector<std::string> prefixes;
  {
    std::set<std::string> seen;
    bool unique = true;
    for (const Workflow& part : parts)
      unique = seen.insert(part.name()).second && unique;
    for (std::size_t i = 0; i < parts.size(); ++i)
      prefixes.push_back((unique ? parts[i].name()
                                 : "req" + std::to_string(i)) +
                         "/");
  }

  Workflow merged(name);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Workflow& part = parts[i];
    const std::string& prefix = prefixes[i];

    std::vector<FileId> fileMap(part.fileCount());
    for (const File& f : part.files())
      fileMap[f.id] = merged.addFile(prefix + f.name, f.size);
    std::vector<TaskId> taskMap(part.taskCount());
    for (const Task& t : part.tasks())
      taskMap[t.id] = merged.addTask(prefix + t.name, t.type,
                                     t.runtimeSeconds);
    for (const Task& t : part.tasks()) {
      for (FileId in : t.inputs) merged.addInput(taskMap[t.id], fileMap[in]);
      for (FileId out : t.outputs) merged.addOutput(taskMap[t.id], fileMap[out]);
    }
    for (const auto& [parent, child] : part.controlDependencies())
      merged.addControlDependency(taskMap[parent], taskMap[child]);
    for (const File& f : part.files())
      if (f.explicitOutput) merged.markExplicitOutput(fileMap[f.id]);
    for (const Task& t : part.tasks())
      if (t.earliestStartSeconds > 0.0)
        merged.setEarliestStart(taskMap[t.id], t.earliestStartSeconds);
  }
  merged.finalize();
  return merged;
}

Workflow mergeWorkflowsStaggered(const std::vector<Workflow>& parts,
                                 const std::vector<double>& releaseSeconds,
                                 const std::string& name) {
  if (releaseSeconds.size() != parts.size())
    throw std::invalid_argument(
        "mergeWorkflowsStaggered: one release time per part required");
  Workflow merged = mergeWorkflows(parts, name);
  const std::vector<TaskId> offsets = partTaskOffsets(parts);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (releaseSeconds[i] < 0.0)
      throw std::invalid_argument(
          "mergeWorkflowsStaggered: negative release time");
    if (releaseSeconds[i] == 0.0) continue;
    for (const Task& t : parts[i].tasks())
      if (t.parents.empty())
        merged.setEarliestStart(offsets[i] + t.id, releaseSeconds[i]);
  }
  return merged;
}

std::vector<TaskId> partTaskOffsets(const std::vector<Workflow>& parts) {
  std::vector<TaskId> offsets;
  offsets.reserve(parts.size() + 1);
  TaskId cursor = 0;
  for (const Workflow& part : parts) {
    offsets.push_back(cursor);
    cursor += static_cast<TaskId>(part.taskCount());
  }
  offsets.push_back(cursor);
  return offsets;
}

Workflow replicateWorkflow(const Workflow& wf, int count,
                           const std::string& name) {
  if (count < 1)
    throw std::invalid_argument("replicateWorkflow: count must be >= 1");
  std::vector<Workflow> parts(static_cast<std::size_t>(count), wf);
  // Force positional prefixes (identical names are not unique).
  return mergeWorkflows(parts, name);
}

}  // namespace mcsim::dag
