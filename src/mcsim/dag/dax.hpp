// DAX-style XML workflow serialization.
//
// The paper's workflows are produced by Montage's mDAG "in XML format" and
// parsed into an adjacency-list graph (§5).  We read and write the Pegasus
// DAX dialect's structural subset:
//
//   <adag name="montage-1deg">
//     <job id="ID00001" name="mProject_1" type="mProject" runtime="98.5">
//       <uses file="in_1.fits" link="input" size="4000000"/>
//       <uses file="proj_1.fits" link="output" size="16000000"/>
//     </job>
//     ...
//     <child ref="ID00002"><parent ref="ID00001"/></child>   (optional)
//   </adag>
//
// File identity is by name: two <uses> entries with the same file name refer
// to the same logical file, which is how data dependencies arise.  Explicit
// <child>/<parent> entries add control-only edges.  Sizes are bytes;
// runtimes are seconds.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::dag {

/// Parse a DAX document into a finalized workflow.
/// Throws xml::ParseError on malformed XML and std::runtime_error on
/// structural problems (unknown link kind, duplicate job id, size mismatch
/// between two mentions of one file, ...).
Workflow readDax(std::string_view xmlText);

/// Read a DAX file from disk.
Workflow readDaxFile(const std::string& path);

/// Serialize a finalized workflow as DAX.  Reading the output back yields an
/// equivalent workflow (same tasks, files, sizes, runtimes, dependencies).
std::string writeDax(const Workflow& wf);

/// Write DAX to a file on disk.
void writeDaxFile(const Workflow& wf, const std::string& path);

}  // namespace mcsim::dag
