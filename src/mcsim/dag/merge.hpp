// Batch composition: merge several workflows into one so a single simulated
// run models a service executing many requests on one provisioned pool —
// the operating scenario of the paper's Question 2 ("the application
// provisions a certain amount of resources over a period of time to sustain
// the expected computational load").
#pragma once

#include <string>
#include <vector>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::dag {

/// Concatenate `parts` into one finalized workflow.  Each part's task and
/// file names are prefixed with "<partName>/" (or "req<i>/" when names
/// repeat) so merged identities stay unique; the parts remain mutually
/// independent — no edges are added between them.  Sizes, runtimes,
/// explicit-output flags and control edges are preserved.
Workflow mergeWorkflows(const std::vector<Workflow>& parts,
                        const std::string& name = "batch");

/// `count` independent copies of `wf` merged into one batch.
Workflow replicateWorkflow(const Workflow& wf, int count,
                           const std::string& name = "batch");

/// Merge with per-part release times: part i's source tasks (tasks without
/// parents) may not start before `releaseSeconds[i]` — a request stream
/// arriving at a running service.  `releaseSeconds` must match `parts` in
/// length; values must be >= 0.
Workflow mergeWorkflowsStaggered(const std::vector<Workflow>& parts,
                                 const std::vector<double>& releaseSeconds,
                                 const std::string& name = "stream");

/// Task-id offset of each part inside a merged workflow (parts are
/// appended contiguously): part i owns ids [offsets[i], offsets[i+1]).
/// The final entry is the total task count.
std::vector<TaskId> partTaskOffsets(const std::vector<Workflow>& parts);

}  // namespace mcsim::dag
