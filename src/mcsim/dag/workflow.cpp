#include "mcsim/dag/workflow.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace mcsim::dag {

Workflow::Workflow(std::string name) : name_(std::move(name)) {}

void Workflow::requireNotFinalized(const char* op) const {
  if (finalized_)
    throw std::logic_error(std::string("Workflow: ") + op +
                           " after finalize()");
}

void Workflow::requireValidTask(TaskId id) const {
  if (id >= tasks_.size())
    throw std::out_of_range("Workflow: invalid task id " + std::to_string(id));
}

void Workflow::requireValidFile(FileId id) const {
  if (id >= files_.size())
    throw std::out_of_range("Workflow: invalid file id " + std::to_string(id));
}

TaskId Workflow::addTask(std::string name, std::string type,
                         double runtimeSeconds) {
  requireNotFinalized("addTask");
  if (runtimeSeconds < 0.0)
    throw std::invalid_argument("Workflow::addTask: negative runtime");
  Task t;
  t.id = static_cast<TaskId>(tasks_.size());
  t.name = std::move(name);
  t.type = std::move(type);
  t.runtimeSeconds = runtimeSeconds;
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

FileId Workflow::addFile(std::string name, Bytes size) {
  requireNotFinalized("addFile");
  if (size.value() < 0.0)
    throw std::invalid_argument("Workflow::addFile: negative size");
  File f;
  f.id = static_cast<FileId>(files_.size());
  f.name = std::move(name);
  f.size = size;
  files_.push_back(std::move(f));
  return files_.back().id;
}

void Workflow::addInput(TaskId task, FileId file) {
  requireNotFinalized("addInput");
  requireValidTask(task);
  requireValidFile(file);
  if (files_[file].producer == task)
    throw std::invalid_argument("Workflow::addInput: task '" +
                                tasks_[task].name + "' produces '" +
                                files_[file].name + "'");
  auto& ins = tasks_[task].inputs;
  if (std::find(ins.begin(), ins.end(), file) != ins.end())
    throw std::invalid_argument("Workflow::addInput: duplicate input binding");
  ins.push_back(file);
  files_[file].consumers.push_back(task);
}

void Workflow::addOutput(TaskId task, FileId file) {
  requireNotFinalized("addOutput");
  requireValidTask(task);
  requireValidFile(file);
  if (files_[file].producer != kNoTask)
    throw std::invalid_argument("Workflow::addOutput: file '" +
                                files_[file].name +
                                "' already has a producer");
  const auto& ins = tasks_[task].inputs;
  if (std::find(ins.begin(), ins.end(), file) != ins.end())
    throw std::invalid_argument("Workflow::addOutput: task '" +
                                tasks_[task].name + "' consumes '" +
                                files_[file].name + "'");
  files_[file].producer = task;
  tasks_[task].outputs.push_back(file);
}

void Workflow::addControlDependency(TaskId parent, TaskId child) {
  requireNotFinalized("addControlDependency");
  requireValidTask(parent);
  requireValidTask(child);
  if (parent == child)
    throw std::invalid_argument("Workflow: self control dependency");
  controlEdges_.emplace_back(parent, child);
}

void Workflow::markExplicitOutput(FileId file) {
  requireValidFile(file);
  files_[file].explicitOutput = true;
}

void Workflow::finalize() {
  if (finalized_) return;

  // Derive edges: file producer -> each consumer, plus explicit control
  // edges.  Collect into per-task sets to deduplicate (a parent may feed a
  // child several files).
  std::vector<std::unordered_set<TaskId>> parentSets(tasks_.size());
  for (const File& f : files_) {
    if (f.producer == kNoTask) continue;
    for (TaskId consumer : f.consumers) {
      if (consumer == f.producer)
        throw std::logic_error("Workflow: task '" + tasks_[consumer].name +
                               "' both produces and consumes '" + f.name + "'");
      parentSets[consumer].insert(f.producer);
    }
  }
  for (const auto& [parent, child] : controlEdges_)
    parentSets[child].insert(parent);

  for (Task& t : tasks_) {
    // mcsim-lint: allow(unordered-iter) — hash order never escapes: the
    // parent list is sorted immediately below.
    t.parents.assign(parentSets[t.id].begin(), parentSets[t.id].end());
    std::sort(t.parents.begin(), t.parents.end());
    t.children.clear();
  }
  for (const Task& t : tasks_)
    for (TaskId p : t.parents) tasks_[p].children.push_back(t.id);
  for (Task& t : tasks_) std::sort(t.children.begin(), t.children.end());

  // Kahn's algorithm: validates acyclicity and yields levels in one pass
  // (paper definition: sources are level 1; otherwise 1 + max parent level).
  std::vector<std::size_t> pendingParents(tasks_.size());
  std::deque<TaskId> ready;
  for (Task& t : tasks_) {
    pendingParents[t.id] = t.parents.size();
    t.level = 1;
    if (t.parents.empty()) ready.push_back(t.id);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    ++visited;
    const Task& t = tasks_[id];
    for (TaskId c : t.children) {
      tasks_[c].level = std::max(tasks_[c].level, t.level + 1);
      if (--pendingParents[c] == 0) ready.push_back(c);
    }
  }
  if (visited != tasks_.size())
    throw std::logic_error("Workflow '" + name_ + "' contains a cycle");

  finalized_ = true;
}

void Workflow::setFileSize(FileId file, Bytes size) {
  requireValidFile(file);
  if (size.value() < 0.0)
    throw std::invalid_argument("Workflow::setFileSize: negative size");
  files_[file].size = size;
}

void Workflow::scaleAllFileSizes(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("Workflow::scaleAllFileSizes: factor must be > 0");
  for (File& f : files_) f.size *= factor;
}

void Workflow::setEarliestStart(TaskId task, double seconds) {
  requireValidTask(task);
  if (seconds < 0.0)
    throw std::invalid_argument("Workflow::setEarliestStart: negative time");
  tasks_[task].earliestStartSeconds = seconds;
}

void Workflow::scaleAllRuntimes(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("Workflow::scaleAllRuntimes: factor must be > 0");
  for (Task& t : tasks_) t.runtimeSeconds *= factor;
}

std::vector<FileId> Workflow::externalInputs() const {
  std::vector<FileId> out;
  for (const File& f : files_)
    if (f.producer == kNoTask) out.push_back(f.id);
  return out;
}

std::vector<FileId> Workflow::workflowOutputs() const {
  std::vector<FileId> out;
  for (const File& f : files_)
    if (f.explicitOutput || (f.consumers.empty() && f.producer != kNoTask))
      out.push_back(f.id);
  return out;
}

double Workflow::totalRuntimeSeconds() const {
  double total = 0.0;
  for (const Task& t : tasks_) total += t.runtimeSeconds;
  return total;
}

Bytes Workflow::totalFileBytes() const {
  Bytes total;
  for (const File& f : files_) total += f.size;
  return total;
}

Bytes Workflow::externalInputBytes() const {
  Bytes total;
  for (const File& f : files_)
    if (f.producer == kNoTask) total += f.size;
  return total;
}

Bytes Workflow::workflowOutputBytes() const {
  Bytes total;
  for (FileId id : workflowOutputs()) total += files_[id].size;
  return total;
}

double Workflow::ccr(double bandwidthBytesPerSecond) const {
  if (!(bandwidthBytesPerSecond > 0.0))
    throw std::invalid_argument("Workflow::ccr: bandwidth must be positive");
  const double compute = totalRuntimeSeconds();
  if (compute == 0.0)
    throw std::logic_error("Workflow::ccr: zero total runtime");
  return (totalFileBytes().value() / bandwidthBytesPerSecond) / compute;
}

int Workflow::levelCount() const {
  int maxLevel = 0;
  for (const Task& t : tasks_) maxLevel = std::max(maxLevel, t.level);
  return maxLevel;
}

}  // namespace mcsim::dag
