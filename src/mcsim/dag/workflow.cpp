#include "mcsim/dag/workflow.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mcsim::dag {

Workflow::Workflow(std::string name) : name_(std::move(name)) {}

void Workflow::reserve(std::size_t tasks, std::size_t files) {
  tasks_.reserve(tasks);
  files_.reserve(files);
}

void Workflow::requireNotFinalized(const char* op) const {
  if (finalized_)
    throw std::logic_error(std::string("Workflow: ") + op +
                           " after finalize()");
}

void Workflow::requireValidTask(TaskId id) const {
  if (id >= tasks_.size())
    throw std::out_of_range("Workflow: invalid task id " + std::to_string(id));
}

void Workflow::requireValidFile(FileId id) const {
  if (id >= files_.size())
    throw std::out_of_range("Workflow: invalid file id " + std::to_string(id));
}

TaskId Workflow::addTask(std::string name, std::string type,
                         double runtimeSeconds) {
  requireNotFinalized("addTask");
  if (runtimeSeconds < 0.0)
    throw std::invalid_argument("Workflow::addTask: negative runtime");
  Task t;
  t.id = static_cast<TaskId>(tasks_.size());
  t.name = std::move(name);
  t.type = std::move(type);
  t.runtimeSeconds = runtimeSeconds;
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

FileId Workflow::addFile(std::string name, Bytes size) {
  requireNotFinalized("addFile");
  if (size.value() < 0.0)
    throw std::invalid_argument("Workflow::addFile: negative size");
  File f;
  f.id = static_cast<FileId>(files_.size());
  f.name = std::move(name);
  f.size = size;
  files_.push_back(std::move(f));
  return files_.back().id;
}

void Workflow::addInput(TaskId task, FileId file) {
  requireNotFinalized("addInput");
  requireValidTask(task);
  requireValidFile(file);
  if (files_[file].producer == task)
    throw std::invalid_argument("Workflow::addInput: task '" +
                                tasks_[task].name + "' produces '" +
                                files_[file].name + "'");
  auto& ins = tasks_[task].inputs;
  if (std::find(ins.begin(), ins.end(), file) != ins.end())
    throw std::invalid_argument("Workflow::addInput: duplicate input binding");
  ins.push_back(file);
  files_[file].consumers.push_back(task);
}

void Workflow::addOutput(TaskId task, FileId file) {
  requireNotFinalized("addOutput");
  requireValidTask(task);
  requireValidFile(file);
  if (files_[file].producer != kNoTask)
    throw std::invalid_argument("Workflow::addOutput: file '" +
                                files_[file].name +
                                "' already has a producer");
  const auto& ins = tasks_[task].inputs;
  if (std::find(ins.begin(), ins.end(), file) != ins.end())
    throw std::invalid_argument("Workflow::addOutput: task '" +
                                tasks_[task].name + "' consumes '" +
                                files_[file].name + "'");
  files_[file].producer = task;
  tasks_[task].outputs.push_back(file);
}

void Workflow::addControlDependency(TaskId parent, TaskId child) {
  requireNotFinalized("addControlDependency");
  requireValidTask(parent);
  requireValidTask(child);
  if (parent == child)
    throw std::invalid_argument("Workflow: self control dependency");
  controlEdges_.emplace_back(parent, child);
}

void Workflow::markExplicitOutput(FileId file) {
  requireValidFile(file);
  files_[file].explicitOutput = true;
}

void Workflow::finalize() {
  if (finalized_) return;

  // Derive edges: file producer -> each consumer, plus explicit control
  // edges.  A parent may feed a child several files, so collect raw edges
  // first and sort + unique per task — measured faster than the previous
  // hash-set-per-task at every scale (no per-task allocation churn, no hash
  // overhead), and the sorted result is identical.
  for (Task& t : tasks_) {
    t.parents.clear();
    t.children.clear();
  }
  for (const File& f : files_) {
    if (f.producer == kNoTask) continue;
    for (TaskId consumer : f.consumers) {
      if (consumer == f.producer)
        throw std::logic_error("Workflow: task '" + tasks_[consumer].name +
                               "' both produces and consumes '" + f.name + "'");
      tasks_[consumer].parents.push_back(f.producer);
    }
  }
  for (const auto& [parent, child] : controlEdges_)
    tasks_[child].parents.push_back(parent);

  for (Task& t : tasks_) {
    std::sort(t.parents.begin(), t.parents.end());
    t.parents.erase(std::unique(t.parents.begin(), t.parents.end()),
                    t.parents.end());
  }
  for (const Task& t : tasks_)
    for (TaskId p : t.parents) tasks_[p].children.push_back(t.id);
  for (Task& t : tasks_) std::sort(t.children.begin(), t.children.end());

  // Kahn's algorithm: validates acyclicity and yields levels in one pass
  // (paper definition: sources are level 1; otherwise 1 + max parent level).
  // A plain vector serves as the queue — pop order (index sweep) still
  // visits every ready task exactly once.
  std::vector<std::size_t> pendingParents(tasks_.size());
  std::vector<TaskId> ready;
  ready.reserve(tasks_.size());
  for (Task& t : tasks_) {
    pendingParents[t.id] = t.parents.size();
    t.level = 1;
    if (t.parents.empty()) ready.push_back(t.id);
  }
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const Task& t = tasks_[ready[head]];
    for (TaskId c : t.children) {
      tasks_[c].level = std::max(tasks_[c].level, t.level + 1);
      if (--pendingParents[c] == 0) ready.push_back(c);
    }
  }
  if (ready.size() != tasks_.size())
    throw std::logic_error("Workflow '" + name_ + "' contains a cycle");

  finalized_ = true;
}

void Workflow::setFileSize(FileId file, Bytes size) {
  requireValidFile(file);
  if (size.value() < 0.0)
    throw std::invalid_argument("Workflow::setFileSize: negative size");
  files_[file].size = size;
}

void Workflow::scaleAllFileSizes(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("Workflow::scaleAllFileSizes: factor must be > 0");
  for (File& f : files_) f.size *= factor;
}

void Workflow::setEarliestStart(TaskId task, double seconds) {
  requireValidTask(task);
  if (seconds < 0.0)
    throw std::invalid_argument("Workflow::setEarliestStart: negative time");
  tasks_[task].earliestStartSeconds = seconds;
}

void Workflow::scaleAllRuntimes(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("Workflow::scaleAllRuntimes: factor must be > 0");
  for (Task& t : tasks_) t.runtimeSeconds *= factor;
}

std::vector<FileId> Workflow::externalInputs() const {
  std::vector<FileId> out;
  for (const File& f : files_)
    if (f.producer == kNoTask) out.push_back(f.id);
  return out;
}

std::vector<FileId> Workflow::workflowOutputs() const {
  std::vector<FileId> out;
  for (const File& f : files_)
    if (f.explicitOutput || (f.consumers.empty() && f.producer != kNoTask))
      out.push_back(f.id);
  return out;
}

double Workflow::totalRuntimeSeconds() const {
  double total = 0.0;
  for (const Task& t : tasks_) total += t.runtimeSeconds;
  return total;
}

Bytes Workflow::totalFileBytes() const {
  Bytes total;
  for (const File& f : files_) total += f.size;
  return total;
}

Bytes Workflow::externalInputBytes() const {
  Bytes total;
  for (const File& f : files_)
    if (f.producer == kNoTask) total += f.size;
  return total;
}

Bytes Workflow::workflowOutputBytes() const {
  Bytes total;
  for (FileId id : workflowOutputs()) total += files_[id].size;
  return total;
}

double Workflow::ccr(double bandwidthBytesPerSecond) const {
  if (!(bandwidthBytesPerSecond > 0.0))
    throw std::invalid_argument("Workflow::ccr: bandwidth must be positive");
  const double compute = totalRuntimeSeconds();
  // Guards a division; only an exactly-zero total divides to infinity.
  // mcsim-lint: allow(float-equality)
  if (compute == 0.0)
    throw std::logic_error("Workflow::ccr: zero total runtime");
  return (totalFileBytes().value() / bandwidthBytesPerSecond) / compute;
}

int Workflow::levelCount() const {
  int maxLevel = 0;
  for (const Task& t : tasks_) maxLevel = std::max(maxLevel, t.level);
  return maxLevel;
}

// ---------------------------------------------------------------------------
// WorkflowBuilder
// ---------------------------------------------------------------------------

WorkflowBuilder::WorkflowBuilder(std::string name) : name_(std::move(name)) {}

void WorkflowBuilder::reserve(std::size_t tasks, std::size_t files,
                              std::size_t inputEdges, std::size_t outputEdges,
                              std::size_t nameBytes) {
  taskName_.reserve(tasks);
  taskType_.reserve(tasks);
  taskRuntime_.reserve(tasks);
  taskEarliestStart_.reserve(tasks);
  taskInputStart_.reserve(tasks);
  taskOutputStart_.reserve(tasks);
  taskInputs_.reserve(inputEdges);
  taskOutputs_.reserve(outputEdges);
  fileName_.reserve(files);
  fileSize_.reserve(files);
  fileProducer_.reserve(files);
  fileConsumers_.reserve(files);
  fileExplicitOutput_.reserve(files);
  if (nameBytes > 0) nameArena_.reserve(nameBytes);
}

WorkflowBuilder::NameRef WorkflowBuilder::internName(std::string_view name) {
  NameRef ref;
  ref.offset = nameArena_.size();
  ref.length = static_cast<std::uint32_t>(name.size());
  nameArena_.append(name);
  return ref;
}

std::uint32_t WorkflowBuilder::internType(std::string_view type) {
  // A workflow has a handful of routine names (Montage: 9); linear scan
  // beats a hash map at that cardinality.
  for (std::size_t i = 0; i < typeTable_.size(); ++i)
    if (typeTable_[i] == type) return static_cast<std::uint32_t>(i);
  typeTable_.emplace_back(type);
  return static_cast<std::uint32_t>(typeTable_.size() - 1);
}

void WorkflowBuilder::requireNewestTask(TaskId task, const char* op) const {
  if (taskRuntime_.empty() || task + 1 != taskRuntime_.size())
    throw std::logic_error(
        std::string("WorkflowBuilder::") + op + ": task " +
        std::to_string(task) +
        " is not the most recently added task (streaming order: bindings "
        "attach only to the newest task)");
}

TaskId WorkflowBuilder::addTask(std::string_view name, std::string_view type,
                                double runtimeSeconds) {
  if (runtimeSeconds < 0.0)
    throw std::invalid_argument("WorkflowBuilder::addTask: negative runtime");
  const TaskId id = static_cast<TaskId>(taskRuntime_.size());
  taskName_.push_back(internName(name));
  taskType_.push_back(internType(type));
  taskRuntime_.push_back(runtimeSeconds);
  taskEarliestStart_.push_back(0.0);
  // CSR fence: this task's edge ranges begin where the previous one ended.
  taskInputStart_.push_back(taskInputs_.size());
  taskOutputStart_.push_back(taskOutputs_.size());
  return id;
}

FileId WorkflowBuilder::addFile(std::string_view name, Bytes size) {
  if (size.value() < 0.0)
    throw std::invalid_argument("WorkflowBuilder::addFile: negative size");
  const FileId id = static_cast<FileId>(fileSize_.size());
  fileName_.push_back(internName(name));
  fileSize_.push_back(size);
  fileProducer_.push_back(kNoTask);
  fileConsumers_.push_back(0);
  fileExplicitOutput_.push_back(false);
  return id;
}

void WorkflowBuilder::addInput(TaskId task, FileId file) {
  requireNewestTask(task, "addInput");
  if (file >= fileSize_.size())
    throw std::out_of_range("WorkflowBuilder: invalid file id " +
                            std::to_string(file));
  if (fileProducer_[file] == task)
    throw std::invalid_argument(
        "WorkflowBuilder::addInput: task '" +
        std::string(nameAt(taskName_[task])) + "' produces '" +
        std::string(nameAt(fileName_[file])) + "'");
  // Duplicate scan only over this task's (open) input range — same contract
  // as Workflow::addInput but bounded by one task's degree.
  for (std::size_t i = taskInputStart_[task]; i < taskInputs_.size(); ++i)
    if (taskInputs_[i] == file)
      throw std::invalid_argument(
          "WorkflowBuilder::addInput: duplicate input binding");
  taskInputs_.push_back(file);
  ++fileConsumers_[file];
}

void WorkflowBuilder::addOutput(TaskId task, FileId file) {
  requireNewestTask(task, "addOutput");
  if (file >= fileSize_.size())
    throw std::out_of_range("WorkflowBuilder: invalid file id " +
                            std::to_string(file));
  if (fileProducer_[file] != kNoTask)
    throw std::invalid_argument("WorkflowBuilder::addOutput: file '" +
                                std::string(nameAt(fileName_[file])) +
                                "' already has a producer");
  if (fileConsumers_[file] != 0)
    throw std::logic_error(
        "WorkflowBuilder::addOutput: file '" +
        std::string(nameAt(fileName_[file])) +
        "' already has consumers (streaming order: declare the producer "
        "before any consumer binds the file)");
  for (std::size_t i = taskInputStart_[task]; i < taskInputs_.size(); ++i)
    if (taskInputs_[i] == file)
      throw std::invalid_argument(
          "WorkflowBuilder::addOutput: task '" +
          std::string(nameAt(taskName_[task])) + "' consumes '" +
          std::string(nameAt(fileName_[file])) + "'");
  fileProducer_[file] = task;
  taskOutputs_.push_back(file);
}

void WorkflowBuilder::addControlDependency(TaskId parent, TaskId child) {
  if (parent >= taskRuntime_.size() || child >= taskRuntime_.size())
    throw std::out_of_range("WorkflowBuilder: invalid task id");
  if (parent >= child)
    throw std::logic_error(
        "WorkflowBuilder::addControlDependency: parent " +
        std::to_string(parent) + " does not precede child " +
        std::to_string(child) + " (streaming order)");
  controlEdges_.emplace_back(parent, child);
}

void WorkflowBuilder::markExplicitOutput(FileId file) {
  if (file >= fileSize_.size())
    throw std::out_of_range("WorkflowBuilder: invalid file id " +
                            std::to_string(file));
  fileExplicitOutput_[file] = true;
}

void WorkflowBuilder::setEarliestStart(TaskId task, double seconds) {
  if (task >= taskRuntime_.size())
    throw std::out_of_range("WorkflowBuilder: invalid task id " +
                            std::to_string(task));
  if (seconds < 0.0)
    throw std::invalid_argument(
        "WorkflowBuilder::setEarliestStart: negative time");
  taskEarliestStart_[task] = seconds;
}

void WorkflowBuilder::clear() {
  nameArena_.clear();
  taskName_.clear();
  taskType_.clear();
  taskRuntime_.clear();
  taskEarliestStart_.clear();
  taskInputs_.clear();
  taskInputStart_.clear();
  taskOutputs_.clear();
  taskOutputStart_.clear();
  fileName_.clear();
  fileSize_.clear();
  fileProducer_.clear();
  fileConsumers_.clear();
  fileExplicitOutput_.clear();
  typeTable_.clear();
  controlEdges_.clear();
}

Workflow WorkflowBuilder::build() {
  const std::size_t taskCount = taskRuntime_.size();
  const std::size_t fileCount = fileSize_.size();
  if (taskCount == 0)
    throw std::logic_error("WorkflowBuilder::build: empty builder");

  Workflow wf(name_);
  wf.tasks_.resize(taskCount);
  wf.files_.resize(fileCount);

  auto inputEnd = [&](std::size_t t) {
    return t + 1 < taskCount ? taskInputStart_[t + 1] : taskInputs_.size();
  };
  auto outputEnd = [&](std::size_t t) {
    return t + 1 < taskCount ? taskOutputStart_[t + 1] : taskOutputs_.size();
  };

  for (std::size_t i = 0; i < fileCount; ++i) {
    File& f = wf.files_[i];
    f.id = static_cast<FileId>(i);
    f.name = std::string(nameAt(fileName_[i]));
    f.size = fileSize_[i];
    f.producer = fileProducer_[i];
    f.consumers.reserve(fileConsumers_[i]);
    f.explicitOutput = fileExplicitOutput_[i];
  }

  for (std::size_t i = 0; i < taskCount; ++i) {
    Task& t = wf.tasks_[i];
    t.id = static_cast<TaskId>(i);
    t.name = std::string(nameAt(taskName_[i]));
    t.type = typeTable_[taskType_[i]];
    t.runtimeSeconds = taskRuntime_[i];
    t.earliestStartSeconds = taskEarliestStart_[i];
    t.inputs.assign(taskInputs_.begin() +
                        static_cast<std::ptrdiff_t>(taskInputStart_[i]),
                    taskInputs_.begin() +
                        static_cast<std::ptrdiff_t>(inputEnd(i)));
    t.outputs.assign(taskOutputs_.begin() +
                         static_cast<std::ptrdiff_t>(taskOutputStart_[i]),
                     taskOutputs_.begin() +
                         static_cast<std::ptrdiff_t>(outputEnd(i)));
    // Consumer lists fill in ascending task order — the same order the
    // legacy path records when the identical call sequence is replayed.
    for (FileId file : t.inputs)
      wf.files_[file].consumers.push_back(t.id);
    // Parents: producers of inputs plus control parents; sort + unique
    // matches finalize() exactly.
    for (FileId file : t.inputs)
      if (fileProducer_[file] != kNoTask)
        t.parents.push_back(fileProducer_[file]);
  }
  for (const auto& [parent, child] : controlEdges_)
    wf.tasks_[child].parents.push_back(parent);

  // Streaming order guarantees every parent id < child id, so one ascending
  // sweep computes levels (paper definition) with no Kahn queue, and the
  // children lists it fills are sorted for free.
  for (std::size_t i = 0; i < taskCount; ++i) {
    Task& t = wf.tasks_[i];
    std::sort(t.parents.begin(), t.parents.end());
    t.parents.erase(std::unique(t.parents.begin(), t.parents.end()),
                    t.parents.end());
    t.level = 1;
    for (TaskId p : t.parents) {
      wf.tasks_[p].children.push_back(t.id);
      t.level = std::max(t.level, wf.tasks_[p].level + 1);
    }
  }

  wf.controlEdges_ = std::move(controlEdges_);
  wf.finalized_ = true;
  clear();
  return wf;
}

}  // namespace mcsim::dag
