#include "mcsim/dag/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mcsim::dag {
namespace {

void requireFinalized(const Workflow& wf, const char* fn) {
  if (!wf.finalized())
    throw std::logic_error(std::string(fn) + ": workflow not finalized");
}

}  // namespace

std::vector<TaskId> topologicalOrder(const Workflow& wf) {
  requireFinalized(wf, "topologicalOrder");
  std::vector<std::size_t> pending(wf.taskCount());
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (const Task& t : wf.tasks()) {
    pending[t.id] = t.parents.size();
    if (t.parents.empty()) ready.push(t.id);
  }
  std::vector<TaskId> order;
  order.reserve(wf.taskCount());
  while (!ready.empty()) {
    const TaskId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (TaskId c : wf.task(id).children)
      if (--pending[c] == 0) ready.push(c);
  }
  return order;
}

std::vector<double> earliestStartTimes(const Workflow& wf) {
  requireFinalized(wf, "earliestStartTimes");
  std::vector<double> est(wf.taskCount(), 0.0);
  for (TaskId id : topologicalOrder(wf)) {
    const Task& t = wf.task(id);
    for (TaskId c : t.children)
      est[c] = std::max(est[c], est[id] + t.runtimeSeconds);
  }
  return est;
}

double criticalPathSeconds(const Workflow& wf) {
  const auto est = earliestStartTimes(wf);
  double makespan = 0.0;
  for (const Task& t : wf.tasks())
    makespan = std::max(makespan, est[t.id] + t.runtimeSeconds);
  return makespan;
}

std::vector<TaskId> criticalPathTasks(const Workflow& wf) {
  const auto est = earliestStartTimes(wf);
  // Find the sink with the latest finish, then walk back through the parent
  // that determined each start time.
  TaskId cursor = kNoTask;
  double best = -1.0;
  for (const Task& t : wf.tasks()) {
    const double finish = est[t.id] + t.runtimeSeconds;
    if (finish > best) {
      best = finish;
      cursor = t.id;
    }
  }
  std::vector<TaskId> path;
  while (cursor != kNoTask) {
    path.push_back(cursor);
    const Task& t = wf.task(cursor);
    TaskId pick = kNoTask;
    for (TaskId p : t.parents) {
      const Task& parent = wf.task(p);
      if (est[p] + parent.runtimeSeconds == est[cursor] &&
          (pick == kNoTask || est[p] + parent.runtimeSeconds >
                                  est[pick] + wf.task(pick).runtimeSeconds)) {
        pick = p;
      }
    }
    // If no parent finishes exactly at our start (start forced to 0 as a
    // source, or float slack), stop at the chain's head.
    // 0.0 is the exact unset-EST sentinel assigned at initialization, never
    // a computed value.  mcsim-lint: allow(float-equality)
    if (pick == kNoTask || est[cursor] == 0.0) {
      if (!t.parents.empty() && pick != kNoTask && est[cursor] > 0.0)
        cursor = pick;
      else
        cursor = kNoTask;
    } else {
      cursor = pick;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::size_t> levelWidths(const Workflow& wf) {
  requireFinalized(wf, "levelWidths");
  std::vector<std::size_t> widths(static_cast<std::size_t>(wf.levelCount()), 0);
  for (const Task& t : wf.tasks()) widths[static_cast<std::size_t>(t.level - 1)]++;
  return widths;
}

std::size_t maxLevelWidth(const Workflow& wf) {
  std::size_t best = 0;
  for (std::size_t w : levelWidths(wf)) best = std::max(best, w);
  return best;
}

std::size_t maxParallelism(const Workflow& wf) {
  const auto est = earliestStartTimes(wf);
  // Sweep task (start, end) intervals; zero-runtime tasks still count at
  // their instant (start event precedes end event at equal times).
  struct Edge {
    double time;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(wf.taskCount() * 2);
  for (const Task& t : wf.tasks()) {
    edges.push_back({est[t.id], +1});
    edges.push_back({est[t.id] + t.runtimeSeconds, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // ends before starts: back-to-back tasks on
                               // one chain are not concurrent
  });
  std::size_t best = 0;
  long current = 0;
  for (const Edge& e : edges) {
    current += e.delta;
    best = std::max(best, static_cast<std::size_t>(std::max(0L, current)));
  }
  return best;
}

}  // namespace mcsim::dag
