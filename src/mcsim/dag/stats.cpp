#include "mcsim/dag/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcsim::dag {

void Distribution::add(double value) {
  if (count == 0) {
    minimum = value;
    maximum = value;
  } else {
    minimum = std::min(minimum, value);
    maximum = std::max(maximum, value);
  }
  total += value;
  ++count;
}

WorkflowStats computeStats(const Workflow& wf) {
  if (!wf.finalized())
    throw std::logic_error("computeStats: workflow not finalized");
  WorkflowStats stats;
  for (const Task& t : wf.tasks()) {
    TypeStats& type = stats.byType[t.type];
    type.runtimeSeconds.add(t.runtimeSeconds);
    double produced = 0.0;
    for (FileId f : t.outputs) produced += wf.file(f).size.value();
    type.outputBytes.add(produced);

    LevelStats& level = stats.byLevel[t.level];
    ++level.tasks;
    level.runtimeSeconds += t.runtimeSeconds;
    level.bytesProduced += Bytes(produced);
  }
  for (const File& f : wf.files()) stats.fileSizes.add(f.size.value());
  return stats;
}

}  // namespace mcsim::dag
