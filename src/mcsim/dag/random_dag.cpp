#include "mcsim/dag/random_dag.hpp"

#include <string>
#include <vector>

#include "mcsim/util/rng.hpp"

namespace mcsim::dag {

Workflow makeRandomWorkflow(std::uint64_t seed, const RandomDagOptions& opt) {
  Rng rng(seed);
  Workflow wf("random-" + std::to_string(seed));

  const int layers = static_cast<int>(rng.uniformInt(opt.minLayers, opt.maxLayers));

  // Seed external input files for layer 1.
  std::vector<FileId> previousLayerFiles;
  const int inputCount = static_cast<int>(rng.uniformInt(opt.minWidth, opt.maxWidth));
  for (int i = 0; i < inputCount; ++i) {
    previousLayerFiles.push_back(wf.addFile(
        "input_" + std::to_string(i),
        Bytes::fromMB(rng.uniformReal(opt.minFileMB, opt.maxFileMB))));
  }

  int taskCounter = 0;
  for (int layer = 0; layer < layers; ++layer) {
    const int width = static_cast<int>(rng.uniformInt(opt.minWidth, opt.maxWidth));
    std::vector<FileId> producedHere;
    for (int i = 0; i < width; ++i) {
      const TaskId t = wf.addTask(
          "task_" + std::to_string(taskCounter),
          "layer" + std::to_string(layer),
          rng.uniformReal(opt.minRuntimeSeconds, opt.maxRuntimeSeconds));
      ++taskCounter;
      // Guaranteed input: a deterministic-but-random pick from the previous
      // layer's files; extra inputs by coin flip.
      const std::size_t pick = static_cast<std::size_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(previousLayerFiles.size()) - 1));
      wf.addInput(t, previousLayerFiles[pick]);
      for (std::size_t f = 0; f < previousLayerFiles.size(); ++f) {
        if (f == pick) continue;
        if (rng.chance(opt.extraInputProbability))
          wf.addInput(t, previousLayerFiles[f]);
      }
      const FileId out = wf.addFile(
          "f_" + std::to_string(layer) + "_" + std::to_string(i),
          Bytes::fromMB(rng.uniformReal(opt.minFileMB, opt.maxFileMB)));
      wf.addOutput(t, out);
      producedHere.push_back(out);
      if (rng.chance(opt.secondOutputProbability)) {
        const FileId out2 = wf.addFile(
            "f_" + std::to_string(layer) + "_" + std::to_string(i) + "b",
            Bytes::fromMB(rng.uniformReal(opt.minFileMB, opt.maxFileMB)));
        wf.addOutput(t, out2);
        producedHere.push_back(out2);
      }
    }
    previousLayerFiles = std::move(producedHere);
  }

  if (opt.addSink) {
    const TaskId sink = wf.addTask(
        "sink", "sink",
        rng.uniformReal(opt.minRuntimeSeconds, opt.maxRuntimeSeconds));
    for (FileId f : previousLayerFiles) wf.addInput(sink, f);
    const FileId final = wf.addFile(
        "final", Bytes::fromMB(rng.uniformReal(opt.minFileMB, opt.maxFileMB)));
    wf.addOutput(sink, final);
  }

  wf.finalize();
  return wf;
}

}  // namespace mcsim::dag
