#include "mcsim/dag/cleanup.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcsim::dag {

CleanupPlan analyzeCleanup(const Workflow& wf) {
  if (!wf.finalized())
    throw std::logic_error("analyzeCleanup: workflow not finalized");
  CleanupPlan plan;
  plan.remainingUses.resize(wf.fileCount(), 0);
  plan.isOutput.resize(wf.fileCount(), false);
  for (FileId id : wf.workflowOutputs()) plan.isOutput[id] = true;
  for (const File& f : wf.files()) {
    if (!f.consumers.empty())
      plan.remainingUses[f.id] = f.consumers.size();
    else
      plan.remainingUses[f.id] = f.producer == kNoTask ? 0 : 1;
  }
  return plan;
}

FootprintEstimate predictSequentialFootprint(
    const Workflow& wf, const std::vector<TaskId>& order) {
  if (order.size() != wf.taskCount())
    throw std::invalid_argument(
        "predictSequentialFootprint: order must cover every task");
  const CleanupPlan plan = analyzeCleanup(wf);

  // Regular: level rises as files are created and never falls until the end,
  // so the peak is simply total bytes ever resident (inputs + everything
  // produced).
  Bytes resident;  // shared running level for the cleanup walk
  for (FileId id : wf.externalInputs()) resident += wf.file(id).size;
  Bytes peakRegular = wf.totalFileBytes();

  // Cleanup walk: replay the order, creating outputs at task completion and
  // releasing files whose remaining uses hit zero.
  std::vector<std::size_t> uses = plan.remainingUses;
  std::vector<bool> created(wf.fileCount(), false);
  for (FileId id : wf.externalInputs()) created[id] = true;
  Bytes peakCleanup = resident;
  for (TaskId tid : order) {
    const Task& t = wf.task(tid);
    for (FileId in : t.inputs) {
      if (!created[in])
        throw std::logic_error(
            "predictSequentialFootprint: order is not topological (task '" +
            t.name + "' consumes '" + wf.file(in).name +
            "' before it is produced)");
    }
    for (FileId out : t.outputs) {
      resident += wf.file(out).size;
      created[out] = true;
    }
    peakCleanup = std::max(peakCleanup, resident);
    for (FileId in : t.inputs) {
      if (uses[in] == 0)
        throw std::logic_error(
            "predictSequentialFootprint: file use-count underflow");
      if (--uses[in] == 0 && !plan.isOutput[in]) resident -= wf.file(in).size;
    }
  }
  return FootprintEstimate{peakRegular, peakCleanup};
}

}  // namespace mcsim::dag
