#include "mcsim/dag/dax.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "mcsim/util/xml.hpp"

namespace mcsim::dag {
namespace {

double parseNumber(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || !std::isfinite(v))
      throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("dax: bad numeric value '" + text + "' for " + what);
  }
}

}  // namespace

Workflow readDax(std::string_view xmlText) {
  const auto root = xml::parse(xmlText);
  if (root->name != "adag")
    throw std::runtime_error("dax: root element must be <adag>, got <" +
                             root->name + ">");
  Workflow wf(root->attr("name", "workflow"));

  std::map<std::string, TaskId> taskByJobId;
  std::map<std::string, FileId> fileByName;

  auto internFile = [&](const std::string& name, Bytes size) {
    auto it = fileByName.find(name);
    if (it != fileByName.end()) {
      const File& existing = wf.file(it->second);
      if (std::fabs(existing.size.value() - size.value()) > 0.5)
        throw std::runtime_error("dax: file '" + name +
                                 "' mentioned with conflicting sizes");
      return it->second;
    }
    const FileId id = wf.addFile(name, size);
    fileByName.emplace(name, id);
    return id;
  };

  for (const xml::Element* job : root->childrenNamed("job")) {
    const std::string& jobId = job->requiredAttr("id");
    const std::string& name = job->attr("name", jobId);
    const std::string& type = job->attr("type", name);
    const double runtime = parseNumber(job->requiredAttr("runtime"),
                                       "job runtime of " + jobId);
    const TaskId task = wf.addTask(name, type, runtime);
    if (job->hasAttr("release"))
      wf.setEarliestStart(task, parseNumber(job->attr("release"),
                                            "release time of " + jobId));
    if (!taskByJobId.emplace(jobId, task).second)
      throw std::runtime_error("dax: duplicate job id '" + jobId + "'");

    for (const xml::Element* uses : job->childrenNamed("uses")) {
      const std::string& fileName = uses->requiredAttr("file");
      const Bytes size{parseNumber(uses->requiredAttr("size"),
                                   "size of file " + fileName)};
      const std::string& link = uses->requiredAttr("link");
      const FileId file = internFile(fileName, size);
      if (link == "input") {
        wf.addInput(task, file);
      } else if (link == "output") {
        wf.addOutput(task, file);
        // Pegasus-style transfer flag: the file is a user product that must
        // be staged out even if later tasks also consume it.
        if (uses->attr("transfer") == "true") wf.markExplicitOutput(file);
      } else {
        throw std::runtime_error("dax: unknown link kind '" + link +
                                 "' (want input|output)");
      }
    }
  }

  for (const xml::Element* child : root->childrenNamed("child")) {
    const std::string& childRef = child->requiredAttr("ref");
    auto cIt = taskByJobId.find(childRef);
    if (cIt == taskByJobId.end())
      throw std::runtime_error("dax: <child ref> references unknown job '" +
                               childRef + "'");
    for (const xml::Element* parent : child->childrenNamed("parent")) {
      const std::string& parentRef = parent->requiredAttr("ref");
      auto pIt = taskByJobId.find(parentRef);
      if (pIt == taskByJobId.end())
        throw std::runtime_error("dax: <parent ref> references unknown job '" +
                                 parentRef + "'");
      wf.addControlDependency(pIt->second, cIt->second);
    }
  }

  wf.finalize();
  return wf;
}

Workflow readDaxFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dax: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return readDax(buffer.str());
}

std::string writeDax(const Workflow& wf) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<adag name=\"" << xml::escape(wf.name()) << "\">\n";
  os.precision(17);
  for (const Task& t : wf.tasks()) {
    os << "  <job id=\"ID" << t.id << "\" name=\"" << xml::escape(t.name)
       << "\" type=\"" << xml::escape(t.type) << "\" runtime=\""
       << t.runtimeSeconds << "\"";
    if (t.earliestStartSeconds > 0.0)
      os << " release=\"" << t.earliestStartSeconds << "\"";
    os << ">\n";
    for (FileId f : t.inputs)
      os << "    <uses file=\"" << xml::escape(wf.file(f).name)
         << "\" link=\"input\" size=\"" << wf.file(f).size.value() << "\"/>\n";
    for (FileId f : t.outputs) {
      os << "    <uses file=\"" << xml::escape(wf.file(f).name)
         << "\" link=\"output\" size=\"" << wf.file(f).size.value() << "\"";
      if (wf.file(f).explicitOutput) os << " transfer=\"true\"";
      os << "/>\n";
    }
    os << "  </job>\n";
  }
  for (const auto& [parent, child] : wf.controlDependencies()) {
    os << "  <child ref=\"ID" << child << "\"><parent ref=\"ID" << parent
       << "\"/></child>\n";
  }
  os << "</adag>\n";
  return os.str();
}

void writeDaxFile(const Workflow& wf, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("dax: cannot write '" + path + "'");
  out << writeDax(wf);
}

}  // namespace mcsim::dag
