#include "mcsim/analysis/explain.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

namespace mcsim::analysis {
namespace {

constexpr double kEps = 1e-9;

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

CostBucket bucketFor(obs::SpanKind kind) {
  switch (kind) {
    case obs::SpanKind::Compute: return CostBucket::Compute;
    case obs::SpanKind::StageIn: return CostBucket::StageIn;
    case obs::SpanKind::StageOut: return CostBucket::StageOut;
    case obs::SpanKind::QueueWait: return CostBucket::QueueWait;
    case obs::SpanKind::RetryWait: return CostBucket::RetryWait;
    default: return CostBucket::TaskOther;
  }
}

/// Incoming dependency edges (FollowsFrom only — resource edges record
/// contention for viewers but do not bind the causal walk) and child
/// sub-spans, both as CSR over span ids.
struct Adjacency {
  std::vector<std::uint32_t> inOffsets, inFrom;
  std::vector<std::uint32_t> childOffsets, children;
};

Adjacency buildAdjacency(const obs::TraceStore& store) {
  const std::size_t n = store.spanCount();
  Adjacency adj;
  adj.inOffsets.assign(n + 1, 0);
  adj.childOffsets.assign(n + 1, 0);
  const auto& from = store.edgeFroms();
  const auto& to = store.edgeTos();
  const auto& kinds = store.edgeKinds();
  for (std::size_t e = 0; e < store.edgeCount(); ++e) {
    if (kinds[e] == static_cast<std::uint8_t>(obs::EdgeKind::FollowsFrom))
      ++adj.inOffsets[to[e] + 1];
    else if (kinds[e] == static_cast<std::uint8_t>(obs::EdgeKind::Child))
      ++adj.childOffsets[from[e] + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    adj.inOffsets[i] += adj.inOffsets[i - 1];
    adj.childOffsets[i] += adj.childOffsets[i - 1];
  }
  adj.inFrom.resize(adj.inOffsets[n]);
  adj.children.resize(adj.childOffsets[n]);
  std::vector<std::uint32_t> inCursor(adj.inOffsets.begin(),
                                      adj.inOffsets.end() - 1);
  std::vector<std::uint32_t> childCursor(adj.childOffsets.begin(),
                                         adj.childOffsets.end() - 1);
  for (std::size_t e = 0; e < store.edgeCount(); ++e) {
    if (kinds[e] == static_cast<std::uint8_t>(obs::EdgeKind::FollowsFrom))
      adj.inFrom[inCursor[to[e]]++] = from[e];
    else if (kinds[e] == static_cast<std::uint8_t>(obs::EdgeKind::Child))
      adj.children[childCursor[from[e]]++] = to[e];
  }
  return adj;
}

/// Append `cur`'s path tile(s).  A Task span is sub-attributed by sweeping
/// its closed child spans in time order with a moving cursor, so concurrent
/// children (remote-I/O stage-ins share the window) are never double-counted;
/// whatever the children leave uncovered becomes TaskOther.  Other span
/// kinds are one tile each.  Segments are appended in *reverse* time order
/// (the walk runs backwards); extractCriticalPath reverses at the end.
void emitSegments(const obs::TraceStore& store, const Adjacency& adj,
                  std::uint32_t cur, double begin, double end,
                  std::vector<CriticalSegment>& rev) {
  if (store.kind(cur) != obs::SpanKind::Task) {
    if (end - begin > 0.0)
      rev.push_back({cur, bucketFor(store.kind(cur)), begin, end});
    return;
  }
  std::vector<std::uint32_t> kids(
      adj.children.begin() + adj.childOffsets[cur],
      adj.children.begin() + adj.childOffsets[cur + 1]);
  std::sort(kids.begin(), kids.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (store.begin(a) != store.begin(b))
      return store.begin(a) < store.begin(b);
    return a < b;
  });
  std::vector<CriticalSegment> fwd;
  double t = begin;
  for (std::uint32_t c : kids) {
    const double ce = store.isOpen(c) ? end : std::min(end, store.end(c));
    const double cb = std::max(t, std::min(end, store.begin(c)));
    if (ce > cb + kEps) {
      if (cb > t + kEps)
        fwd.push_back({cur, CostBucket::TaskOther, t, cb});
      fwd.push_back({c, bucketFor(store.kind(c)), cb, ce});
      t = ce;
    }
  }
  if (end > t + kEps) fwd.push_back({cur, CostBucket::TaskOther, t, end});
  // Degenerate zero-width task (possible with zero-runtime tasks): keep one
  // zero-width tile so the task still registers on the path.
  if (fwd.empty()) fwd.push_back({cur, CostBucket::TaskOther, begin, end});
  rev.insert(rev.end(), fwd.rbegin(), fwd.rend());
}

}  // namespace

obs::TraceTopology traceTopology(const dag::Workflow& wf) {
  obs::TraceTopology topo;
  const std::size_t n = wf.taskCount();
  std::vector<bool> isExternal(wf.fileCount(), false);
  for (dag::FileId f : wf.externalInputs()) isExternal[f] = true;

  topo.parentOffsets.assign(n + 1, 0);
  topo.extInputOffsets.assign(n + 1, 0);
  for (const dag::Task& t : wf.tasks()) {
    topo.parentOffsets[t.id + 1] =
        static_cast<std::uint32_t>(t.parents.size());
    std::uint32_t ext = 0;
    for (dag::FileId f : t.inputs)
      if (isExternal[f]) ++ext;
    topo.extInputOffsets[t.id + 1] = ext;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    topo.parentOffsets[i] += topo.parentOffsets[i - 1];
    topo.extInputOffsets[i] += topo.extInputOffsets[i - 1];
  }
  topo.parents.resize(topo.parentOffsets[n]);
  topo.extInputs.resize(topo.extInputOffsets[n]);
  for (const dag::Task& t : wf.tasks()) {
    std::uint32_t p = topo.parentOffsets[t.id];
    for (dag::TaskId parent : t.parents) topo.parents[p++] = parent;
    std::uint32_t x = topo.extInputOffsets[t.id];
    for (dag::FileId f : t.inputs)
      if (isExternal[f]) topo.extInputs[x++] = f;
  }
  return topo;
}

obs::TraceNames traceNames(const dag::Workflow& wf) {
  obs::TraceNames names;
  names.taskNames.reserve(wf.taskCount());
  names.taskTypes.reserve(wf.taskCount());
  for (const dag::Task& t : wf.tasks()) {
    names.taskNames.push_back(t.name);
    names.taskTypes.push_back(t.type);
  }
  names.fileNames.reserve(wf.fileCount());
  for (const dag::File& f : wf.files()) names.fileNames.push_back(f.name);
  return names;
}

const char* costBucketName(CostBucket bucket) {
  switch (bucket) {
    case CostBucket::Compute: return "compute";
    case CostBucket::StageIn: return "stage_in";
    case CostBucket::StageOut: return "stage_out";
    case CostBucket::QueueWait: return "queue_wait";
    case CostBucket::RetryWait: return "retry_wait";
    case CostBucket::TaskOther: return "task_other";
    case CostBucket::Gap: return "gap";
    case CostBucket::VmStartup: return "vm_startup";
    case CostBucket::VmTeardown: return "vm_teardown";
  }
  return "unknown";
}

CriticalPath extractCriticalPath(const obs::TraceStore& store,
                                 double makespanSeconds) {
  CriticalPath path;

  // Terminal: the latest-ending completed work span.  At equal end times a
  // Task span beats its co-terminal stage spans (remote-I/O: the final
  // stage-out closes together with its task, but only the Task span has the
  // dependency edges the walk needs); remaining ties break toward the larger
  // span id (the later-recorded one) for determinism.
  std::uint32_t terminal = obs::kNoSpan;
  const auto better = [&](std::uint32_t s, std::uint32_t best) {
    if (best == obs::kNoSpan) return true;
    if (store.end(s) != store.end(best)) return store.end(s) > store.end(best);
    const bool sTask = store.kind(s) == obs::SpanKind::Task;
    const bool bestTask = store.kind(best) == obs::SpanKind::Task;
    if (sTask != bestTask) return sTask;
    return s > best;
  };
  for (std::uint32_t s = 0; s < store.spanCount(); ++s) {
    const obs::SpanKind k = store.kind(s);
    if (k != obs::SpanKind::Task && k != obs::SpanKind::StageIn &&
        k != obs::SpanKind::StageOut)
      continue;
    if (store.isOpen(s)) continue;
    if (better(s, terminal)) terminal = s;
  }
  if (terminal == obs::kNoSpan) {
    if (makespanSeconds > 0.0)
      path.segments.push_back(
          {obs::kNoSpan, CostBucket::Gap, 0.0, makespanSeconds});
    return path;
  }

  const Adjacency adj = buildAdjacency(store);
  std::vector<CriticalSegment> rev;
  std::vector<std::uint32_t> tasksRev;

  if (makespanSeconds > store.end(terminal) + kEps)
    rev.push_back({obs::kNoSpan, CostBucket::VmTeardown, store.end(terminal),
                   makespanSeconds});

  std::uint32_t cur = terminal;
  double cursor = store.end(terminal);
  while (true) {
    const double b = store.begin(cur);
    emitSegments(store, adj, cur, b, cursor, rev);
    if (store.kind(cur) == obs::SpanKind::Task &&
        store.task(cur) != obs::kNoTask)
      tasksRev.push_back(store.task(cur));

    // Dependency predecessor: the latest-ending incoming span that finished
    // by the time `cur` began (what actually released it).
    std::uint32_t pred = obs::kNoSpan;
    for (std::uint32_t i = adj.inOffsets[cur]; i < adj.inOffsets[cur + 1];
         ++i) {
      const std::uint32_t from = adj.inFrom[i];
      if (store.isOpen(from)) continue;
      if (store.end(from) > b + kEps) continue;
      if (pred == obs::kNoSpan || store.end(from) > store.end(pred) ||
          (store.end(from) == store.end(pred) && from > pred))
        pred = from;
    }
    if (pred == obs::kNoSpan) {
      if (b > kEps)
        rev.push_back({obs::kNoSpan, CostBucket::VmStartup, 0.0, b});
      break;
    }
    if (store.end(pred) < b - kEps)
      rev.push_back(
          {obs::kNoSpan, CostBucket::Gap, store.end(pred), b});
    cursor = std::min(store.end(pred), b);
    cur = pred;
  }

  path.segments.assign(rev.rbegin(), rev.rend());
  path.taskOrder.assign(tasksRev.rbegin(), tasksRev.rend());
  return path;
}

Explanation explainRun(const dag::Workflow& wf, const obs::TraceStore& store,
                       const obs::RunReport& report) {
  Explanation e;
  e.workflow = report.workflow;
  e.mode = report.mode;
  e.billing = report.billing;
  e.processors = report.processors;
  e.makespanSeconds = report.makespanSeconds;
  e.totalTasks = wf.taskCount();
  e.path = extractCriticalPath(store, report.makespanSeconds);

  std::unordered_map<std::uint32_t, double> critSeconds;
  for (const CriticalSegment& seg : e.path.segments) {
    e.bucketSeconds[static_cast<std::size_t>(seg.bucket)] += seg.seconds();
    if (seg.span != obs::kNoSpan && store.task(seg.span) != obs::kNoTask)
      critSeconds[store.task(seg.span)] += seg.seconds();
  }

  std::unordered_set<std::uint32_t> critical(e.path.taskOrder.begin(),
                                             e.path.taskOrder.end());
  e.criticalTasks = critical.size();

  e.totalCost = report.totals.total();
  e.stagingCost = report.staging.total();
  e.unattributedCost = report.unattributedCpu;
  std::unordered_map<std::uint32_t, const obs::TaskCost*> costByTask;
  for (const obs::TaskCost& t : report.byTask) {
    costByTask.emplace(t.task, &t);
    if (critical.count(t.task) != 0)
      e.criticalCost += t.cost.total();
    else
      e.slackCost += t.cost.total();
  }

  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t id : e.path.taskOrder) {
    if (!seen.insert(id).second)
      continue;  // a retried task can appear twice; keep the first visit
    TaskShare share;
    share.task = id;
    const dag::Task& t = wf.task(id);
    share.name = t.name;
    share.type = t.type;
    if (const auto it = critSeconds.find(id); it != critSeconds.end())
      share.criticalSeconds = it->second;
    if (const auto it = costByTask.find(id); it != costByTask.end())
      share.cost = it->second->cost;
    e.tasks.push_back(std::move(share));
  }
  std::sort(e.tasks.begin(), e.tasks.end(),
            [](const TaskShare& a, const TaskShare& b) {
              if (a.criticalSeconds != b.criticalSeconds)
                return a.criticalSeconds > b.criticalSeconds;
              return a.task < b.task;
            });

  std::unordered_map<std::string, std::size_t> typeIndex;
  for (const TaskShare& t : e.tasks) {
    auto [it, fresh] = typeIndex.try_emplace(t.type, e.byType.size());
    if (fresh) {
      TypeShare share;
      share.type = t.type;
      e.byType.push_back(std::move(share));
    }
    TypeShare& share = e.byType[it->second];
    ++share.tasks;
    share.criticalSeconds += t.criticalSeconds;
    share.cost += t.cost.total();
  }
  std::sort(e.byType.begin(), e.byType.end(),
            [](const TypeShare& a, const TypeShare& b) {
              if (a.criticalSeconds != b.criticalSeconds)
                return a.criticalSeconds > b.criticalSeconds;
              return a.type < b.type;
            });
  return e;
}

void printExplanation(std::ostream& os, const Explanation& e,
                      std::size_t topN) {
  char buf[256];
  const auto pct = [&](double s) {
    return e.makespanSeconds > 0.0 ? 100.0 * s / e.makespanSeconds : 0.0;
  };
  os << "mcsim explain: " << e.workflow << " (" << e.mode << ", "
     << e.processors << " proc, " << e.billing << " billing)\n";
  std::snprintf(buf, sizeof buf,
                "  makespan %.3f s; critical path visits %zu of %zu tasks\n",
                e.makespanSeconds, e.criticalTasks, e.totalTasks);
  os << buf;

  os << "\n  makespan attribution (simulated critical path):\n";
  for (std::size_t b = 0; b < kCostBucketCount; ++b) {
    const double s = e.bucketSeconds[b];
    if (s <= 0.0) continue;
    std::snprintf(buf, sizeof buf, "    %-11s %14.3f s  %5.1f%%\n",
                  costBucketName(static_cast<CostBucket>(b)), s, pct(s));
    os << buf;
  }

  os << "\n  cost attribution:\n";
  const auto costRow = [&](const char* label, Money m) {
    const double share = e.totalCost.value() > 0.0
                             ? 100.0 * m.value() / e.totalCost.value()
                             : 0.0;
    std::snprintf(buf, sizeof buf, "    %-13s $%12.4f  %5.1f%%\n", label,
                  m.value(), share);
    os << buf;
  };
  costRow("critical path", e.criticalCost);
  costRow("slack tasks", e.slackCost);
  costRow("staging", e.stagingCost);
  costRow("idle (prov.)", e.unattributedCost);
  costRow("total", e.totalCost);

  os << "\n  top tasks on the critical path:\n";
  std::snprintf(buf, sizeof buf, "    %-5s %-18s %-12s %14s %12s\n", "task",
                "name", "type", "critical_s", "cost_$");
  os << buf;
  for (std::size_t i = 0; i < e.tasks.size() && i < topN; ++i) {
    const TaskShare& t = e.tasks[i];
    std::snprintf(buf, sizeof buf, "    %-5u %-18s %-12s %14.3f %12.6f\n",
                  t.task, t.name.c_str(), t.type.c_str(), t.criticalSeconds,
                  t.cost.total().value());
    os << buf;
  }

  os << "\n  by task type (critical tasks only):\n";
  for (const TypeShare& t : e.byType) {
    std::snprintf(buf, sizeof buf,
                  "    %-12s %4zu task(s) %14.3f s %12.6f $\n",
                  t.type.c_str(), t.tasks, t.criticalSeconds,
                  t.cost.value());
    os << buf;
  }
}

void writeExplanationJson(std::ostream& os, const Explanation& e) {
  os << "{\n";
  os << "  \"schema\": \"mcsim.explain.v1\",\n";
  os << "  \"workflow\": \"" << jsonEscape(e.workflow) << "\",\n";
  os << "  \"mode\": \"" << e.mode << "\",\n";
  os << "  \"billing\": \"" << e.billing << "\",\n";
  os << "  \"processors\": " << e.processors << ",\n";
  os << "  \"makespan_seconds\": " << num(e.makespanSeconds) << ",\n";
  os << "  \"critical_tasks\": " << e.criticalTasks << ",\n";
  os << "  \"total_tasks\": " << e.totalTasks << ",\n";
  os << "  \"segments\": " << e.path.segments.size() << ",\n";
  os << "  \"makespan_buckets\": {";
  for (std::size_t b = 0; b < kCostBucketCount; ++b) {
    if (b != 0) os << ',';
    os << '"' << costBucketName(static_cast<CostBucket>(b))
       << "\":" << num(e.bucketSeconds[b]);
  }
  os << "},\n";
  os << "  \"cost\": {\"total\":" << num(e.totalCost.value())
     << ",\"critical\":" << num(e.criticalCost.value())
     << ",\"slack\":" << num(e.slackCost.value())
     << ",\"staging\":" << num(e.stagingCost.value())
     << ",\"unattributed\":" << num(e.unattributedCost.value()) << "},\n";
  os << "  \"tasks\": [\n";
  for (std::size_t i = 0; i < e.tasks.size(); ++i) {
    const TaskShare& t = e.tasks[i];
    os << "    {\"task\":" << t.task << ",\"name\":\"" << jsonEscape(t.name)
       << "\",\"type\":\"" << jsonEscape(t.type)
       << "\",\"critical_seconds\":" << num(t.criticalSeconds)
       << ",\"cost\":" << num(t.cost.total().value()) << '}'
       << (i + 1 < e.tasks.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"by_type\": [\n";
  for (std::size_t i = 0; i < e.byType.size(); ++i) {
    const TypeShare& t = e.byType[i];
    os << "    {\"type\":\"" << jsonEscape(t.type)
       << "\",\"tasks\":" << t.tasks
       << ",\"critical_seconds\":" << num(t.criticalSeconds)
       << ",\"cost\":" << num(t.cost.value()) << '}'
       << (i + 1 < e.byType.size() ? "," : "") << '\n';
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace mcsim::analysis
