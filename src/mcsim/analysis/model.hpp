// Analytic (closed-form) cost model: predicts the metrics of a Regular-mode
// run from workflow statistics alone, without simulating.
//
// Uses: (1) the planner can pre-screen hundreds of configurations at
// near-zero cost before simulating the shortlist, (2) tests cross-validate
// the simulator against an independent derivation — the bounds proven here
// must bracket every simulated run.
#pragma once

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"

namespace mcsim::analysis {

struct AnalyticEstimate {
  /// Guaranteed bracket for the Regular-mode makespan on P processors with
  /// dedicated per-transfer links:
  ///   lower = max(criticalPath, work/P) + maxOutputFile/B
  ///   upper = maxInputFile/B + (work/P + criticalPath) + totalOutput/B
  /// (the middle term is Graham's list-scheduling bound).
  double makespanLowerSeconds = 0.0;
  double makespanUpperSeconds = 0.0;
  /// Point estimate used for cost projections: lower bound plus stage-in.
  double makespanEstimateSeconds = 0.0;

  Bytes bytesIn;   ///< External inputs (exact for Regular mode).
  Bytes bytesOut;  ///< Workflow outputs (exact for Regular mode).

  Money cpuProvisionedEstimate;  ///< P x makespanEstimate x rate.
  Money cpuUsage;                ///< Work x rate (exact).
  Money transferCost;            ///< Exact for Regular mode.
  /// Storage bracket: resident bytes never exceed total file bytes, so
  /// cost <= totalBytes x makespanUpper x rate; >= outputBytes held for the
  /// final stage-out.
  Money storageUpperBound;

  Money totalEstimate() const {
    return cpuProvisionedEstimate + transferCost;
  }
};

/// Predict a Regular-mode run of `wf` on `processors` processors.
AnalyticEstimate estimateRegularRun(const dag::Workflow& wf, int processors,
                                    const cloud::Pricing& pricing,
                                    double linkBandwidthBytesPerSec = 10e6 / 8.0);

}  // namespace mcsim::analysis
