// The reliability experiment: cost vs. processor MTBF across the paper's
// three data-management modes.
//
// The paper's §8 names resource reliability as the open concern its cost
// model ignores.  This driver quantifies it: for each mode and each MTBF in
// the sweep, the workflow runs under the spot-style crash model (faults.hpp)
// with a retry policy, and the usage-billed cost is compared against the
// same mode's fault-free baseline.  The delta is the dollar price of
// unreliability — wasted compute, repeated S3 transfers (remote I/O
// re-stages inputs on every crash) and re-accumulated storage.
//
// Deterministic end to end: every point is seeded through FaultConfig::seed,
// so the same arguments always reproduce the same table.
#pragma once

#include <cstddef>
#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/faults/faults.hpp"
#include "mcsim/util/table.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::runner {
class JobQueue;
class ScenarioMemoCache;
}

namespace mcsim::analysis {

/// Sweep parameters: which MTBF values to visit and how crashed tasks retry.
struct ReliabilityConfig {
  /// Processor MTBF values (seconds) to sweep, in addition to the implicit
  /// fault-free baseline row per mode.  Must be positive.
  std::vector<double> mtbfSeconds;
  faults::RetryPolicy retry;
  std::uint64_t faultSeed = 1;
  /// 0 = the workflow's max parallelism (as dataModeComparison).
  int processorOverride = 0;
  /// Every engine knob except mode, processors and faults.
  engine::EngineConfig base;
  /// Runner worker threads; 0 = serial (the exact legacy code path).
  int jobs = 0;
  /// Observes every scenario; streams merge deterministically in sweep
  /// order regardless of jobs.  Borrowed; may be nullptr.
  obs::Sink* observer = nullptr;
  /// Optional scenario memo cache (runner/memo.hpp): the per-mode fault-free
  /// baselines repeat across reliability sweeps sharing a cache, so only
  /// the faulty points re-simulate.  Borrowed; may be nullptr.
  runner::ScenarioMemoCache* cache = nullptr;
  /// Run on this persistent JobQueue instead of a one-shot runner; its
  /// workers and cache supersede `jobs`/`cache`.  Borrowed; may be nullptr.
  runner::JobQueue* queue = nullptr;
};

/// One (mode, MTBF) point.  mtbfSeconds == 0 marks the fault-free baseline.
struct ReliabilityPoint {
  engine::DataMode mode = engine::DataMode::Regular;
  double mtbfSeconds = 0.0;
  double makespanSeconds = 0.0;
  std::size_t processorCrashes = 0;
  std::size_t taskRetries = 0;
  std::size_t tasksFailed = 0;
  std::size_t tasksAbandoned = 0;
  double wastedCpuSeconds = 0.0;
  bool completed = true;  ///< Every task finished (no exhausted budgets).

  Money cpuCost;      ///< Usage-billed: includes wasted attempt time.
  Money storageCost;
  Money transferCost;  ///< In + out; remote I/O re-staging shows up here.
  Money totalCost;
  Money faultFreeTotal;  ///< The same mode's baseline total.

  /// Fractional cost overhead vs. the fault-free run of the same mode.
  double costOverheadFraction() const {
    return faultFreeTotal.value() > 0.0
               ? (totalCost - faultFreeTotal).value() / faultFreeTotal.value()
               : 0.0;
  }
};

/// Run the sweep: for each of the three modes (RemoteIO, Regular,
/// DynamicCleanup, in that order), one fault-free baseline row followed by
/// one row per MTBF in `config.mtbfSeconds`.  All knobs — including the
/// base engine config, runner `jobs` and telemetry `observer` — live on
/// the config struct.
std::vector<ReliabilityPoint> reliabilitySweep(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const ReliabilityConfig& config);

/// \deprecated Positional base; set ReliabilityConfig::base instead.
[[deprecated("set ReliabilityConfig::base instead of passing it alongside")]]
inline std::vector<ReliabilityPoint> reliabilitySweep(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const ReliabilityConfig& config, engine::EngineConfig base) {
  ReliabilityConfig merged = config;
  merged.base = base;
  return reliabilitySweep(wf, pricing, merged);
}

Table reliabilityTable(const std::vector<ReliabilityPoint>& points);

}  // namespace mcsim::analysis
