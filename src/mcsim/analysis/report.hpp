// Shared table renderers: every bench binary prints the same figure the
// same way, with optional "paper" anchor columns for side-by-side
// comparison in EXPERIMENTS.md.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mcsim/analysis/economics.hpp"
#include "mcsim/analysis/experiments.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/util/table.hpp"

namespace mcsim::analysis {

/// Anchor values quoted in the paper for one provisioning-sweep row.
struct PaperAnchor {
  int processors = 0;
  std::string note;  ///< e.g. "paper: $0.60, 5.5 h".
};

Table provisioningTable(const std::vector<ProvisioningPoint>& points,
                        const std::vector<PaperAnchor>& anchors = {});

Table dataModeTable(const std::vector<DataModeMetrics>& rows);

Table ccrTable(const std::vector<CcrPoint>& points);

/// Fig 10: one row per (workflow, mode) with CPU vs DM cost.
struct CpuVsDmRow {
  std::string workflow;
  engine::DataMode mode;
  Money cpuCost;
  Money dmCost;
  Money totalCost;
};
Table cpuVsDmTable(const std::vector<CpuVsDmRow>& rows);

Table archiveEconomicsTable(const ArchiveEconomics& e);

Table archivalDecisionTable(const std::vector<ArchivalDecision>& decisions,
                            const std::vector<std::string>& labels);

/// Render a money value as the tables do (exposed for tests).
std::string moneyCell(Money m);

}  // namespace mcsim::analysis
