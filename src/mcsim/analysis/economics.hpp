// Closed-form service economics: the arithmetic of Questions 2b and 3.
//
// These are deliberately analytic (the paper computes them by hand from the
// simulated per-request costs): archive-hosting break-even, whole-sky
// campaign cost, and the archive-the-mosaic-or-recompute decision.
#pragma once

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/util/units.hpp"

namespace mcsim::analysis {

/// Question 2b: is hosting a large input archive (2MASS: 12 TB) in the
/// cloud worth it, given it saves `onDemand - preStaged` per request?
struct ArchiveEconomics {
  Bytes archiveBytes;
  Money monthlyStorageCost;    ///< archive x storage rate per month.
  Money initialTransferCost;   ///< One-time cost of uploading the archive.
  Money requestCostPreStaged;  ///< Per-request cost with data in the cloud.
  Money requestCostOnDemand;   ///< Per-request cost staging data in.
  Money savingPerRequest;      ///< onDemand - preStaged.
  /// Requests per month needed for the saving to cover storage; infinity if
  /// the saving is non-positive.
  double breakEvenRequestsPerMonth;
};

ArchiveEconomics archiveBreakEven(Bytes archiveBytes,
                                  Money requestCostPreStaged,
                                  Money requestCostOnDemand,
                                  const cloud::Pricing& pricing);

/// Question 3 (second part): store a computed mosaic, or recompute it on
/// demand?  "For the cost of 56 cents, this mosaic can be stored for 21.52
/// months."
struct ArchivalDecision {
  Money computeCost;       ///< CPU cost to regenerate the product.
  Bytes productBytes;      ///< Mosaic size.
  Money monthlyStorageCost;
  double breakEvenMonths;  ///< Store if a repeat request is likely sooner.
};

ArchivalDecision mosaicArchivalDecision(Money computeCost, Bytes productBytes,
                                        const cloud::Pricing& pricing);

/// Question 3 (first part): cost of mosaicking the whole sky as N plates.
struct SkyCampaignCost {
  int plateCount;
  Money perPlateOnDemand;   ///< Input data staged from outside the cloud.
  Money perPlatePreStaged;  ///< Input data already archived in the cloud.
  Money totalOnDemand;
  Money totalPreStaged;
};

SkyCampaignCost skyCampaign(int plateCount, Money perPlateOnDemand,
                            Money perPlatePreStaged);

/// The full sky is ~41,253 square degrees; the paper tiles it "with some
/// overlap" into 3,900 4-degree or 1,734 6-degree plates, which implies a
/// covered area of 62,400 square degrees (overlap factor ~1.513).
inline constexpr double kFullSkySquareDegrees = 41253.0;
inline constexpr double kPaperSkyCoverageSquareDegrees = 62400.0;

/// Number of square plates of the given edge length needed to tile the sky
/// at the paper's overlap.  Reproduces the paper's counts exactly:
/// skyPlateCount(4) == 3,900 and skyPlateCount(6) == 1,734.
int skyPlateCount(double plateDegrees,
                  double coverageSquareDegrees = kPaperSkyCoverageSquareDegrees);

/// Question 1's service arithmetic: cost of serving `requests` mosaics when
/// each runs on a fixed provisioned allocation ("providing 500 4-degree
/// square mosaics to astronomers would cost $4,500 using 1 processor...").
struct ServicePlan {
  int processors;
  int requests;
  Money perRequestCost;
  double perRequestMakespanSeconds;
  Money totalCost() const { return perRequestCost * requests; }
};

}  // namespace mcsim::analysis
