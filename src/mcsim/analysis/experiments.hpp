// Experiment drivers for every figure and table in the paper's evaluation.
//
// Each driver returns typed rows so the bench harness, the tests and the
// examples share one implementation of each experiment:
//   * provisioningSweep      — Figs 4, 5, 6 (Question 1)
//   * dataModeComparison     — Figs 7, 8, 9 (Question 2a)
//   * cpuVsDataManagement    — Fig 10
//   * ccrSweep               — Fig 11 (+ the CCR table via Workflow::ccr)
//
// Every sweep takes one designated-initializer-friendly config struct (the
// shape ReliabilityConfig established) and runs its scenarios through
// mcsim::runner, so `jobs` worker threads and a merged telemetry `observer`
// are available everywhere without another signature change.  `jobs == 0`
// is the serial legacy code path; any jobs value produces byte-identical
// points (see DESIGN.md "Concurrency model").  The old positional
// signatures survive as [[deprecated]] inline wrappers.
#pragma once

#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::runner {
class JobQueue;
class ScenarioMemoCache;
}

namespace mcsim::analysis {

/// One point of the Question-1 sweep: P processors provisioned for the
/// whole run, Regular-mode execution, storage shown with and without
/// cleanup (the paired DynamicCleanup run).
struct ProvisioningPoint {
  int processors = 0;
  double makespanSeconds = 0.0;
  Money cpuCost;             ///< processors x makespan x rate.
  Money storageCost;         ///< Without cleanup.
  Money storageCleanupCost;  ///< With cleanup.
  Money transferCost;        ///< In + out; independent of processors.
  /// Paper's plotted total: CPU + transfer + storage *without* cleanup.
  Money totalCost;
  double utilization = 0.0;
};

/// The paper's geometric progression 1..128.
std::vector<int> defaultProcessorLadder();

struct ProvisioningSweepConfig {
  /// Processor counts to sweep; empty = defaultProcessorLadder().
  std::vector<int> processorCounts;
  /// Every engine knob except mode and processors.
  engine::EngineConfig base;
  cloud::BillingGranularity granularity = cloud::BillingGranularity::PerSecond;
  /// Runner worker threads; 0 = serial (the exact legacy code path).
  int jobs = 0;
  /// Observes every scenario; streams merge deterministically in sweep
  /// order regardless of jobs.  Borrowed; may be nullptr.
  obs::Sink* observer = nullptr;
  /// Optional scenario memo cache (runner/memo.hpp): repeated points — the
  /// paired cleanup runs at the same ladder rung, or whole re-sweeps from a
  /// planner — are served without re-simulation.  Borrowed; may be nullptr.
  runner::ScenarioMemoCache* cache = nullptr;
  /// Run on this persistent JobQueue instead of a one-shot runner; its
  /// workers and cache supersede `jobs`/`cache`.  Borrowed; may be nullptr.
  runner::JobQueue* queue = nullptr;
};

/// Run the Question-1 sweep described by `config`.
std::vector<ProvisioningPoint> provisioningSweep(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const ProvisioningSweepConfig& config = {});

/// \deprecated Positional form; use the ProvisioningSweepConfig overload.
[[deprecated("use provisioningSweep(wf, pricing, ProvisioningSweepConfig)")]]
inline std::vector<ProvisioningPoint> provisioningSweep(
    const dag::Workflow& wf, const std::vector<int>& processorCounts,
    const cloud::Pricing& pricing, engine::EngineConfig base = {},
    cloud::BillingGranularity granularity =
        cloud::BillingGranularity::PerSecond) {
  ProvisioningSweepConfig config;
  config.processorCounts = processorCounts;
  config.base = base;
  config.granularity = granularity;
  return provisioningSweep(wf, pricing, config);
}

/// One Question-2a row: metrics of a single data-management mode with
/// resources billed by usage and enough processors for full parallelism.
struct DataModeMetrics {
  engine::DataMode mode = engine::DataMode::Regular;
  double makespanSeconds = 0.0;
  double storageGBHours = 0.0;
  Bytes bytesIn;
  Bytes bytesOut;
  Money storageCost;
  Money transferInCost;
  Money transferOutCost;
  Money cpuCost;  ///< Usage-billed; invariant across modes (Fig 10).

  Money dataManagementCost() const {
    return storageCost + transferInCost + transferOutCost;
  }
  Money totalCost() const { return dataManagementCost() + cpuCost; }
};

struct DataModeComparisonConfig {
  /// Every engine knob except mode and processors.
  engine::EngineConfig base;
  /// > 0 forces a processor count; 0 = the workflow's max parallelism
  /// ("the requests can run at their full level of parallelism", §4 Q2).
  int processorOverride = 0;
  /// Runner worker threads; 0 = serial (the exact legacy code path).
  int jobs = 0;
  obs::Sink* observer = nullptr;
  /// Optional scenario memo cache; see ProvisioningSweepConfig::cache.
  runner::ScenarioMemoCache* cache = nullptr;
  /// Optional persistent JobQueue; see ProvisioningSweepConfig::queue.
  runner::JobQueue* queue = nullptr;
};

/// Run all three modes (RemoteIO, Regular, DynamicCleanup, in that order).
/// No default argument: a defaulted config would make 2-argument calls
/// ambiguous against the deprecated positional overload below.
std::vector<DataModeMetrics> dataModeComparison(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const DataModeComparisonConfig& config);

/// \deprecated Positional form; use the DataModeComparisonConfig overload.
[[deprecated(
    "use dataModeComparison(wf, pricing, DataModeComparisonConfig)")]]
inline std::vector<DataModeMetrics> dataModeComparison(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    engine::EngineConfig base = {}, int processorOverride = 0) {
  DataModeComparisonConfig config;
  config.base = base;
  config.processorOverride = processorOverride;
  return dataModeComparison(wf, pricing, config);
}

/// One Fig-11 point: the 1-degree workflow rescaled to `ccr`, run on a
/// fixed provisioned processor count (the paper uses 8).
struct CcrPoint {
  double ccr = 0.0;
  double makespanSeconds = 0.0;
  Money cpuCost;             ///< Provisioned (8 procs x makespan).
  Money storageCost;         ///< Without cleanup.
  Money storageCleanupCost;  ///< With cleanup.
  Money transferCost;
  Money totalCost;           ///< CPU + transfer + storage without cleanup.
};

struct CcrSweepConfig {
  std::vector<double> ccrTargets;
  int processors = 8;  ///< Provisioned count; the paper's compromise.
  /// Every engine knob except mode and processors.
  engine::EngineConfig base;
  /// Runner worker threads; 0 = serial (the exact legacy code path).
  int jobs = 0;
  obs::Sink* observer = nullptr;
  /// Optional scenario memo cache; see ProvisioningSweepConfig::cache.
  runner::ScenarioMemoCache* cache = nullptr;
  /// Optional persistent JobQueue; see ProvisioningSweepConfig::queue.
  runner::JobQueue* queue = nullptr;
};

std::vector<CcrPoint> ccrSweep(const dag::Workflow& wf,
                               const cloud::Pricing& pricing,
                               const CcrSweepConfig& config);

/// \deprecated Positional form; use the CcrSweepConfig overload.
[[deprecated("use ccrSweep(wf, pricing, CcrSweepConfig)")]]
inline std::vector<CcrPoint> ccrSweep(const dag::Workflow& wf,
                                      const std::vector<double>& ccrTargets,
                                      int processors,
                                      const cloud::Pricing& pricing,
                                      engine::EngineConfig base = {}) {
  CcrSweepConfig config;
  config.ccrTargets = ccrTargets;
  config.processors = processors;
  config.base = base;
  return ccrSweep(wf, pricing, config);
}

}  // namespace mcsim::analysis
