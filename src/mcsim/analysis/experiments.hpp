// Experiment drivers for every figure and table in the paper's evaluation.
//
// Each driver returns typed rows so the bench harness, the tests and the
// examples share one implementation of each experiment:
//   * provisioningSweep      — Figs 4, 5, 6 (Question 1)
//   * dataModeComparison     — Figs 7, 8, 9 (Question 2a)
//   * cpuVsDataManagement    — Fig 10
//   * ccrSweep               — Fig 11 (+ the CCR table via Workflow::ccr)
#pragma once

#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::analysis {

/// One point of the Question-1 sweep: P processors provisioned for the
/// whole run, Regular-mode execution, storage shown with and without
/// cleanup (the paired DynamicCleanup run).
struct ProvisioningPoint {
  int processors = 0;
  double makespanSeconds = 0.0;
  Money cpuCost;             ///< processors x makespan x rate.
  Money storageCost;         ///< Without cleanup.
  Money storageCleanupCost;  ///< With cleanup.
  Money transferCost;        ///< In + out; independent of processors.
  /// Paper's plotted total: CPU + transfer + storage *without* cleanup.
  Money totalCost;
  double utilization = 0.0;
};

/// Run the sweep for each processor count in `processorCounts`.
/// `base` supplies every configuration knob except mode and processors.
std::vector<ProvisioningPoint> provisioningSweep(
    const dag::Workflow& wf, const std::vector<int>& processorCounts,
    const cloud::Pricing& pricing, engine::EngineConfig base = {},
    cloud::BillingGranularity granularity = cloud::BillingGranularity::PerSecond);

/// The paper's geometric progression 1..128.
std::vector<int> defaultProcessorLadder();

/// One Question-2a row: metrics of a single data-management mode with
/// resources billed by usage and enough processors for full parallelism.
struct DataModeMetrics {
  engine::DataMode mode = engine::DataMode::Regular;
  double makespanSeconds = 0.0;
  double storageGBHours = 0.0;
  Bytes bytesIn;
  Bytes bytesOut;
  Money storageCost;
  Money transferInCost;
  Money transferOutCost;
  Money cpuCost;  ///< Usage-billed; invariant across modes (Fig 10).

  Money dataManagementCost() const {
    return storageCost + transferInCost + transferOutCost;
  }
  Money totalCost() const { return dataManagementCost() + cpuCost; }
};

/// Run all three modes (RemoteIO, Regular, DynamicCleanup, in that order)
/// at full parallelism.  `processorOverride` > 0 forces a processor count;
/// otherwise the workflow's max parallelism is used ("the requests can run
/// at their full level of parallelism", §4 Question 2).
std::vector<DataModeMetrics> dataModeComparison(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    engine::EngineConfig base = {}, int processorOverride = 0);

/// One Fig-11 point: the 1-degree workflow rescaled to `ccr`, run on a
/// fixed provisioned processor count (the paper uses 8).
struct CcrPoint {
  double ccr = 0.0;
  double makespanSeconds = 0.0;
  Money cpuCost;             ///< Provisioned (8 procs x makespan).
  Money storageCost;         ///< Without cleanup.
  Money storageCleanupCost;  ///< With cleanup.
  Money transferCost;
  Money totalCost;           ///< CPU + transfer + storage without cleanup.
};

std::vector<CcrPoint> ccrSweep(const dag::Workflow& wf,
                               const std::vector<double>& ccrTargets,
                               int processors, const cloud::Pricing& pricing,
                               engine::EngineConfig base = {});

}  // namespace mcsim::analysis
