// Service-operator economics: a month in the life of a mosaic service.
//
// Questions 2b and 3 ask whether an application serving a community should
// (a) stage data per request, (b) host its input archive in the cloud, and
// (c) archive popular products instead of recomputing them.  This module
// plays a stochastic request stream against those three operating policies
// and produces the monthly bill for each, turning the paper's break-even
// arithmetic into a direct comparison under a concrete workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"

namespace mcsim::analysis {

/// Per-request costs for one product size (e.g. one mosaic size), typically
/// derived from simulation via `profileFromWorkflow`.
struct RequestProfile {
  std::string name;
  Money costOnDemand;    ///< Run the workflow, staging inputs from outside.
  Money costPreStaged;   ///< Run the workflow with inputs already in cloud.
  Money costServeStored; ///< Ship the archived product (transfer-out only).
  Bytes productBytes;    ///< Size of the archived product.
  double weight = 1.0;   ///< Relative request frequency.
};

/// Derive a profile from a simulated Regular-mode run of `wf` (usage
/// billing, full parallelism): onDemand = total; preStaged = total minus
/// stage-in; serveStored = transfer-out of `productBytes`.
RequestProfile profileFromWorkflow(const dag::Workflow& wf,
                                   Bytes productBytes,
                                   const cloud::Pricing& pricing);

struct ServiceWorkloadParams {
  double requestsPerDay = 40.0;
  double horizonSeconds = kSecondsPerMonth;
  std::uint64_t seed = 42;
  /// Fraction of requests that target one of `popularRegionCount` repeating
  /// regions; the rest are one-off (never cache-hit).
  double popularFraction = 0.7;
  int popularRegionCount = 25;
  /// Cached products are assumed resident for this fraction of the horizon
  /// on average (they are created throughout the month).
  double cacheResidencyFraction = 0.5;
};

struct PolicyCost {
  std::string policy;
  Money total;
  Money perRequest(std::size_t requests) const {
    return requests == 0 ? Money::zero()
                         : total / static_cast<double>(requests);
  }
};

struct ServiceCostReport {
  std::size_t requestCount = 0;
  std::size_t cacheHits = 0;
  Money archiveMonthlyCost;        ///< Storage fee for the input archive.
  PolicyCost recompute;            ///< Stage inputs per request, recompute.
  PolicyCost archiveInCloud;       ///< Host the archive, recompute products.
  PolicyCost archivePlusCache;     ///< Host archive + serve repeats from
                                   ///< stored products.
  Bytes cachedProductBytes;        ///< Products resident at month end.

  /// The cheapest of the three policies.
  const PolicyCost& best() const;
};

/// Simulate one billing horizon of Poisson-arriving requests drawn from
/// `profiles` (by weight) and price the three policies.  Deterministic for
/// a fixed seed.
ServiceCostReport simulateServiceMonth(const std::vector<RequestProfile>& profiles,
                                       Bytes archiveBytes,
                                       const cloud::Pricing& pricing,
                                       const ServiceWorkloadParams& params = {});

}  // namespace mcsim::analysis
