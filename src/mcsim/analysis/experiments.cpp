#include "mcsim/analysis/experiments.hpp"

#include <stdexcept>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/montage/ccr.hpp"

namespace mcsim::analysis {

std::vector<int> defaultProcessorLadder() {
  return {1, 2, 4, 8, 16, 32, 64, 128};
}

std::vector<ProvisioningPoint> provisioningSweep(
    const dag::Workflow& wf, const std::vector<int>& processorCounts,
    const cloud::Pricing& pricing, engine::EngineConfig base,
    cloud::BillingGranularity granularity) {
  std::vector<ProvisioningPoint> points;
  points.reserve(processorCounts.size());
  for (int p : processorCounts) {
    engine::EngineConfig cfg = base;
    cfg.processors = p;
    cfg.mode = engine::DataMode::Regular;
    const engine::ExecutionResult regular = engine::simulateWorkflow(wf, cfg);
    cfg.mode = engine::DataMode::DynamicCleanup;
    const engine::ExecutionResult cleanup = engine::simulateWorkflow(wf, cfg);

    const cloud::CostBreakdown cost = engine::computeCost(
        regular, pricing, cloud::CpuBillingMode::Provisioned, granularity);

    ProvisioningPoint pt;
    pt.processors = p;
    pt.makespanSeconds = regular.makespanSeconds;
    pt.cpuCost = cost.cpu;
    pt.storageCost = cost.storage;
    pt.storageCleanupCost = pricing.storageCost(cleanup.storageByteSeconds);
    pt.transferCost = cost.transfer();
    pt.totalCost = cost.total();
    pt.utilization = regular.utilization();
    points.push_back(pt);
  }
  return points;
}

std::vector<DataModeMetrics> dataModeComparison(const dag::Workflow& wf,
                                                const cloud::Pricing& pricing,
                                                engine::EngineConfig base,
                                                int processorOverride) {
  const int processors =
      processorOverride > 0
          ? processorOverride
          : static_cast<int>(std::max<std::size_t>(1, dag::maxParallelism(wf)));

  std::vector<DataModeMetrics> rows;
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    engine::EngineConfig cfg = base;
    cfg.mode = mode;
    cfg.processors = processors;
    const engine::ExecutionResult r = engine::simulateWorkflow(wf, cfg);
    const cloud::CostBreakdown cost =
        engine::computeCost(r, pricing, cloud::CpuBillingMode::Usage);

    DataModeMetrics row;
    row.mode = mode;
    row.makespanSeconds = r.makespanSeconds;
    row.storageGBHours = r.storageGBHours();
    row.bytesIn = r.bytesIn;
    row.bytesOut = r.bytesOut;
    row.storageCost = cost.storage;
    row.transferInCost = cost.transferIn;
    row.transferOutCost = cost.transferOut;
    row.cpuCost = cost.cpu;
    rows.push_back(row);
  }
  return rows;
}

std::vector<CcrPoint> ccrSweep(const dag::Workflow& wf,
                               const std::vector<double>& ccrTargets,
                               int processors, const cloud::Pricing& pricing,
                               engine::EngineConfig base) {
  if (processors < 1)
    throw std::invalid_argument("ccrSweep: processors must be >= 1");
  std::vector<CcrPoint> points;
  points.reserve(ccrTargets.size());
  for (double target : ccrTargets) {
    dag::Workflow scaled = wf;
    montage::rescaleToCcr(scaled, target, base.linkBandwidthBytesPerSec);

    engine::EngineConfig cfg = base;
    cfg.processors = processors;
    cfg.mode = engine::DataMode::Regular;
    const engine::ExecutionResult regular =
        engine::simulateWorkflow(scaled, cfg);
    cfg.mode = engine::DataMode::DynamicCleanup;
    const engine::ExecutionResult cleanup =
        engine::simulateWorkflow(scaled, cfg);

    const cloud::CostBreakdown cost = engine::computeCost(
        regular, pricing, cloud::CpuBillingMode::Provisioned);

    CcrPoint pt;
    pt.ccr = target;
    pt.makespanSeconds = regular.makespanSeconds;
    pt.cpuCost = cost.cpu;
    pt.storageCost = cost.storage;
    pt.storageCleanupCost = pricing.storageCost(cleanup.storageByteSeconds);
    pt.transferCost = cost.transfer();
    pt.totalCost = cost.total();
    points.push_back(pt);
  }
  return points;
}

}  // namespace mcsim::analysis
