#include "mcsim/analysis/experiments.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/montage/ccr.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::analysis {
namespace {

/// The shared scenario-batch shape of every figure driver: specs are listed
/// in the exact order the old serial loops visited them, so a jobs==0 run
/// is the legacy code path and any jobs>0 run merges to identical output.
runner::RunnerOptions runnerOptions(int jobs, obs::Sink* observer,
                                    runner::ScenarioMemoCache* cache) {
  runner::RunnerOptions options;
  options.jobs = jobs;
  options.observer = observer;
  options.cache = cache;
  return options;
}

runner::ScenarioSpec makeSpec(const dag::Workflow& wf,
                              const engine::EngineConfig& base,
                              engine::DataMode mode, int processors,
                              std::string label) {
  runner::ScenarioSpec spec;
  spec.workflow = &wf;
  spec.config = base;
  spec.config.mode = mode;
  spec.config.processors = processors;
  spec.label = std::move(label);
  return spec;
}

}  // namespace

std::vector<int> defaultProcessorLadder() {
  return {1, 2, 4, 8, 16, 32, 64, 128};
}

std::vector<ProvisioningPoint> provisioningSweep(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const ProvisioningSweepConfig& config) {
  const std::vector<int> counts = config.processorCounts.empty()
                                      ? defaultProcessorLadder()
                                      : config.processorCounts;

  std::vector<runner::ScenarioSpec> specs;
  specs.reserve(counts.size() * 2);
  for (int p : counts) {
    const std::string prefix = "provisioning/p=" + std::to_string(p);
    specs.push_back(makeSpec(wf, config.base, engine::DataMode::Regular, p,
                             prefix + "/regular"));
    specs.push_back(makeSpec(wf, config.base, engine::DataMode::DynamicCleanup,
                             p, prefix + "/cleanup"));
  }
  const auto results = runner::runOnQueue(
      config.queue, specs,
      runnerOptions(config.jobs, config.observer, config.cache));

  std::vector<ProvisioningPoint> points;
  points.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const engine::ExecutionResult& regular = results[2 * i].result;
    const engine::ExecutionResult& cleanup = results[2 * i + 1].result;
    const cloud::CostBreakdown cost =
        engine::computeCost(regular, pricing, cloud::CpuBillingMode::Provisioned,
                            config.granularity);

    ProvisioningPoint pt;
    pt.processors = counts[i];
    pt.makespanSeconds = regular.makespanSeconds;
    pt.cpuCost = cost.cpu;
    pt.storageCost = cost.storage;
    pt.storageCleanupCost = pricing.storageCost(cleanup.storageByteSeconds);
    pt.transferCost = cost.transfer();
    pt.totalCost = cost.total();
    pt.utilization = regular.utilization();
    points.push_back(pt);
  }
  return points;
}

std::vector<DataModeMetrics> dataModeComparison(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const DataModeComparisonConfig& config) {
  const int processors =
      config.processorOverride > 0
          ? config.processorOverride
          : static_cast<int>(std::max<std::size_t>(1, dag::maxParallelism(wf)));

  std::vector<runner::ScenarioSpec> specs;
  specs.reserve(3);
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    specs.push_back(makeSpec(wf, config.base, mode, processors,
                             std::string("modes/") +
                                 engine::dataModeName(mode)));
  }
  const auto results = runner::runOnQueue(
      config.queue, specs,
      runnerOptions(config.jobs, config.observer, config.cache));

  std::vector<DataModeMetrics> rows;
  rows.reserve(results.size());
  for (const runner::ScenarioResult& scenario : results) {
    const engine::ExecutionResult& r = scenario.result;
    const cloud::CostBreakdown cost =
        engine::computeCost(r, pricing, cloud::CpuBillingMode::Usage);

    DataModeMetrics row;
    row.mode = r.mode;
    row.makespanSeconds = r.makespanSeconds;
    row.storageGBHours = r.storageGBHours();
    row.bytesIn = r.bytesIn;
    row.bytesOut = r.bytesOut;
    row.storageCost = cost.storage;
    row.transferInCost = cost.transferIn;
    row.transferOutCost = cost.transferOut;
    row.cpuCost = cost.cpu;
    rows.push_back(row);
  }
  return rows;
}

std::vector<CcrPoint> ccrSweep(const dag::Workflow& wf,
                               const cloud::Pricing& pricing,
                               const CcrSweepConfig& config) {
  if (config.processors < 1)
    throw std::invalid_argument("ccrSweep: processors must be >= 1");

  // Rescaled copies must outlive the batch; reserve keeps them stable.
  std::vector<dag::Workflow> scaled;
  scaled.reserve(config.ccrTargets.size());
  for (double target : config.ccrTargets) {
    dag::Workflow copy = wf;
    montage::rescaleToCcr(copy, target, config.base.linkBandwidthBytesPerSec);
    scaled.push_back(std::move(copy));
  }

  std::vector<runner::ScenarioSpec> specs;
  specs.reserve(scaled.size() * 2);
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    const std::string prefix =
        "ccr/target=" + std::to_string(config.ccrTargets[i]);
    specs.push_back(makeSpec(scaled[i], config.base,
                             engine::DataMode::Regular, config.processors,
                             prefix + "/regular"));
    specs.push_back(makeSpec(scaled[i], config.base,
                             engine::DataMode::DynamicCleanup,
                             config.processors, prefix + "/cleanup"));
  }
  const auto results = runner::runOnQueue(
      config.queue, specs,
      runnerOptions(config.jobs, config.observer, config.cache));

  std::vector<CcrPoint> points;
  points.reserve(config.ccrTargets.size());
  for (std::size_t i = 0; i < config.ccrTargets.size(); ++i) {
    const engine::ExecutionResult& regular = results[2 * i].result;
    const engine::ExecutionResult& cleanup = results[2 * i + 1].result;
    const cloud::CostBreakdown cost = engine::computeCost(
        regular, pricing, cloud::CpuBillingMode::Provisioned);

    CcrPoint pt;
    pt.ccr = config.ccrTargets[i];
    pt.makespanSeconds = regular.makespanSeconds;
    pt.cpuCost = cost.cpu;
    pt.storageCost = cost.storage;
    pt.storageCleanupCost = pricing.storageCost(cleanup.storageByteSeconds);
    pt.transferCost = cost.transfer();
    pt.totalCost = cost.total();
    points.push_back(pt);
  }
  return points;
}

}  // namespace mcsim::analysis
