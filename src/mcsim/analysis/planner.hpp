// Provisioning planner: turns the Question-1 trade-off ("a user who is also
// concerned about the execution time faces a trade-off between minimizing
// the execution cost and minimizing the execution time") into an
// actionable recommendation under a deadline and/or budget.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "mcsim/analysis/experiments.hpp"
#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::analysis {

struct PlannerGoal {
  /// Maximum acceptable makespan; infinity = don't care.
  double deadlineSeconds = std::numeric_limits<double>::infinity();
  /// Maximum acceptable total cost per run; infinity = don't care.
  Money budget{std::numeric_limits<double>::infinity()};
};

struct Recommendation {
  bool feasible = false;
  ProvisioningPoint choice;                 ///< Meaningful when feasible.
  std::vector<ProvisioningPoint> frontier;  ///< Pareto-optimal (time, cost)
                                            ///< points of the sweep.
  std::string rationale;
};

/// Sweep the configured processor ladder (default 1..128 when
/// `sweep.processorCounts` is empty) and pick the cheapest configuration
/// that satisfies the goal; ties break toward the faster one.  When nothing
/// satisfies the goal, `feasible` is false and `choice` is the point that
/// comes closest to the deadline.  `sweep.jobs` parallelizes the ladder.
Recommendation recommendProvisioning(const dag::Workflow& wf,
                                     const cloud::Pricing& pricing,
                                     const PlannerGoal& goal,
                                     const ProvisioningSweepConfig& sweep = {});

/// \deprecated Positional form; use the ProvisioningSweepConfig overload.
[[deprecated(
    "pass counts/base via ProvisioningSweepConfig to recommendProvisioning")]]
inline Recommendation recommendProvisioning(const dag::Workflow& wf,
                                            const cloud::Pricing& pricing,
                                            const PlannerGoal& goal,
                                            std::vector<int> processorCounts,
                                            engine::EngineConfig base = {}) {
  ProvisioningSweepConfig sweep;
  sweep.processorCounts = std::move(processorCounts);
  sweep.base = base;
  return recommendProvisioning(wf, pricing, goal, sweep);
}

/// The non-dominated subset of a sweep: keep a point unless another is both
/// cheaper and faster.
std::vector<ProvisioningPoint> paretoFrontier(
    std::vector<ProvisioningPoint> points);

}  // namespace mcsim::analysis
