#include "mcsim/analysis/report.hpp"

#include <cmath>
#include <cstdio>

#include "mcsim/engine/metrics.hpp"

namespace mcsim::analysis {
namespace {

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

std::string moneyCell(Money m) {
  // Four decimals: storage costs are fractions of a cent and the paper's
  // log-scale plots make them discernible.
  char buf[64];
  std::snprintf(buf, sizeof buf, "$%.4f", m.value());
  return buf;
}

Table provisioningTable(const std::vector<ProvisioningPoint>& points,
                        const std::vector<PaperAnchor>& anchors) {
  Table t({"procs", "makespan", "cpu cost", "storage", "storage(C)",
           "transfer", "total", "util", "paper anchor"});
  for (const ProvisioningPoint& p : points) {
    std::string anchor;
    for (const PaperAnchor& a : anchors)
      if (a.processors == p.processors) anchor = a.note;
    t.addRow({std::to_string(p.processors), formatDuration(p.makespanSeconds),
              moneyCell(p.cpuCost), moneyCell(p.storageCost),
              moneyCell(p.storageCleanupCost), moneyCell(p.transferCost),
              moneyCell(p.totalCost), fixed(p.utilization * 100.0, 1) + "%",
              anchor});
  }
  return t;
}

Table dataModeTable(const std::vector<DataModeMetrics>& rows) {
  Table t({"mode", "makespan", "storage GB-h", "data in", "data out",
           "storage $", "in $", "out $", "DM $", "cpu $", "total $"});
  for (const DataModeMetrics& r : rows) {
    t.addRow({engine::dataModeName(r.mode), formatDuration(r.makespanSeconds),
              fixed(r.storageGBHours, 3), formatBytes(r.bytesIn),
              formatBytes(r.bytesOut), moneyCell(r.storageCost),
              moneyCell(r.transferInCost), moneyCell(r.transferOutCost),
              moneyCell(r.dataManagementCost()), moneyCell(r.cpuCost),
              moneyCell(r.totalCost())});
  }
  return t;
}

Table ccrTable(const std::vector<CcrPoint>& points) {
  Table t({"CCR", "makespan", "cpu cost", "storage", "storage(C)", "transfer",
           "total"});
  for (const CcrPoint& p : points) {
    t.addRow({fixed(p.ccr, 3), formatDuration(p.makespanSeconds),
              moneyCell(p.cpuCost), moneyCell(p.storageCost),
              moneyCell(p.storageCleanupCost), moneyCell(p.transferCost),
              moneyCell(p.totalCost)});
  }
  return t;
}

Table cpuVsDmTable(const std::vector<CpuVsDmRow>& rows) {
  Table t({"workflow", "mode", "cpu $", "DM $", "total $"});
  for (const CpuVsDmRow& r : rows) {
    t.addRow({r.workflow, engine::dataModeName(r.mode), moneyCell(r.cpuCost),
              moneyCell(r.dmCost), moneyCell(r.totalCost)});
  }
  return t;
}

Table archiveEconomicsTable(const ArchiveEconomics& e) {
  Table t({"quantity", "value"}, {Align::Left, Align::Right});
  t.addRow({"archive size", formatBytes(e.archiveBytes)});
  t.addRow({"monthly storage cost", formatMoney(e.monthlyStorageCost)});
  t.addRow({"initial upload cost", formatMoney(e.initialTransferCost)});
  t.addRow({"request cost, data pre-staged", moneyCell(e.requestCostPreStaged)});
  t.addRow({"request cost, data on demand", moneyCell(e.requestCostOnDemand)});
  t.addRow({"saving per request", moneyCell(e.savingPerRequest)});
  t.addRow({"break-even requests/month",
            std::isfinite(e.breakEvenRequestsPerMonth)
                ? fixed(e.breakEvenRequestsPerMonth, 0)
                : "never"});
  return t;
}

Table archivalDecisionTable(const std::vector<ArchivalDecision>& decisions,
                            const std::vector<std::string>& labels) {
  Table t({"mosaic", "compute cost", "size", "storage $/month",
           "break-even months"});
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const ArchivalDecision& d = decisions[i];
    t.addRow({i < labels.size() ? labels[i] : std::to_string(i),
              moneyCell(d.computeCost), formatBytes(d.productBytes),
              moneyCell(d.monthlyStorageCost), fixed(d.breakEvenMonths, 2)});
  }
  return t;
}

}  // namespace mcsim::analysis
