#include "mcsim/analysis/reliability.hpp"

#include <cstdio>
#include <stdexcept>

#include "mcsim/analysis/report.hpp"
#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/metrics.hpp"

namespace mcsim::analysis {
namespace {

ReliabilityPoint runPoint(const dag::Workflow& wf,
                          const cloud::Pricing& pricing,
                          const engine::EngineConfig& cfg, double mtbf) {
  const engine::ExecutionResult r = engine::simulateWorkflow(wf, cfg);
  const cloud::CostBreakdown cost =
      engine::computeCost(r, pricing, cloud::CpuBillingMode::Usage);

  ReliabilityPoint pt;
  pt.mode = cfg.mode;
  pt.mtbfSeconds = mtbf;
  pt.makespanSeconds = r.makespanSeconds;
  pt.processorCrashes = r.processorCrashes;
  pt.taskRetries = r.taskRetries;
  pt.tasksFailed = r.tasksFailed;
  pt.tasksAbandoned = r.tasksAbandoned;
  pt.wastedCpuSeconds = r.wastedCpuSeconds;
  pt.completed = r.completed();
  pt.cpuCost = cost.cpu;
  pt.storageCost = cost.storage;
  pt.transferCost = cost.transfer();
  pt.totalCost = cost.total();
  return pt;
}

}  // namespace

std::vector<ReliabilityPoint> reliabilitySweep(const dag::Workflow& wf,
                                               const cloud::Pricing& pricing,
                                               const ReliabilityConfig& config,
                                               engine::EngineConfig base) {
  for (double mtbf : config.mtbfSeconds)
    if (mtbf <= 0.0)
      throw std::invalid_argument("reliabilitySweep: MTBF must be positive");
  config.retry.validate();

  const int processors =
      config.processorOverride > 0
          ? config.processorOverride
          : static_cast<int>(std::max<std::size_t>(1, dag::maxParallelism(wf)));

  std::vector<ReliabilityPoint> points;
  points.reserve(3 * (config.mtbfSeconds.size() + 1));
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    engine::EngineConfig cfg = base;
    cfg.mode = mode;
    cfg.processors = processors;

    // Fault-free baseline: the denominator for every overhead figure.
    cfg.faults = {};
    ReliabilityPoint baseline = runPoint(wf, pricing, cfg, 0.0);
    baseline.faultFreeTotal = baseline.totalCost;
    points.push_back(baseline);

    for (double mtbf : config.mtbfSeconds) {
      cfg.faults = base.faults;
      cfg.faults.processor.mtbfSeconds = mtbf;
      cfg.faults.retry = config.retry;
      cfg.faults.seed = config.faultSeed;
      ReliabilityPoint pt = runPoint(wf, pricing, cfg, mtbf);
      pt.faultFreeTotal = baseline.totalCost;
      points.push_back(pt);
    }
  }
  return points;
}

Table reliabilityTable(const std::vector<ReliabilityPoint>& points) {
  Table t({"mode", "MTBF", "makespan", "crashes", "retries", "failed",
           "wasted cpu", "cpu $", "storage $", "transfer $", "total $",
           "overhead"});
  for (const ReliabilityPoint& p : points) {
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.1f%%",
                  p.costOverheadFraction() * 100.0);
    std::string failed = std::to_string(p.tasksFailed);
    if (p.tasksAbandoned > 0)
      failed += "+" + std::to_string(p.tasksAbandoned);
    t.addRow({engine::dataModeName(p.mode),
              p.mtbfSeconds > 0.0 ? formatDuration(p.mtbfSeconds) : "-",
              formatDuration(p.makespanSeconds),
              std::to_string(p.processorCrashes),
              std::to_string(p.taskRetries), failed,
              formatDuration(p.wastedCpuSeconds), moneyCell(p.cpuCost),
              moneyCell(p.storageCost), moneyCell(p.transferCost),
              moneyCell(p.totalCost),
              p.mtbfSeconds > 0.0 ? overhead : "-"});
  }
  return t;
}

}  // namespace mcsim::analysis
