#include "mcsim/analysis/reliability.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "mcsim/analysis/report.hpp"
#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::analysis {
namespace {

ReliabilityPoint toPoint(const engine::ExecutionResult& r,
                         const cloud::Pricing& pricing, double mtbf) {
  const cloud::CostBreakdown cost =
      engine::computeCost(r, pricing, cloud::CpuBillingMode::Usage);

  ReliabilityPoint pt;
  pt.mode = r.mode;
  pt.mtbfSeconds = mtbf;
  pt.makespanSeconds = r.makespanSeconds;
  pt.processorCrashes = r.processorCrashes;
  pt.taskRetries = r.taskRetries;
  pt.tasksFailed = r.tasksFailed;
  pt.tasksAbandoned = r.tasksAbandoned;
  pt.wastedCpuSeconds = r.wastedCpuSeconds;
  pt.completed = r.completed();
  pt.cpuCost = cost.cpu;
  pt.storageCost = cost.storage;
  pt.transferCost = cost.transfer();
  pt.totalCost = cost.total();
  return pt;
}

}  // namespace

std::vector<ReliabilityPoint> reliabilitySweep(
    const dag::Workflow& wf, const cloud::Pricing& pricing,
    const ReliabilityConfig& config) {
  for (double mtbf : config.mtbfSeconds)
    if (mtbf <= 0.0)
      throw std::invalid_argument("reliabilitySweep: MTBF must be positive");
  config.retry.validate();

  const int processors =
      config.processorOverride > 0
          ? config.processorOverride
          : static_cast<int>(std::max<std::size_t>(1, dag::maxParallelism(wf)));

  // Scenario order mirrors the legacy nested loops: per mode, the fault-free
  // baseline first (the denominator of every overhead figure), then one
  // scenario per MTBF.
  std::vector<runner::ScenarioSpec> specs;
  specs.reserve(3 * (config.mtbfSeconds.size() + 1));
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    runner::ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config = config.base;
    spec.config.mode = mode;
    spec.config.processors = processors;

    spec.config.faults = {};
    spec.label = std::string("reliability/") + engine::dataModeName(mode) +
                 "/baseline";
    specs.push_back(spec);

    for (double mtbf : config.mtbfSeconds) {
      spec.config.faults = config.base.faults;
      spec.config.faults.processor.mtbfSeconds = mtbf;
      spec.config.faults.retry = config.retry;
      spec.config.faults.seed = config.faultSeed;
      spec.label = std::string("reliability/") + engine::dataModeName(mode) +
                   "/mtbf=" + std::to_string(mtbf);
      specs.push_back(spec);
    }
  }

  runner::RunnerOptions options;
  options.jobs = config.jobs;
  options.observer = config.observer;
  options.cache = config.cache;
  const auto results = runner::runOnQueue(config.queue, specs, options);

  const std::size_t perMode = config.mtbfSeconds.size() + 1;
  std::vector<ReliabilityPoint> points;
  points.reserve(results.size());
  for (std::size_t m = 0; m < 3; ++m) {
    ReliabilityPoint baseline =
        toPoint(results[m * perMode].result, pricing, 0.0);
    baseline.faultFreeTotal = baseline.totalCost;
    points.push_back(baseline);

    for (std::size_t j = 0; j < config.mtbfSeconds.size(); ++j) {
      ReliabilityPoint pt = toPoint(results[m * perMode + 1 + j].result,
                                    pricing, config.mtbfSeconds[j]);
      pt.faultFreeTotal = baseline.totalCost;
      points.push_back(pt);
    }
  }
  return points;
}

Table reliabilityTable(const std::vector<ReliabilityPoint>& points) {
  Table t({"mode", "MTBF", "makespan", "crashes", "retries", "failed",
           "wasted cpu", "cpu $", "storage $", "transfer $", "total $",
           "overhead"});
  for (const ReliabilityPoint& p : points) {
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.1f%%",
                  p.costOverheadFraction() * 100.0);
    std::string failed = std::to_string(p.tasksFailed);
    if (p.tasksAbandoned > 0)
      failed += "+" + std::to_string(p.tasksAbandoned);
    t.addRow({engine::dataModeName(p.mode),
              p.mtbfSeconds > 0.0 ? formatDuration(p.mtbfSeconds) : "-",
              formatDuration(p.makespanSeconds),
              std::to_string(p.processorCrashes),
              std::to_string(p.taskRetries), failed,
              formatDuration(p.wastedCpuSeconds), moneyCell(p.cpuCost),
              moneyCell(p.storageCost), moneyCell(p.transferCost),
              moneyCell(p.totalCost),
              p.mtbfSeconds > 0.0 ? overhead : "-"});
  }
  return t;
}

}  // namespace mcsim::analysis
