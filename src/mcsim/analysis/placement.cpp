#include "mcsim/analysis/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcsim::analysis {

RequestShape shapeFromWorkflow(const dag::Workflow& wf) {
  RequestShape s;
  s.cpuSeconds = wf.totalRuntimeSeconds();
  s.inputBytes = wf.externalInputBytes();
  s.productBytes = wf.workflowOutputBytes();
  return s;
}

std::vector<PlacementPlan> comparePlacements(
    const RequestShape& shape, Bytes archiveBytes, double requestsPerMonth,
    const std::vector<cloud::Pricing>& providers) {
  if (providers.empty())
    throw std::invalid_argument("comparePlacements: no providers");
  if (requestsPerMonth < 0.0)
    throw std::invalid_argument("comparePlacements: negative request volume");

  std::vector<PlacementPlan> plans;
  for (const cloud::Pricing& compute : providers) {
    for (const cloud::Pricing& archive : providers) {
      PlacementPlan plan;
      plan.computeProvider = compute.providerName;
      plan.archiveProvider = archive.providerName;
      plan.colocated = compute.providerName == archive.providerName;

      plan.archiveMonthly =
          archive.storageCost(archiveBytes, kSecondsPerMonth);
      plan.computePerRequest = compute.cpuCost(shape.cpuSeconds);

      Money transfer;
      if (!plan.colocated) {
        // The archive provider charges egress, the compute provider ingress.
        transfer += archive.transferOutCost(shape.inputBytes);
        transfer += compute.transferInCost(shape.inputBytes);
      }
      // The product always leaves the compute provider for the user.
      transfer += compute.transferOutCost(shape.productBytes);
      plan.transferPerRequest = transfer;

      plan.monthlyTotal =
          plan.archiveMonthly +
          (plan.computePerRequest + plan.transferPerRequest) *
              requestsPerMonth;
      plans.push_back(plan);
    }
  }
  std::sort(plans.begin(), plans.end(),
            [](const PlacementPlan& a, const PlacementPlan& b) {
              if (a.monthlyTotal != b.monthlyTotal)
                return a.monthlyTotal < b.monthlyTotal;
              if (a.computeProvider != b.computeProvider)
                return a.computeProvider < b.computeProvider;
              return a.archiveProvider < b.archiveProvider;
            });
  return plans;
}

}  // namespace mcsim::analysis
