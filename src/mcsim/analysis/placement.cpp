#include "mcsim/analysis/placement.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "mcsim/analysis/report.hpp"
#include "mcsim/dag/algorithms.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::analysis {

RequestShape shapeFromWorkflow(const dag::Workflow& wf) {
  RequestShape s;
  s.cpuSeconds = wf.totalRuntimeSeconds();
  s.inputBytes = wf.externalInputBytes();
  s.productBytes = wf.workflowOutputBytes();
  return s;
}

std::vector<PlacementPlan> comparePlacements(
    const RequestShape& shape, Bytes archiveBytes, double requestsPerMonth,
    const std::vector<cloud::Pricing>& providers) {
  if (providers.empty())
    throw std::invalid_argument("comparePlacements: no providers");
  if (requestsPerMonth < 0.0)
    throw std::invalid_argument("comparePlacements: negative request volume");

  std::vector<PlacementPlan> plans;
  for (const cloud::Pricing& compute : providers) {
    for (const cloud::Pricing& archive : providers) {
      PlacementPlan plan;
      plan.computeProvider = compute.providerName;
      plan.archiveProvider = archive.providerName;
      plan.colocated = compute.providerName == archive.providerName;

      plan.archiveMonthly =
          archive.storageCost(archiveBytes, kSecondsPerMonth);
      plan.computePerRequest = compute.cpuCost(shape.cpuSeconds);

      Money transfer;
      if (!plan.colocated) {
        // The archive provider charges egress, the compute provider ingress.
        transfer += archive.transferOutCost(shape.inputBytes);
        transfer += compute.transferInCost(shape.inputBytes);
      }
      // The product always leaves the compute provider for the user.
      transfer += compute.transferOutCost(shape.productBytes);
      plan.transferPerRequest = transfer;

      plan.monthlyTotal =
          plan.archiveMonthly +
          (plan.computePerRequest + plan.transferPerRequest) *
              requestsPerMonth;
      plans.push_back(plan);
    }
  }
  std::sort(plans.begin(), plans.end(),
            [](const PlacementPlan& a, const PlacementPlan& b) {
              if (a.monthlyTotal != b.monthlyTotal)
                return a.monthlyTotal < b.monthlyTotal;
              if (a.computeProvider != b.computeProvider)
                return a.computeProvider < b.computeProvider;
              return a.archiveProvider < b.archiveProvider;
            });
  return plans;
}

// -- placement optimizer -----------------------------------------------------

namespace {

double perGBToPerByte(Money perGB) { return perGB.value() / kBytesPerGB; }

std::string formatSpeed(double speed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", speed);
  return buf;
}

/// Scratch traffic the simulation does not itemize: when intermediates live
/// on a different provider than the compute, every byte that lands on
/// scratch (staged inputs + every produced file) crosses on the way in, and
/// every byte read back (each consumer's read + the final stage-out)
/// crosses on the way out.  Static workflow aggregates — regular and
/// cleanup modes move the same bytes, they differ only in residency.
struct ScratchTraffic {
  Bytes writes;
  Bytes reads;
};

ScratchTraffic scratchTraffic(const dag::Workflow& wf) {
  ScratchTraffic t;
  Bytes produced;
  Bytes consumed;
  for (const dag::File& file : wf.files()) {
    if (file.producer != dag::kNoTask) produced += file.size;
    consumed += file.size * static_cast<double>(file.consumers.size());
  }
  t.writes = wf.externalInputBytes() + produced;
  t.reads = consumed + wf.workflowOutputBytes();
  return t;
}

std::string siteLabel(const DataSite& site) {
  if (site.isUserSite()) return kUserSite;
  return site.provider + "/" + site.storageClass;
}

/// Deterministic total order for equal-cost candidates.
std::tuple<const std::string&, const std::string&, bool, int, std::string,
           std::string, std::string>
assignmentKey(const PlacementCandidate& c) {
  return {c.assignment.computeProvider,
          c.assignment.instanceType,
          c.assignment.spot,
          static_cast<int>(c.mode),
          siteLabel(c.assignment.intermediates),
          siteLabel(c.assignment.inputs),
          siteLabel(c.assignment.outputs)};
}

}  // namespace

OptimizeResult optimizePlacement(const dag::Workflow& wf,
                                 const cloud::ProviderCatalog& catalog,
                                 const OptimizeConfig& config) {
  if (config.modes.empty())
    throw std::invalid_argument("optimizePlacement: no data modes to sweep");

  std::vector<std::string> providerNames =
      config.providers.empty() ? catalog.names() : config.providers;
  if (providerNames.empty())
    throw std::invalid_argument("optimizePlacement: empty provider catalog");
  // at() throws with the known-name list on an unknown provider.
  for (const std::string& name : providerNames) catalog.at(name);

  const int processors =
      config.processorOverride > 0
          ? config.processorOverride
          : static_cast<int>(std::max<std::size_t>(1, dag::maxParallelism(wf)));

  // -- simulation stage: one run per distinct (mode, instance speed) --------
  // A candidate's execution metrics depend only on the data mode and how
  // fast the instance executes the calibrated runtimes; prices never enter
  // the simulator.  Collect distinct speed factors, scale the workflow once
  // per speed, and dispatch mode x speed through the runner.
  std::vector<double> speeds;
  for (const std::string& name : providerNames)
    for (const cloud::InstanceType& sku : catalog.at(name).instanceTypes)
      speeds.push_back(sku.speedFactor);
  std::sort(speeds.begin(), speeds.end());
  speeds.erase(std::unique(speeds.begin(), speeds.end()), speeds.end());

  std::deque<dag::Workflow> scaled;  // stable addresses for the specs
  std::map<double, const dag::Workflow*> workflowBySpeed;
  for (double speed : speeds) {
    // 1.0 is the exact "unscaled workflow" key set by the caller, never a
    // computed factor.  mcsim-lint: allow(float-equality)
    if (speed == 1.0) {
      workflowBySpeed[speed] = &wf;
      continue;
    }
    dag::Workflow copy = wf;
    copy.scaleAllRuntimes(1.0 / speed);
    scaled.push_back(std::move(copy));
    workflowBySpeed[speed] = &scaled.back();
  }

  std::vector<runner::ScenarioSpec> specs;
  std::map<std::pair<int, double>, std::size_t> specIndex;
  for (engine::DataMode mode : config.modes) {
    for (double speed : speeds) {
      const std::pair<int, double> key{static_cast<int>(mode), speed};
      if (specIndex.count(key) != 0) continue;  // duplicate mode in config
      runner::ScenarioSpec spec;
      spec.workflow = workflowBySpeed.at(speed);
      spec.config = config.base;
      spec.config.mode = mode;
      spec.config.processors = processors;
      spec.config.observer = nullptr;
      spec.label = std::string("optimize/mode=") + engine::dataModeName(mode) +
                   "/speed=" + formatSpeed(speed);
      specIndex.emplace(key, specs.size());
      specs.push_back(std::move(spec));
    }
  }

  runner::RunnerOptions options;
  options.jobs = config.jobs;
  options.observer = config.observer;
  options.cache = config.cache;
  const std::vector<runner::ScenarioResult> sims =
      runner::runOnQueue(config.queue, specs, options);

  // -- pricing stage: every placement combination, analytically -------------
  const ScratchTraffic scratch = scratchTraffic(wf);
  const Bytes archiveBytes = config.archiveBytes.value() > 0.0
                                 ? config.archiveBytes
                                 : wf.externalInputBytes();

  // Site menus, built once: deterministic provider-name order.
  std::vector<DataSite> inputSites{DataSite{}};
  std::vector<DataSite> outputSites{DataSite{}};
  if (config.sweepArchiveHosting) {
    for (const std::string& name : providerNames) {
      const cloud::ProviderProfile& profile = catalog.at(name);
      for (const cloud::StorageClass& cls : profile.storageClasses)
        inputSites.push_back(DataSite{name, cls.name});
      outputSites.push_back(
          DataSite{name, profile.defaultStorageClass().name});
    }
  }

  OptimizeResult out;
  out.simulations = specs.size();

  for (const std::string& computeName : providerNames) {
    const cloud::ProviderProfile& compute = catalog.at(computeName);
    for (const cloud::InstanceType& sku : compute.instanceTypes) {
      for (int spotInt = 0; spotInt <= (config.useSpot && sku.spotCapable()
                                            ? 1
                                            : 0);
           ++spotInt) {
        const bool spot = spotInt != 0;
        for (engine::DataMode mode : config.modes) {
          const engine::ExecutionResult& sim =
              sims[specIndex.at({static_cast<int>(mode), sku.speedFactor})]
                  .result;

          // Scratch menu per (compute, mode): the compute provider's own
          // classes; other providers' classes only when asked for and the
          // mode actually persists intermediates (remote I/O streams
          // through compute-local scratch by construction).
          std::vector<DataSite> scratchSites;
          for (const cloud::StorageClass& cls : compute.storageClasses)
            scratchSites.push_back(DataSite{computeName, cls.name});
          if (config.sweepCrossProviderScratch &&
              mode != engine::DataMode::RemoteIO) {
            for (const std::string& other : providerNames) {
              if (other == computeName) continue;
              for (const cloud::StorageClass& cls :
                   catalog.at(other).storageClasses)
                scratchSites.push_back(DataSite{other, cls.name});
            }
          }

          for (const DataSite& scratchSite : scratchSites) {
            for (const DataSite& inputSite : inputSites) {
              for (const DataSite& outputSite : outputSites) {
                PlacementCandidate candidate;
                candidate.assignment = {computeName, sku.name,     spot,
                                        inputSite,   scratchSite, outputSite};
                candidate.mode = mode;
                candidate.makespanSeconds = sim.makespanSeconds;
                PlacementCostBreakdown& cost = candidate.cost;

                // CPU at the SKU's (possibly spot) rate.  The scaled
                // workflow's runtimes are already instance-seconds.
                const cloud::BillingGranularity granularity =
                    config.skuGranularity
                        ? sku.granularity
                        : cloud::BillingGranularity::PerSecond;
                const double ratePerSecond =
                    sku.effectiveHourlyRate(spot).value() / kSecondsPerHour;
                double billedCpuSeconds = 0.0;
                switch (config.billing) {
                  case cloud::CpuBillingMode::Usage:
                    billedCpuSeconds =
                        cloud::billedSeconds(sim.cpuBusySeconds, granularity);
                    break;
                  case cloud::CpuBillingMode::Provisioned:
                    billedCpuSeconds =
                        cloud::billedSeconds(sim.makespanSeconds,
                                             granularity) *
                        sim.processors;
                    break;
                }
                cost.cpu = Money(billedCpuSeconds * ratePerSecond);

                // Spot interruptions: expected reclaims over the
                // provisioned instance-hours; each reclaim is assumed to
                // waste one mean task attempt, billed at the spot rate.
                if (spot) {
                  candidate.expectedInterruptions =
                      sku.interruptionsPerHour * sim.processors *
                      (sim.makespanSeconds / kSecondsPerHour);
                  const double meanTaskSeconds =
                      sim.cpuBusySeconds /
                      static_cast<double>(
                          std::max<std::size_t>(1, sim.tasksExecuted));
                  cost.spotRework =
                      Money(candidate.expectedInterruptions *
                            meanTaskSeconds * ratePerSecond);
                }

                // Intermediates residency on the scratch tier, plus
                // cross-provider staging when scratch is remote.
                const cloud::StorageClass& scratchClass =
                    *catalog.at(scratchSite.provider)
                         .findStorageClass(scratchSite.storageClass);
                cost.storage = Money(sim.storageByteSeconds *
                                     scratchClass.dollarsPerByteSecond());
                if (scratchSite.provider != computeName) {
                  const cloud::TransferRates& remote =
                      catalog.at(scratchSite.provider).transfer;
                  cost.scratchTransfer =
                      Money(scratch.writes.value() *
                                (perGBToPerByte(compute.transfer.outPerGB) +
                                 perGBToPerByte(remote.inPerGB)) +
                            scratch.reads.value() *
                                (perGBToPerByte(remote.outPerGB) +
                                 perGBToPerByte(compute.transfer.inPerGB)));
                }

                // Inputs: from the user site they pay compute ingress (the
                // paper's model); hosted archives pay the tier's retrieval
                // fee, cross-provider hops when split from compute, and an
                // amortized share of the monthly holding bill.
                Money transfer;
                if (inputSite.isUserSite()) {
                  transfer += Money(sim.bytesIn.value() *
                                    perGBToPerByte(compute.transfer.inPerGB));
                } else {
                  const cloud::ProviderProfile& host =
                      catalog.at(inputSite.provider);
                  const cloud::StorageClass& tier =
                      *host.findStorageClass(inputSite.storageClass);
                  cost.retrieval = Money(
                      sim.bytesIn.value() * perGBToPerByte(tier.retrievalPerGB));
                  if (inputSite.provider != computeName)
                    transfer +=
                        Money(sim.bytesIn.value() *
                              (perGBToPerByte(host.transfer.outPerGB) +
                               perGBToPerByte(compute.transfer.inPerGB)));
                  if (config.requestsPerMonth > 0.0)
                    cost.archiveShare =
                        Money(archiveBytes.gb() * tier.perGBMonth.value() /
                              config.requestsPerMonth);
                }

                // Outputs: back to the user they pay compute egress; to a
                // hosted site they pay the cross-provider hop (free when
                // co-located, as with EC2/S3).
                if (outputSite.isUserSite()) {
                  transfer +=
                      Money(sim.bytesOut.value() *
                            perGBToPerByte(compute.transfer.outPerGB));
                } else if (outputSite.provider != computeName) {
                  const cloud::ProviderProfile& host =
                      catalog.at(outputSite.provider);
                  transfer +=
                      Money(sim.bytesOut.value() *
                            (perGBToPerByte(compute.transfer.outPerGB) +
                             perGBToPerByte(host.transfer.inPerGB)));
                }
                cost.transfer = transfer;

                out.ranked.push_back(std::move(candidate));
              }
            }
          }
        }
      }
    }
  }

  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              const Money ta = a.cost.total();
              const Money tb = b.cost.total();
              if (ta != tb) return ta < tb;
              if (a.makespanSeconds != b.makespanSeconds)
                return a.makespanSeconds < b.makespanSeconds;
              return assignmentKey(a) < assignmentKey(b);
            });

  // Cost–makespan Pareto frontier: walking in ascending cost order, a
  // candidate is non-dominated iff it is strictly faster than everything
  // cheaper (or equal-cost and first at its makespan).
  double bestMakespan = std::numeric_limits<double>::infinity();
  for (PlacementCandidate& candidate : out.ranked) {
    if (candidate.makespanSeconds < bestMakespan) {
      candidate.onFrontier = true;
      bestMakespan = candidate.makespanSeconds;
    }
  }

  out.candidates = out.ranked.size();
  return out;
}

Table optimizeTable(const OptimizeResult& result, std::size_t top) {
  Table t({"#", "compute", "mode", "scratch", "inputs", "outputs",
           "makespan", "cpu", "data", "total", "pareto"});
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const PlacementCandidate& c = result.ranked[i];
    if (i >= top && !c.onFrontier) continue;
    const Money data = c.cost.storage + c.cost.scratchTransfer +
                       c.cost.retrieval + c.cost.transfer +
                       c.cost.archiveShare;
    std::string computeCell =
        c.assignment.computeProvider + "/" + c.assignment.instanceType;
    if (c.assignment.spot) computeCell += " (spot)";
    t.addRow({std::to_string(i + 1), computeCell,
              engine::dataModeName(c.mode),
              siteLabel(c.assignment.intermediates),
              siteLabel(c.assignment.inputs),
              siteLabel(c.assignment.outputs),
              formatDuration(c.makespanSeconds), moneyCell(c.cost.cpu),
              moneyCell(data), moneyCell(c.cost.total()),
              c.onFrontier ? "*" : ""});
  }
  return t;
}

std::string describeCandidate(const PlacementCandidate& candidate) {
  const PlacementAssignment& a = candidate.assignment;
  std::string text = "compute on " + a.computeProvider + "/" +
                     a.instanceType + (a.spot ? " (spot)" : "") + ", " +
                     engine::dataModeName(candidate.mode) +
                     " mode, scratch on " + siteLabel(a.intermediates) +
                     ", inputs from " + siteLabel(a.inputs) +
                     ", outputs to " + siteLabel(a.outputs) + " — " +
                     formatMoney(candidate.cost.total()) + " per run, " +
                     formatDuration(candidate.makespanSeconds) + " makespan";
  if (candidate.expectedInterruptions > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, " (~%.2f expected spot interruptions)",
                  candidate.expectedInterruptions);
    text += buf;
  }
  return text;
}

}  // namespace mcsim::analysis
