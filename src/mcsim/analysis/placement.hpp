// Multi-provider placement planning and the cross-provider placement
// optimizer.
//
// The paper's conclusion anticipates a market where "some providers will
// have a cheaper rate for compute resources while others will have a
// cheaper rate for storage ... applications will have more options to
// consider and more execution and provisioning plans to develop."  Two
// layers evaluate those plans:
//
//  * comparePlacements — the original monthly-service arithmetic: every
//    (compute provider, archive provider) pairing for a request volume,
//    including the cross-provider transfer fees co-location avoids.
//  * optimizePlacement — the full search over the provider catalog
//    (cloud/provider.hpp): provider x instance type x storage class x data
//    mode x data placement, with inputs, intermediates and outputs each
//    placeable on a different provider (paying cross-provider egress at the
//    source plus ingress at the destination), spot-style SKUs, and
//    archive-tier retrieval fees.  Simulation work is deduplicated — a
//    candidate's makespan depends only on (data mode, instance speed), so
//    the optimizer simulates each distinct pair once through the runner
//    (JobQueue / memo-cache aware) and prices every placement combination
//    analytically from those results.  Output is a cheapest-first ranking
//    with the cost–makespan Pareto frontier marked.
#pragma once

#include <string>
#include <vector>

#include "mcsim/cloud/billing.hpp"
#include "mcsim/cloud/pricing.hpp"
#include "mcsim/cloud/provider.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/util/table.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::runner {
class JobQueue;
class ScenarioMemoCache;
}

namespace mcsim::analysis {

/// What one request moves and computes, independent of provider.
struct RequestShape {
  double cpuSeconds = 0.0;  ///< Σ task runtimes (usage billing).
  Bytes inputBytes;         ///< Archive data read per request.
  Bytes productBytes;       ///< Result shipped to the user.
};

/// Derive the shape from a workflow's aggregates.
RequestShape shapeFromWorkflow(const dag::Workflow& wf);

/// One placement: compute on `compute`, host the archive on `archive`.
struct PlacementPlan {
  std::string computeProvider;
  std::string archiveProvider;
  bool colocated = false;

  Money archiveMonthly;       ///< Archive storage fee per month.
  Money computePerRequest;    ///< CPU fee per request.
  Money transferPerRequest;   ///< Archive egress + compute ingress (zero
                              ///< when co-located) + product egress.
  Money monthlyTotal;         ///< archive + requests x per-request fees.
};

/// Evaluate every (compute, archive) pairing for `requestsPerMonth`
/// requests of the given shape, cheapest first.  Intra-provider data access
/// is free (as with EC2/S3); cross-provider reads pay the archive
/// provider's egress and the compute provider's ingress.
std::vector<PlacementPlan> comparePlacements(
    const RequestShape& shape, Bytes archiveBytes, double requestsPerMonth,
    const std::vector<cloud::Pricing>& providers);

// -- placement optimizer -----------------------------------------------------

/// The user's own site (outside every cloud): the paper's default home for
/// inputs and products.  Data from the user site pays only the compute
/// provider's ingress on the way in; products returned to it pay only the
/// compute provider's egress.
inline const std::string kUserSite = "user";

/// Where one data tier lives: the user site, or a provider storage class.
struct DataSite {
  std::string provider = kUserSite;  ///< kUserSite or a catalog name.
  std::string storageClass;          ///< Empty for the user site.

  bool isUserSite() const { return provider == kUserSite; }
};

/// One point of the search space.
struct PlacementAssignment {
  std::string computeProvider;
  std::string instanceType;
  bool spot = false;      ///< Bid the SKU's spot market instead of on-demand.
  DataSite inputs;        ///< Where external inputs are read from.
  DataSite intermediates; ///< Scratch storage for in-flight files.
  DataSite outputs;       ///< Where products are delivered.
};

/// Itemized cost of one candidate (one simulated request).
struct PlacementCostBreakdown {
  Money cpu;              ///< Instance-billed compute (usage or provisioned).
  Money spotRework;       ///< Expected re-run cost of spot interruptions.
  Money storage;          ///< Intermediates residency (byte-seconds x tier).
  Money scratchTransfer;  ///< Cross-provider intermediates staging.
  Money retrieval;        ///< Archive-tier read-back fees on inputs.
  Money transfer;         ///< Ingress/egress incl. cross-provider hops.
  Money archiveShare;     ///< Amortized monthly archive holding per request.

  Money total() const {
    return cpu + spotRework + storage + scratchTransfer + retrieval +
           transfer + archiveShare;
  }
};

struct PlacementCandidate {
  PlacementAssignment assignment;
  engine::DataMode mode = engine::DataMode::Regular;
  double makespanSeconds = 0.0;
  /// Expected spot reclaims over the run (0 for on-demand candidates).
  double expectedInterruptions = 0.0;
  PlacementCostBreakdown cost;
  /// On the cost–makespan Pareto frontier: no other candidate is both
  /// cheaper and faster.
  bool onFrontier = false;
};

struct OptimizeConfig {
  /// Catalog names to consider; empty = every provider in the catalog.
  std::vector<std::string> providers;
  /// Data modes to sweep (default: all three, paper order).
  std::vector<engine::DataMode> modes = {engine::DataMode::RemoteIO,
                                         engine::DataMode::Regular,
                                         engine::DataMode::DynamicCleanup};
  /// > 0 forces a processor count; 0 = the workflow's max parallelism
  /// ("the requests can run at their full level of parallelism", §4 Q2).
  int processorOverride = 0;
  /// CPU accounting; Usage is the paper's Question-2 service model.
  cloud::CpuBillingMode billing = cloud::CpuBillingMode::Usage;
  /// Honor each SKU's billing granularity (hour-granular 2010 EC2,
  /// minute-granular 2013 GCE).  false = the paper's per-second
  /// idealization everywhere.
  bool skuGranularity = false;
  /// Also evaluate the spot variant of every spot-capable SKU.
  bool useSpot = false;
  /// Also host inputs/outputs on provider storage (every provider x class)
  /// instead of only the user site — the archive-placement axis of the
  /// multi-provider dataset-storage problem.
  bool sweepArchiveHosting = false;
  /// Also place intermediates on providers other than the compute one,
  /// paying cross-provider staging on every scratch write and read.
  bool sweepCrossProviderScratch = false;
  /// Amortize provider-hosted input archives over this request volume
  /// (archiveShare = archiveBytes x tier rate / requestsPerMonth).
  /// 0 disables holding-cost attribution.
  double requestsPerMonth = 0.0;
  /// Hosted-archive size; 0 = the workflow's external input bytes.
  Bytes archiveBytes;
  /// Every engine knob except mode and processors.
  engine::EngineConfig base;
  /// Runner worker threads; 0 = serial (the exact legacy code path).
  int jobs = 0;
  /// Observes every simulated scenario; merged deterministically.
  obs::Sink* observer = nullptr;
  /// Optional scenario memo cache; repeated optimizer runs (or overlap with
  /// other sweeps at speed factor 1) are served without re-simulation.
  runner::ScenarioMemoCache* cache = nullptr;
  /// Run on this persistent JobQueue; supersedes `jobs`/`cache`.
  runner::JobQueue* queue = nullptr;
};

struct OptimizeResult {
  /// Every candidate, cheapest total first (ties: faster, then lexicographic
  /// assignment — fully deterministic).
  std::vector<PlacementCandidate> ranked;
  std::size_t simulations = 0;  ///< Distinct engine runs dispatched.
  std::size_t candidates = 0;   ///< Priced combinations (== ranked.size()).

  const PlacementCandidate& best() const { return ranked.front(); }
};

/// Sweep provider x instance x storage class x mode x placement for one
/// request of `wf` and rank every candidate by total cost.  Throws
/// std::invalid_argument on unknown provider names or an empty search
/// space; simulation failures propagate from the runner.
OptimizeResult optimizePlacement(const dag::Workflow& wf,
                                 const cloud::ProviderCatalog& catalog,
                                 const OptimizeConfig& config = {});

/// Human-readable ranking: top `top` rows plus every frontier candidate.
Table optimizeTable(const OptimizeResult& result, std::size_t top = 15);

/// One-line recommendation for the cheapest candidate.
std::string describeCandidate(const PlacementCandidate& candidate);

}  // namespace mcsim::analysis
