// Multi-provider placement planning.
//
// The paper's conclusion anticipates a market where "some providers will
// have a cheaper rate for compute resources while others will have a
// cheaper rate for storage ... applications will have more options to
// consider and more execution and provisioning plans to develop."  This
// module evaluates those plans: every (compute provider, archive provider)
// pairing for a monthly request volume, including the cross-provider
// transfer fees that co-location avoids.
#pragma once

#include <string>
#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"

namespace mcsim::analysis {

/// What one request moves and computes, independent of provider.
struct RequestShape {
  double cpuSeconds = 0.0;  ///< Σ task runtimes (usage billing).
  Bytes inputBytes;         ///< Archive data read per request.
  Bytes productBytes;       ///< Result shipped to the user.
};

/// Derive the shape from a workflow's aggregates.
RequestShape shapeFromWorkflow(const dag::Workflow& wf);

/// One placement: compute on `compute`, host the archive on `archive`.
struct PlacementPlan {
  std::string computeProvider;
  std::string archiveProvider;
  bool colocated = false;

  Money archiveMonthly;       ///< Archive storage fee per month.
  Money computePerRequest;    ///< CPU fee per request.
  Money transferPerRequest;   ///< Archive egress + compute ingress (zero
                              ///< when co-located) + product egress.
  Money monthlyTotal;         ///< archive + requests x per-request fees.
};

/// Evaluate every (compute, archive) pairing for `requestsPerMonth`
/// requests of the given shape, cheapest first.  Intra-provider data access
/// is free (as with EC2/S3); cross-provider reads pay the archive
/// provider's egress and the compute provider's ingress.
std::vector<PlacementPlan> comparePlacements(
    const RequestShape& shape, Bytes archiveBytes, double requestsPerMonth,
    const std::vector<cloud::Pricing>& providers);

}  // namespace mcsim::analysis
