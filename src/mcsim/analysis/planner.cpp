#include "mcsim/analysis/planner.hpp"

#include <algorithm>
#include <sstream>

namespace mcsim::analysis {

std::vector<ProvisioningPoint> paretoFrontier(
    std::vector<ProvisioningPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ProvisioningPoint& a, const ProvisioningPoint& b) {
              if (a.makespanSeconds != b.makespanSeconds)
                return a.makespanSeconds < b.makespanSeconds;
              return a.totalCost < b.totalCost;
            });
  std::vector<ProvisioningPoint> frontier;
  Money bestCost{std::numeric_limits<double>::infinity()};
  for (const ProvisioningPoint& p : points) {
    if (p.totalCost < bestCost) {
      frontier.push_back(p);
      bestCost = p.totalCost;
    }
  }
  return frontier;
}

Recommendation recommendProvisioning(const dag::Workflow& wf,
                                     const cloud::Pricing& pricing,
                                     const PlannerGoal& goal,
                                     const ProvisioningSweepConfig& sweep) {
  const auto points = provisioningSweep(wf, pricing, sweep);

  Recommendation rec;
  rec.frontier = paretoFrontier(points);

  const ProvisioningPoint* best = nullptr;
  for (const ProvisioningPoint& p : points) {
    if (p.makespanSeconds > goal.deadlineSeconds) continue;
    if (p.totalCost > goal.budget) continue;
    if (best == nullptr || p.totalCost < best->totalCost ||
        (p.totalCost == best->totalCost &&
         p.makespanSeconds < best->makespanSeconds)) {
      best = &p;
    }
  }

  std::ostringstream why;
  if (best != nullptr) {
    rec.feasible = true;
    rec.choice = *best;
    why << "cheapest configuration meeting the goal: " << best->processors
        << " processors, " << formatDuration(best->makespanSeconds) << " for "
        << formatMoney(best->totalCost);
  } else {
    // Nothing satisfies the goal; surface the closest-to-deadline point so
    // the caller can see how far off the goal is.
    const ProvisioningPoint* closest = nullptr;
    for (const ProvisioningPoint& p : points) {
      if (closest == nullptr || p.makespanSeconds < closest->makespanSeconds)
        closest = &p;
    }
    if (closest != nullptr) rec.choice = *closest;
    why << "no configuration satisfies the goal; fastest sweep point is "
        << (closest != nullptr ? std::to_string(closest->processors) : "n/a")
        << " processors at "
        << (closest != nullptr ? formatDuration(closest->makespanSeconds)
                               : std::string("n/a"))
        << " costing "
        << (closest != nullptr ? formatMoney(closest->totalCost)
                               : std::string("n/a"));
  }
  rec.rationale = why.str();
  return rec;
}

}  // namespace mcsim::analysis
