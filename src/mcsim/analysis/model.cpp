#include "mcsim/analysis/model.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcsim/dag/algorithms.hpp"

namespace mcsim::analysis {

AnalyticEstimate estimateRegularRun(const dag::Workflow& wf, int processors,
                                    const cloud::Pricing& pricing,
                                    double linkBandwidthBytesPerSec) {
  if (processors < 1)
    throw std::invalid_argument("estimateRegularRun: processors must be >= 1");
  if (!(linkBandwidthBytesPerSec > 0.0))
    throw std::invalid_argument("estimateRegularRun: bandwidth must be > 0");

  const double b = linkBandwidthBytesPerSec;
  const double work = wf.totalRuntimeSeconds();
  const double criticalPath = dag::criticalPathSeconds(wf);
  const double p = static_cast<double>(processors);

  double maxInput = 0.0;
  for (dag::FileId f : wf.externalInputs())
    maxInput = std::max(maxInput, wf.file(f).size.value());
  double maxOutput = 0.0;
  for (dag::FileId f : wf.workflowOutputs())
    maxOutput = std::max(maxOutput, wf.file(f).size.value());

  AnalyticEstimate e;
  e.bytesIn = wf.externalInputBytes();
  e.bytesOut = wf.workflowOutputBytes();

  // Compute-phase bounds.  Lower: no schedule beats the critical path or
  // perfect work division.  Upper: Graham's bound for greedy list
  // scheduling, makespan <= work/P + criticalPath (the (P-1)/P factor on
  // the path term is relaxed for simplicity).
  const double computeLower = std::max(criticalPath, work / p);
  const double computeUpper = work / p + criticalPath;

  // Transfers on dedicated links: stage-out of the largest product is
  // unavoidable and cannot overlap compute (it follows the last task);
  // stage-in overlaps compute partially, so it appears only in the upper
  // bound and the point estimate.
  e.makespanLowerSeconds = computeLower + maxOutput / b;
  e.makespanUpperSeconds =
      maxInput / b + computeUpper + e.bytesOut.value() / b;
  e.makespanEstimateSeconds = maxInput / b + computeLower + maxOutput / b;

  e.cpuUsage = pricing.cpuCost(work);
  e.cpuProvisionedEstimate =
      pricing.cpuCost(e.makespanEstimateSeconds * p);
  e.transferCost =
      pricing.transferInCost(e.bytesIn) + pricing.transferOutCost(e.bytesOut);
  e.storageUpperBound = pricing.storageCost(
      wf.totalFileBytes().value() * e.makespanUpperSeconds);
  return e;
}

}  // namespace mcsim::analysis
