#include "mcsim/analysis/economics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mcsim::analysis {

ArchiveEconomics archiveBreakEven(Bytes archiveBytes,
                                  Money requestCostPreStaged,
                                  Money requestCostOnDemand,
                                  const cloud::Pricing& pricing) {
  if (archiveBytes.value() <= 0.0)
    throw std::invalid_argument("archiveBreakEven: archive must be non-empty");
  ArchiveEconomics e;
  e.archiveBytes = archiveBytes;
  e.monthlyStorageCost = pricing.storageCost(archiveBytes, kSecondsPerMonth);
  e.initialTransferCost = pricing.transferInCost(archiveBytes);
  e.requestCostPreStaged = requestCostPreStaged;
  e.requestCostOnDemand = requestCostOnDemand;
  e.savingPerRequest = requestCostOnDemand - requestCostPreStaged;
  e.breakEvenRequestsPerMonth =
      e.savingPerRequest.value() > 0.0
          ? e.monthlyStorageCost.value() / e.savingPerRequest.value()
          : std::numeric_limits<double>::infinity();
  return e;
}

ArchivalDecision mosaicArchivalDecision(Money computeCost, Bytes productBytes,
                                        const cloud::Pricing& pricing) {
  if (productBytes.value() <= 0.0)
    throw std::invalid_argument("mosaicArchivalDecision: empty product");
  ArchivalDecision d;
  d.computeCost = computeCost;
  d.productBytes = productBytes;
  d.monthlyStorageCost = pricing.storageCost(productBytes, kSecondsPerMonth);
  d.breakEvenMonths = d.monthlyStorageCost.value() > 0.0
                          ? computeCost.value() / d.monthlyStorageCost.value()
                          : std::numeric_limits<double>::infinity();
  return d;
}

int skyPlateCount(double plateDegrees, double coverageSquareDegrees) {
  if (!(plateDegrees > 0.0))
    throw std::invalid_argument("skyPlateCount: plate size must be positive");
  if (!(coverageSquareDegrees > 0.0))
    throw std::invalid_argument("skyPlateCount: coverage must be positive");
  return static_cast<int>(
      std::ceil(coverageSquareDegrees / (plateDegrees * plateDegrees)));
}

SkyCampaignCost skyCampaign(int plateCount, Money perPlateOnDemand,
                            Money perPlatePreStaged) {
  if (plateCount <= 0)
    throw std::invalid_argument("skyCampaign: plateCount must be positive");
  SkyCampaignCost c;
  c.plateCount = plateCount;
  c.perPlateOnDemand = perPlateOnDemand;
  c.perPlatePreStaged = perPlatePreStaged;
  c.totalOnDemand = perPlateOnDemand * plateCount;
  c.totalPreStaged = perPlatePreStaged * plateCount;
  return c;
}

}  // namespace mcsim::analysis
