// Critical-path cost attribution over the span trace: where the hour and
// the dollar actually go.
//
// The paper reports aggregate $ and makespan per scenario; this module walks
// the causal span DAG recorded by obs::SpanSink backwards from the last
// completed span to t = 0 and produces a *tiling* of [0, makespan] into
// typed segments — compute, transfers, queue waits, retry backoff, VM
// overhead and scheduling gaps — so 100 % of the makespan is attributed by
// construction.  Costs from obs::RunReport are then split across the tasks
// on the critical path vs. the slack ones, with the workflow-level staging
// and the provisioned-but-idle CPU surplus kept as their own buckets, so the
// four parts always reconcile with report.json's authoritative total.
//
// The walk follows *dependency* causality (FollowsFrom edges: parents,
// external stage-ins, the queue wait that released a start); resource edges
// (previous lane occupant) stay in the trace for viewers but never bind the
// walk — contention therefore surfaces as QueueWait segments rather than as
// a detour through an unrelated task.  With zero contention and free data
// movement the extracted path length equals dag::criticalPathSeconds
// exactly; with contention or faults the simulated path is >= the analytic
// bound (differential-tested).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/obs/report.hpp"
#include "mcsim/obs/trace.hpp"

namespace mcsim::analysis {

/// Build the dependency topology (CSR parents + external inputs per task)
/// obs::SpanSink needs to draw follows-from edges.  The obs layer cannot see
/// dag headers, so this adapter lives here.
obs::TraceTopology traceTopology(const dag::Workflow& wf);

/// Task/file display names for the Perfetto exporter.
obs::TraceNames traceNames(const dag::Workflow& wf);

/// What a critical-path segment's seconds are spent on.
enum class CostBucket : std::uint8_t {
  Compute,    ///< A task executing.
  StageIn,    ///< A transfer into the cloud on the path.
  StageOut,   ///< A transfer out of the cloud on the path.
  QueueWait,  ///< Ready but waiting for a processor (contention).
  RetryWait,  ///< Fault-recovery backoff.
  TaskOther,  ///< Inside a task span but not covered by a sub-span.
  Gap,        ///< Uncovered time between consecutive path spans.
  VmStartup,  ///< Before the first path span (provisioning delay).
  VmTeardown, ///< After the last path span (teardown, deadline tails).
};

inline constexpr std::size_t kCostBucketCount = 9;

/// Stable snake_case name (table/JSON vocabulary).
const char* costBucketName(CostBucket bucket);

/// One tile of the makespan.  `span` is obs::kNoSpan for the synthetic
/// Gap/VmStartup/VmTeardown segments.
struct CriticalSegment {
  std::uint32_t span = obs::kNoSpan;
  CostBucket bucket = CostBucket::Gap;
  double beginSeconds = 0.0;
  double endSeconds = 0.0;

  double seconds() const { return endSeconds - beginSeconds; }
};

struct CriticalPath {
  /// Ascending in time; tiles [0, makespan] exactly (sum of seconds() ==
  /// makespan up to floating-point).
  std::vector<CriticalSegment> segments;
  /// Task ids whose Task span lies on the path, in path (time) order.
  std::vector<std::uint32_t> taskOrder;
};

/// Walk the span DAG backwards from the latest completed span.  An empty
/// store yields one all-Gap segment covering the whole makespan.
CriticalPath extractCriticalPath(const obs::TraceStore& store,
                                 double makespanSeconds);

/// One task's share of the critical path (only tasks on the path appear).
struct TaskShare {
  std::uint32_t task = 0;
  std::string name;
  std::string type;
  double criticalSeconds = 0.0;  ///< Path segments attributed to this task.
  obs::AttributedCost cost;      ///< The task's full attributed cost.
};

/// Critical-path share aggregated over a task type (drill-down).
struct TypeShare {
  std::string type;
  std::size_t tasks = 0;
  double criticalSeconds = 0.0;
  Money cost;
};

struct Explanation {
  std::string workflow;
  std::string mode;
  std::string billing;
  int processors = 0;

  double makespanSeconds = 0.0;
  /// Seconds per bucket; sums to makespanSeconds by construction.
  std::array<double, kCostBucketCount> bucketSeconds{};
  CriticalPath path;
  std::size_t criticalTasks = 0;
  std::size_t totalTasks = 0;

  /// Cost split; critical + slack + staging + unattributed == total
  /// (report.json reconciliation, tested to 1e-6).
  Money totalCost;
  Money criticalCost;      ///< Tasks on the critical path.
  Money slackCost;         ///< Tasks off the path.
  Money stagingCost;       ///< Workflow-level staging + input storage.
  Money unattributedCost;  ///< Provisioned-but-idle CPU surplus.

  std::vector<TaskShare> tasks;   ///< Critical tasks, descending seconds.
  std::vector<TypeShare> byType;  ///< Same, grouped by task type.
};

/// Join the trace's critical path with the report's cost attribution.
/// `report` must come from the same run that filled `store`.
Explanation explainRun(const dag::Workflow& wf, const obs::TraceStore& store,
                       const obs::RunReport& report);

/// Human-readable top-N table (the `mcsim explain` default output).
void printExplanation(std::ostream& os, const Explanation& e,
                      std::size_t topN = 10);

/// JSON document, schema "mcsim.explain.v1".
void writeExplanationJson(std::ostream& os, const Explanation& e);

}  // namespace mcsim::analysis
