#include "mcsim/analysis/service.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "mcsim/analysis/experiments.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::analysis {

RequestProfile profileFromWorkflow(const dag::Workflow& wf,
                                   Bytes productBytes,
                                   const cloud::Pricing& pricing) {
  const auto rows = dataModeComparison(wf, pricing, DataModeComparisonConfig{});
  const DataModeMetrics& regular = rows[1];
  RequestProfile p;
  p.name = wf.name();
  p.costOnDemand = regular.totalCost();
  p.costPreStaged = regular.totalCost() - regular.transferInCost;
  p.costServeStored = pricing.transferOutCost(productBytes);
  p.productBytes = productBytes;
  return p;
}

const PolicyCost& ServiceCostReport::best() const {
  const PolicyCost* winner = &recompute;
  if (archiveInCloud.total < winner->total) winner = &archiveInCloud;
  if (archivePlusCache.total < winner->total) winner = &archivePlusCache;
  return *winner;
}

ServiceCostReport simulateServiceMonth(const std::vector<RequestProfile>& profiles,
                                       Bytes archiveBytes,
                                       const cloud::Pricing& pricing,
                                       const ServiceWorkloadParams& params) {
  if (profiles.empty())
    throw std::invalid_argument("simulateServiceMonth: no request profiles");
  if (!(params.requestsPerDay > 0.0))
    throw std::invalid_argument("simulateServiceMonth: rate must be positive");
  if (params.popularFraction < 0.0 || params.popularFraction > 1.0)
    throw std::invalid_argument(
        "simulateServiceMonth: popularFraction must be in [0,1]");
  if (params.popularRegionCount < 1)
    throw std::invalid_argument(
        "simulateServiceMonth: need at least one popular region");

  double totalWeight = 0.0;
  for (const RequestProfile& p : profiles) {
    if (p.weight < 0.0)
      throw std::invalid_argument("simulateServiceMonth: negative weight");
    totalWeight += p.weight;
  }
  if (totalWeight <= 0.0)
    throw std::invalid_argument("simulateServiceMonth: zero total weight");

  Rng rng(params.seed);
  ServiceCostReport report;
  report.archiveMonthlyCost =
      pricing.storageCost(archiveBytes, kSecondsPerMonth);
  report.recompute.policy = "recompute, stage per request";
  report.archiveInCloud.policy = "archive in cloud";
  report.archivePlusCache.policy = "archive + product cache";

  // The archive storage fee applies to the horizon, pro-rated.
  const double horizonMonths = params.horizonSeconds / kSecondsPerMonth;
  const Money archiveFee = report.archiveMonthlyCost * horizonMonths;
  report.archiveInCloud.total += archiveFee;
  report.archivePlusCache.total += archiveFee;

  std::map<std::pair<std::size_t, int>, bool> stored;
  Bytes cachedBytes;
  int uniqueRegion = 0;

  const double meanGap = kSecondsPerDay / params.requestsPerDay;
  for (double t = rng.exponential(meanGap); t < params.horizonSeconds;
       t += rng.exponential(meanGap)) {
    // Draw a profile by weight.
    double roll = rng.uniformReal(0.0, totalWeight);
    std::size_t profileIdx = 0;
    for (; profileIdx + 1 < profiles.size(); ++profileIdx) {
      roll -= profiles[profileIdx].weight;
      if (roll < 0.0) break;
    }
    const RequestProfile& p = profiles[profileIdx];
    const int region =
        rng.chance(params.popularFraction)
            ? static_cast<int>(
                  rng.uniformInt(0, params.popularRegionCount - 1))
            : -(++uniqueRegion);

    ++report.requestCount;
    report.recompute.total += p.costOnDemand;
    report.archiveInCloud.total += p.costPreStaged;

    const auto key = std::make_pair(profileIdx, region);
    if (region >= 0 && stored[key]) {
      report.archivePlusCache.total += p.costServeStored;
      ++report.cacheHits;
    } else {
      report.archivePlusCache.total += p.costPreStaged;
      if (region >= 0) {
        stored[key] = true;
        cachedBytes += p.productBytes;
      }
    }
  }

  // Cached products accrue storage for a configurable fraction of the
  // horizon (they are produced throughout it).
  report.cachedProductBytes = cachedBytes;
  report.archivePlusCache.total += pricing.storageCost(
      cachedBytes, params.horizonSeconds * params.cacheResidencyFraction);
  return report;
}

}  // namespace mcsim::analysis
