#include "mcsim/cloud/billing.hpp"

#include <cmath>
#include <stdexcept>

namespace mcsim::cloud {

double billedSeconds(double actualSeconds, BillingGranularity granularity) {
  if (actualSeconds < 0.0)
    throw std::invalid_argument("billedSeconds: negative duration");
  switch (granularity) {
    case BillingGranularity::PerSecond:
      return actualSeconds;
    case BillingGranularity::PerHour:
      return std::ceil(actualSeconds / kSecondsPerHour) * kSecondsPerHour;
  }
  throw std::logic_error("billedSeconds: unknown granularity");
}

}  // namespace mcsim::cloud
