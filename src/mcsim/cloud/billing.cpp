#include "mcsim/cloud/billing.hpp"

#include <cmath>
#include <stdexcept>

namespace mcsim::cloud {

double billedSeconds(double actualSeconds, BillingGranularity granularity) {
  if (actualSeconds < 0.0)
    throw std::invalid_argument("billedSeconds: negative duration");
  switch (granularity) {
    case BillingGranularity::PerSecond:
      return actualSeconds;
    case BillingGranularity::PerMinute:
      return std::ceil(actualSeconds / 60.0) * 60.0;
    case BillingGranularity::PerHour:
      return std::ceil(actualSeconds / kSecondsPerHour) * kSecondsPerHour;
  }
  throw std::logic_error("billedSeconds: unknown granularity");
}

const char* billingGranularityName(BillingGranularity granularity) {
  switch (granularity) {
    case BillingGranularity::PerSecond: return "per-second";
    case BillingGranularity::PerMinute: return "per-minute";
    case BillingGranularity::PerHour: return "per-hour";
  }
  throw std::logic_error("billingGranularityName: unknown granularity");
}

bool parseBillingGranularity(const std::string& name,
                             BillingGranularity& out) {
  if (name == "per-second") out = BillingGranularity::PerSecond;
  else if (name == "per-minute") out = BillingGranularity::PerMinute;
  else if (name == "per-hour") out = BillingGranularity::PerHour;
  else return false;
  return true;
}

}  // namespace mcsim::cloud
