#include "mcsim/cloud/storage.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcsim/obs/sink.hpp"

namespace mcsim::cloud {

StorageService::StorageService(sim::Simulator& sim, const StorageConfig& config)
    : sim_(sim), capacity_(Bytes(config.capacityBytes)) {
  if (config.capacityBytes <= 0.0)
    throw std::invalid_argument("StorageService: capacity must be positive");
}

void StorageService::put(std::uint64_t key, Bytes size) {
  if (size.value() < 0.0)
    throw std::invalid_argument("StorageService::put: negative size");
  if (!objects_.emplace(key, size.value()).second)
    throw std::logic_error("StorageService::put: key " + std::to_string(key) +
                           " already resident");
  if (residentBytes_ + size.value() > capacity_.value()) {
    objects_.erase(key);
    throw std::runtime_error("StorageService::put: capacity exceeded");
  }
  residentBytes_ += size.value();
  curve_.add(sim_.now(), size);
  if (observer_ && observer_->accepts(obs::EventKind::StorageFilePut))
    observer_->onEvent(obs::Event{
        sim_.now(), obs::StorageFilePut{key, size.value(), residentBytes_,
                                        objects_.size()}});
}

void StorageService::erase(std::uint64_t key) {
  auto it = objects_.find(key);
  if (it == objects_.end())
    throw std::logic_error("StorageService::erase: key " +
                           std::to_string(key) + " not resident");
  residentBytes_ -= it->second;
  curve_.remove(sim_.now(), Bytes(it->second));
  const double bytes = it->second;
  objects_.erase(it);
  if (observer_ && observer_->accepts(obs::EventKind::StorageFileErased))
    observer_->onEvent(obs::Event{
        sim_.now(),
        obs::StorageFileErased{key, bytes, residentBytes_, objects_.size()}});
}

bool StorageService::contains(std::uint64_t key) const {
  return objects_.count(key) != 0;
}

Bytes StorageService::sizeOf(std::uint64_t key) const {
  auto it = objects_.find(key);
  if (it == objects_.end())
    throw std::logic_error("StorageService::sizeOf: key " +
                           std::to_string(key) + " not resident");
  return Bytes(it->second);
}

void StorageService::setOutages(
    std::vector<std::pair<double, double>> windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& [start, end] = windows[i];
    if (start < 0.0 || end < start)
      throw std::invalid_argument("StorageService::setOutages: bad window");
    if (i > 0 && start < windows[i - 1].second)
      throw std::invalid_argument(
          "StorageService::setOutages: windows must be sorted and disjoint");
  }
  outages_ = std::move(windows);
}

double StorageService::availableFrom(double t) const {
  // First window with start > t; only its predecessor can cover t.
  const auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](double v, const std::pair<double, double>& w) { return v < w.first; });
  if (it == outages_.begin()) return t;
  const auto& prev = *(it - 1);
  return t < prev.second ? prev.second : t;
}

double StorageService::byteSecondsUsed() const {
  return curve_.integralByteSeconds(sim_.now());
}

double StorageService::gbHoursUsed() const {
  return curve_.integralGBHours(sim_.now());
}

}  // namespace mcsim::cloud
