#include "mcsim/cloud/provider.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "mcsim/util/json.hpp"

namespace mcsim::cloud {

// -- ProviderProfile ---------------------------------------------------------

const InstanceType* ProviderProfile::findInstance(
    const std::string& skuName) const {
  if (instanceTypes.empty()) return nullptr;
  if (skuName.empty()) return &instanceTypes.front();
  for (const InstanceType& sku : instanceTypes)
    if (sku.name == skuName) return &sku;
  return nullptr;
}

const StorageClass* ProviderProfile::findStorageClass(
    const std::string& className) const {
  if (storageClasses.empty()) return nullptr;
  if (className.empty()) return &storageClasses.front();
  for (const StorageClass& cls : storageClasses)
    if (cls.name == className) return &cls;
  return nullptr;
}

namespace {

[[noreturn]] void unknownSku(const std::string& provider, const char* kind,
                             const std::string& skuName) {
  throw std::out_of_range("provider '" + provider + "' has no " + kind +
                          " named '" + skuName + "'");
}

}  // namespace

Pricing ProviderProfile::pricing(const std::string& instance,
                                 const std::string& storageClass) const {
  const InstanceType* sku = findInstance(instance);
  if (sku == nullptr) unknownSku(name, "instance type", instance);
  const StorageClass* cls = findStorageClass(storageClass);
  if (cls == nullptr) unknownSku(name, "storage class", storageClass);

  Pricing p;
  p.providerName = name;
  p.storagePerGBMonth = cls->perGBMonth;
  p.transferInPerGB = transfer.inPerGB;
  p.transferOutPerGB = transfer.outPerGB;
  // Per reference-CPU-hour: a calibrated task of r reference-seconds takes
  // r / speedFactor instance-seconds, so its usage bill is
  // r * hourlyRate / speedFactor per hour of reference time.
  p.cpuPerHour = sku->hourlyRate / sku->speedFactor;
  return p;
}

// -- ProviderCatalog ---------------------------------------------------------

bool ProviderCatalog::contains(const std::string& name) const {
  return profiles_.count(name) != 0;
}

const ProviderProfile* ProviderCatalog::find(const std::string& name) const {
  auto it = profiles_.find(name);
  return it == profiles_.end() ? nullptr : &it->second;
}

const ProviderProfile& ProviderCatalog::at(const std::string& name) const {
  const ProviderProfile* profile = find(name);
  if (profile == nullptr) {
    std::string known;
    for (const auto& [key, value] : profiles_) {
      (void)value;
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::out_of_range("unknown provider '" + name +
                            "' (catalog has: " + known + ")");
  }
  return *profile;
}

Pricing ProviderCatalog::pricing(const std::string& name,
                                 const std::string& instance,
                                 const std::string& storageClass) const {
  return at(name).pricing(instance, storageClass);
}

void ProviderCatalog::add(ProviderProfile profile) {
  std::string key = profile.name;
  profiles_.insert_or_assign(std::move(key), std::move(profile));
}

std::vector<std::string> ProviderCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [key, value] : profiles_) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

// -- builtin profiles --------------------------------------------------------

namespace {

/// The paper's fee table (§3), normalized per-second (§6): one reference
/// instance, one storage tier, the 2008 transfer rates.
ProviderProfile builtinAmazon2008() {
  ProviderProfile p;
  p.name = "amazon-2008";
  p.displayName = "Amazon EC2 + S3 (2008, paper fee table)";
  p.year = 2008;
  p.instanceTypes = {{"m1.small", 1.0, Money(0.10),
                      BillingGranularity::PerSecond, 0.0, 0.0}};
  p.storageClasses = {{"standard", Money(0.15), Money(0.0)}};
  p.transfer = {Money(0.10), Money(0.16)};
  return p;
}

/// The §6 Question 2a what-if: storage far more expensive, transfers far
/// cheaper, same CPU rate.  Rates preserved exactly from the pre-catalog
/// Pricing::storageHeavyProvider() static (deliberately past the crossover:
/// at full parallelism files are resident for seconds, so regular-mode
/// storage only overtakes remote-mode transfer once the storage/transfer
/// price ratio is ~10^4 x Amazon's).
ProviderProfile builtinStorageHeavy() {
  ProviderProfile p;
  p.name = "storage-heavy";
  p.displayName = "What-if: expensive storage, cheap transfer (paper §6 Q2a)";
  p.year = 2008;
  p.instanceTypes = {{"standard", 1.0, Money(0.10),
                      BillingGranularity::PerSecond, 0.0, 0.0}};
  p.storageClasses = {{"standard", Money(75.00), Money(0.0)}};
  p.transfer = {Money(0.001), Money(0.0016)};
  return p;
}

/// The fee-structure ablation's compute-discounted provider; rates
/// preserved exactly from Pricing::computeDiscountProvider().
ProviderProfile builtinComputeDiscount() {
  ProviderProfile p;
  p.name = "compute-discount";
  p.displayName = "What-if: discounted compute, premium storage";
  p.year = 2008;
  p.instanceTypes = {{"standard", 1.0, Money(0.025),
                      BillingGranularity::PerSecond, 0.0, 0.0}};
  p.storageClasses = {{"standard", Money(0.30), Money(0.0)}};
  p.transfer = {Money(0.12), Money(0.20)};
  return p;
}

/// A later Amazon generation: three SKUs at different speed/price points,
/// hour-granular billing, a spot market, reduced-redundancy and
/// Glacier-style archive tiers (the retrieval-fee axis).
ProviderProfile builtinAmazon2010() {
  ProviderProfile p;
  p.name = "amazon-2010";
  p.displayName = "Amazon EC2 + S3 (2010 generation, spot + archive tiers)";
  p.year = 2010;
  p.instanceTypes = {
      {"m1.small", 1.0, Money(0.085), BillingGranularity::PerHour, 0.62,
       0.05},
      {"c1.medium", 2.5, Money(0.17), BillingGranularity::PerHour, 0.60,
       0.08},
      {"m2.xlarge", 3.25, Money(0.50), BillingGranularity::PerHour, 0.55,
       0.03},
  };
  p.storageClasses = {
      {"standard", Money(0.15), Money(0.0)},
      {"reduced-redundancy", Money(0.10), Money(0.0)},
      {"glacier", Money(0.01), Money(0.12)},
  };
  p.transfer = {Money(0.10), Money(0.15)};
  return p;
}

/// A GCP-style 2013 profile: minute-granular billing, preemptible-style
/// deep spot discounts, free ingress.
ProviderProfile builtinGcp2013() {
  ProviderProfile p;
  p.name = "gcp-2013";
  p.displayName = "Google Compute Engine + GCS (2013, per-minute billing)";
  p.year = 2013;
  p.instanceTypes = {
      {"n1-standard-1", 1.3, Money(0.104), BillingGranularity::PerMinute,
       0.70, 0.10},
      {"n1-standard-4", 5.2, Money(0.416), BillingGranularity::PerMinute,
       0.70, 0.10},
  };
  p.storageClasses = {
      {"standard", Money(0.085), Money(0.0)},
      {"durable-reduced", Money(0.054), Money(0.0)},
  };
  p.transfer = {Money(0.0), Money(0.12)};
  return p;
}

ProviderCatalog makeBuiltinCatalog() {
  ProviderCatalog catalog;
  catalog.add(builtinAmazon2008());
  catalog.add(builtinStorageHeavy());
  catalog.add(builtinComputeDiscount());
  catalog.add(builtinAmazon2010());
  catalog.add(builtinGcp2013());
  return catalog;
}

}  // namespace

const ProviderCatalog& ProviderCatalog::builtin() {
  static const ProviderCatalog catalog = makeBuiltinCatalog();
  return catalog;
}

// -- JSON codec --------------------------------------------------------------

namespace {

/// Accumulates the path-qualified error for the Expected channel; empty
/// while decoding is still on track.
class ProfileDecoder {
 public:
  explicit ProfileDecoder(const json::JsonValue& root) : root_(root) {}

  Expected<ProviderProfile> decode() {
    ProviderProfile p;
    if (!root_.isObject())
      return fail("profile: expected a JSON object at top level");

    static const std::vector<std::string> kKnown = {
        "name",          "display_name",    "year",
        "instance_types", "storage_classes", "transfer"};
    if (auto err = rejectUnknownKeys(root_, "profile", kKnown)) return *err;

    if (auto err = readString(root_, "profile", "name", p.name)) return *err;
    if (p.name.empty()) return fail("profile.name: must be non-empty");
    if (root_.has("display_name")) {
      if (auto err =
              readString(root_, "profile", "display_name", p.displayName))
        return *err;
    }
    if (root_.has("year")) {
      double year = 0.0;
      if (auto err = readNumber(root_, "profile", "year", year)) return *err;
      p.year = static_cast<int>(year);
    }

    if (auto err = decodeInstances(p)) return *err;
    if (auto err = decodeStorageClasses(p)) return *err;
    if (auto err = decodeTransfer(p)) return *err;
    return p;
  }

 private:
  using Error = Unexpected<std::string>;

  Error fail(std::string message) { return Error{std::move(message)}; }

  /// nullopt = ok; otherwise the error to return.
  std::optional<Error> rejectUnknownKeys(
      const json::JsonValue& obj, const std::string& where,
      const std::vector<std::string>& known) {
    for (const auto& [key, value] : obj.asObject()) {
      (void)value;
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        std::string hint;
        for (const std::string& k : known) {
          if (!hint.empty()) hint += ", ";
          hint += k;
        }
        return fail(where + ": unknown key '" + key + "' (known keys: " +
                    hint + ")");
      }
    }
    return std::nullopt;
  }

  std::optional<Error> readString(const json::JsonValue& obj,
                                  const std::string& where,
                                  const std::string& key, std::string& out) {
    if (!obj.has(key)) return fail(where + "." + key + ": missing");
    const json::JsonValue& v = obj.at(key);
    if (!v.isString())
      return fail(where + "." + key + ": expected a string");
    out = v.asString();
    return std::nullopt;
  }

  std::optional<Error> readNumber(const json::JsonValue& obj,
                                  const std::string& where,
                                  const std::string& key, double& out) {
    if (!obj.has(key)) return fail(where + "." + key + ": missing");
    const json::JsonValue& v = obj.at(key);
    if (!v.isNumber())
      return fail(where + "." + key + ": expected a number");
    out = v.asNumber();
    return std::nullopt;
  }

  std::optional<Error> readRate(const json::JsonValue& obj,
                                const std::string& where,
                                const std::string& key, Money& out) {
    double value = 0.0;
    if (auto err = readNumber(obj, where, key, value)) return err;
    if (value < 0.0)
      return fail(where + "." + key + ": must be >= 0, got " +
                  std::to_string(value));
    out = Money(value);
    return std::nullopt;
  }

  std::optional<Error> decodeInstances(ProviderProfile& p) {
    if (!root_.has("instance_types"))
      return fail("profile.instance_types: missing");
    const json::JsonValue& list = root_.at("instance_types");
    if (!list.isArray() || list.asArray().empty())
      return fail("profile.instance_types: expected a non-empty array");

    static const std::vector<std::string> kKnown = {
        "name",          "speed_factor", "hourly_rate",
        "billing",       "spot_discount", "interruptions_per_hour"};
    for (std::size_t i = 0; i < list.asArray().size(); ++i) {
      const json::JsonValue& entry = list.asArray()[i];
      const std::string where =
          "profile.instance_types[" + std::to_string(i) + "]";
      if (!entry.isObject()) return fail(where + ": expected an object");
      if (auto err = rejectUnknownKeys(entry, where, kKnown)) return err;

      InstanceType sku;
      if (auto err = readString(entry, where, "name", sku.name)) return err;
      if (sku.name.empty()) return fail(where + ".name: must be non-empty");
      if (auto err =
              readNumber(entry, where, "speed_factor", sku.speedFactor))
        return err;
      if (!(sku.speedFactor > 0.0))
        return fail(where + ".speed_factor: must be > 0, got " +
                    std::to_string(sku.speedFactor));
      if (auto err = readRate(entry, where, "hourly_rate", sku.hourlyRate))
        return err;
      std::string billing;
      if (auto err = readString(entry, where, "billing", billing)) return err;
      if (!parseBillingGranularity(billing, sku.granularity))
        return fail(where + ".billing: unknown granularity '" + billing +
                    "' (want per-second|per-minute|per-hour)");
      if (entry.has("spot_discount")) {
        if (auto err = readNumber(entry, where, "spot_discount",
                                  sku.spotDiscount))
          return err;
        if (sku.spotDiscount < 0.0 || sku.spotDiscount >= 1.0)
          return fail(where + ".spot_discount: must be in [0, 1), got " +
                      std::to_string(sku.spotDiscount));
      }
      if (entry.has("interruptions_per_hour")) {
        if (auto err = readNumber(entry, where, "interruptions_per_hour",
                                  sku.interruptionsPerHour))
          return err;
        if (sku.interruptionsPerHour < 0.0)
          return fail(where + ".interruptions_per_hour: must be >= 0, got " +
                      std::to_string(sku.interruptionsPerHour));
      }
      for (const InstanceType& existing : p.instanceTypes)
        if (existing.name == sku.name)
          return fail(where + ".name: duplicate instance type '" + sku.name +
                      "'");
      p.instanceTypes.push_back(std::move(sku));
    }
    return std::nullopt;
  }

  std::optional<Error> decodeStorageClasses(ProviderProfile& p) {
    if (!root_.has("storage_classes"))
      return fail("profile.storage_classes: missing");
    const json::JsonValue& list = root_.at("storage_classes");
    if (!list.isArray() || list.asArray().empty())
      return fail("profile.storage_classes: expected a non-empty array");

    static const std::vector<std::string> kKnown = {"name", "per_gb_month",
                                                    "retrieval_per_gb"};
    for (std::size_t i = 0; i < list.asArray().size(); ++i) {
      const json::JsonValue& entry = list.asArray()[i];
      const std::string where =
          "profile.storage_classes[" + std::to_string(i) + "]";
      if (!entry.isObject()) return fail(where + ": expected an object");
      if (auto err = rejectUnknownKeys(entry, where, kKnown)) return err;

      StorageClass cls;
      if (auto err = readString(entry, where, "name", cls.name)) return err;
      if (cls.name.empty()) return fail(where + ".name: must be non-empty");
      if (auto err = readRate(entry, where, "per_gb_month", cls.perGBMonth))
        return err;
      if (entry.has("retrieval_per_gb")) {
        if (auto err = readRate(entry, where, "retrieval_per_gb",
                                cls.retrievalPerGB))
          return err;
      }
      for (const StorageClass& existing : p.storageClasses)
        if (existing.name == cls.name)
          return fail(where + ".name: duplicate storage class '" + cls.name +
                      "'");
      p.storageClasses.push_back(std::move(cls));
    }
    return std::nullopt;
  }

  std::optional<Error> decodeTransfer(ProviderProfile& p) {
    if (!root_.has("transfer")) return fail("profile.transfer: missing");
    const json::JsonValue& obj = root_.at("transfer");
    if (!obj.isObject()) return fail("profile.transfer: expected an object");
    static const std::vector<std::string> kKnown = {"in_per_gb",
                                                    "out_per_gb"};
    if (auto err = rejectUnknownKeys(obj, "profile.transfer", kKnown))
      return err;
    if (auto err = readRate(obj, "profile.transfer", "in_per_gb",
                            p.transfer.inPerGB))
      return err;
    if (auto err = readRate(obj, "profile.transfer", "out_per_gb",
                            p.transfer.outPerGB))
      return err;
    return std::nullopt;
  }

  const json::JsonValue& root_;
};

}  // namespace

Expected<ProviderProfile> providerFromJson(const json::JsonValue& value) {
  return ProfileDecoder(value).decode();
}

json::JsonValue providerToJson(const ProviderProfile& profile) {
  json::JsonObject root;
  root["name"] = profile.name;
  if (!profile.displayName.empty())
    root["display_name"] = profile.displayName;
  if (profile.year != 0) root["year"] = profile.year;

  json::JsonArray instances;
  for (const InstanceType& sku : profile.instanceTypes) {
    json::JsonObject entry;
    entry["name"] = sku.name;
    entry["speed_factor"] = sku.speedFactor;
    entry["hourly_rate"] = sku.hourlyRate.value();
    entry["billing"] = std::string(billingGranularityName(sku.granularity));
    // Optional JSON keys are emitted only when set; 0.0 is the exact unset
    // default, never a computed rate.  mcsim-lint: allow(float-equality)
    if (sku.spotDiscount != 0.0) entry["spot_discount"] = sku.spotDiscount;
    if (sku.interruptionsPerHour != 0.0)  // mcsim-lint: allow(float-equality)
      entry["interruptions_per_hour"] = sku.interruptionsPerHour;
    instances.push_back(json::JsonValue(std::move(entry)));
  }
  root["instance_types"] = std::move(instances);

  json::JsonArray classes;
  for (const StorageClass& cls : profile.storageClasses) {
    json::JsonObject entry;
    entry["name"] = cls.name;
    entry["per_gb_month"] = cls.perGBMonth.value();
    if (cls.retrievalPerGB.value() != 0.0)  // mcsim-lint: allow(float-equality)
      entry["retrieval_per_gb"] = cls.retrievalPerGB.value();
    classes.push_back(json::JsonValue(std::move(entry)));
  }
  root["storage_classes"] = std::move(classes);

  json::JsonObject transfer;
  transfer["in_per_gb"] = profile.transfer.inPerGB.value();
  transfer["out_per_gb"] = profile.transfer.outPerGB.value();
  root["transfer"] = std::move(transfer);

  return json::JsonValue(std::move(root));
}

Expected<ProviderProfile> loadProviderProfile(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return makeUnexpected("cannot open provider profile '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  json::JsonValue doc{nullptr};
  try {
    doc = json::parseJson(buffer.str());
  } catch (const std::exception& e) {
    return makeUnexpected("provider profile '" + path +
                          "': " + std::string(e.what()));
  }
  Expected<ProviderProfile> profile = providerFromJson(doc);
  if (!profile)
    return makeUnexpected("provider profile '" + path +
                          "': " + profile.error());
  return profile;
}

Expected<ProviderCatalog> loadProviderCatalog(const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec))
    return makeUnexpected("provider catalog: '" + directory +
                          "' is not a directory");

  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    if (entry.path().extension() == ".json")
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty())
    return makeUnexpected("provider catalog: no *.json profiles in '" +
                          directory + "'");

  ProviderCatalog catalog;
  for (const std::string& path : paths) {
    Expected<ProviderProfile> profile = loadProviderProfile(path);
    if (!profile) return makeUnexpected(profile.error());
    if (catalog.contains(profile->name))
      return makeUnexpected("provider catalog: duplicate provider '" +
                            profile->name + "' (second copy in '" + path +
                            "')");
    catalog.add(std::move(*profile));
  }
  return catalog;
}

}  // namespace mcsim::cloud
