#include "mcsim/cloud/pricing.hpp"

namespace mcsim::cloud {

Pricing Pricing::amazon2008() {
  Pricing p;
  p.providerName = "amazon-2008";
  p.storagePerGBMonth = Money(0.15);
  p.transferInPerGB = Money(0.10);
  p.transferOutPerGB = Money(0.16);
  p.cpuPerHour = Money(0.10);
  return p;
}

Pricing Pricing::storageHeavyProvider() {
  // Deliberately far past the crossover: at full parallelism files are
  // resident for seconds, so regular-mode storage only overtakes remote-mode
  // transfer once the storage/transfer price ratio is ~10^4 x Amazon's.
  Pricing p;
  p.providerName = "storage-heavy";
  p.storagePerGBMonth = Money(75.00);
  p.transferInPerGB = Money(0.001);
  p.transferOutPerGB = Money(0.0016);
  p.cpuPerHour = Money(0.10);
  return p;
}

Pricing Pricing::computeDiscountProvider() {
  Pricing p;
  p.providerName = "compute-discount";
  p.storagePerGBMonth = Money(0.30);
  p.transferInPerGB = Money(0.12);
  p.transferOutPerGB = Money(0.20);
  p.cpuPerHour = Money(0.025);
  return p;
}

}  // namespace mcsim::cloud
