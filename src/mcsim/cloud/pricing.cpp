#include "mcsim/cloud/pricing.hpp"

#include "mcsim/cloud/provider.hpp"

namespace mcsim::cloud {

// The three historical statics are compat shims over the provider catalog
// (cloud/provider.hpp).  Each returns the catalog profile's default-SKU
// pricing view, which tests assert byte-identical to the pre-catalog
// hand-written fee tables — existing sweep goldens are unchanged.

Pricing Pricing::amazon2008() {
  return ProviderCatalog::builtin().pricing("amazon-2008");
}

Pricing Pricing::storageHeavyProvider() {
  return ProviderCatalog::builtin().pricing("storage-heavy");
}

Pricing Pricing::computeDiscountProvider() {
  return ProviderCatalog::builtin().pricing("compute-discount");
}

}  // namespace mcsim::cloud
