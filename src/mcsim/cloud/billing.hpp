// Billing policies and the cost-breakdown record every experiment reports.
//
// The paper normalizes to per-second charging (§3) but notes real providers
// bill "based on hourly or monthly usage"; the granularity ablation
// quantifies what that idealization hides.  Two CPU accounting schemes
// appear in the paper:
//   * Provisioned (Question 1): the application pays for P processors for
//     the entire workflow run — cost = P × makespan × rate.
//   * Usage (Question 2): resources are shared across many requests, so a
//     request is charged only for the CPU seconds its tasks consume.
#pragma once

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/util/units.hpp"

namespace mcsim::cloud {

enum class CpuBillingMode {
  Provisioned,  ///< P processors × makespan (Question 1).
  Usage,        ///< Σ task runtimes (Question 2; mode-invariant, Fig 10).
};

enum class BillingGranularity {
  PerSecond,  ///< The paper's idealization.
  PerMinute,  ///< GCP-style: each instance-minute started is charged.
  PerHour,    ///< Real 2008 EC2: each instance-hour started is charged.
};

/// Quantize a duration according to the granularity (per-hour rounds up to
/// whole hours, per-minute to whole minutes; zero stays zero).
double billedSeconds(double actualSeconds, BillingGranularity granularity);

/// "per-second" / "per-minute" / "per-hour" — the provider-profile JSON
/// vocabulary (cloud/provider.hpp).
const char* billingGranularityName(BillingGranularity granularity);

/// Inverse of billingGranularityName; nullptr-free: returns false and
/// leaves `out` untouched on an unknown name.
bool parseBillingGranularity(const std::string& name,
                             BillingGranularity& out);

/// Itemized cost of one workflow execution.
struct CostBreakdown {
  Money cpu;
  Money storage;         ///< Without dynamic cleanup.
  Money storageCleanup;  ///< With dynamic cleanup (<= storage).
  Money transferIn;
  Money transferOut;

  Money transfer() const { return transferIn + transferOut; }
  /// Data-management cost (paper's "DM" in Fig 10): everything except CPU,
  /// using the no-cleanup storage figure.
  Money dataManagement() const { return storage + transfer(); }
  /// Total as the paper plots it (storage without cleanup; §6: "The total
  /// costs shown in the Figure are computed using the storage costs without
  /// cleanup").
  Money total() const { return cpu + storage + transfer(); }
  /// Total when cleanup is enabled.
  Money totalWithCleanup() const { return cpu + storageCleanup + transfer(); }
};

}  // namespace mcsim::cloud
