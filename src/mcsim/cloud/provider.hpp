// Provider catalog: named cloud providers with multi-generation SKUs.
//
// The paper's cost analysis (§3, §6) hangs on one fee table — Amazon's 2008
// rates — and its what-if scenarios are hand-written variations of it.  The
// catalog makes provider choice a first-class modeled axis: each
// ProviderProfile carries instance types (relative speed, hourly rate,
// billing granularity, optional spot-style discount + interruption rate),
// tiered storage classes (per-GB-month rate, retrieval fee) and a transfer
// table (ingress/egress, which also prices cross-provider hops: leaving one
// provider pays its egress, entering another pays that one's ingress).
//
// Profiles serialize to/from JSON (config/providers/*.json ships one file
// per builtin profile); parsing validates through Expected<> so fuzzed or
// hand-edited profiles are rejected with actionable messages instead of
// exceptions.  The legacy `Pricing` struct survives as a normalized
// per-reference-CPU view derived from a catalog entry via
// ProviderProfile::pricing() — the three historical statics
// (Pricing::amazon2008() & friends) are now thin shims over the catalog and
// stay byte-identical to their pre-catalog values.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mcsim/cloud/billing.hpp"
#include "mcsim/cloud/pricing.hpp"
#include "mcsim/util/expected.hpp"
#include "mcsim/util/units.hpp"

namespace mcsim::json {
class JsonValue;
}

namespace mcsim::cloud {

/// One purchasable compute SKU.  `speedFactor` is relative to the paper's
/// reference processor (the machine whose task runtimes the workflows are
/// calibrated in): a task of r reference-seconds takes r / speedFactor wall
/// seconds on this instance.
struct InstanceType {
  std::string name;           ///< e.g. "m1.small".
  double speedFactor = 1.0;   ///< > 0; 1.0 = the paper's reference CPU.
  Money hourlyRate;           ///< On-demand $ per instance-hour.
  BillingGranularity granularity = BillingGranularity::PerSecond;
  /// Spot-style pricing: fraction off `hourlyRate` when bidding for
  /// reclaimable capacity (0 = no spot market for this SKU) and the
  /// expected reclaims per provisioned instance-hour that come with it.
  double spotDiscount = 0.0;          ///< In [0, 1).
  double interruptionsPerHour = 0.0;  ///< >= 0; meaningful when spot.

  bool spotCapable() const { return spotDiscount > 0.0; }
  /// $ per instance-hour actually paid.
  Money effectiveHourlyRate(bool spot) const {
    return spot ? hourlyRate * (1.0 - spotDiscount) : hourlyRate;
  }
};

/// One storage tier.  Archive-style tiers trade a low resting rate for a
/// per-GB retrieval fee on every read-back.
struct StorageClass {
  std::string name;       ///< e.g. "standard", "glacier".
  Money perGBMonth;       ///< Resting rate, $ per GB-month (30-day months).
  Money retrievalPerGB;   ///< Read-back fee; 0 for online tiers.

  double dollarsPerByteSecond() const {
    return perGBMonth.value() / kBytesPerGB / kSecondsPerMonth;
  }
};

/// Ingress/egress rates at the provider's boundary.  Cross-provider moves
/// pay the source's `outPerGB` plus the destination's `inPerGB`;
/// intra-provider access is free (as with EC2 <-> S3).
struct TransferRates {
  Money inPerGB;
  Money outPerGB;
};

/// A named provider: one generation of one vendor's fee schedule.
struct ProviderProfile {
  std::string name;         ///< Catalog key, e.g. "amazon-2008".
  std::string displayName;  ///< Human-facing, e.g. "Amazon EC2+S3 (2008)".
  int year = 0;             ///< Fee-schedule vintage.
  std::vector<InstanceType> instanceTypes;    ///< Non-empty; [0] = default.
  std::vector<StorageClass> storageClasses;   ///< Non-empty; [0] = default.
  TransferRates transfer;

  /// nullptr when the SKU name is unknown; "" selects the default.
  const InstanceType* findInstance(const std::string& skuName) const;
  const StorageClass* findStorageClass(const std::string& className) const;
  const InstanceType& defaultInstance() const { return instanceTypes.front(); }
  const StorageClass& defaultStorageClass() const {
    return storageClasses.front();
  }

  /// The legacy normalized fee view the sweeps consume.  CPU is expressed
  /// per reference-CPU-hour (instance rate / speedFactor) so usage-billed
  /// costs of calibrated workflows come out right; storage and transfer
  /// come from the chosen class and the transfer table.  "" picks the
  /// defaults; unknown SKU names throw std::out_of_range.
  Pricing pricing(const std::string& instance = "",
                  const std::string& storageClass = "") const;
};

/// An ordered set of provider profiles, keyed (and iterated) by name.
class ProviderCatalog {
 public:
  /// The built-in market: the paper's fee table plus its two what-if
  /// providers, and two later-generation profiles (multi-SKU Amazon 2010
  /// with spot + Glacier-style archive, GCP 2013 with per-minute billing
  /// and free ingress).  Immutable; construct-on-first-use.
  static const ProviderCatalog& builtin();

  bool contains(const std::string& name) const;
  /// nullptr when absent.
  const ProviderProfile* find(const std::string& name) const;
  /// Throws std::out_of_range listing the known names when absent.
  const ProviderProfile& at(const std::string& name) const;
  /// at(name).pricing(instance, storageClass) — the one-line lookup the
  /// migrated call sites use.
  Pricing pricing(const std::string& name, const std::string& instance = "",
                  const std::string& storageClass = "") const;

  /// Insert or replace by profile name.
  void add(ProviderProfile profile);

  std::size_t size() const { return profiles_.size(); }
  std::vector<std::string> names() const;  ///< Sorted (map order).
  const std::map<std::string, ProviderProfile>& profiles() const {
    return profiles_;
  }

 private:
  std::map<std::string, ProviderProfile> profiles_;
};

// -- JSON codec (config/providers/*.json) ------------------------------------
//
// Schema (all keys required unless noted; unknown keys are rejected):
//   {
//     "name": "amazon-2008",
//     "display_name": "Amazon EC2 + S3 (2008 fee table)",   // optional
//     "year": 2008,                                          // optional
//     "instance_types": [
//       {"name": "m1.small", "speed_factor": 1.0, "hourly_rate": 0.10,
//        "billing": "per-second",            // per-second|per-minute|per-hour
//        "spot_discount": 0.0,               // optional, [0,1)
//        "interruptions_per_hour": 0.0}      // optional, >= 0
//     ],
//     "storage_classes": [
//       {"name": "standard", "per_gb_month": 0.15,
//        "retrieval_per_gb": 0.0}            // optional, >= 0
//     ],
//     "transfer": {"in_per_gb": 0.10, "out_per_gb": 0.16}
//   }

/// Validate and decode one profile; errors are one-line actionable messages
/// ("instance_types[1].speed_factor: must be > 0, got -2").
Expected<ProviderProfile> providerFromJson(const json::JsonValue& value);

/// Deterministic encoding: round-trips through providerFromJson to an
/// identical fee schedule (same doubles — the writer's %.12g covers every
/// rate the catalog carries).
json::JsonValue providerToJson(const ProviderProfile& profile);

/// Parse one config/providers/<name>.json file.  I/O and JSON syntax errors
/// come back through the same Expected channel as validation failures.
Expected<ProviderProfile> loadProviderProfile(const std::string& path);

/// Load every *.json in `directory` into a catalog (sorted file order).
/// Fails on the first unreadable or invalid profile — the committed-profile
/// validation test runs this over config/providers/ so a bad profile fails
/// the build.
Expected<ProviderCatalog> loadProviderCatalog(const std::string& directory);

}  // namespace mcsim::cloud
