// Cloud storage service (the S3 stand-in).
//
// Tracks which logical objects are resident, integrates the resident-bytes
// curve over simulation time (the paper's GB-hours metric), and records the
// peak footprint.  Capacity is infinite by default ("storage system with
// infinite capacity", §5); a finite capacity can be configured for
// storage-constrained what-ifs, in which case an over-commit throws (this
// simulator never silently drops data).
//
// The usage curve is a flat sorted event vector with incremental area
// accounting (see util/usage_curve.hpp): byteSecondsUsed(), peakBytes() and
// gbHoursUsed() are O(1) while the simulation records in time order, so
// per-sample billing integration no longer rescans the curve.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mcsim/sim/simulator.hpp"
#include "mcsim/util/units.hpp"
#include "mcsim/util/usage_curve.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::cloud {

/// Designated-initializer construction options (PR 3 config-struct style).
struct StorageConfig {
  /// Resident-byte capacity; must be > 0.  Infinite by default (§5).
  double capacityBytes = std::numeric_limits<double>::infinity();
};

class StorageService {
 public:
  /// Unlimited capacity (§5 default).
  explicit StorageService(sim::Simulator& sim)
      : StorageService(sim, StorageConfig{}) {}

  StorageService(sim::Simulator& sim, const StorageConfig& config);

  [[deprecated("use StorageService(sim, StorageConfig{.capacityBytes = ...}) "
               "— see DESIGN.md deprecation schedule")]]
  StorageService(sim::Simulator& sim, Bytes capacity)
      : StorageService(sim, StorageConfig{capacity.value()}) {}

  /// An object lands on storage now.  `key` must not already be resident.
  void put(std::uint64_t key, Bytes size);
  /// Remove a resident object now.  Unknown keys throw.
  void erase(std::uint64_t key);
  /// True if the object is currently resident.
  bool contains(std::uint64_t key) const;
  /// Size of a resident object; throws if absent.
  Bytes sizeOf(std::uint64_t key) const;

  Bytes residentBytes() const { return Bytes(residentBytes_); }
  std::size_t objectCount() const { return objects_.size(); }
  Bytes peakBytes() const { return curve_.peak(); }

  /// Area under the resident-bytes curve from t=0 to the current simulation
  /// time, in byte-seconds (the quantity the storage fee applies to).
  double byteSecondsUsed() const;
  /// Same, in GB-hours (the paper's reporting unit).
  double gbHoursUsed() const;

  const UsageCurve& curve() const { return curve_; }

  /// Configure unavailability windows (S3 outage injection) as sorted,
  /// non-overlapping [start, end) second intervals.  The service keeps
  /// accepting put/erase during a window — residency bookkeeping is the
  /// engine's ground truth — but exposes availability queries so callers can
  /// defer commits until the service is back.
  void setOutages(std::vector<std::pair<double, double>> windows);
  const std::vector<std::pair<double, double>>& outages() const {
    return outages_;
  }

  /// True if no outage window covers time `t`.
  bool availableAt(double t) const { return availableFrom(t) == t; }
  /// Earliest time >= `t` at which the service is available (the end of the
  /// window covering `t`, else `t` itself).  Binary search over the sorted
  /// window vector.
  double availableFrom(double t) const;

  /// Install a telemetry sink (file create / delete); nullptr disables.
  void setObserver(obs::Sink* observer) { observer_ = observer; }

 private:
  sim::Simulator& sim_;
  Bytes capacity_;
  std::vector<std::pair<double, double>> outages_;  ///< Sorted [start, end).
  std::unordered_map<std::uint64_t, double> objects_;
  double residentBytes_ = 0.0;
  UsageCurve curve_;
  obs::Sink* observer_ = nullptr;
};

}  // namespace mcsim::cloud
