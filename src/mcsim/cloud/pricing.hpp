// Cloud fee structure and per-second normalization (paper §3).
//
// "As of the writing of this paper, the charging rates were: $0.15 per
// GB-Month for storage, $0.1 per GB for transferring data in, $0.16 per GB
// for transferring data out, $0.1 per CPU-hour ... in our experiments we
// normalized the costs on a per second basis" — and §6: "we ignore
// limitations on the granularity of Amazon fee structure in time and assume
// the least possible granularity i.e. $ per Byte-seconds for storage, $ per
// Bytes for transfers and $ per CPU-second for compute resources."
//
// Conventions: 1 GB = 1e9 bytes, 1 month = 30 days (see units.hpp).
#pragma once

#include <string>

#include "mcsim/util/units.hpp"

namespace mcsim::cloud {

/// A provider's fee schedule in its natural units, with normalized-rate
/// helpers.  Accessing data on storage from compute resources is free (as
/// with EC2→S3), so no rate exists for it.
struct Pricing {
  std::string providerName = "unnamed";
  Money storagePerGBMonth{0.0};
  Money transferInPerGB{0.0};
  Money transferOutPerGB{0.0};
  Money cpuPerHour{0.0};

  // -- normalized rates (dollars per base unit) -----------------------------
  double storageDollarsPerByteSecond() const {
    return storagePerGBMonth.value() / kBytesPerGB / kSecondsPerMonth;
  }
  double transferInDollarsPerByte() const {
    return transferInPerGB.value() / kBytesPerGB;
  }
  double transferOutDollarsPerByte() const {
    return transferOutPerGB.value() / kBytesPerGB;
  }
  double cpuDollarsPerSecond() const {
    return cpuPerHour.value() / kSecondsPerHour;
  }

  // -- cost helpers ----------------------------------------------------------
  Money storageCost(double byteSeconds) const {
    return Money(byteSeconds * storageDollarsPerByteSecond());
  }
  Money transferInCost(Bytes amount) const {
    return Money(amount.value() * transferInDollarsPerByte());
  }
  Money transferOutCost(Bytes amount) const {
    return Money(amount.value() * transferOutDollarsPerByte());
  }
  Money cpuCost(double cpuSeconds) const {
    return Money(cpuSeconds * cpuDollarsPerSecond());
  }
  /// Cost of keeping `amount` resident for `seconds`.
  Money storageCost(Bytes amount, double seconds) const {
    return storageCost(amount.value() * seconds);
  }

  // -- compat shims over the provider catalog -------------------------------
  // New code should look fee schedules up by name —
  // `ProviderCatalog::builtin().pricing("amazon-2008")` (cloud/provider.hpp)
  // — which also exposes the multi-SKU axes (instance types, storage
  // classes) these single-rate views flatten away.  The shims return values
  // byte-identical to the pre-catalog hand-written tables.

  /// The paper's fee table (Amazon EC2 + S3, 2008); catalog "amazon-2008".
  static Pricing amazon2008();

  /// Hypothetical provider from the paper's what-if (§6, Question 2a): "If
  /// the storage charges were higher and transfer costs were lower, it is
  /// possible that the Remote I/O mode would have resulted in the least
  /// total cost of the three."  Storage 40x more expensive, transfers 10x
  /// cheaper, same CPU rate; catalog "storage-heavy".
  static Pricing storageHeavyProvider();

  /// A compute-discounted provider (used by the fee-structure ablation to
  /// show how provider choice shifts the provisioning sweet spot); catalog
  /// "compute-discount".
  static Pricing computeDiscountProvider();
};

}  // namespace mcsim::cloud
