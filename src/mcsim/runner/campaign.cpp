#include "mcsim/runner/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/jobs.hpp"

namespace mcsim::runner {

CampaignResult runCampaign(const std::vector<dag::Workflow>& shards,
                           const CampaignOptions& options) {
  if (shards.empty())
    throw std::invalid_argument("runCampaign: no shards");
  if (options.engine.observer != nullptr)
    throw std::invalid_argument(
        "runCampaign: options.engine.observer must be nullptr (observation "
        "is managed per shard; use CampaignOptions::observer)");

  std::vector<ScenarioSpec> specs;
  specs.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ScenarioSpec spec;
    spec.workflow = &shards[i];
    spec.config = options.engine;
    spec.label = "shard" + std::to_string(i);
    specs.push_back(std::move(spec));
  }

  RunnerOptions runnerOptions;
  runnerOptions.jobs = options.jobs;
  runnerOptions.baseSeed = options.baseSeed;
  runnerOptions.observer = options.observer;
  runnerOptions.cache = options.cache;

  CampaignResult campaign;
  campaign.shards = shards.size();
  campaign.shardResults = runOnQueue(options.queue, specs, runnerOptions);

  for (const ScenarioResult& shard : campaign.shardResults) {
    const engine::ExecutionResult& r = shard.result;
    campaign.tasks += r.tasksExecuted;
    campaign.makespanSeconds =
        std::max(campaign.makespanSeconds, r.makespanSeconds);
    campaign.serializedMakespanSeconds += r.makespanSeconds;
    campaign.totalCpuSeconds += r.cpuBusySeconds;
    campaign.bytesIn += r.bytesIn;
    campaign.bytesOut += r.bytesOut;
    campaign.storageByteSeconds += r.storageByteSeconds;
    campaign.completed = campaign.completed && r.completed();
  }

  // Roll-ups ride behind the deterministic merged shard streams, exactly
  // like the runner's own cache-stats event: one ShardCompleted per shard
  // (stamped with that shard's simulated makespan), then the campaign
  // summary at the campaign makespan.
  if (obs::Sink* sink = options.observer) {
    if (sink->accepts(obs::kEventKindOf<obs::ShardCompleted>))
      for (const ScenarioResult& shard : campaign.shardResults)
        sink->onEvent({shard.result.makespanSeconds,
                       obs::ShardCompleted{shard.index, campaign.shards,
                                           shard.result.tasksExecuted,
                                           shard.result.makespanSeconds}});
    if (sink->accepts(obs::kEventKindOf<obs::CampaignCompleted>))
      sink->onEvent({campaign.makespanSeconds,
                     obs::CampaignCompleted{campaign.shards, campaign.tasks,
                                            campaign.makespanSeconds,
                                            campaign.totalCpuSeconds}});
  }
  return campaign;
}

}  // namespace mcsim::runner
