#include "mcsim/runner/memo.hpp"

#include <cstring>
#include <string_view>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/faults/faults.hpp"
#include "mcsim/util/contract.hpp"
#include "mcsim/util/usage_curve.hpp"

namespace mcsim::runner {
namespace {

// FNV-1a, 64-bit.  Not cryptographic — collision of two *different*
// scenarios inside one process's sweeps is the only failure mode, and at
// ~10^4 distinct points per process the 64-bit birthday bound (~10^9) has
// comfortable margin.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

class Fnv {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= p[i];
      state_ *= kFnvPrime;
    }
  }
  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    // +0.0 and -0.0 compare equal but differ in bits; canonicalize so
    // behaviorally identical configs share a key.  The comparison is exact
    // on purpose.  mcsim-lint: allow(float-equality)
    if (v == 0.0) v = 0.0;
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kFnvOffset;
};

void hashOutages(Fnv& h, const std::vector<faults::OutageWindow>& outages) {
  h.u64(outages.size());
  for (const auto& w : outages) {
    h.f64(w.startSeconds);
    h.f64(w.durationSeconds);
  }
}

}  // namespace

std::uint64_t fingerprintWorkflow(const dag::Workflow& workflow) {
  Fnv h;
  h.str(workflow.name());
  const auto& tasks = workflow.tasks();
  h.u64(tasks.size());
  for (const auto& t : tasks) {
    h.str(t.name);
    h.str(t.type);
    h.f64(t.runtimeSeconds);
    h.f64(t.earliestStartSeconds);
    h.u64(t.inputs.size());
    for (dag::FileId f : t.inputs) h.u32(f);
    h.u64(t.outputs.size());
    for (dag::FileId f : t.outputs) h.u32(f);
  }
  const auto& files = workflow.files();
  h.u64(files.size());
  for (const auto& f : files) {
    h.str(f.name);
    h.f64(f.size.value());
    h.u32(f.producer);
    h.u8(f.explicitOutput ? 1 : 0);
  }
  const auto& ctrl = workflow.controlDependencies();
  h.u64(ctrl.size());
  for (const auto& [parent, child] : ctrl) {
    h.u32(parent);
    h.u32(child);
  }
  return h.value();
}

std::uint64_t fingerprintConfig(const engine::EngineConfig& config,
                                bool captureEvents) {
  Fnv h;
  h.u8(static_cast<std::uint8_t>(config.mode));
  h.u32(static_cast<std::uint32_t>(config.processors));
  h.f64(config.linkBandwidthBytesPerSec);
  h.u8(static_cast<std::uint8_t>(config.linkSharing));
  h.u8(static_cast<std::uint8_t>(config.scheduler));
  h.f64(config.vmStartupSeconds);
  h.f64(config.vmTeardownSeconds);
  h.u64(config.outages.size());
  for (const auto& w : config.outages) {
    h.f64(w.startSeconds);
    h.f64(w.durationSeconds);
  }
  h.f64(config.storageCapacityBytes);
  h.f64(config.taskFailureProbability);
  h.u64(config.failureSeed);
  h.u8(config.trace ? 1 : 0);
  h.f64(config.samplePeriodSeconds);
  h.u8(config.profile ? 1 : 0);
  h.u8(config.referenceCore ? 1 : 0);

  const faults::FaultConfig& f = config.faults;
  h.f64(f.processor.mtbfSeconds);
  hashOutages(h, f.link.outages);
  hashOutages(h, f.storage.outages);
  h.u8(static_cast<std::uint8_t>(f.retry.kind));
  h.u32(static_cast<std::uint32_t>(f.retry.maxRetries));
  h.f64(f.retry.delaySeconds);
  h.f64(f.retry.multiplier);
  h.f64(f.retry.maxDelaySeconds);
  h.f64(f.retry.jitterFraction);
  h.f64(f.legacy.probability);
  h.u64(f.legacy.seed);
  h.f64(f.deadlineSeconds);
  h.u64(f.seed);

  h.u8(captureEvents ? 1 : 0);
  return h.value();
}

std::uint64_t fingerprintScenario(const dag::Workflow& workflow,
                                  const engine::EngineConfig& config,
                                  bool captureEvents) {
  return combineFingerprints(fingerprintWorkflow(workflow),
                             fingerprintConfig(config, captureEvents));
}

std::uint64_t combineFingerprints(std::uint64_t workflowFingerprint,
                                  std::uint64_t configFingerprint) {
  Fnv h;
  h.u64(workflowFingerprint);
  h.u64(configFingerprint);
  return h.value();
}

namespace {

/// Approximate resident footprint of one entry: the struct itself plus the
/// dominant heap vectors (event stream, per-task records, storage curve).
/// Strings inside log events are not chased — this is a capacity signal,
/// not an allocator audit.
std::size_t approxEntryBytes(const ScenarioMemoCache::Entry& entry) {
  return sizeof(ScenarioMemoCache::Entry) +
         entry.events.size() * sizeof(obs::Event) +
         entry.result.taskRecords.size() * sizeof(engine::TaskRecord) +
         entry.result.storageCurve.eventCount() * sizeof(UsageEvent);
}

}  // namespace

void ScenarioMemoCache::touch(const Node& node) const {
  lru_.splice(lru_.begin(), lru_, node.recency);
}

void ScenarioMemoCache::evictOverCapacityLocked() {
  const auto over = [&] {
    return (options_.maxEntries != 0 &&
            entries_.size() > options_.maxEntries) ||
           (options_.maxBytes != 0 && bytes_ > options_.maxBytes);
  };
  while (over() && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    const auto it = entries_.find(victim);
    MCSIM_ASSERT(it != entries_.end(), "memo LRU key ", victim,
                 " missing from the entry map");
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

std::optional<ScenarioMemoCache::Entry> ScenarioMemoCache::lookup(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  touch(it->second);
  return it->second.entry;
}

std::optional<ScenarioMemoCache::Entry> ScenarioMemoCache::peek(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  touch(it->second);
  return it->second.entry;
}

bool ScenarioMemoCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

void ScenarioMemoCache::insert(std::uint64_t key, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fingerprint stability: re-running a memoized scenario must reproduce the
  // cached result.  A mismatch here means either the fingerprint missed a
  // config field (two scenarios collided) or the engine went nondeterministic.
  const auto it = entries_.find(key);
  MCSIM_ASSERT(it == entries_.end() ||
                   (it->second.entry.result.makespanSeconds ==
                        entry.result.makespanSeconds &&
                    it->second.entry.events.size() == entry.events.size()),
               "memo key ", key, " re-inserted with a different result");
  const std::size_t entryBytes = approxEntryBytes(entry);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.entry = std::move(entry);
    it->second.bytes = entryBytes;
    touch(it->second);
  } else {
    lru_.push_front(key);
    Node node;
    node.entry = std::move(entry);
    node.bytes = entryBytes;
    node.recency = lru_.begin();
    entries_.emplace(key, std::move(node));
  }
  bytes_ += entryBytes;
  evictOverCapacityLocked();
}

void ScenarioMemoCache::recordBatchHits(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  hits_ += n;
}

MemoStats ScenarioMemoCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MemoStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = entries_.size();
  stats.evictions = evictions_;
  stats.bytes = bytes_;
  return stats;
}

std::size_t ScenarioMemoCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ScenarioMemoCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  evictions_ = 0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mcsim::runner
