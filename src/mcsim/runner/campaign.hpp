// Campaign mode: simulate a sharded survey as one logical experiment.
//
// A survey campaign (workflows/survey) splits into independent shards —
// disjoint tile ranges with no shared files — and each shard is a complete
// workflow.  Campaign mode runs every shard as a scenario on the parallel
// Runner, modeling a survey operator who provisions one processor pool per
// shard and runs them concurrently, then rolls the shard results up into
// campaign-level aggregates.  This is the scale at which the runner's
// thread pool finally sees real work per scenario: one shard of a 10⁶-task
// campaign simulates for seconds, not microseconds.
//
// Determinism matches the Runner's guarantees: shard outcomes are pure
// functions of (shard workflow, config, derived seed), so campaign results
// are identical for any `jobs` value, and the observer's merged stream is
// byte-identical to a serial sweep, followed by one obs::ShardCompleted per
// shard and a final obs::CampaignCompleted roll-up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::runner {

class JobQueue;

struct CampaignOptions {
  /// Per-shard platform configuration (processors, data mode, link,
  /// faults...).  `engine.observer` must be nullptr — observation is
  /// managed per scenario by the Runner; `engine.profile` is forced off.
  engine::EngineConfig engine;
  /// Worker threads simulating shards concurrently; 0 = serial legacy path.
  int jobs = defaultJobs();
  /// != 0: shard i simulates with fault seed deriveSeed(baseSeed, i).
  std::uint64_t baseSeed = 0;
  /// Receives the deterministic merged shard streams, then ShardCompleted /
  /// CampaignCompleted roll-ups.  Borrowed; may be nullptr.
  obs::Sink* observer = nullptr;
  /// Optional scenario memo cache shared with other runs.
  ScenarioMemoCache* cache = nullptr;
  /// Run the shard batch on this persistent JobQueue instead of a one-shot
  /// runner; its workers and cache supersede `jobs`/`cache`.  Borrowed.
  JobQueue* queue = nullptr;
};

/// Campaign-level aggregates over the shard results.
struct CampaignResult {
  std::size_t shards = 0;
  std::size_t tasks = 0;             ///< Σ tasks executed across shards.
  /// Campaign makespan with one pool per shard running concurrently:
  /// max over shard makespans.
  double makespanSeconds = 0.0;
  /// Makespan if one pool ran the shards back to back: Σ shard makespans.
  /// serialized / concurrent is the campaign-level parallel speedup bound.
  double serializedMakespanSeconds = 0.0;
  double totalCpuSeconds = 0.0;      ///< Σ executed task runtimes.
  Bytes bytesIn;                     ///< Σ archive -> cloud transfers.
  Bytes bytesOut;                    ///< Σ cloud -> user transfers.
  double storageByteSeconds = 0.0;   ///< Σ storage residency integrals.
  bool completed = true;             ///< Every shard ran every task.
  /// Per-shard outcomes, in shard order (ScenarioResult::index = shard).
  std::vector<ScenarioResult> shardResults;
};

/// Simulate every shard and aggregate.  Shards are borrowed and must
/// outlive the call.  Throws std::invalid_argument on an empty shard list
/// or a non-null options.engine.observer; shard simulation failures
/// propagate like Runner::run.
CampaignResult runCampaign(const std::vector<dag::Workflow>& shards,
                           const CampaignOptions& options = {});

}  // namespace mcsim::runner
