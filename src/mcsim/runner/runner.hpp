// Parallel scenario runner: executes many independent, single-threaded,
// deterministic simulations concurrently on a fixed worker pool.
//
// The design follows the GridSim/CloudSim lineage of discrete-event cloud
// simulators: parallelism lives *between* whole experiments, never inside
// one event loop.  Every evaluation figure in the paper is a sweep of
// independent runs, so this is exactly the granularity at which the
// hardware can be saturated without giving up bit-reproducibility.
//
// Guarantees (see DESIGN.md "Concurrency model"):
//  * Results are returned in spec order and are identical for any `jobs`
//    value, including 0 — a scenario's outcome is a pure function of its
//    spec, never of scheduling.
//  * Telemetry: each scenario is observed by a private in-memory sink;
//    at join the per-scenario streams are replayed into
//    RunnerOptions::observer in ascending scenario index, so the merged
//    stream is byte-identical to a serial instrumented sweep.
//  * Seeds: with RunnerOptions::baseSeed != 0 each scenario's fault seed is
//    deriveSeed(baseSeed, index) — a pure hash, so adding, removing or
//    reordering workers never changes any scenario's randomness.
//  * Errors: the first scenario failure cancels the batch (workers stop
//    picking up new scenarios; in-flight simulations finish) and run()
//    rethrows the failure with the smallest scenario index observed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mcsim/engine/engine.hpp"
#include "mcsim/obs/event.hpp"

namespace mcsim::dag {
class Workflow;
}

namespace mcsim::runner {

class ScenarioMemoCache;

/// The worker-pool default: one job per hardware thread (never 0).
int defaultJobs();

/// Pure 64-bit mix (splitmix64) of a base seed and a scenario index.
/// Distinct indices give statistically independent seeds, and the result
/// depends only on (baseSeed, scenarioIndex) — not on worker assignment or
/// completion order.
std::uint64_t deriveSeed(std::uint64_t baseSeed, std::uint64_t scenarioIndex);

/// One independent simulation: a workflow reference plus the full platform
/// configuration (data mode, processors, link, faults, seed...).  The
/// workflow is borrowed and must outlive the run; `config.observer` must be
/// nullptr — per-scenario observation is managed by the Runner (a sink
/// shared across concurrent scenarios would race).
struct ScenarioSpec {
  const dag::Workflow* workflow = nullptr;
  engine::EngineConfig config;
  std::string label;  ///< Optional; carried through to the result.
};

/// The outcome of one scenario, at its spec's index.
struct ScenarioResult {
  std::size_t index = 0;
  std::string label;
  engine::ExecutionResult result;
  /// The scenario's full event stream, retained only when
  /// RunnerOptions::keepEvents is set.
  std::vector<obs::Event> events;
  /// True if this scenario was served without simulating — from a
  /// RunnerOptions::cache entry or by deduplicating against an identical
  /// scenario earlier in the same batch.  Always false without a cache.
  bool fromCache = false;
};

struct RunnerOptions {
  /// Worker threads.  0 = serial in the caller's thread — the exact legacy
  /// code path (same call order, no pool), kept for debugging.  Values
  /// above the batch size are clamped.
  int jobs = defaultJobs();
  /// != 0: overwrite each scenario's `config.faults.seed` with
  /// deriveSeed(baseSeed, index).  0 (default) leaves spec seeds untouched.
  std::uint64_t baseSeed = 0;
  /// Receives every scenario's events, merged deterministically at join in
  /// ascending scenario index.  Borrowed; may be nullptr.
  obs::Sink* observer = nullptr;
  /// Retain each scenario's event stream in ScenarioResult::events.
  bool keepEvents = false;
  /// Optional scenario memo cache (see runner/memo.hpp).  When set, each
  /// scenario is fingerprinted over its workflow content and effective
  /// engine config (base-seed override applied, capture shape included)
  /// before anything runs; scenarios whose fingerprint is already cached —
  /// or repeated within the batch — are served by replaying the stored
  /// result and event stream, byte-identical to a fresh run.  Newly
  /// simulated scenarios are inserted.  Borrowed; may be shared across
  /// Runner instances and concurrent run() calls.  When `observer` is also
  /// set, one obs::ScenarioCacheStats event is appended after the merged
  /// streams.
  ScenarioMemoCache* cache = nullptr;
  /// Emit runner self-profiling events (one obs::WorkerProfile per worker,
  /// then one obs::RunnerBatchProfile) to `observer` after the merged
  /// streams and cache stats.  Off by default: the profile events carry
  /// host wall-clock, so they are appended *after* the deterministic merged
  /// stream and never captured, memoized, or kept in ScenarioResult::events.
  /// Scenario configs always run with EngineConfig::profile forced off for
  /// the same reason.
  bool profile = false;
};

class Runner {
 public:
  Runner() = default;
  explicit Runner(RunnerOptions options) : options_(std::move(options)) {}

  const RunnerOptions& options() const { return options_; }

  /// Execute every scenario and return their results in spec order.
  /// Throws std::invalid_argument on malformed specs/options; rethrows the
  /// lowest-index scenario failure after cancelling the batch.
  std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& specs) const;

 private:
  RunnerOptions options_;
};

/// One-shot convenience over Runner{options}.run(specs).
std::vector<ScenarioResult> runScenarios(const std::vector<ScenarioSpec>& specs,
                                         const RunnerOptions& options = {});

}  // namespace mcsim::runner
