#include "mcsim/runner/jobs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/obs/selfprofile.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/memo.hpp"
#include "mcsim/util/contract.hpp"

namespace mcsim::runner {
namespace {

/// Same malformed-spec contract (and messages) as the legacy Runner.
void validateSpecs(const std::vector<ScenarioSpec>& specs) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].workflow == nullptr)
      throw std::invalid_argument("Runner: scenario " + std::to_string(i) +
                                  " has no workflow");
    if (specs[i].config.observer != nullptr)
      throw std::invalid_argument(
          "Runner: scenario " + std::to_string(i) +
          " sets config.observer; per-scenario observation is managed by "
          "the Runner (use RunnerOptions::observer)");
  }
}

/// Execute scenario `i` into `out`, capturing its events when asked.
void runOne(const ScenarioSpec& spec, std::size_t i, std::uint64_t baseSeed,
            bool capture, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  engine::EngineConfig cfg = spec.config;
  if (baseSeed != 0) cfg.faults.seed = deriveSeed(baseSeed, i);
  // Self-profiling would put host wall-clock into the captured stream,
  // breaking merge determinism and memo-cache replay; runner-level profiling
  // lives in JobOptions::profile instead.
  cfg.profile = false;
  obs::CollectingSink collector;
  cfg.observer = capture ? &collector : nullptr;
  out.result = engine::simulateWorkflow(*spec.workflow, cfg);
  out.events = collector.take();
}

/// Replay one scenario's stream into the job's observer, then drop the
/// buffer unless the caller asked to keep it.
void mergeOne(ScenarioResult& r, obs::Sink* observer, bool keepEvents) {
  if (observer != nullptr)
    for (const obs::Event& e : r.events) observer->onEvent(e);
  if (!keepEvents) {
    r.events.clear();
    r.events.shrink_to_fit();
  }
}

constexpr std::size_t kRunFresh = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// Serve scenario `i` from a cache entry (a prior-run hit or an in-batch
/// duplicate's representative), preserving the scenario's own identity.
void fillFromEntry(ScenarioMemoCache::Entry entry, const ScenarioSpec& spec,
                   std::size_t i, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  out.result = std::move(entry.result);
  out.events = std::move(entry.events);
  out.fromCache = true;
}

/// Classification of a job against the memo cache, computed serially at
/// activation so hit/miss accounting and results never depend on worker
/// scheduling.  Cache-hit scenarios are filled into `results` directly;
/// duplicates point at an earlier representative; everything else lands in
/// `toRun`.
struct CachePlan {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> dupOf;  ///< Representative index, or kRunFresh.
  std::vector<std::size_t> toRun;
};

CachePlan planAgainstCache(const std::vector<ScenarioSpec>& specs,
                           std::uint64_t baseSeed, bool capture,
                           ScenarioMemoCache& cache,
                           std::vector<ScenarioResult>& results) {
  const std::size_t n = specs.size();
  CachePlan plan;
  plan.keys.resize(n);
  plan.dupOf.assign(n, kRunFresh);
  // Workflow fingerprints are content hashes; memoize per pointer since
  // sweeps share one workflow across hundreds of scenarios.
  // mcsim-lint: allow(ptr-key) — identity-keyed amortization cache (one
  // fingerprint per distinct Workflow object); looked up only, never
  // iterated, so address order cannot reach any output.
  std::unordered_map<const dag::Workflow*, std::uint64_t> workflowFp;
  std::unordered_map<std::uint64_t, std::size_t> repByKey;
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = workflowFp.try_emplace(specs[i].workflow, 0);
    if (fresh) it->second = fingerprintWorkflow(*specs[i].workflow);
    engine::EngineConfig cfg = specs[i].config;
    if (baseSeed != 0) cfg.faults.seed = deriveSeed(baseSeed, i);
    plan.keys[i] =
        combineFingerprints(it->second, fingerprintConfig(cfg, capture));
    if (auto rep = repByKey.find(plan.keys[i]); rep != repByKey.end()) {
      // Identical to a scenario already scheduled this job: it will be
      // served from the representative's result once that exists.
      plan.dupOf[i] = rep->second;
      cache.recordBatchHits(1);
      continue;
    }
    if (auto entry = cache.lookup(plan.keys[i])) {  // counts hit or miss
      fillFromEntry(std::move(*entry), specs[i], i, results[i]);
      continue;
    }
    repByKey.emplace(plan.keys[i], i);
    plan.toRun.push_back(i);
  }
  return plan;
}

/// Store a freshly simulated representative.  The capture flag is part of
/// the key, so an event-free entry can never serve a capturing caller.
void insertEntry(ScenarioMemoCache& cache, std::uint64_t key,
                 const ScenarioResult& r, bool capture) {
  ScenarioMemoCache::Entry entry;
  entry.result = r.result;
  if (capture) entry.events = r.events;
  cache.insert(key, std::move(entry));
}

/// Per-job cache statistics, appended after the merged streams.  Hits and
/// misses come from the job's own serial classification — deterministic even
/// while other jobs share the cache — while entries / evictions / bytes are
/// the cache's state at emission.
void emitJobCacheStats(const ScenarioMemoCache& cache, std::size_t hits,
                       std::size_t misses, obs::Sink* observer) {
  if (observer == nullptr) return;
  const MemoStats now = cache.stats();
  obs::ScenarioCacheStats p{};
  p.hits = hits;
  p.misses = misses;
  p.entries = now.entries;
  p.evictions = now.evictions;
  p.bytes = now.bytes;
  p.hitRate = hits + misses == 0
                  ? 0.0
                  : static_cast<double>(hits) /
                        static_cast<double>(hits + misses);
  observer->onEvent(obs::Event{0.0, p});
}

/// Monotonic wall-clock for the runner's opt-in self-profiling.  Readings
/// reach the outside world only through WorkerProfile/RunnerBatchProfile
/// events appended after the deterministic merged stream, and only when
/// JobOptions::profile is set — they are never captured, memoized or merged
/// into per-scenario streams.
double wallNow() {
  return std::chrono::duration<double>(
             obs::ProfileClock::now().time_since_epoch())
      .count();
}

/// Per-worker busy/scenario tallies for JobOptions::profile.
struct WorkerTally {
  double busySeconds = 0.0;
  double wallSeconds = 0.0;
  std::size_t scenarios = 0;
};

void emitProfile(obs::Sink* observer, int jobs,
                 const std::vector<WorkerTally>& tallies,
                 std::size_t scenarios, std::size_t cached,
                 double batchWallSeconds) {
  if (observer == nullptr) return;
  for (std::size_t w = 0; w < tallies.size(); ++w)
    observer->onEvent(obs::Event{
        -1.0, obs::WorkerProfile{static_cast<int>(w), tallies[w].scenarios,
                                 tallies[w].busySeconds,
                                 tallies[w].wallSeconds}});
  observer->onEvent(obs::Event{
      -1.0, obs::RunnerBatchProfile{jobs, scenarios, cached,
                                    batchWallSeconds}});
}

/// Control-plane lifecycle emission with the repo's accepts() pre-filter.
template <class P>
void emitLifecycle(obs::Sink* sink, const P& payload) {
  if (sink != nullptr && sink->accepts(obs::kEventKindOf<P>))
    sink->onEvent(obs::Event{-1.0, payload});
}

bool terminal(JobState state) {
  return state == JobState::Completed || state == JobState::Failed ||
         state == JobState::Cancelled;
}

}  // namespace

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

/// All per-job state.  Guarded by the queue mutex except where noted: a
/// worker may touch `results[i]` for a claimed index, and the activating
/// worker owns the whole job until `planned` flips true.
struct JobQueue::Job {
  JobId id = 0;
  JobState state = JobState::Queued;
  JobRequest request;
  bool capture = false;    ///< observer != nullptr || keepEvents.
  bool profileOn = false;  ///< profile && observer != nullptr.
  double startWall = 0.0;  ///< Activation time (profile only).

  bool planned = false;
  bool serialMode = false;  ///< Legacy serial path: min(toRun, W) <= 1.
  bool finalized = false;   ///< A worker owns finalization (or it is done).
  CachePlan plan;
  std::size_t dupCount = 0;
  std::vector<ScenarioResult> results;
  std::size_t nextItem = 0;  ///< Next unclaimed index into plan.toRun.
  std::size_t inFlight = 0;
  std::size_t completedScenarios = 0;
  /// Lock-free cancel flag so execution loops can poll without the queue
  /// mutex; authoritative state transitions still happen under the mutex.
  std::atomic<bool> cancelRequested{false};
  std::size_t errorIndex = kNoError;
  std::exception_ptr error;
  /// Dense per-job profile slots; workers map to slots on first claim.
  std::vector<WorkerTally> tally;
  std::map<int, std::size_t> workerSlot;
};

JobQueue::JobQueue(JobQueueOptions options) : options_(std::move(options)) {
  if (options_.workers < 0)
    throw std::invalid_argument("JobQueue: workers must be >= 0");
  if (options_.maxQueuedJobs == 0)
    throw std::invalid_argument("JobQueue: maxQueuedJobs must be >= 1");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this, w] { workerLoop(w); });
}

JobQueue::~JobQueue() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    // Queued jobs resolve Cancelled without ever activating.
    for (JobId id : pending_) {
      Job& job = *jobs_.at(id);
      job.state = JobState::Cancelled;
      job.finalized = true;
      emitLifecycle(options_.observer,
                    obs::JobFinished{job.id,
                                     static_cast<std::uint8_t>(job.state),
                                     job.request.scenarios.size(), 0});
    }
    pending_.clear();
    for (auto& [id, job] : jobs_)
      if (job->state == JobState::Running)
        job->cancelRequested.store(true, std::memory_order_relaxed);
    workCv_.notify_all();
    stateCv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

JobId JobQueue::submit(JobRequest request) {
  validateSpecs(request.scenarios);
  std::unique_lock<std::mutex> lock(mutex_);
  stateCv_.wait(lock, [&] {
    return stopping_ || options_.workers == 0 ||
           pending_.size() < options_.maxQueuedJobs;
  });
  if (stopping_)
    throw std::runtime_error("JobQueue: queue is shutting down");
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  return submitLocked(std::move(job), lock);
}

std::optional<JobId> JobQueue::trySubmit(JobRequest request) {
  validateSpecs(request.scenarios);
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_)
    throw std::runtime_error("JobQueue: queue is shutting down");
  if (options_.workers > 0 && pending_.size() >= options_.maxQueuedJobs)
    return std::nullopt;
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  return submitLocked(std::move(job), lock);
}

JobId JobQueue::submitLocked(std::unique_ptr<Job> job,
                             std::unique_lock<std::mutex>& lock) {
  const JobId id = nextId_++;
  Job& ref = *job;
  ref.id = id;
  const JobOptions& jo = ref.request.options;
  ref.capture = jo.observer != nullptr || jo.keepEvents;
  ref.profileOn = jo.profile && jo.observer != nullptr;
  jobs_.emplace(id, std::move(job));
  if (options_.workers == 0) {
    // Inline mode: the caller's thread is the pool — the exact legacy
    // serial path, wrapped in job bookkeeping.
    emitLifecycle(options_.observer,
                  obs::JobSubmitted{id, ref.request.scenarios.size(), 0});
    activate(ref, lock);
    return id;
  }
  pending_.push_back(id);
  emitLifecycle(options_.observer,
                obs::JobSubmitted{id, ref.request.scenarios.size(),
                                  pending_.size()});
  workCv_.notify_one();
  return id;
}

JobStatus JobQueue::status(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("JobQueue: unknown or retired job id " +
                                std::to_string(id));
  const Job& job = *it->second;
  JobStatus status;
  status.id = id;
  status.state = job.state;
  status.completedScenarios = job.completedScenarios;
  status.totalScenarios = job.request.scenarios.size();
  status.label = job.request.label;
  return status;
}

JobOutcome JobQueue::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Re-find on every wakeup: a concurrent wait() on the same id may have
  // consumed the outcome and erased the job while we slept.
  stateCv_.wait(lock, [&] {
    const auto it = jobs_.find(id);
    return it == jobs_.end() || terminal(it->second->state);
  });
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("JobQueue: unknown or retired job id " +
                                std::to_string(id));
  Job& job = *it->second;

  JobOutcome outcome;
  outcome.id = id;
  outcome.state = job.state;
  outcome.label = job.request.label;
  outcome.results = std::move(job.results);
  outcome.error = [&] {
    if (job.error == nullptr) return std::string();
    try {
      std::rethrow_exception(job.error);
    } catch (const std::exception& e) {
      return std::string(e.what());
    } catch (...) {
      return std::string("unknown error");
    }
  }();
  outcome.exception = job.error;
  if (job.planned)
    outcome.cachedScenarios =
        job.request.scenarios.size() - job.plan.toRun.size();
  jobs_.erase(it);  // retire the id; keepAlive workflows release here
  return outcome;
}

bool JobQueue::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (terminal(job.state)) return false;
  if (job.state == JobState::Queued) {
    pending_.erase(std::find(pending_.begin(), pending_.end(), id));
    job.state = JobState::Cancelled;
    job.finalized = true;
    emitLifecycle(options_.observer,
                  obs::JobFinished{job.id,
                                   static_cast<std::uint8_t>(job.state),
                                   job.request.scenarios.size(), 0});
    stateCv_.notify_all();
    return true;
  }
  if (job.cancelRequested.load(std::memory_order_relaxed)) return false;
  job.cancelRequested.store(true, std::memory_order_relaxed);
  workCv_.notify_all();  // idle workers must notice and finalize
  return true;
}

std::vector<ScenarioResult> JobQueue::run(
    const std::vector<ScenarioSpec>& specs, const JobOptions& options) {
  JobRequest request;
  request.scenarios = specs;
  request.options = options;
  const JobId id = submit(std::move(request));
  JobOutcome outcome = wait(id);
  if (outcome.state == JobState::Failed)
    std::rethrow_exception(outcome.exception);
  if (outcome.state == JobState::Cancelled)
    throw std::runtime_error("JobQueue: job " + std::to_string(id) +
                             " was cancelled");
  return std::move(outcome.results);
}

std::size_t JobQueue::queuedJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::size_t JobQueue::liveJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

void JobQueue::workerLoop(int worker) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool worked = false;
    // Jobs in id (admission) order: finish and finalize earlier jobs first.
    for (auto& [id, jobPtr] : jobs_) {
      Job& job = *jobPtr;
      if (job.state != JobState::Running || !job.planned ||
          job.serialMode || job.finalized)
        continue;
      const bool exhausted =
          job.cancelRequested.load(std::memory_order_relaxed) ||
          job.nextItem >= job.plan.toRun.size();
      if (!exhausted) {
        executeItem(job, worker, lock);
        worked = true;
        break;  // the jobs_ map may have changed while unlocked
      }
      if (job.inFlight == 0) {
        finalize(job, lock);
        worked = true;
        break;
      }
    }
    if (worked) continue;
    if (!pending_.empty()) {
      const JobId id = pending_.front();
      pending_.pop_front();
      stateCv_.notify_all();  // an admission slot freed up
      activate(*jobs_.at(id), lock);
      continue;
    }
    if (stopping_) break;
    // The wait predicate is the whole scan above (runnable item, pending
    // admission, finalizable job) — re-checked by looping; a spurious wakeup
    // costs one extra scan.  mcsim-lint: allow(cv-wait-predicate)
    workCv_.wait(lock);
  }
}

void JobQueue::activate(Job& job, std::unique_lock<std::mutex>& lock) {
  job.state = JobState::Running;
  job.startWall = wallNow();
  emitLifecycle(options_.observer, obs::JobStarted{job.id});
  const std::size_t n = job.request.scenarios.size();
  job.results.resize(n);
  if (options_.cache != nullptr) {
    // Fingerprinting is O(workflow bytes): classify outside the lock.  The
    // activating worker owns the job until `planned` flips, so results[]
    // and plan are safe to fill unlocked.
    lock.unlock();
    job.plan = planAgainstCache(job.request.scenarios,
                                job.request.options.baseSeed, job.capture,
                                *options_.cache, job.results);
    lock.lock();
  } else {
    job.plan.toRun.resize(n);
    std::iota(job.plan.toRun.begin(), job.plan.toRun.end(), std::size_t{0});
  }
  for (std::size_t d : job.plan.dupOf)
    if (d != kRunFresh) ++job.dupCount;
  // Prior-run cache hits are already resolved; in-batch duplicates resolve
  // at finalization.
  job.completedScenarios = n - job.plan.toRun.size() - job.dupCount;
  const std::size_t effective = std::min<std::size_t>(
      job.plan.toRun.size(), static_cast<std::size_t>(options_.workers));
  job.serialMode = effective <= 1;
  if (job.profileOn)
    job.tally.assign(job.serialMode ? 1 : effective, WorkerTally{});
  job.planned = true;
  if (job.serialMode) {
    executeSerial(job, lock);
    return;
  }
  workCv_.notify_all();
}

/// The exact legacy serial path (run in spec order in one thread, merging
/// each scenario's events as it completes so failures propagate at the same
/// point they would have in the old serial sweeps), wrapped in job
/// bookkeeping.  Also used by worker threads for degenerate batches —
/// min(toRun, workers) <= 1 — to stay byte-compatible with the legacy
/// runner's serial fallback.
void JobQueue::executeSerial(Job& job, std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  const std::vector<ScenarioSpec>& specs = job.request.scenarios;
  const JobOptions& jo = job.request.options;
  ScenarioMemoCache* cache = options_.cache;
  const std::size_t n = specs.size();

  // Representatives that later duplicates will need: pin a private copy at
  // insert time.  The shared cache may be capacity-bounded and concurrent —
  // an entry inserted a moment ago can already be evicted, so duplicate
  // service never depends on cache residency.
  std::vector<bool> needPin(n, false);
  std::map<std::uint64_t, ScenarioMemoCache::Entry> pinned;
  if (cache != nullptr)
    for (std::size_t d : job.plan.dupOf)
      if (d != kRunFresh) needPin[d] = true;

  WorkerTally tally;
  const auto timedRunOne = [&](std::size_t i) {
    if (!job.profileOn) {
      runOne(specs[i], i, jo.baseSeed, job.capture, job.results[i]);
      return;
    }
    const double t0 = wallNow();
    runOne(specs[i], i, jo.baseSeed, job.capture, job.results[i]);
    tally.busySeconds += wallNow() - t0;
    ++tally.scenarios;
  };

  bool cancelled = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (job.cancelRequested.load(std::memory_order_relaxed)) {
      cancelled = true;
      break;
    }
    try {
      if (cache != nullptr) {
        if (job.plan.dupOf[i] != kRunFresh) {
          // The representative ran at a smaller index; serve its pin.
          const std::uint64_t key = job.plan.keys[i];
          fillFromEntry(pinned.at(key), specs[i], i, job.results[i]);
        } else if (!job.results[i].fromCache) {
          timedRunOne(i);
          insertEntry(*cache, job.plan.keys[i], job.results[i], job.capture);
          if (needPin[i]) {
            ScenarioMemoCache::Entry pin;
            pin.result = job.results[i].result;
            if (job.capture) pin.events = job.results[i].events;
            pinned.emplace(job.plan.keys[i], std::move(pin));
          }
        }
      } else {
        timedRunOne(i);
      }
    } catch (...) {
      job.errorIndex = i;
      job.error = std::current_exception();
      break;
    }
    mergeOne(job.results[i], jo.observer, jo.keepEvents);
    lock.lock();
    ++job.completedScenarios;
    lock.unlock();
  }

  if (job.error == nullptr && !cancelled) {
    if (cache != nullptr)
      emitJobCacheStats(*cache, n - job.plan.toRun.size(),
                        job.plan.toRun.size(), jo.observer);
    if (job.profileOn) {
      tally.wallSeconds = wallNow() - job.startWall;
      emitProfile(jo.observer, options_.workers, {tally}, n,
                  n - job.plan.toRun.size(), tally.wallSeconds);
    }
  }

  lock.lock();
  job.finalized = true;
  if (job.error != nullptr) {
    job.state = JobState::Failed;
    job.results.clear();
  } else if (cancelled ||
             job.cancelRequested.load(std::memory_order_relaxed)) {
    job.state = JobState::Cancelled;
    job.results.clear();
  } else {
    job.state = JobState::Completed;
    job.completedScenarios = n;
  }
  emitLifecycle(options_.observer,
                obs::JobFinished{job.id, static_cast<std::uint8_t>(job.state),
                                 n, n - job.plan.toRun.size()});
  stateCv_.notify_all();
}

void JobQueue::executeItem(Job& job, int worker,
                           std::unique_lock<std::mutex>& lock) {
  const std::size_t k = job.nextItem++;
  const std::size_t i = job.plan.toRun[k];
  ++job.inFlight;
  std::size_t slot = 0;
  if (job.profileOn) {
    const auto [it, fresh] =
        job.workerSlot.try_emplace(worker, job.workerSlot.size());
    slot = it->second;
    MCSIM_ASSERT(slot < job.tally.size(), "job ", job.id,
                 " profile slot overflow");
  }
  lock.unlock();

  std::exception_ptr failure;
  double busy = 0.0;
  try {
    if (job.profileOn) {
      const double t0 = wallNow();
      runOne(job.request.scenarios[i], i, job.request.options.baseSeed,
             job.capture, job.results[i]);
      busy = wallNow() - t0;
    } else {
      runOne(job.request.scenarios[i], i, job.request.options.baseSeed,
             job.capture, job.results[i]);
    }
  } catch (...) {
    failure = std::current_exception();
  }

  lock.lock();
  --job.inFlight;
  if (failure != nullptr) {
    // Keep the lowest-index failure so the error a caller sees does not
    // depend on worker scheduling when several scenarios are doomed.
    if (i < job.errorIndex) {
      job.errorIndex = i;
      job.error = failure;
    }
    job.cancelRequested.store(true, std::memory_order_relaxed);
    workCv_.notify_all();
  } else {
    ++job.completedScenarios;
    if (job.profileOn) {
      job.tally[slot].busySeconds += busy;
      ++job.tally[slot].scenarios;
    }
  }
}

void JobQueue::finalize(Job& job, std::unique_lock<std::mutex>& lock) {
  job.finalized = true;  // claim finalization before dropping the lock
  const bool failed = job.error != nullptr;
  const bool cancelled =
      !failed && job.cancelRequested.load(std::memory_order_relaxed);
  const std::size_t n = job.request.scenarios.size();
  const JobOptions& jo = job.request.options;
  lock.unlock();

  if (!failed && !cancelled) {
    if (options_.cache != nullptr) {
      for (std::size_t i : job.plan.toRun)
        insertEntry(*options_.cache, job.plan.keys[i], job.results[i],
                    job.capture);
      // Duplicates are served from their representative's in-job result —
      // byte-identical to the legacy peek() path, but immune to concurrent
      // LRU eviction of the just-inserted entry.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rep = job.plan.dupOf[i];
        if (rep == kRunFresh) continue;
        ScenarioMemoCache::Entry entry;
        entry.result = job.results[rep].result;
        if (job.capture) entry.events = job.results[rep].events;
        fillFromEntry(std::move(entry), job.request.scenarios[i], i,
                      job.results[i]);
      }
    }
    for (ScenarioResult& r : job.results)
      mergeOne(r, jo.observer, jo.keepEvents);
    if (options_.cache != nullptr)
      emitJobCacheStats(*options_.cache, n - job.plan.toRun.size(),
                        job.plan.toRun.size(), jo.observer);
    if (job.profileOn) {
      const double jobWall = wallNow() - job.startWall;
      for (WorkerTally& t : job.tally) t.wallSeconds = jobWall;
      emitProfile(jo.observer, options_.workers, job.tally, n,
                  n - job.plan.toRun.size(), jobWall);
    }
  }

  lock.lock();
  if (failed) {
    job.state = JobState::Failed;
    job.results.clear();
  } else if (cancelled) {
    job.state = JobState::Cancelled;
    job.results.clear();
  } else {
    job.state = JobState::Completed;
    job.completedScenarios = n;
  }
  emitLifecycle(options_.observer,
                obs::JobFinished{job.id, static_cast<std::uint8_t>(job.state),
                                 n, n - job.plan.toRun.size()});
  stateCv_.notify_all();
}

std::vector<ScenarioResult> runOnQueue(JobQueue* queue,
                                       const std::vector<ScenarioSpec>& specs,
                                       const RunnerOptions& fallback) {
  if (queue == nullptr) return runScenarios(specs, fallback);
  JobOptions options;
  options.baseSeed = fallback.baseSeed;
  options.observer = fallback.observer;
  options.keepEvents = fallback.keepEvents;
  options.profile = fallback.profile;
  return queue->run(specs, options);
}

}  // namespace mcsim::runner
