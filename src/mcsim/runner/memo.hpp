// Scenario memo cache: serve repeated sweep points without re-simulation.
//
// Sweeps frequently re-evaluate identical (workflow, platform, mode, seed)
// points — the planner re-runs the provisioning ladder per goal, reliability
// sweeps share their fault-free baseline, CCR ladders revisit scale 1.0.
// Simulation is deterministic, so a scenario's outcome is a pure function
// of its content; the cache keys an entry by a 64-bit FNV-1a fingerprint of
// the canonical workflow bytes plus the full effective engine configuration
// (including the derived fault seed and whether events are captured), and a
// hit replays the stored ExecutionResult and event stream verbatim — byte-
// identical to a fresh run by construction, and enforced by the determinism
// replay harness.
//
// Hit/miss accounting is deterministic: the runner classifies every
// scenario serially before any simulation starts, so counts never depend on
// worker scheduling.  Thread safety: all members are mutex-guarded, so one
// cache may be shared across concurrent Runner::run calls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "mcsim/engine/engine.hpp"
#include "mcsim/obs/event.hpp"

namespace mcsim::dag {
class Workflow;
}

namespace mcsim::runner {

/// FNV-1a fingerprint of a workflow's canonical content: name, tasks
/// (name, type, runtime, release time, input/output file lists), files
/// (name, size, producer, explicit-output flag) and control edges.
/// Derived fields (parents, children, levels) are excluded — they are a
/// function of the above.
std::uint64_t fingerprintWorkflow(const dag::Workflow& workflow);

/// FNV-1a fingerprint of every behavior-affecting EngineConfig field (the
/// observer pointer is excluded; `captureEvents` stands in for whether the
/// runner records the scenario's event stream, which changes what a cache
/// entry must hold).
std::uint64_t fingerprintConfig(const engine::EngineConfig& config,
                                bool captureEvents);

/// Combined scenario fingerprint — the cache key.
std::uint64_t fingerprintScenario(const dag::Workflow& workflow,
                                  const engine::EngineConfig& config,
                                  bool captureEvents);

/// fingerprintScenario from precomputed parts, for callers that amortize
/// fingerprintWorkflow across many scenarios sharing one workflow.
std::uint64_t combineFingerprints(std::uint64_t workflowFingerprint,
                                  std::uint64_t configFingerprint);

/// Cumulative cache statistics.
struct MemoStats {
  std::size_t hits = 0;    ///< Scenarios served without simulation.
  std::size_t misses = 0;  ///< Scenarios that had to simulate.
  std::size_t entries = 0; ///< Resident cached scenarios.
};

class ScenarioMemoCache {
 public:
  struct Entry {
    engine::ExecutionResult result;
    /// The scenario's full event stream; recorded only when the producing
    /// run captured events (the capture flag is part of the key, so a hit
    /// always matches the caller's capture shape).
    std::vector<obs::Event> events;
  };

  /// Copy of the entry for `key`, or nullopt.  Counts a hit or miss.
  std::optional<Entry> lookup(std::uint64_t key) const;
  /// Like lookup but never touches the hit/miss counters — used by the
  /// runner to serve in-batch duplicates it has already accounted for.
  std::optional<Entry> peek(std::uint64_t key) const;
  /// True if `key` is resident, without touching hit/miss counters.
  bool contains(std::uint64_t key) const;
  /// Insert or overwrite the entry for `key`.
  void insert(std::uint64_t key, Entry entry);
  /// Count `n` scenarios served from in-batch deduplication as hits.
  void recordBatchHits(std::size_t n);

  MemoStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> entries_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace mcsim::runner
