// Scenario memo cache: serve repeated sweep points without re-simulation.
//
// Sweeps frequently re-evaluate identical (workflow, platform, mode, seed)
// points — the planner re-runs the provisioning ladder per goal, reliability
// sweeps share their fault-free baseline, CCR ladders revisit scale 1.0.
// Simulation is deterministic, so a scenario's outcome is a pure function
// of its content; the cache keys an entry by a 64-bit FNV-1a fingerprint of
// the canonical workflow bytes plus the full effective engine configuration
// (including the derived fault seed and whether events are captured), and a
// hit replays the stored ExecutionResult and event stream verbatim — byte-
// identical to a fresh run by construction, and enforced by the determinism
// replay harness.
//
// Capacity: a default-constructed cache is unbounded (the batch-sweep
// behavior since PR 4).  A server cache is constructed with
// MemoCacheOptions bounds — max resident entries and/or approximate max
// resident bytes — and evicts least-recently-used entries on insert until
// both bounds hold again.  lookup/peek refresh recency; eviction and
// resident-byte counters surface through MemoStats and the
// scenario_cache_stats obs event.
//
// Hit/miss accounting is deterministic: the runner classifies every
// scenario serially before any simulation starts, so counts never depend on
// worker scheduling.  Thread safety: all members are mutex-guarded, so one
// cache may be shared across concurrent Runner::run calls and server jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "mcsim/engine/engine.hpp"
#include "mcsim/obs/event.hpp"

namespace mcsim::dag {
class Workflow;
}

namespace mcsim::runner {

/// FNV-1a fingerprint of a workflow's canonical content: name, tasks
/// (name, type, runtime, release time, input/output file lists), files
/// (name, size, producer, explicit-output flag) and control edges.
/// Derived fields (parents, children, levels) are excluded — they are a
/// function of the above.
std::uint64_t fingerprintWorkflow(const dag::Workflow& workflow);

/// FNV-1a fingerprint of every behavior-affecting EngineConfig field (the
/// observer pointer is excluded; `captureEvents` stands in for whether the
/// runner records the scenario's event stream, which changes what a cache
/// entry must hold).
std::uint64_t fingerprintConfig(const engine::EngineConfig& config,
                                bool captureEvents);

/// Combined scenario fingerprint — the cache key.
std::uint64_t fingerprintScenario(const dag::Workflow& workflow,
                                  const engine::EngineConfig& config,
                                  bool captureEvents);

/// fingerprintScenario from precomputed parts, for callers that amortize
/// fingerprintWorkflow across many scenarios sharing one workflow.
std::uint64_t combineFingerprints(std::uint64_t workflowFingerprint,
                                  std::uint64_t configFingerprint);

/// Capacity bounds for a server-grade cache.  0 means unbounded (the
/// default, matching the historical per-sweep cache).
struct MemoCacheOptions {
  std::size_t maxEntries = 0;  ///< Max resident entries; 0 = unbounded.
  std::size_t maxBytes = 0;    ///< Approx. max resident bytes; 0 = unbounded.
};

/// Cumulative cache statistics.
struct MemoStats {
  std::size_t hits = 0;       ///< Scenarios served without simulation.
  std::size_t misses = 0;     ///< Scenarios that had to simulate.
  std::size_t entries = 0;    ///< Resident cached scenarios.
  std::size_t evictions = 0;  ///< Entries dropped to hold the capacity bound.
  std::size_t bytes = 0;      ///< Approximate resident bytes.

  /// hits / (hits + misses); 0 before any lookup.
  double hitRate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ScenarioMemoCache {
 public:
  struct Entry {
    engine::ExecutionResult result;
    /// The scenario's full event stream; recorded only when the producing
    /// run captured events (the capture flag is part of the key, so a hit
    /// always matches the caller's capture shape).
    std::vector<obs::Event> events;
  };

  ScenarioMemoCache() = default;
  explicit ScenarioMemoCache(MemoCacheOptions options) : options_(options) {}

  const MemoCacheOptions& options() const { return options_; }

  /// Copy of the entry for `key`, or nullopt.  Counts a hit or miss and
  /// refreshes the entry's recency.
  std::optional<Entry> lookup(std::uint64_t key) const;
  /// Like lookup but never touches the hit/miss counters — used by the
  /// runner to serve in-batch duplicates it has already accounted for.
  /// Still refreshes recency.
  std::optional<Entry> peek(std::uint64_t key) const;
  /// True if `key` is resident, without touching counters or recency.
  bool contains(std::uint64_t key) const;
  /// Insert or overwrite the entry for `key`, then evict least-recently-
  /// used entries until the configured bounds hold.  A bounded cache may
  /// evict the inserted entry itself when it alone exceeds maxBytes.
  void insert(std::uint64_t key, Entry entry);
  /// Count `n` scenarios served from in-batch deduplication as hits.
  void recordBatchHits(std::size_t n);

  MemoStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Node {
    Entry entry;
    std::size_t bytes = 0;
    /// Position in lru_; std::list splice never invalidates iterators.
    std::list<std::uint64_t>::iterator recency;
  };

  void touch(const Node& node) const;
  void evictOverCapacityLocked();

  MemoCacheOptions options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Node> entries_;
  /// Keys, most recently used first.  Mutable: lookups refresh recency.
  mutable std::list<std::uint64_t> lru_;
  std::size_t bytes_ = 0;
  std::size_t evictions_ = 0;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace mcsim::runner
