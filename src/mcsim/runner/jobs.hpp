// Job-oriented runner API: a persistent worker pool with submit / status /
// wait / cancel semantics and a backpressured bounded admission queue.
//
// PR 3's `runScenarios` was one-shot: spawn workers, run the batch, join.
// A simulation *service* needs the inverse shape — workers outlive any one
// request, requests arrive concurrently, and callers poll or block on their
// own job without fencing anyone else.  JobQueue is that shape; the old
// `runScenarios` survives as a thin compat wrapper that submits one job to
// a transient queue and waits (differential-tested byte-identical).
//
// Determinism contract (inherited from the Runner, see DESIGN.md):
//  * A job's results and its observer's merged event stream are
//    byte-identical to the equivalent `runScenarios` batch call, for any
//    worker count, including while other jobs run concurrently — each job
//    gets private per-scenario capture sinks and a private merge, and
//    per-job cache accounting is computed from the serial admission-time
//    classification, never from racy global counters.
//  * Seeds: JobOptions::baseSeed derives per-scenario seeds exactly like
//    RunnerOptions::baseSeed.
//  * Errors: the lowest-index scenario failure wins, the job's remaining
//    scenarios are cancelled, and wait() surfaces the stored exception.
//  * Cancel: a queued job cancels immediately; a running job stops claiming
//    new scenarios, drains its in-flight ones, and resolves Cancelled with
//    no results.  Other jobs are unaffected — their bytes do not change.
//
// The queue emits control-plane lifecycle events (obs::JobSubmitted /
// JobStarted / JobFinished, time < 0) to its own observer — never into a
// job's per-request stream.  Attach metrics or JSONL sinks through
// obs::MutexSink: finalization runs on whichever worker finishes last.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mcsim/runner/runner.hpp"

namespace mcsim::dag {
class Workflow;
}

namespace mcsim::obs {
class Sink;
}

namespace mcsim::runner {

class ScenarioMemoCache;

/// Monotonic per-queue job handle; 0 is never issued.
using JobId = std::uint64_t;

/// Job lifecycle: Queued -> Running -> {Completed, Failed, Cancelled};
/// Queued -> Cancelled directly when cancelled before activation.  The
/// integer values are part of the obs::JobFinished wire contract.
enum class JobState : std::uint8_t {
  Queued = 0,
  Running = 1,
  Completed = 2,
  Failed = 3,
  Cancelled = 4,
};

/// Stable snake_case name (serve protocol + logs).
const char* jobStateName(JobState state);

/// Per-job execution options — the request-scoped half of RunnerOptions.
/// Worker count and cache are queue-scoped (JobQueueOptions).
struct JobOptions {
  /// != 0: overwrite each scenario's fault seed with deriveSeed(baseSeed, i).
  std::uint64_t baseSeed = 0;
  /// Receives this job's events, merged deterministically in ascending
  /// scenario index at completion — per-request telemetry isolation.
  /// Borrowed; must outlive the job; never shared with a concurrent job
  /// unless externally synchronized.
  obs::Sink* observer = nullptr;
  /// Retain each scenario's event stream in ScenarioResult::events.
  bool keepEvents = false;
  /// Append runner self-profiling events after the merged stream.
  bool profile = false;
};

/// One unit of admission: a batch of scenarios plus its options.
struct JobRequest {
  std::vector<ScenarioSpec> scenarios;
  JobOptions options;
  std::string label;  ///< Optional; echoed through status and outcome.
  /// Optional ownership anchor: workflows referenced by `scenarios` that
  /// must outlive the job (the serve daemon parses workflows per request
  /// and walks away after submit).  Released when the job is retired.
  std::vector<std::shared_ptr<const dag::Workflow>> keepAlive;
};

/// Snapshot of a job's progress.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::Queued;
  std::size_t completedScenarios = 0;  ///< Resolved (simulated or cached).
  std::size_t totalScenarios = 0;
  std::string label;
};

/// Terminal result of a job, surrendered exactly once by wait().
struct JobOutcome {
  JobId id = 0;
  JobState state = JobState::Completed;
  std::string label;
  /// Scenario results in spec order; empty unless state == Completed.
  std::vector<ScenarioResult> results;
  /// Scenarios served from the memo cache (Completed jobs).
  std::size_t cachedScenarios = 0;
  /// what() of the failure; empty unless state == Failed.
  std::string error;
  /// The stored failure, rethrowable; null unless state == Failed.
  std::exception_ptr exception;
};

struct JobQueueOptions {
  /// Persistent worker threads.  0 = inline mode: submit() executes the job
  /// synchronously in the caller's thread — the exact legacy serial path.
  int workers = defaultJobs();
  /// Backpressure bound on jobs admitted but not yet activated; submit()
  /// blocks (trySubmit() refuses) while the admission queue is full.
  std::size_t maxQueuedJobs = 64;
  /// Optional cross-job scenario memo cache (bound it with MemoCacheOptions
  /// for server use).  Borrowed; shared by every job on this queue.
  ScenarioMemoCache* cache = nullptr;
  /// Control-plane observer for job lifecycle events (JobSubmitted /
  /// JobStarted / JobFinished, time < 0).  Called from worker and submitter
  /// threads — wrap single-threaded sinks in obs::MutexSink.  Borrowed.
  obs::Sink* observer = nullptr;
};

class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions options = {});
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;
  /// Cancels queued jobs, drains in-flight scenarios, joins the pool.
  /// Unclaimed outcomes are discarded.
  ~JobQueue();

  const JobQueueOptions& options() const { return options_; }

  /// Admit a job; blocks while the admission queue is full.  Throws
  /// std::invalid_argument on malformed specs (same contract as
  /// Runner::run).  In inline mode the job executes before returning.
  JobId submit(JobRequest request);
  /// Like submit but never blocks: nullopt when the queue is full.
  std::optional<JobId> trySubmit(JobRequest request);

  /// Progress snapshot.  Throws std::invalid_argument for ids never issued
  /// or already retired by wait().
  JobStatus status(JobId id) const;
  /// Block until the job is terminal, then surrender its outcome and retire
  /// the id.  Does not throw on job failure — inspect JobOutcome::state.
  JobOutcome wait(JobId id);
  /// Request cancellation.  True if the job was still cancellable (queued
  /// or running); false for terminal, retired or unknown ids.
  bool cancel(JobId id);

  /// submit + wait + rethrow-on-failure: the drop-in replacement for
  /// runScenarios(specs, ...) over a persistent pool.
  std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& specs,
                                  const JobOptions& options = {});

  /// Jobs admitted but not yet activated (the backpressure quantity).
  std::size_t queuedJobs() const;
  /// Jobs issued and not yet retired by wait(), any state.
  std::size_t liveJobs() const;

 private:
  struct Job;

  JobId submitLocked(std::unique_ptr<Job> job, std::unique_lock<std::mutex>& lock);
  void workerLoop(int worker);
  void activate(Job& job, std::unique_lock<std::mutex>& lock);
  void executeSerial(Job& job, std::unique_lock<std::mutex>& lock);
  void executeItem(Job& job, int worker, std::unique_lock<std::mutex>& lock);
  void finalize(Job& job, std::unique_lock<std::mutex>& lock);

  JobQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable workCv_;   ///< Workers: new items / activations.
  std::condition_variable stateCv_;  ///< Submitters and waiters.
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::deque<JobId> pending_;
  JobId nextId_ = 1;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Bridge for sweep drivers mid-migration: run `specs` on `queue` when one
/// is provided (request-scoped options lifted from `fallback`; the queue's
/// own workers/cache win over the fallback's), else fall back to the legacy
/// one-shot runScenarios(specs, fallback).  Lets every analysis config grow
/// a `JobQueue*` field without forking its call sites.
std::vector<ScenarioResult> runOnQueue(JobQueue* queue,
                                       const std::vector<ScenarioSpec>& specs,
                                       const RunnerOptions& fallback);

}  // namespace mcsim::runner
