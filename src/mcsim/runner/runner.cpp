#include "mcsim/runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/memo.hpp"

namespace mcsim::runner {
namespace {

void validate(const std::vector<ScenarioSpec>& specs,
              const RunnerOptions& options) {
  if (options.jobs < 0)
    throw std::invalid_argument("Runner: jobs must be >= 0");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].workflow == nullptr)
      throw std::invalid_argument("Runner: scenario " + std::to_string(i) +
                                  " has no workflow");
    if (specs[i].config.observer != nullptr)
      throw std::invalid_argument(
          "Runner: scenario " + std::to_string(i) +
          " sets config.observer; per-scenario observation is managed by "
          "the Runner (use RunnerOptions::observer)");
  }
}

/// Execute scenario `i` into `out`, capturing its events when asked.
void runOne(const ScenarioSpec& spec, std::size_t i,
            const RunnerOptions& options, bool capture, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  engine::EngineConfig cfg = spec.config;
  if (options.baseSeed != 0)
    cfg.faults.seed = deriveSeed(options.baseSeed, i);
  obs::CollectingSink collector;
  cfg.observer = capture ? &collector : nullptr;
  out.result = engine::simulateWorkflow(*spec.workflow, cfg);
  out.events = collector.take();
}

/// Replay one scenario's stream into the shared observer, then drop the
/// buffer unless the caller asked to keep it.
void mergeOne(ScenarioResult& r, const RunnerOptions& options) {
  if (options.observer != nullptr)
    for (const obs::Event& e : r.events) options.observer->onEvent(e);
  if (!options.keepEvents) {
    r.events.clear();
    r.events.shrink_to_fit();
  }
}

/// Replay per-scenario streams into the shared observer in index order —
/// byte-identical to what a serial instrumented sweep would have emitted —
/// then drop the buffers unless the caller asked to keep them.
void mergeEvents(std::vector<ScenarioResult>& results,
                 const RunnerOptions& options) {
  for (ScenarioResult& r : results) mergeOne(r, options);
}

constexpr std::size_t kRunFresh = std::numeric_limits<std::size_t>::max();

/// Serve scenario `i` from a cache entry (a prior-run hit or an in-batch
/// duplicate's representative), preserving the scenario's own identity.
void fillFromEntry(ScenarioMemoCache::Entry entry, const ScenarioSpec& spec,
                   std::size_t i, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  out.result = std::move(entry.result);
  out.events = std::move(entry.events);
  out.fromCache = true;
}

/// Classification of a batch against the memo cache, computed serially
/// before any simulation so hit/miss accounting and results never depend on
/// worker scheduling.  Cache-hit scenarios are filled into `results`
/// directly; duplicates point at an earlier representative; everything else
/// lands in `toRun`.
struct CachePlan {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> dupOf;  ///< Representative index, or kRunFresh.
  std::vector<std::size_t> toRun;
  MemoStats before;  ///< Counter snapshot for per-batch stats deltas.
};

CachePlan planAgainstCache(const std::vector<ScenarioSpec>& specs,
                           const RunnerOptions& options, bool capture,
                           std::vector<ScenarioResult>& results) {
  const std::size_t n = specs.size();
  ScenarioMemoCache& cache = *options.cache;
  CachePlan plan;
  plan.before = cache.stats();
  plan.keys.resize(n);
  plan.dupOf.assign(n, kRunFresh);
  // Workflow fingerprints are content hashes; memoize per pointer since
  // sweeps share one workflow across hundreds of scenarios.
  // mcsim-lint: allow(ptr-key) — identity-keyed amortization cache (one
  // fingerprint per distinct Workflow object); looked up only, never
  // iterated, so address order cannot reach any output.
  std::unordered_map<const dag::Workflow*, std::uint64_t> workflowFp;
  std::unordered_map<std::uint64_t, std::size_t> repByKey;
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = workflowFp.try_emplace(specs[i].workflow, 0);
    if (fresh) it->second = fingerprintWorkflow(*specs[i].workflow);
    engine::EngineConfig cfg = specs[i].config;
    if (options.baseSeed != 0) cfg.faults.seed = deriveSeed(options.baseSeed, i);
    plan.keys[i] =
        combineFingerprints(it->second, fingerprintConfig(cfg, capture));
    if (auto rep = repByKey.find(plan.keys[i]); rep != repByKey.end()) {
      // Identical to a scenario already scheduled this batch: it will be
      // served from the representative's entry after that entry exists.
      plan.dupOf[i] = rep->second;
      cache.recordBatchHits(1);
      continue;
    }
    if (auto entry = cache.lookup(plan.keys[i])) {  // counts hit or miss
      fillFromEntry(std::move(*entry), specs[i], i, results[i]);
      continue;
    }
    repByKey.emplace(plan.keys[i], i);
    plan.toRun.push_back(i);
  }
  return plan;
}

/// Store a freshly simulated representative.  The capture flag is part of
/// the key, so an event-free entry can never serve a capturing caller.
void insertEntry(ScenarioMemoCache& cache, std::uint64_t key,
                 const ScenarioResult& r, bool capture) {
  ScenarioMemoCache::Entry entry;
  entry.result = r.result;
  if (capture) entry.events = r.events;
  cache.insert(key, std::move(entry));
}

void emitCacheStats(const ScenarioMemoCache& cache, const MemoStats& before,
                    obs::Sink* observer) {
  if (observer == nullptr) return;
  const MemoStats after = cache.stats();
  observer->onEvent(obs::Event{
      0.0, obs::ScenarioCacheStats{after.hits - before.hits,
                                   after.misses - before.misses,
                                   after.entries}});
}

}  // namespace

int defaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t deriveSeed(std::uint64_t baseSeed,
                         std::uint64_t scenarioIndex) {
  // splitmix64 over the (seed, index) pair; the +1 keeps index 0 from
  // collapsing into the raw base seed.
  std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ull * (scenarioIndex + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<ScenarioResult> Runner::run(
    const std::vector<ScenarioSpec>& specs) const {
  validate(specs, options_);
  const std::size_t n = specs.size();
  const bool capture = options_.observer != nullptr || options_.keepEvents;
  std::vector<ScenarioResult> results(n);

  // With a cache, classify the whole batch up front; only `toRun`
  // representatives are simulated.  Without one, everything runs fresh.
  CachePlan plan;
  if (options_.cache != nullptr) {
    plan = planAgainstCache(specs, options_, capture, results);
  } else {
    plan.toRun.resize(n);
    std::iota(plan.toRun.begin(), plan.toRun.end(), std::size_t{0});
  }

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          plan.toRun.size(), static_cast<std::size_t>(options_.jobs)));
  if (workers <= 1) {
    // jobs == 0 (or a degenerate batch): the exact legacy code path — run
    // in the caller's thread, in spec order, merging each scenario's events
    // as it completes so failures propagate at the same point they would
    // have in the old serial sweeps.
    for (std::size_t i = 0; i < n; ++i) {
      if (options_.cache != nullptr) {
        if (plan.dupOf[i] != kRunFresh) {
          // The representative ran at a smaller index, so its entry exists.
          fillFromEntry(std::move(*options_.cache->peek(plan.keys[i])),
                        specs[i], i, results[i]);
        } else if (!results[i].fromCache) {
          runOne(specs[i], i, options_, capture, results[i]);
          insertEntry(*options_.cache, plan.keys[i], results[i], capture);
        }
      } else {
        runOne(specs[i], i, options_, capture, results[i]);
      }
      mergeOne(results[i], options_);
    }
    if (options_.cache != nullptr)
      emitCacheStats(*options_.cache, plan.before, options_.observer);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex errorMutex;
  std::size_t errorIndex = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  auto worker = [&]() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= plan.toRun.size()) return;
      const std::size_t i = plan.toRun[k];
      try {
        runOne(specs[i], i, options_, capture, results[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        // Keep the lowest-index failure so the error a caller sees does not
        // depend on worker scheduling when several scenarios are doomed.
        if (i < errorIndex) {
          errorIndex = i;
          error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
  if (options_.cache != nullptr) {
    for (std::size_t i : plan.toRun)
      insertEntry(*options_.cache, plan.keys[i], results[i], capture);
    for (std::size_t i = 0; i < n; ++i)
      if (plan.dupOf[i] != kRunFresh)
        fillFromEntry(std::move(*options_.cache->peek(plan.keys[i])),
                      specs[i], i, results[i]);
  }
  mergeEvents(results, options_);
  if (options_.cache != nullptr)
    emitCacheStats(*options_.cache, plan.before, options_.observer);
  return results;
}

std::vector<ScenarioResult> runScenarios(const std::vector<ScenarioSpec>& specs,
                                         const RunnerOptions& options) {
  return Runner(options).run(specs);
}

}  // namespace mcsim::runner
