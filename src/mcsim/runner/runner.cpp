#include "mcsim/runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/obs/selfprofile.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/memo.hpp"

namespace mcsim::runner {
namespace {

void validate(const std::vector<ScenarioSpec>& specs,
              const RunnerOptions& options) {
  if (options.jobs < 0)
    throw std::invalid_argument("Runner: jobs must be >= 0");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].workflow == nullptr)
      throw std::invalid_argument("Runner: scenario " + std::to_string(i) +
                                  " has no workflow");
    if (specs[i].config.observer != nullptr)
      throw std::invalid_argument(
          "Runner: scenario " + std::to_string(i) +
          " sets config.observer; per-scenario observation is managed by "
          "the Runner (use RunnerOptions::observer)");
  }
}

/// Execute scenario `i` into `out`, capturing its events when asked.
void runOne(const ScenarioSpec& spec, std::size_t i,
            const RunnerOptions& options, bool capture, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  engine::EngineConfig cfg = spec.config;
  if (options.baseSeed != 0)
    cfg.faults.seed = deriveSeed(options.baseSeed, i);
  // Self-profiling would put host wall-clock into the captured stream,
  // breaking merge determinism and memo-cache replay; runner-level profiling
  // lives in RunnerOptions::profile instead.
  cfg.profile = false;
  obs::CollectingSink collector;
  cfg.observer = capture ? &collector : nullptr;
  out.result = engine::simulateWorkflow(*spec.workflow, cfg);
  out.events = collector.take();
}

/// Replay one scenario's stream into the shared observer, then drop the
/// buffer unless the caller asked to keep it.
void mergeOne(ScenarioResult& r, const RunnerOptions& options) {
  if (options.observer != nullptr)
    for (const obs::Event& e : r.events) options.observer->onEvent(e);
  if (!options.keepEvents) {
    r.events.clear();
    r.events.shrink_to_fit();
  }
}

/// Replay per-scenario streams into the shared observer in index order —
/// byte-identical to what a serial instrumented sweep would have emitted —
/// then drop the buffers unless the caller asked to keep them.
void mergeEvents(std::vector<ScenarioResult>& results,
                 const RunnerOptions& options) {
  for (ScenarioResult& r : results) mergeOne(r, options);
}

constexpr std::size_t kRunFresh = std::numeric_limits<std::size_t>::max();

/// Serve scenario `i` from a cache entry (a prior-run hit or an in-batch
/// duplicate's representative), preserving the scenario's own identity.
void fillFromEntry(ScenarioMemoCache::Entry entry, const ScenarioSpec& spec,
                   std::size_t i, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  out.result = std::move(entry.result);
  out.events = std::move(entry.events);
  out.fromCache = true;
}

/// Classification of a batch against the memo cache, computed serially
/// before any simulation so hit/miss accounting and results never depend on
/// worker scheduling.  Cache-hit scenarios are filled into `results`
/// directly; duplicates point at an earlier representative; everything else
/// lands in `toRun`.
struct CachePlan {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> dupOf;  ///< Representative index, or kRunFresh.
  std::vector<std::size_t> toRun;
  MemoStats before;  ///< Counter snapshot for per-batch stats deltas.
};

CachePlan planAgainstCache(const std::vector<ScenarioSpec>& specs,
                           const RunnerOptions& options, bool capture,
                           std::vector<ScenarioResult>& results) {
  const std::size_t n = specs.size();
  ScenarioMemoCache& cache = *options.cache;
  CachePlan plan;
  plan.before = cache.stats();
  plan.keys.resize(n);
  plan.dupOf.assign(n, kRunFresh);
  // Workflow fingerprints are content hashes; memoize per pointer since
  // sweeps share one workflow across hundreds of scenarios.
  // mcsim-lint: allow(ptr-key) — identity-keyed amortization cache (one
  // fingerprint per distinct Workflow object); looked up only, never
  // iterated, so address order cannot reach any output.
  std::unordered_map<const dag::Workflow*, std::uint64_t> workflowFp;
  std::unordered_map<std::uint64_t, std::size_t> repByKey;
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = workflowFp.try_emplace(specs[i].workflow, 0);
    if (fresh) it->second = fingerprintWorkflow(*specs[i].workflow);
    engine::EngineConfig cfg = specs[i].config;
    if (options.baseSeed != 0) cfg.faults.seed = deriveSeed(options.baseSeed, i);
    plan.keys[i] =
        combineFingerprints(it->second, fingerprintConfig(cfg, capture));
    if (auto rep = repByKey.find(plan.keys[i]); rep != repByKey.end()) {
      // Identical to a scenario already scheduled this batch: it will be
      // served from the representative's entry after that entry exists.
      plan.dupOf[i] = rep->second;
      cache.recordBatchHits(1);
      continue;
    }
    if (auto entry = cache.lookup(plan.keys[i])) {  // counts hit or miss
      fillFromEntry(std::move(*entry), specs[i], i, results[i]);
      continue;
    }
    repByKey.emplace(plan.keys[i], i);
    plan.toRun.push_back(i);
  }
  return plan;
}

/// Store a freshly simulated representative.  The capture flag is part of
/// the key, so an event-free entry can never serve a capturing caller.
void insertEntry(ScenarioMemoCache& cache, std::uint64_t key,
                 const ScenarioResult& r, bool capture) {
  ScenarioMemoCache::Entry entry;
  entry.result = r.result;
  if (capture) entry.events = r.events;
  cache.insert(key, std::move(entry));
}

void emitCacheStats(const ScenarioMemoCache& cache, const MemoStats& before,
                    obs::Sink* observer) {
  if (observer == nullptr) return;
  const MemoStats after = cache.stats();
  observer->onEvent(obs::Event{
      0.0, obs::ScenarioCacheStats{after.hits - before.hits,
                                   after.misses - before.misses,
                                   after.entries}});
}

/// Monotonic wall-clock for the runner's opt-in self-profiling.  Readings
/// reach the outside world only through WorkerProfile/RunnerBatchProfile
/// events appended after the deterministic merged stream, and only when
/// RunnerOptions::profile is set — they are never captured, memoized or
/// merged into per-scenario streams.
double wallNow() {
  return std::chrono::duration<double>(
             obs::ProfileClock::now().time_since_epoch())
      .count();
}

/// Per-worker busy/scenario tallies for RunnerOptions::profile.
struct WorkerTally {
  double busySeconds = 0.0;
  double wallSeconds = 0.0;
  std::size_t scenarios = 0;
};

void emitProfile(const RunnerOptions& options,
                 const std::vector<WorkerTally>& tallies,
                 std::size_t scenarios, std::size_t cached,
                 double batchWallSeconds) {
  if (!options.profile || options.observer == nullptr) return;
  for (std::size_t w = 0; w < tallies.size(); ++w)
    options.observer->onEvent(obs::Event{
        -1.0, obs::WorkerProfile{static_cast<int>(w), tallies[w].scenarios,
                                 tallies[w].busySeconds,
                                 tallies[w].wallSeconds}});
  options.observer->onEvent(obs::Event{
      -1.0, obs::RunnerBatchProfile{options.jobs, scenarios, cached,
                                    batchWallSeconds}});
}

}  // namespace

int defaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t deriveSeed(std::uint64_t baseSeed,
                         std::uint64_t scenarioIndex) {
  // splitmix64 over the (seed, index) pair; the +1 keeps index 0 from
  // collapsing into the raw base seed.
  std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ull * (scenarioIndex + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<ScenarioResult> Runner::run(
    const std::vector<ScenarioSpec>& specs) const {
  validate(specs, options_);
  const std::size_t n = specs.size();
  const bool capture = options_.observer != nullptr || options_.keepEvents;
  const bool profile = options_.profile && options_.observer != nullptr;
  const double batchStart = profile ? wallNow() : 0.0;
  std::vector<ScenarioResult> results(n);

  // With a cache, classify the whole batch up front; only `toRun`
  // representatives are simulated.  Without one, everything runs fresh.
  CachePlan plan;
  if (options_.cache != nullptr) {
    plan = planAgainstCache(specs, options_, capture, results);
  } else {
    plan.toRun.resize(n);
    std::iota(plan.toRun.begin(), plan.toRun.end(), std::size_t{0});
  }

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          plan.toRun.size(), static_cast<std::size_t>(options_.jobs)));
  if (workers <= 1) {
    // jobs == 0 (or a degenerate batch): the exact legacy code path — run
    // in the caller's thread, in spec order, merging each scenario's events
    // as it completes so failures propagate at the same point they would
    // have in the old serial sweeps.
    std::vector<WorkerTally> tally(profile ? 1 : 0);
    const auto timedRunOne = [&](std::size_t i) {
      if (!profile) {
        runOne(specs[i], i, options_, capture, results[i]);
        return;
      }
      const double t0 = wallNow();
      runOne(specs[i], i, options_, capture, results[i]);
      tally[0].busySeconds += wallNow() - t0;
      ++tally[0].scenarios;
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (options_.cache != nullptr) {
        if (plan.dupOf[i] != kRunFresh) {
          // The representative ran at a smaller index, so its entry exists.
          fillFromEntry(std::move(*options_.cache->peek(plan.keys[i])),
                        specs[i], i, results[i]);
        } else if (!results[i].fromCache) {
          timedRunOne(i);
          insertEntry(*options_.cache, plan.keys[i], results[i], capture);
        }
      } else {
        timedRunOne(i);
      }
      mergeOne(results[i], options_);
    }
    if (options_.cache != nullptr)
      emitCacheStats(*options_.cache, plan.before, options_.observer);
    if (profile) {
      tally[0].wallSeconds = wallNow() - batchStart;
      emitProfile(options_, tally, n, n - plan.toRun.size(),
                  tally[0].wallSeconds);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex errorMutex;
  std::size_t errorIndex = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  std::vector<WorkerTally> tally(profile ? static_cast<std::size_t>(workers)
                                         : 0);

  auto worker = [&](int w) {
    const double workerStart = profile ? wallNow() : 0.0;
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= plan.toRun.size()) break;
      const std::size_t i = plan.toRun[k];
      try {
        if (profile) {
          const double t0 = wallNow();
          runOne(specs[i], i, options_, capture, results[i]);
          auto& t = tally[static_cast<std::size_t>(w)];
          t.busySeconds += wallNow() - t0;
          ++t.scenarios;
        } else {
          runOne(specs[i], i, options_, capture, results[i]);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        // Keep the lowest-index failure so the error a caller sees does not
        // depend on worker scheduling when several scenarios are doomed.
        if (i < errorIndex) {
          errorIndex = i;
          error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (profile)
      tally[static_cast<std::size_t>(w)].wallSeconds = wallNow() - workerStart;
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
  if (options_.cache != nullptr) {
    for (std::size_t i : plan.toRun)
      insertEntry(*options_.cache, plan.keys[i], results[i], capture);
    for (std::size_t i = 0; i < n; ++i)
      if (plan.dupOf[i] != kRunFresh)
        fillFromEntry(std::move(*options_.cache->peek(plan.keys[i])),
                      specs[i], i, results[i]);
  }
  mergeEvents(results, options_);
  if (options_.cache != nullptr)
    emitCacheStats(*options_.cache, plan.before, options_.observer);
  if (profile)
    emitProfile(options_, tally, n, n - plan.toRun.size(),
                wallNow() - batchStart);
  return results;
}

std::vector<ScenarioResult> runScenarios(const std::vector<ScenarioSpec>& specs,
                                         const RunnerOptions& options) {
  return Runner(options).run(specs);
}

}  // namespace mcsim::runner
