#include "mcsim/runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::runner {
namespace {

void validate(const std::vector<ScenarioSpec>& specs,
              const RunnerOptions& options) {
  if (options.jobs < 0)
    throw std::invalid_argument("Runner: jobs must be >= 0");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].workflow == nullptr)
      throw std::invalid_argument("Runner: scenario " + std::to_string(i) +
                                  " has no workflow");
    if (specs[i].config.observer != nullptr)
      throw std::invalid_argument(
          "Runner: scenario " + std::to_string(i) +
          " sets config.observer; per-scenario observation is managed by "
          "the Runner (use RunnerOptions::observer)");
  }
}

/// Execute scenario `i` into `out`, capturing its events when asked.
void runOne(const ScenarioSpec& spec, std::size_t i,
            const RunnerOptions& options, bool capture, ScenarioResult& out) {
  out.index = i;
  out.label = spec.label;
  engine::EngineConfig cfg = spec.config;
  if (options.baseSeed != 0)
    cfg.faults.seed = deriveSeed(options.baseSeed, i);
  obs::CollectingSink collector;
  cfg.observer = capture ? &collector : nullptr;
  out.result = engine::simulateWorkflow(*spec.workflow, cfg);
  out.events = collector.take();
}

/// Replay per-scenario streams into the shared observer in index order —
/// byte-identical to what a serial instrumented sweep would have emitted —
/// then drop the buffers unless the caller asked to keep them.
void mergeEvents(std::vector<ScenarioResult>& results,
                 const RunnerOptions& options) {
  for (ScenarioResult& r : results) {
    if (options.observer != nullptr)
      for (const obs::Event& e : r.events) options.observer->onEvent(e);
    if (!options.keepEvents) {
      r.events.clear();
      r.events.shrink_to_fit();
    }
  }
}

}  // namespace

int defaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t deriveSeed(std::uint64_t baseSeed,
                         std::uint64_t scenarioIndex) {
  // splitmix64 over the (seed, index) pair; the +1 keeps index 0 from
  // collapsing into the raw base seed.
  std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ull * (scenarioIndex + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<ScenarioResult> Runner::run(
    const std::vector<ScenarioSpec>& specs) const {
  validate(specs, options_);
  const std::size_t n = specs.size();
  const bool capture = options_.observer != nullptr || options_.keepEvents;
  std::vector<ScenarioResult> results(n);

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          n, static_cast<std::size_t>(options_.jobs)));
  if (workers <= 1) {
    // jobs == 0 (or a degenerate batch): the exact legacy code path — run
    // in the caller's thread, in spec order, merging each scenario's events
    // as it completes so failures propagate at the same point they would
    // have in the old serial sweeps.
    for (std::size_t i = 0; i < n; ++i) {
      runOne(specs[i], i, options_, capture, results[i]);
      if (options_.observer != nullptr)
        for (const obs::Event& e : results[i].events)
          options_.observer->onEvent(e);
      if (!options_.keepEvents) {
        results[i].events.clear();
        results[i].events.shrink_to_fit();
      }
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex errorMutex;
  std::size_t errorIndex = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  auto worker = [&]() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        runOne(specs[i], i, options_, capture, results[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        // Keep the lowest-index failure so the error a caller sees does not
        // depend on worker scheduling when several scenarios are doomed.
        if (i < errorIndex) {
          errorIndex = i;
          error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
  mergeEvents(results, options_);
  return results;
}

std::vector<ScenarioResult> runScenarios(const std::vector<ScenarioSpec>& specs,
                                         const RunnerOptions& options) {
  return Runner(options).run(specs);
}

}  // namespace mcsim::runner
