#include "mcsim/runner/runner.hpp"

#include <stdexcept>
#include <thread>

#include "mcsim/runner/jobs.hpp"

namespace mcsim::runner {

int defaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t deriveSeed(std::uint64_t baseSeed,
                         std::uint64_t scenarioIndex) {
  // splitmix64 over the (seed, index) pair; the +1 keeps index 0 from
  // collapsing into the raw base seed.
  std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ull * (scenarioIndex + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// The one-shot batch API is now a thin wrapper over the job queue: a
// transient queue, one job, wait, rethrow.  All execution semantics
// (serial fallback, cache planning, lowest-index-error, deterministic
// merge, profiling) live in jobs.cpp; the differential test in
// tests/runner/jobs_compat_test.cpp holds this wrapper byte-identical to
// the legacy in-place implementation it replaced.
std::vector<ScenarioResult> Runner::run(
    const std::vector<ScenarioSpec>& specs) const {
  if (options_.jobs < 0)
    throw std::invalid_argument("Runner: jobs must be >= 0");
  JobQueueOptions queueOptions;
  queueOptions.workers = options_.jobs;
  queueOptions.maxQueuedJobs = 1;
  queueOptions.cache = options_.cache;
  JobQueue queue(queueOptions);
  JobOptions jobOptions;
  jobOptions.baseSeed = options_.baseSeed;
  jobOptions.observer = options_.observer;
  jobOptions.keepEvents = options_.keepEvents;
  jobOptions.profile = options_.profile;
  return queue.run(specs, jobOptions);
}

std::vector<ScenarioResult> runScenarios(const std::vector<ScenarioSpec>& specs,
                                         const RunnerOptions& options) {
  return Runner(options).run(specs);
}

}  // namespace mcsim::runner
