#include "mcsim/faults/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcsim::faults {

double RetryPolicy::baseDelay(int retryIndex) const {
  if (retryIndex < 0)
    throw std::invalid_argument("RetryPolicy: negative retry index");
  if (kind == RetryPolicyKind::Fixed) return delaySeconds;
  // Exponential backoff; pow on small integer exponents is exact enough and
  // the cap keeps it finite for deep retry chains.
  double delay = delaySeconds * std::pow(multiplier, retryIndex);
  if (maxDelaySeconds > 0.0) delay = std::min(delay, maxDelaySeconds);
  return delay;
}

double RetryPolicy::delayFor(int retryIndex, Rng* rng) const {
  double delay = baseDelay(retryIndex);
  if (jitterFraction > 0.0) {
    if (rng == nullptr)
      throw std::invalid_argument("RetryPolicy: jitter requires an Rng");
    delay *= 1.0 + jitterFraction * rng->uniformReal(0.0, 1.0);
  }
  return delay;
}

void RetryPolicy::validate() const {
  if (maxRetries < 0)
    throw std::invalid_argument("RetryPolicy: maxRetries must be >= 0");
  if (delaySeconds < 0.0)
    throw std::invalid_argument("RetryPolicy: negative delay");
  if (multiplier < 1.0)
    throw std::invalid_argument("RetryPolicy: multiplier must be >= 1");
  if (maxDelaySeconds < 0.0)
    throw std::invalid_argument("RetryPolicy: negative delay cap");
  if (jitterFraction < 0.0 || jitterFraction > 1.0)
    throw std::invalid_argument("RetryPolicy: jitterFraction must be in [0, 1]");
}

bool FaultConfig::anyEnabled() const {
  return processor.mtbfSeconds > 0.0 || !link.outages.empty() ||
         !storage.outages.empty() || legacy.probability > 0.0 ||
         deadlineSeconds > 0.0;
}

namespace {
void validateWindows(const std::vector<OutageWindow>& windows,
                     const char* what) {
  for (const OutageWindow& w : windows)
    if (w.startSeconds < 0.0 || w.durationSeconds < 0.0)
      throw std::invalid_argument(std::string("FaultConfig: negative ") +
                                  what + " outage bounds");
}
}  // namespace

void FaultConfig::validate() const {
  if (processor.mtbfSeconds < 0.0)
    throw std::invalid_argument("FaultConfig: negative MTBF");
  validateWindows(link.outages, "link");
  validateWindows(storage.outages, "storage");
  retry.validate();
  if (legacy.probability < 0.0 || legacy.probability >= 1.0)
    throw std::invalid_argument(
        "FaultConfig: legacy failure probability must be in [0, 1)");
  if (deadlineSeconds < 0.0)
    throw std::invalid_argument("FaultConfig: negative deadline");
}

std::vector<OutageWindow> generateOutageSchedule(double mtbfSeconds,
                                                 double mttrSeconds,
                                                 double horizonSeconds,
                                                 Rng& rng) {
  if (mtbfSeconds <= 0.0 || mttrSeconds <= 0.0)
    throw std::invalid_argument(
        "generateOutageSchedule: MTBF and MTTR must be positive");
  if (horizonSeconds < 0.0)
    throw std::invalid_argument("generateOutageSchedule: negative horizon");
  std::vector<OutageWindow> out;
  double t = 0.0;
  while (true) {
    t += rng.exponential(mtbfSeconds);  // up-time until the next failure
    if (t >= horizonSeconds) break;
    const double down = rng.exponential(mttrSeconds);
    out.push_back(OutageWindow{t, std::min(down, horizonSeconds - t)});
    t += down;
  }
  return out;
}

std::vector<OutageWindow> normalizeOutages(std::vector<OutageWindow> windows) {
  validateWindows(windows, "");
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.startSeconds < b.startSeconds;
            });
  std::vector<OutageWindow> merged;
  for (const OutageWindow& w : windows) {
    if (w.durationSeconds <= 0.0) continue;
    if (!merged.empty() && w.startSeconds <= merged.back().endSeconds()) {
      const double end = std::max(merged.back().endSeconds(), w.endSeconds());
      merged.back().durationSeconds = end - merged.back().startSeconds;
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  config_.validate();
  if (crashModelEnabled() || config_.retry.jitterFraction > 0.0)
    faultRng_.emplace(config_.seed);
  if (legacyEnabled()) legacyRng_.emplace(config_.legacy.seed);
}

std::optional<double> FaultInjector::drawCrashTime(double runtimeSeconds) {
  if (!crashModelEnabled()) return std::nullopt;
  const double ttf = faultRng_->exponential(config_.processor.mtbfSeconds);
  if (ttf >= runtimeSeconds) return std::nullopt;
  return ttf;
}

int& FaultInjector::retriesSlot(std::uint32_t task) {
  if (task >= retriesUsed_.size()) retriesUsed_.resize(task + 1, 0);
  return retriesUsed_[task];
}

std::optional<double> FaultInjector::nextRetryDelay(std::uint32_t task) {
  int& used = retriesSlot(task);
  if (used >= config_.retry.maxRetries) return std::nullopt;
  const int retryIndex = used++;
  // faultRng_ exists whenever jitterFraction > 0 (ctor invariant), so the
  // null branch only ever reaches a jitter-free delayFor.
  return config_.retry.delayFor(retryIndex,
                                faultRng_ ? &*faultRng_ : nullptr);
}

int FaultInjector::attemptsMade(std::uint32_t task) const {
  const int used =
      task < retriesUsed_.size() ? retriesUsed_[task] : 0;
  return used + 1;
}

bool FaultInjector::legacyAttemptFails() {
  if (!legacyRng_) return false;
  return legacyRng_->chance(config_.legacy.probability);
}

}  // namespace mcsim::faults
