// Fault-injection and recovery models layered on the DES core.
//
// The paper's §8 only gestures at reliability ("the reliability and
// availability of the computational and storage resources ... are also an
// important concern"); related work (Juve et al., "Scientific Workflow
// Applications on Amazon EC2"; Berriman et al., "The Application of Cloud
// Computing to Astronomy") shows transient node loss and retry overhead
// dominate real cloud cost variance.  This module supplies the failure
// *models*; the execution engine supplies the *mechanics* (preempting
// in-flight work via Simulator::cancel, re-staging files, billing waste):
//
//   * ProcessorFaults — spot-style instance loss mid-task: each execution
//     attempt draws an exponential time-to-failure with the configured MTBF;
//     if it lands inside the attempt's runtime the processor crashes there,
//     the partial work is billed as waste, and the task retries per policy.
//   * RetryPolicy — fixed delay or exponential backoff with deterministic
//     jitter, capped by a per-task retry budget.  A task that exhausts its
//     budget is reported failed and its descendants are abandoned.
//   * Outage windows — link and storage unavailability intervals, either
//     listed explicitly or generated as a deterministic MTBF/MTTR
//     alternating-renewal schedule.
//   * deadlineSeconds — a per-workflow deadline: at the deadline every
//     in-flight attempt is preempted (partial work billed) and the run is
//     reported incomplete.
//
// Everything is seeded through the portable Rng so runs are bit-reproducible:
// the same FaultConfig and workflow always produce byte-identical event
// streams.  The legacy EngineConfig::taskFailureProbability end-of-attempt
// coin flip lives on as LegacyCoinFlip, drawn from its own Rng stream in the
// old draw order, so pre-existing configurations reproduce exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mcsim/util/rng.hpp"

namespace mcsim::faults {

/// A closed-open unavailability interval [startSeconds, startSeconds +
/// durationSeconds).
struct OutageWindow {
  double startSeconds = 0.0;
  double durationSeconds = 0.0;

  double endSeconds() const { return startSeconds + durationSeconds; }
};

/// How long to wait before re-executing a crashed attempt.
enum class RetryPolicyKind {
  Fixed,               ///< Constant delaySeconds between attempts.
  ExponentialBackoff,  ///< delay * multiplier^retryIndex, capped.
};

struct RetryPolicy {
  RetryPolicyKind kind = RetryPolicyKind::Fixed;
  /// Retry budget: a task makes at most maxRetries + 1 execution attempts.
  int maxRetries = 3;
  /// Fixed delay / backoff base, in seconds.
  double delaySeconds = 0.0;
  /// Backoff growth factor (>= 1).
  double multiplier = 2.0;
  /// Backoff ceiling; 0 = uncapped.
  double maxDelaySeconds = 0.0;
  /// Deterministic jitter: the delay is stretched by a uniform factor in
  /// [1, 1 + jitterFraction), drawn from the fault Rng.  0 disables.
  double jitterFraction = 0.0;

  /// Undelayed (jitter-free) delay before retry number `retryIndex` (0-based).
  double baseDelay(int retryIndex) const;
  /// Full delay including the jitter draw (consumes one Rng value when
  /// jitterFraction > 0; `rng` may be null iff jitterFraction == 0).
  double delayFor(int retryIndex, Rng* rng) const;

  void validate() const;
};

/// Spot-style processor loss.  mtbfSeconds == 0 disables the model.
struct ProcessorFaults {
  /// Mean time between failures of a busy processor; each execution attempt
  /// draws an exponential time-to-failure with this mean.
  double mtbfSeconds = 0.0;
};

/// Link unavailability windows (in addition to EngineConfig::outages).
struct LinkFaults {
  std::vector<OutageWindow> outages;
};

/// Storage (S3) unavailability windows.  While storage is down the
/// user<->storage link is also suspended (nothing can be read or written)
/// and tasks that finish computing cannot commit their outputs until the
/// window ends — they hold their processor, extending the billed makespan.
struct StorageFaults {
  std::vector<OutageWindow> outages;
};

/// The deprecated EngineConfig::taskFailureProbability semantics, preserved
/// bit-for-bit: one Bernoulli draw per completion attempt (in completion
/// order, from a dedicated Rng), immediate re-execution on the same
/// processor, full runtime billed, no retry budget, no re-staging.
struct LegacyCoinFlip {
  double probability = 0.0;  ///< In [0, 1).
  std::uint64_t seed = 1;
};

struct FaultConfig {
  ProcessorFaults processor;
  LinkFaults link;
  StorageFaults storage;
  RetryPolicy retry;
  LegacyCoinFlip legacy;
  /// Workflow deadline in simulated seconds; 0 = none.
  double deadlineSeconds = 0.0;
  /// Seed for the fault Rng (crash times, retry jitter).  Independent of
  /// legacy.seed so legacy configurations replay unchanged.
  std::uint64_t seed = 1;

  /// True if any model can alter a run (crashes, outages, legacy flips or a
  /// deadline are configured).
  bool anyEnabled() const;
  void validate() const;
};

/// Deterministic alternating-renewal outage schedule: up-times are
/// exponential with mean `mtbfSeconds`, down-times exponential with mean
/// `mttrSeconds`, until `horizonSeconds`.  Windows are returned sorted and
/// non-overlapping.  The same (arguments, rng state) always produce the same
/// schedule.
std::vector<OutageWindow> generateOutageSchedule(double mtbfSeconds,
                                                 double mttrSeconds,
                                                 double horizonSeconds,
                                                 Rng& rng);

/// Merge, sort and validate outage windows (overlapping or adjacent windows
/// coalesce).  Throws std::invalid_argument on negative bounds.
std::vector<OutageWindow> normalizeOutages(std::vector<OutageWindow> windows);

/// Per-run fault state: owns the Rng streams and the per-task retry budgets.
/// The engine asks it three questions — "does this attempt crash, and when?",
/// "may this task retry, and after what delay?", and "does the legacy coin
/// land on failure?".  All draws are deterministic in the order asked.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  /// Crash model: the offset into the attempt at which the processor dies,
  /// or nullopt if the attempt survives its full `runtimeSeconds`.  Consumes
  /// one exponential draw per call when the model is enabled.
  std::optional<double> drawCrashTime(double runtimeSeconds);

  /// Consume one retry from `task`'s budget.  Returns the delay before the
  /// re-attempt, or nullopt when the budget is exhausted (the task is then
  /// permanently failed).
  std::optional<double> nextRetryDelay(std::uint32_t task);

  /// Execution attempts made by `task` so far known to the injector
  /// (1 + retries granted).  Used for reporting.
  int attemptsMade(std::uint32_t task) const;

  /// Legacy end-of-attempt coin flip; false when the legacy model is off.
  /// Draw order matches the pre-faults engine exactly.
  bool legacyAttemptFails();

  bool crashModelEnabled() const { return config_.processor.mtbfSeconds > 0.0; }
  bool legacyEnabled() const { return config_.legacy.probability > 0.0; }

 private:
  FaultConfig config_;
  std::optional<Rng> faultRng_;   ///< Crash times and retry jitter.
  std::optional<Rng> legacyRng_;  ///< The deprecated coin flip stream.
  std::vector<int> retriesUsed_;  ///< Indexed lazily by task id.

  int& retriesSlot(std::uint32_t task);
};

}  // namespace mcsim::faults
