#include "mcsim/obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace mcsim::obs {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

AttributedCost price(const ResourceUsage& usage,
                     const cloud::Pricing& pricing) {
  AttributedCost cost;
  cost.usage = usage;
  cost.cpu = pricing.cpuCost(usage.cpuSeconds);
  cost.storage = pricing.storageCost(usage.storageByteSeconds);
  cost.transferIn = pricing.transferInCost(Bytes(usage.bytesIn));
  cost.transferOut = pricing.transferOutCost(Bytes(usage.bytesOut));
  return cost;
}

void writeCostFields(std::ostream& os, const AttributedCost& c) {
  os << "\"cpu_seconds\":" << num(c.usage.cpuSeconds)
     << ",\"storage_byte_seconds\":" << num(c.usage.storageByteSeconds)
     << ",\"bytes_in\":" << num(c.usage.bytesIn)
     << ",\"bytes_out\":" << num(c.usage.bytesOut)
     << ",\"cpu\":" << num(c.cpu.value())
     << ",\"storage\":" << num(c.storage.value())
     << ",\"transfer_in\":" << num(c.transferIn.value())
     << ",\"transfer_out\":" << num(c.transferOut.value())
     << ",\"total\":" << num(c.total().value());
}

}  // namespace

void ResourceUsage::add(Resource resource, double quantity) {
  switch (resource) {
    case Resource::Cpu: cpuSeconds += quantity; break;
    case Resource::Storage: storageByteSeconds += quantity; break;
    case Resource::TransferIn: bytesIn += quantity; break;
    case Resource::TransferOut: bytesOut += quantity; break;
  }
}

void ReportBuilder::onEvent(const Event& event) {
  if (const auto* item = std::get_if<BillingLineItem>(&event.payload))
    usage_[item->task].add(item->resource, item->quantity);
}

RunReport ReportBuilder::build(const dag::Workflow& wf,
                               const engine::ExecutionResult& result,
                               const cloud::Pricing& pricing,
                               cloud::CpuBillingMode cpuMode,
                               cloud::BillingGranularity granularity) const {
  RunReport report;
  report.workflow = wf.name();
  report.mode = engine::dataModeName(result.mode);
  report.billing =
      cpuMode == cloud::CpuBillingMode::Provisioned ? "provisioned" : "usage";
  report.processors = result.processors;
  report.makespanSeconds = result.makespanSeconds;
  report.cpuBusySeconds = result.cpuBusySeconds;
  report.bytesIn = result.bytesIn.value();
  report.bytesOut = result.bytesOut.value();
  report.storageGBHours = result.storageGBHours();
  report.peakStorageBytes = result.peakStorageBytes.value();
  report.tasksExecuted = result.tasksExecuted;
  report.taskRetries = result.taskRetries;
  report.tasksFailed = result.tasksFailed;
  report.tasksAbandoned = result.tasksAbandoned;
  report.processorCrashes = result.processorCrashes;
  report.wastedCpuSeconds = result.wastedCpuSeconds;
  report.deadlineExceeded = result.deadlineExceeded;

  report.totals = engine::computeCost(result, pricing, cpuMode, granularity);

  // Per-task and staging attribution, priced from the raw line items.
  std::map<int, LevelCost> levels;  // ordered: deterministic output
  Money attributedCpu;
  for (const auto& [task, usage] : usage_) {
    const AttributedCost cost = price(usage, pricing);
    attributedCpu += cost.cpu;
    if (task == kNoTask) {
      report.staging = cost;
      continue;
    }
    TaskCost entry;
    entry.task = task;
    const dag::Task& t = wf.task(task);
    entry.name = t.name;
    entry.type = t.type;
    entry.level = t.level;
    entry.cost = cost;
    report.byTask.push_back(std::move(entry));
  }
  std::sort(report.byTask.begin(), report.byTask.end(),
            [](const TaskCost& a, const TaskCost& b) { return a.task < b.task; });

  // Section is omitted only when staging never happened at all — every
  // field still exactly its zero initializer.
  // mcsim-lint: allow(float-equality)
  if (report.staging.total().value() != 0.0 ||
      report.staging.usage.bytesIn != 0.0) {  // mcsim-lint: allow(float-equality)
    LevelCost& l0 = levels[0];
    l0.level = 0;
    l0.cost.usage = report.staging.usage;
  }
  for (const TaskCost& t : report.byTask) {
    LevelCost& l = levels[t.level];
    l.level = t.level;
    ++l.tasks;
    ResourceUsage& u = l.cost.usage;
    u.cpuSeconds += t.cost.usage.cpuSeconds;
    u.storageByteSeconds += t.cost.usage.storageByteSeconds;
    u.bytesIn += t.cost.usage.bytesIn;
    u.bytesOut += t.cost.usage.bytesOut;
  }
  for (auto& [level, entry] : levels) {
    const ResourceUsage u = entry.cost.usage;
    entry.cost = price(u, pricing);
    report.byLevel.push_back(entry);
  }

  report.unattributedCpu = report.totals.cpu - attributedCpu;
  if (std::abs(report.unattributedCpu.value()) < 1e-9)
    report.unattributedCpu = Money::zero();
  return report;
}

void writeReportJson(std::ostream& os, const RunReport& r) {
  os << "{\n";
  os << "  \"schema\": \"mcsim.report.v1\",\n";
  os << "  \"workflow\": \"" << jsonEscape(r.workflow) << "\",\n";
  os << "  \"mode\": \"" << r.mode << "\",\n";
  os << "  \"billing\": \"" << r.billing << "\",\n";
  os << "  \"processors\": " << r.processors << ",\n";
  os << "  \"metrics\": {\"makespan_seconds\":" << num(r.makespanSeconds)
     << ",\"cpu_busy_seconds\":" << num(r.cpuBusySeconds)
     << ",\"bytes_in\":" << num(r.bytesIn)
     << ",\"bytes_out\":" << num(r.bytesOut)
     << ",\"storage_gb_hours\":" << num(r.storageGBHours)
     << ",\"peak_storage_bytes\":" << num(r.peakStorageBytes)
     << ",\"tasks_executed\":" << r.tasksExecuted
     << ",\"task_retries\":" << r.taskRetries
     << ",\"tasks_failed\":" << r.tasksFailed
     << ",\"tasks_abandoned\":" << r.tasksAbandoned
     << ",\"processor_crashes\":" << r.processorCrashes
     << ",\"wasted_cpu_seconds\":" << num(r.wastedCpuSeconds)
     << ",\"deadline_exceeded\":" << (r.deadlineExceeded ? "true" : "false")
     << "},\n";
  os << "  \"totals\": {\"cpu\":" << num(r.totals.cpu.value())
     << ",\"storage\":" << num(r.totals.storage.value())
     << ",\"transfer_in\":" << num(r.totals.transferIn.value())
     << ",\"transfer_out\":" << num(r.totals.transferOut.value())
     << ",\"total\":" << num(r.totals.total().value()) << "},\n";
  os << "  \"unattributed_cpu\": " << num(r.unattributedCpu.value()) << ",\n";
  os << "  \"staging\": {";
  writeCostFields(os, r.staging);
  os << "},\n";
  os << "  \"by_task\": [\n";
  for (std::size_t i = 0; i < r.byTask.size(); ++i) {
    const TaskCost& t = r.byTask[i];
    os << "    {\"task\":" << t.task << ",\"name\":\"" << jsonEscape(t.name)
       << "\",\"type\":\"" << jsonEscape(t.type) << "\",\"level\":" << t.level
       << ',';
    writeCostFields(os, t.cost);
    os << '}' << (i + 1 < r.byTask.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"by_level\": [\n";
  for (std::size_t i = 0; i < r.byLevel.size(); ++i) {
    const LevelCost& l = r.byLevel[i];
    os << "    {\"level\":" << l.level << ",\"tasks\":" << l.tasks << ',';
    writeCostFields(os, l.cost);
    os << '}' << (i + 1 < r.byLevel.size() ? "," : "") << '\n';
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace mcsim::obs
