// Simulator self-profiling: where does *the simulator's own* wall-clock go?
//
// The cost model measures simulated seconds; this header measures the seconds
// we spend producing them, so survey-scale campaigns (ROADMAP: 10^6-10^7
// tasks) can be capacity-planned before they exist.  A run is split into four
// phases — setup (DAG/config preparation), schedule (outage/deadline/sampler
// wiring), event loop, and result extraction — accumulated by a PhaseProfiler
// and surfaced as obs::PhaseProfile events and Prometheus counters.
//
// Determinism contract: wall-clock must never leak into a captured event
// stream, or replay and the scenario memo cache would diverge run-to-run.
// Profiling is therefore (a) opt-in via EngineConfig::profile /
// RunnerOptions::profile, (b) emitted with time < 0 (no simulation clock),
// and (c) instrumented only through the MCSIM_TRACE_* macros below, which an
// mcsim-lint rule enforces on hot paths and which compile to nothing under
// MCSIM_TRACE_DISABLED.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "mcsim/obs/sink.hpp"

namespace mcsim::obs {

/// Host clock for self-profiling.  It measures the simulator, not the
/// simulation: readings never reach simulated state or captured streams,
/// and only flow out at all when profiling was explicitly requested.
// mcsim-lint: allow(no-wallclock)
using ProfileClock = std::chrono::steady_clock;

/// Internal phases of one engine run, in execution order.
enum class SimPhase : std::uint8_t {
  Setup,      ///< Workflow validation, Run construction, file/task tables.
  Schedule,   ///< Outage/deadline/sampler scheduling before time starts.
  EventLoop,  ///< The discrete-event loop itself (the hot part).
  Extract,    ///< Pulling ExecutionResult out of the finished run.
};

inline constexpr std::size_t kSimPhaseCount = 4;

/// Stable snake_case name (the JSONL/metrics label).
const char* simPhaseName(SimPhase phase);

/// Accumulates wall-clock per phase.  Plain data, no locking: one profiler
/// belongs to one run on one thread.
class PhaseProfiler {
 public:
  void add(SimPhase phase, double seconds) {
    seconds_[static_cast<std::size_t>(phase)] += seconds;
  }

  double seconds(SimPhase phase) const {
    return seconds_[static_cast<std::size_t>(phase)];
  }

  double totalSeconds() const {
    double total = 0.0;
    for (double s : seconds_) total += s;
    return total;
  }

  /// Emit one PhaseProfile event per phase (time = -1: no simulation clock).
  /// Null-safe; skips sinks that reject the kind.
  void emitTo(Sink* sink) const;

 private:
  std::array<double, kSimPhaseCount> seconds_{};
};

/// RAII phase timer: charges the enclosing scope's wall-clock to one phase of
/// a profiler.  Null profiler = fully inert (the disabled path stays on a
/// single branch, no clock read).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, SimPhase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = now();
  }

  ~ScopedPhase() {
    if (profiler_ != nullptr)
      profiler_->add(phase_, std::chrono::duration<double>(now() - start_)
                                 .count());
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  static ProfileClock::time_point now() { return ProfileClock::now(); }

  PhaseProfiler* profiler_;
  SimPhase phase_;
  ProfileClock::time_point start_;
};

}  // namespace mcsim::obs

// Instrumentation macros — the only sanctioned way to put phase timers on
// sim/engine/runner hot paths (enforced by the mcsim-lint `trace-macro`
// rule).  Define MCSIM_TRACE_DISABLED to compile all instrumentation out.
#ifdef MCSIM_TRACE_DISABLED
#define MCSIM_TRACE_PHASE(profiler, phase) \
  do {                                     \
  } while (false)
#else
#define MCSIM_TRACE_CONCAT_INNER(a, b) a##b
#define MCSIM_TRACE_CONCAT(a, b) MCSIM_TRACE_CONCAT_INNER(a, b)
#define MCSIM_TRACE_PHASE(profiler, phase)                 \
  ::mcsim::obs::ScopedPhase MCSIM_TRACE_CONCAT(            \
      mcsimTracePhaseScope_, __LINE__)((profiler), (phase))
#endif
