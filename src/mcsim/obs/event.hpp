// Typed telemetry events — the vocabulary of the observability layer.
//
// Every instrumented component (simulator calendar, link, processor pool,
// storage service, execution engine, logger) describes what happened as one
// of the payload structs below; an `Event` stamps the payload with the
// simulation time.  Payloads are plain structs of ids and numbers — no
// strings are formatted at the emit site, so a disabled observer costs one
// branch and an enabled one costs a variant construction.  Exporters
// (JSONL, metrics, report) attach meaning downstream.
//
// This header sits below every other mcsim module: it may not include
// sim/, cloud/, engine/ or dag/ headers.  Ids are therefore raw integers
// (they mirror sim::EventId, Link::TransferId, dag::TaskId / FileId and
// storage keys without naming those types).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <variant>

namespace mcsim::obs {

/// Mirrors dag::kNoTask: a line item or transfer not attributable to a
/// single task (global stage-in/out of the workflow).
inline constexpr std::uint32_t kNoTask = 0xffffffffu;

// -- simulator calendar -------------------------------------------------------
struct SimEventScheduled {
  std::uint64_t event;
  double fireAt;
};
struct SimEventFired {
  std::uint64_t event;
};
struct SimEventCancelled {
  std::uint64_t event;
};

// -- network link -------------------------------------------------------------
struct TransferStarted {
  std::uint64_t transfer;
  double bytes;
  std::size_t active;  ///< Concurrent transfers, including this one.
};
/// High-volume: emitted per active transfer whenever the link re-credits
/// progress.  Sinks opt in via accepts(EventKind::TransferProgress).
struct TransferProgress {
  std::uint64_t transfer;
  double remainingBytes;
};
struct TransferFinished {
  std::uint64_t transfer;
  double bytes;
  double seconds;  ///< Wall-clock (sim) duration of the transfer.
};
struct LinkShareChanged {
  std::size_t active;
  double bytesPerSecondEach;  ///< Per-transfer rate after the change.
};
struct LinkSuspended {};
struct LinkResumed {};

// -- processor pool -----------------------------------------------------------
struct ProcessorClaimed {
  int busy;
  int total;
  std::size_t queued;
};
struct ProcessorReleased {
  int busy;
  int total;
  std::size_t queued;
};
struct ProcessorQueued {
  std::size_t queued;  ///< Queue depth after enqueueing this request.
};

// -- cloud storage ------------------------------------------------------------
struct StorageFilePut {
  std::uint64_t key;
  double bytes;
  double residentBytes;  ///< After the put.
  std::size_t objects;
};
struct StorageFileErased {
  std::uint64_t key;
  double bytes;
  double residentBytes;  ///< After the erase.
  std::size_t objects;
};
/// Periodic resident-bytes sample (obs::PeriodicSampler through the engine).
struct StorageSampled {
  double residentBytes;
  std::size_t objects;
};

// -- execution engine ---------------------------------------------------------
struct RunStarted {
  std::size_t tasks;
  std::size_t files;
  int processors;
};
struct RunFinished {
  double seconds;  ///< End of the last stage-out (excludes VM teardown).
};
struct TaskReady {
  std::uint32_t task;
};
struct TaskStarted {
  std::uint32_t task;  ///< Processor claimed (remote I/O: stage-in begins).
};
struct TaskExecStarted {
  std::uint32_t task;  ///< Computation begins.
};
struct TaskFinished {
  std::uint32_t task;
  double cpuSeconds;  ///< Billed runtime of the successful attempt.
};
struct TaskRetried {
  std::uint32_t task;  ///< A failure-injected attempt is being re-executed.
};
struct TaskBlocked {
  std::uint32_t task;  ///< Dispatch deferred: would overflow storage capacity.
};
struct StageInStarted {
  std::uint32_t file;
  std::uint32_t task;  ///< kNoTask for the global t=0 stage-in.
  double bytes;
};
struct StageInFinished {
  std::uint32_t file;
  std::uint32_t task;
  double bytes;
};
struct StageOutStarted {
  std::uint32_t file;
  std::uint32_t task;  ///< kNoTask for the final workflow stage-out.
  double bytes;
};
struct StageOutFinished {
  std::uint32_t file;
  std::uint32_t task;
  double bytes;
};
struct FileCleanupDeleted {
  std::uint32_t file;
  std::uint32_t task;  ///< The last consumer whose completion freed the file.
  double bytes;
};

// -- fault injection & recovery -----------------------------------------------
/// The processor executing `task` died mid-attempt (spot-style loss);
/// `wastedSeconds` of compute were lost and billed.
struct ProcessorCrashed {
  std::uint32_t task;
  double wastedSeconds;
};
/// A crashed task was granted a retry: its attempt number `attempt` (1-based
/// count of attempts already made) will re-execute after `delaySeconds`.
struct TaskRetryScheduled {
  std::uint32_t task;
  int attempt;
  double delaySeconds;
};
/// The task exhausted its retry budget after `attempts` execution attempts
/// and is permanently failed.
struct TaskFailed {
  std::uint32_t task;
  int attempts;
};
/// A descendant of a failed task can never run; `ancestor` is the failed or
/// abandoned parent that sealed its fate.
struct TaskAbandoned {
  std::uint32_t task;
  std::uint32_t ancestor;
};
struct StorageOutageStarted {};
struct StorageOutageEnded {};
/// The workflow deadline passed with `unfinishedTasks` tasks incomplete;
/// every in-flight attempt was preempted and the run reported incomplete.
struct DeadlineExceeded {
  std::size_t unfinishedTasks;
};

/// What a billing line item's `quantity` is denominated in.
enum class Resource : std::uint8_t {
  Cpu,          ///< quantity = CPU seconds.
  Storage,      ///< quantity = byte-seconds of residency.
  TransferIn,   ///< quantity = bytes user/archive -> cloud.
  TransferOut,  ///< quantity = bytes cloud -> user.
};
const char* resourceName(Resource resource);

/// A unit of billable consumption, attributed to the task that caused it
/// (kNoTask = workflow-level staging).  Dollars are applied downstream by
/// obs::ReportBuilder so the engine never needs a fee schedule.
struct BillingLineItem {
  Resource resource;
  std::uint32_t task;
  double quantity;
};

// -- scenario runner ----------------------------------------------------------
/// Scenario memo-cache statistics for one runner batch: how many scenarios
/// were served without re-simulation (`hits` — prior cache entries plus
/// in-batch duplicates), how many were actually simulated (`misses`), the
/// cache population after the batch, cumulative LRU `evictions` over the
/// cache's lifetime, approximate resident `bytes`, and the batch hit rate
/// hits / (hits + misses).  Emitted once per run, after every scenario's
/// merged event stream.
struct ScenarioCacheStats {
  std::size_t hits;
  std::size_t misses;
  std::size_t entries;
  std::size_t evictions = 0;
  std::size_t bytes = 0;
  double hitRate = 0.0;
};

// -- self-profiling -----------------------------------------------------------
/// Wall-clock spent by the simulator itself in one internal phase of a run
/// (setup / schedule / event loop / extract; `phase` is the integer value of
/// obs::SimPhase).  Emitted after the run, only when EngineConfig::profile is
/// set — wall-clock never enters a captured event stream by default, so
/// replay and memoisation stay deterministic.
struct PhaseProfile {
  std::uint8_t phase;
  double wallSeconds;
};

/// One runner worker's contribution to a batch: scenarios executed, wall-clock
/// spent simulating (`busySeconds`), and the worker's total lifetime
/// (`wallSeconds`); busy/wall is the worker's utilization.  Emitted after
/// ScenarioCacheStats, only when RunnerOptions::profile is set.
struct WorkerProfile {
  int worker;
  std::size_t scenarios;
  double busySeconds;
  double wallSeconds;
};

/// Whole-batch runner profile: configured parallelism, scenario count, how
/// many were served from the memo cache, and end-to-end batch wall-clock.
/// Emitted last, only when RunnerOptions::profile is set.
struct RunnerBatchProfile {
  int jobs;
  std::size_t scenarios;
  std::size_t cached;
  double wallSeconds;
};

// -- survey campaigns ---------------------------------------------------------
/// One shard of a sharded survey campaign finished simulating: shard index
/// (0-based) out of `shards`, its task count and simulated makespan.
/// Emitted by runner::runCampaign after the shard's scenario completes.
struct ShardCompleted {
  std::size_t shard;
  std::size_t shards;
  std::size_t tasks;
  double makespanSeconds;
};

/// Whole-campaign roll-up: shard count, total tasks, campaign makespan
/// (shards run concurrently: the max over shards) and total CPU seconds.
/// Emitted once, after every ShardCompleted.
struct CampaignCompleted {
  std::size_t shards;
  std::size_t tasks;
  double makespanSeconds;
  double totalCpuSeconds;
};

// -- job queue ----------------------------------------------------------------
/// A job was admitted to the runner's JobQueue: its id, scenario count and
/// the number of jobs waiting for workers after admission (including this
/// one).  Job lifecycle events are control-plane telemetry: they carry
/// time < 0 (no simulation clock is in scope) and are emitted to the queue's
/// own observer, never into per-request scenario streams.
struct JobSubmitted {
  std::uint64_t job;
  std::size_t scenarios;
  std::size_t queued;
};

/// A worker began executing the job's first fresh scenario.
struct JobStarted {
  std::uint64_t job;
};

/// The job reached a terminal state.  `outcome` is the integer value of
/// runner::JobState (completed / failed / cancelled); `cached` counts the
/// scenarios served from the memo cache instead of simulating.
struct JobFinished {
  std::uint64_t job;
  std::uint8_t outcome;
  std::size_t scenarios;
  std::size_t cached;
};

// -- logging ------------------------------------------------------------------
/// A util/log message routed through the event bus (satellite of the single
/// logging path).  `level` is the integer value of mcsim::LogLevel.
struct LogEmitted {
  int level;
  std::string message;
};

/// All payloads.  Order defines EventKind and is part of the taxonomy —
/// append, don't reorder.
using Payload = std::variant<
    SimEventScheduled, SimEventFired, SimEventCancelled, TransferStarted,
    TransferProgress, TransferFinished, LinkShareChanged, LinkSuspended,
    LinkResumed, ProcessorClaimed, ProcessorReleased, ProcessorQueued,
    StorageFilePut, StorageFileErased, StorageSampled, RunStarted, RunFinished,
    TaskReady, TaskStarted, TaskExecStarted, TaskFinished, TaskRetried,
    TaskBlocked, StageInStarted, StageInFinished, StageOutStarted,
    StageOutFinished, FileCleanupDeleted, BillingLineItem, LogEmitted,
    ProcessorCrashed, TaskRetryScheduled, TaskFailed, TaskAbandoned,
    StorageOutageStarted, StorageOutageEnded, DeadlineExceeded,
    ScenarioCacheStats, PhaseProfile, WorkerProfile, RunnerBatchProfile,
    ShardCompleted, CampaignCompleted, JobSubmitted, JobStarted, JobFinished>;

enum class EventKind : std::uint8_t {
  SimEventScheduled,
  SimEventFired,
  SimEventCancelled,
  TransferStarted,
  TransferProgress,
  TransferFinished,
  LinkShareChanged,
  LinkSuspended,
  LinkResumed,
  ProcessorClaimed,
  ProcessorReleased,
  ProcessorQueued,
  StorageFilePut,
  StorageFileErased,
  StorageSampled,
  RunStarted,
  RunFinished,
  TaskReady,
  TaskStarted,
  TaskExecStarted,
  TaskFinished,
  TaskRetried,
  TaskBlocked,
  StageInStarted,
  StageInFinished,
  StageOutStarted,
  StageOutFinished,
  FileCleanupDeleted,
  BillingLineItem,
  LogEmitted,
  ProcessorCrashed,
  TaskRetryScheduled,
  TaskFailed,
  TaskAbandoned,
  StorageOutageStarted,
  StorageOutageEnded,
  DeadlineExceeded,
  ScenarioCacheStats,
  PhaseProfile,
  WorkerProfile,
  RunnerBatchProfile,
  ShardCompleted,
  CampaignCompleted,
  JobSubmitted,
  JobStarted,
  JobFinished,
};

inline constexpr std::size_t kEventKindCount = 46;
static_assert(std::variant_size_v<Payload> == kEventKindCount,
              "EventKind and Payload must list the same alternatives");

/// One thing that happened, at a simulation time.  Log events carry
/// time < 0 when no simulation clock is in scope.
struct Event {
  double time = 0.0;
  Payload payload;
};

inline EventKind kind(const Event& event) {
  return static_cast<EventKind>(event.payload.index());
}

namespace detail {
template <class T, class Variant>
struct PayloadIndex;
template <class T, class... Ts>
struct PayloadIndex<T, std::variant<Ts...>> {
  static constexpr std::size_t value = [] {
    constexpr bool matches[] = {std::is_same_v<T, Ts>...};
    for (std::size_t i = 0; i < sizeof...(Ts); ++i)
      if (matches[i]) return i;
    return sizeof...(Ts);
  }();
  static_assert(value < sizeof...(Ts), "T is not a Payload alternative");
};
}  // namespace detail

/// Compile-time EventKind of a payload type — lets emitters ask
/// `sink->accepts(kEventKindOf<T>)` *before* constructing the Event variant,
/// so rejected kinds cost one predicted branch and no payload work.
template <class T>
inline constexpr EventKind kEventKindOf =
    static_cast<EventKind>(detail::PayloadIndex<T, Payload>::value);

/// Stable snake_case name of an event kind (the JSONL "type" field).
const char* eventName(EventKind kind);

}  // namespace mcsim::obs
