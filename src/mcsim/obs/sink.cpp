#include "mcsim/obs/sink.hpp"

#include <stdexcept>
#include <utility>

namespace mcsim::obs {

const char* resourceName(Resource resource) {
  switch (resource) {
    case Resource::Cpu: return "cpu";
    case Resource::Storage: return "storage";
    case Resource::TransferIn: return "transfer_in";
    case Resource::TransferOut: return "transfer_out";
  }
  return "unknown";
}

const char* eventName(EventKind kind) {
  switch (kind) {
    case EventKind::SimEventScheduled: return "sim_event_scheduled";
    case EventKind::SimEventFired: return "sim_event_fired";
    case EventKind::SimEventCancelled: return "sim_event_cancelled";
    case EventKind::TransferStarted: return "transfer_started";
    case EventKind::TransferProgress: return "transfer_progress";
    case EventKind::TransferFinished: return "transfer_finished";
    case EventKind::LinkShareChanged: return "link_share_changed";
    case EventKind::LinkSuspended: return "link_suspended";
    case EventKind::LinkResumed: return "link_resumed";
    case EventKind::ProcessorClaimed: return "processor_claimed";
    case EventKind::ProcessorReleased: return "processor_released";
    case EventKind::ProcessorQueued: return "processor_queued";
    case EventKind::StorageFilePut: return "storage_file_put";
    case EventKind::StorageFileErased: return "storage_file_erased";
    case EventKind::StorageSampled: return "storage_sampled";
    case EventKind::RunStarted: return "run_started";
    case EventKind::RunFinished: return "run_finished";
    case EventKind::TaskReady: return "task_ready";
    case EventKind::TaskStarted: return "task_started";
    case EventKind::TaskExecStarted: return "task_exec_started";
    case EventKind::TaskFinished: return "task_finished";
    case EventKind::TaskRetried: return "task_retried";
    case EventKind::TaskBlocked: return "task_blocked";
    case EventKind::StageInStarted: return "stage_in_started";
    case EventKind::StageInFinished: return "stage_in_finished";
    case EventKind::StageOutStarted: return "stage_out_started";
    case EventKind::StageOutFinished: return "stage_out_finished";
    case EventKind::FileCleanupDeleted: return "file_cleanup_deleted";
    case EventKind::BillingLineItem: return "billing_line_item";
    case EventKind::LogEmitted: return "log";
    case EventKind::ProcessorCrashed: return "processor_crashed";
    case EventKind::TaskRetryScheduled: return "task_retry_scheduled";
    case EventKind::TaskFailed: return "task_failed";
    case EventKind::TaskAbandoned: return "task_abandoned";
    case EventKind::StorageOutageStarted: return "storage_outage_started";
    case EventKind::StorageOutageEnded: return "storage_outage_ended";
    case EventKind::DeadlineExceeded: return "deadline_exceeded";
    case EventKind::ScenarioCacheStats: return "scenario_cache_stats";
    case EventKind::PhaseProfile: return "phase_profile";
    case EventKind::WorkerProfile: return "worker_profile";
    case EventKind::RunnerBatchProfile: return "runner_batch_profile";
    case EventKind::ShardCompleted: return "shard_completed";
    case EventKind::CampaignCompleted: return "campaign_completed";
    case EventKind::JobSubmitted: return "job_submitted";
    case EventKind::JobStarted: return "job_started";
    case EventKind::JobFinished: return "job_finished";
  }
  return "unknown";
}

FanOutSink::FanOutSink(std::vector<Sink*> sinks) {
  for (Sink* s : sinks) add(s);
}

void FanOutSink::add(Sink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void FanOutSink::onEvent(const Event& event) {
  const EventKind k = kind(event);
  for (Sink* s : sinks_)
    if (s->accepts(k)) s->onEvent(event);
}

bool FanOutSink::accepts(EventKind kind) const {
  for (const Sink* s : sinks_)
    if (s->accepts(kind)) return true;
  return false;
}

void CollectingSink::onEvent(const Event& event) { events_.push_back(event); }

std::vector<Event> CollectingSink::take() {
  return std::exchange(events_, {});
}

MutexSink::MutexSink(Sink& inner) : inner_(inner) {}

void MutexSink::onEvent(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  inner_.onEvent(event);
}

bool MutexSink::accepts(EventKind kind) const {
  // accepts() must be stable for a run, so the inner sink's verdict can be
  // read without the lock.
  return inner_.accepts(kind);
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("RingBufferSink: capacity must be positive");
  buffer_.reserve(capacity);
}

void RingBufferSink::onEvent(const Event& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  buffer_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> RingBufferSink::snapshot() const {
  std::vector<Event> out;
  out.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i)
    out.push_back(buffer_[(head_ + i) % buffer_.size()]);
  return out;
}

}  // namespace mcsim::obs
