#include "mcsim/obs/jsonl.hpp"

#include <cstdio>

namespace mcsim::obs {
namespace {

/// %.12g keeps sub-microsecond resolution on day-long runs while staying
/// compact for the common small values.
void num(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os << buf;
}

void str(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// "task":<id> with kNoTask rendered as null (workflow-level attribution).
void taskField(std::ostream& os, std::uint32_t task) {
  os << ",\"task\":";
  if (task == kNoTask) os << "null";
  else os << task;
}

struct Writer {
  std::ostream& os;

  void operator()(const SimEventScheduled& p) {
    os << ",\"event\":" << p.event << ",\"fire_at\":";
    num(os, p.fireAt);
  }
  void operator()(const SimEventFired& p) { os << ",\"event\":" << p.event; }
  void operator()(const SimEventCancelled& p) {
    os << ",\"event\":" << p.event;
  }
  void operator()(const TransferStarted& p) {
    os << ",\"transfer\":" << p.transfer << ",\"bytes\":";
    num(os, p.bytes);
    os << ",\"active\":" << p.active;
  }
  void operator()(const TransferProgress& p) {
    os << ",\"transfer\":" << p.transfer << ",\"remaining_bytes\":";
    num(os, p.remainingBytes);
  }
  void operator()(const TransferFinished& p) {
    os << ",\"transfer\":" << p.transfer << ",\"bytes\":";
    num(os, p.bytes);
    os << ",\"seconds\":";
    num(os, p.seconds);
  }
  void operator()(const LinkShareChanged& p) {
    os << ",\"active\":" << p.active << ",\"bytes_per_second_each\":";
    num(os, p.bytesPerSecondEach);
  }
  void operator()(const LinkSuspended&) {}
  void operator()(const LinkResumed&) {}
  void operator()(const ProcessorClaimed& p) {
    os << ",\"busy\":" << p.busy << ",\"total\":" << p.total
       << ",\"queued\":" << p.queued;
  }
  void operator()(const ProcessorReleased& p) {
    os << ",\"busy\":" << p.busy << ",\"total\":" << p.total
       << ",\"queued\":" << p.queued;
  }
  void operator()(const ProcessorQueued& p) {
    os << ",\"queued\":" << p.queued;
  }
  void operator()(const StorageFilePut& p) {
    os << ",\"key\":" << p.key << ",\"bytes\":";
    num(os, p.bytes);
    os << ",\"resident_bytes\":";
    num(os, p.residentBytes);
    os << ",\"objects\":" << p.objects;
  }
  void operator()(const StorageFileErased& p) {
    os << ",\"key\":" << p.key << ",\"bytes\":";
    num(os, p.bytes);
    os << ",\"resident_bytes\":";
    num(os, p.residentBytes);
    os << ",\"objects\":" << p.objects;
  }
  void operator()(const StorageSampled& p) {
    os << ",\"resident_bytes\":";
    num(os, p.residentBytes);
    os << ",\"objects\":" << p.objects;
  }
  void operator()(const RunStarted& p) {
    os << ",\"tasks\":" << p.tasks << ",\"files\":" << p.files
       << ",\"processors\":" << p.processors;
  }
  void operator()(const RunFinished& p) {
    os << ",\"seconds\":";
    num(os, p.seconds);
  }
  void operator()(const TaskReady& p) { os << ",\"task\":" << p.task; }
  void operator()(const TaskStarted& p) { os << ",\"task\":" << p.task; }
  void operator()(const TaskExecStarted& p) { os << ",\"task\":" << p.task; }
  void operator()(const TaskFinished& p) {
    os << ",\"task\":" << p.task << ",\"cpu_seconds\":";
    num(os, p.cpuSeconds);
  }
  void operator()(const TaskRetried& p) { os << ",\"task\":" << p.task; }
  void operator()(const TaskBlocked& p) { os << ",\"task\":" << p.task; }
  void operator()(const StageInStarted& p) { stage(p.file, p.task, p.bytes); }
  void operator()(const StageInFinished& p) { stage(p.file, p.task, p.bytes); }
  void operator()(const StageOutStarted& p) { stage(p.file, p.task, p.bytes); }
  void operator()(const StageOutFinished& p) { stage(p.file, p.task, p.bytes); }
  void operator()(const FileCleanupDeleted& p) {
    stage(p.file, p.task, p.bytes);
  }
  void operator()(const BillingLineItem& p) {
    os << ",\"resource\":\"" << resourceName(p.resource) << '"';
    taskField(os, p.task);
    os << ",\"quantity\":";
    num(os, p.quantity);
  }
  void operator()(const LogEmitted& p) {
    os << ",\"level\":" << p.level << ",\"message\":";
    str(os, p.message);
  }
  void operator()(const ProcessorCrashed& p) {
    os << ",\"task\":" << p.task << ",\"wasted_seconds\":";
    num(os, p.wastedSeconds);
  }
  void operator()(const TaskRetryScheduled& p) {
    os << ",\"task\":" << p.task << ",\"attempt\":" << p.attempt
       << ",\"delay_seconds\":";
    num(os, p.delaySeconds);
  }
  void operator()(const TaskFailed& p) {
    os << ",\"task\":" << p.task << ",\"attempts\":" << p.attempts;
  }
  void operator()(const TaskAbandoned& p) {
    os << ",\"task\":" << p.task << ",\"ancestor\":" << p.ancestor;
  }
  void operator()(const StorageOutageStarted&) {}
  void operator()(const StorageOutageEnded&) {}
  void operator()(const DeadlineExceeded& p) {
    os << ",\"unfinished_tasks\":" << p.unfinishedTasks;
  }
  void operator()(const ScenarioCacheStats& p) {
    os << ",\"hits\":" << p.hits << ",\"misses\":" << p.misses
       << ",\"entries\":" << p.entries << ",\"evictions\":" << p.evictions
       << ",\"bytes\":" << p.bytes << ",\"hit_rate\":";
    num(os, p.hitRate);
  }
  void operator()(const PhaseProfile& p) {
    os << ",\"phase\":" << static_cast<int>(p.phase) << ",\"wall_seconds\":";
    num(os, p.wallSeconds);
  }
  void operator()(const WorkerProfile& p) {
    os << ",\"worker\":" << p.worker << ",\"scenarios\":" << p.scenarios
       << ",\"busy_seconds\":";
    num(os, p.busySeconds);
    os << ",\"wall_seconds\":";
    num(os, p.wallSeconds);
  }
  void operator()(const RunnerBatchProfile& p) {
    os << ",\"jobs\":" << p.jobs << ",\"scenarios\":" << p.scenarios
       << ",\"cached\":" << p.cached << ",\"wall_seconds\":";
    num(os, p.wallSeconds);
  }
  void operator()(const ShardCompleted& p) {
    os << ",\"shard\":" << p.shard << ",\"shards\":" << p.shards
       << ",\"tasks\":" << p.tasks << ",\"makespan_seconds\":";
    num(os, p.makespanSeconds);
  }
  void operator()(const CampaignCompleted& p) {
    os << ",\"shards\":" << p.shards << ",\"tasks\":" << p.tasks
       << ",\"makespan_seconds\":";
    num(os, p.makespanSeconds);
    os << ",\"total_cpu_seconds\":";
    num(os, p.totalCpuSeconds);
  }

  void operator()(const JobSubmitted& p) {
    os << ",\"job\":" << p.job << ",\"scenarios\":" << p.scenarios
       << ",\"queued\":" << p.queued;
  }
  void operator()(const JobStarted& p) { os << ",\"job\":" << p.job; }
  void operator()(const JobFinished& p) {
    os << ",\"job\":" << p.job
       << ",\"outcome\":" << static_cast<int>(p.outcome)
       << ",\"scenarios\":" << p.scenarios << ",\"cached\":" << p.cached;
  }

  void stage(std::uint32_t file, std::uint32_t task, double bytes) {
    os << ",\"file\":" << file;
    taskField(os, task);
    os << ",\"bytes\":";
    num(os, bytes);
  }
};

}  // namespace

void writeEventJson(std::ostream& os, const Event& event) {
  os << "{\"t\":";
  num(os, event.time);
  os << ",\"type\":\"" << eventName(kind(event)) << '"';
  std::visit(Writer{os}, event.payload);
  os << '}';
}

void JsonlSink::onEvent(const Event& event) {
  writeEventJson(os_, event);
  os_ << '\n';
  ++written_;
}

}  // namespace mcsim::obs
