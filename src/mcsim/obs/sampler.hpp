// Sim-time periodic sampler: invokes a callback every `period` simulated
// seconds, for gauge-style telemetry (resident bytes, queue depths) whose
// value between events is as interesting as at them.
//
// The simulator runs until its calendar drains, so a self-rescheduling
// sampler would keep a run alive forever — stop() (or destruction) cancels
// the pending tick; the engine calls it when the workflow completes.
#pragma once

#include <functional>

#include "mcsim/sim/simulator.hpp"

namespace mcsim::obs {

class PeriodicSampler {
 public:
  using SampleFn = std::function<void()>;

  /// `period` > 0 (simulated seconds).  Does not start sampling.
  PeriodicSampler(sim::Simulator& sim, double period, SampleFn sample);
  ~PeriodicSampler() { stop(); }
  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// First sample fires `period` seconds from now.  Idempotent.
  void start();
  /// Cancel the pending tick.  Idempotent.
  void stop();
  bool running() const { return pending_ != sim::kInvalidEvent; }

 private:
  void tick();

  sim::Simulator& sim_;
  double period_;
  SampleFn sample_;
  sim::EventId pending_ = sim::kInvalidEvent;
};

}  // namespace mcsim::obs
