#include "mcsim/obs/selfprofile.hpp"

namespace mcsim::obs {

const char* simPhaseName(SimPhase phase) {
  switch (phase) {
    case SimPhase::Setup: return "setup";
    case SimPhase::Schedule: return "schedule";
    case SimPhase::EventLoop: return "event_loop";
    case SimPhase::Extract: return "extract";
  }
  return "unknown";
}

void PhaseProfiler::emitTo(Sink* sink) const {
  if (sink == nullptr) return;
  if (!sink->accepts(EventKind::PhaseProfile)) return;
  for (std::size_t i = 0; i < kSimPhaseCount; ++i)
    sink->onEvent(Event{
        -1.0, PhaseProfile{static_cast<std::uint8_t>(i), seconds_[i]}});
}

}  // namespace mcsim::obs
