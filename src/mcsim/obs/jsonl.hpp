// JSONL event exporter: one JSON object per event, one event per line —
// the raw, replayable record of everything a run did.  Load with any
// line-oriented tooling (jq, pandas.read_json(lines=True), DuckDB).
//
// Schema: every line has "t" (simulation seconds; -1 for events without a
// clock, e.g. log records) and "type" (obs::eventName); remaining fields are
// the payload's members under their C++ names in snake_case.
#pragma once

#include <cstddef>
#include <ostream>

#include "mcsim/obs/sink.hpp"

namespace mcsim::obs {

class JsonlSink final : public Sink {
 public:
  /// The stream must outlive the sink.  No buffering beyond the stream's own.
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void onEvent(const Event& event) override;
  std::size_t written() const { return written_; }

 private:
  std::ostream& os_;
  std::size_t written_ = 0;
};

/// Serialize one event as a single-line JSON object (no trailing newline).
void writeEventJson(std::ostream& os, const Event& event);

}  // namespace mcsim::obs
