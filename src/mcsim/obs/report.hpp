// Per-run cost-attribution report: the paper's aggregate dollar figures
// (Figs 4-10) broken down by task, level and resource — the view the paper
// gestures at ("the cost of data transfers ... the cost of storage") but
// never itemizes.
//
// ReportBuilder listens for the engine's BillingLineItem events, which carry
// resource quantities (CPU seconds, bytes in/out, storage byte-seconds) at
// the moment they are consumed.  build() prices those quantities with a fee
// schedule and reconciles them against the authoritative ExecutionResult
// totals (engine::computeCost), so the sum over the breakdown always equals
// the run's billed total: under Usage billing attribution is exhaustive;
// under Provisioned billing the surplus of paying for P processors for the
// whole makespan surfaces as `unattributedCpu` (idle capacity) instead of
// being smeared across tasks.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <map>
#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::obs {

/// Raw consumption attributed to one task (or to workflow-level staging).
struct ResourceUsage {
  double cpuSeconds = 0.0;
  double storageByteSeconds = 0.0;
  double bytesIn = 0.0;
  double bytesOut = 0.0;

  void add(Resource resource, double quantity);
};

/// Consumption plus its dollar value under a fee schedule.
struct AttributedCost {
  ResourceUsage usage;
  Money cpu;
  Money storage;
  Money transferIn;
  Money transferOut;

  Money total() const { return cpu + storage + transferIn + transferOut; }
};

struct TaskCost {
  std::uint32_t task = 0;
  std::string name;
  std::string type;
  int level = 0;
  AttributedCost cost;
};

struct LevelCost {
  int level = 0;  ///< 0 = workflow-level staging (stage-in / final stage-out).
  std::size_t tasks = 0;
  AttributedCost cost;
};

struct RunReport {
  std::string workflow;
  std::string mode;     ///< engine::dataModeName.
  std::string billing;  ///< "provisioned" | "usage".
  int processors = 0;

  // Headline metrics (mirrors ExecutionResult).
  double makespanSeconds = 0.0;
  double cpuBusySeconds = 0.0;
  double bytesIn = 0.0;
  double bytesOut = 0.0;
  double storageGBHours = 0.0;
  double peakStorageBytes = 0.0;
  std::size_t tasksExecuted = 0;
  std::size_t taskRetries = 0;
  std::size_t tasksFailed = 0;
  std::size_t tasksAbandoned = 0;
  std::size_t processorCrashes = 0;
  double wastedCpuSeconds = 0.0;
  bool deadlineExceeded = false;

  /// Authoritative totals — identical to engine::computeCost on the run's
  /// ExecutionResult.
  cloud::CostBreakdown totals;
  /// Provisioned billing: totals.cpu minus the per-task attributed CPU cost
  /// (paid-for-but-idle capacity).  ~0 under Usage billing.
  Money unattributedCpu;

  AttributedCost staging;  ///< Workflow-level stage-in/out and input storage.
  std::vector<TaskCost> byTask;    ///< Ascending task id; only non-zero rows.
  std::vector<LevelCost> byLevel;  ///< Ascending level; staging is level 0.
};

class ReportBuilder final : public Sink {
 public:
  void onEvent(const Event& event) override;
  bool accepts(EventKind kind) const override {
    return kind == EventKind::BillingLineItem;
  }

  /// Price the accumulated line items and reconcile with the run's result.
  /// `wf` must be the workflow that produced the events (task ids index it).
  RunReport build(const dag::Workflow& wf,
                  const engine::ExecutionResult& result,
                  const cloud::Pricing& pricing, cloud::CpuBillingMode cpuMode,
                  cloud::BillingGranularity granularity =
                      cloud::BillingGranularity::PerSecond) const;

  const std::map<std::uint32_t, ResourceUsage>& usage() const {
    return usage_;
  }

 private:
  /// Ordered by task id so attribution iterates — and sums floating-point
  /// costs — in a stable order on every platform.
  std::map<std::uint32_t, ResourceUsage> usage_;
};

/// report.json: schema "mcsim.report.v1" (documented in DESIGN.md).
void writeReportJson(std::ostream& os, const RunReport& report);

}  // namespace mcsim::obs
