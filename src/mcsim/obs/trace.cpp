#include "mcsim/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mcsim::obs {

const char* spanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::Run: return "run";
    case SpanKind::QueueWait: return "queue_wait";
    case SpanKind::Task: return "task";
    case SpanKind::Compute: return "compute";
    case SpanKind::StageIn: return "stage_in";
    case SpanKind::StageOut: return "stage_out";
    case SpanKind::RetryWait: return "retry_wait";
    case SpanKind::OutageStall: return "outage_stall";
  }
  return "unknown";
}

const char* edgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::Child: return "child";
    case EdgeKind::FollowsFrom: return "follows_from";
    case EdgeKind::Resource: return "resource";
  }
  return "unknown";
}

// -- TraceStore ---------------------------------------------------------------

void TraceStore::reserve(std::size_t spans, std::size_t edges,
                         std::size_t counters) {
  spanKind_.reserve(spans);
  spanFlags_.reserve(spans);
  spanBegin_.reserve(spans);
  spanEnd_.reserve(spans);
  spanTask_.reserve(spans);
  spanFile_.reserve(spans);
  spanBytes_.reserve(spans);
  spanLane_.reserve(spans);
  edgeFrom_.reserve(edges);
  edgeTo_.reserve(edges);
  edgeKind_.reserve(edges);
  counterTime_.reserve(counters);
  counterBytes_.reserve(counters);
  counterObjects_.reserve(counters);
}

std::uint32_t TraceStore::beginSpan(SpanKind kind, double begin,
                                    std::uint32_t task, std::uint32_t file,
                                    double bytes, std::int32_t lane) {
  const std::uint32_t id = static_cast<std::uint32_t>(spanKind_.size());
  spanKind_.push_back(static_cast<std::uint8_t>(kind));
  spanFlags_.push_back(0);
  spanBegin_.push_back(begin);
  spanEnd_.push_back(-1.0);
  spanTask_.push_back(task);
  spanFile_.push_back(file);
  spanBytes_.push_back(bytes);
  spanLane_.push_back(lane);
  if (lane >= 0 && lane + 1 > laneCount_) laneCount_ = lane + 1;
  note(begin);
  return id;
}

void TraceStore::endSpan(std::uint32_t span, double end) {
  spanEnd_[span] = end;
  note(end);
}

void TraceStore::markFailed(std::uint32_t span) {
  spanFlags_[span] |= kSpanFlagFailed;
}

void TraceStore::addEdge(std::uint32_t from, std::uint32_t to, EdgeKind kind) {
  edgeFrom_.push_back(from);
  edgeTo_.push_back(to);
  edgeKind_.push_back(static_cast<std::uint8_t>(kind));
}

void TraceStore::addCounterSample(double time, double residentBytes,
                                  double objects) {
  counterTime_.push_back(time);
  counterBytes_.push_back(residentBytes);
  counterObjects_.push_back(objects);
  note(time);
}

bool TraceStore::operator==(const TraceStore& other) const {
  return spanKind_ == other.spanKind_ && spanFlags_ == other.spanFlags_ &&
         spanBegin_ == other.spanBegin_ && spanEnd_ == other.spanEnd_ &&
         spanTask_ == other.spanTask_ && spanFile_ == other.spanFile_ &&
         spanBytes_ == other.spanBytes_ && spanLane_ == other.spanLane_ &&
         edgeFrom_ == other.edgeFrom_ && edgeTo_ == other.edgeTo_ &&
         edgeKind_ == other.edgeKind_ && counterTime_ == other.counterTime_ &&
         counterBytes_ == other.counterBytes_ &&
         counterObjects_ == other.counterObjects_;
}

// -- SpanSink -----------------------------------------------------------------

namespace {

std::uint64_t stageKey(std::uint32_t task, std::uint32_t file) {
  return (static_cast<std::uint64_t>(task) << 32) | file;
}

}  // namespace

SpanSink::SpanSink(TraceStore& store, TraceTopology topology)
    : store_(store), topo_(std::move(topology)) {}

bool SpanSink::accepts(EventKind kind) const {
  switch (kind) {
    case EventKind::RunStarted:
    case EventKind::RunFinished:
    case EventKind::TaskReady:
    case EventKind::TaskStarted:
    case EventKind::TaskExecStarted:
    case EventKind::TaskFinished:
    case EventKind::TaskRetryScheduled:
    case EventKind::TaskFailed:
    case EventKind::ProcessorCrashed:
    case EventKind::StageInStarted:
    case EventKind::StageInFinished:
    case EventKind::StageOutStarted:
    case EventKind::StageOutFinished:
    case EventKind::LinkSuspended:
    case EventKind::LinkResumed:
    case EventKind::StorageFilePut:
    case EventKind::StorageFileErased:
    case EventKind::StorageSampled:
      return true;
    default:
      return false;
  }
}

void SpanSink::ensureTask(std::uint32_t task) {
  if (task == kNoTask) return;
  if (task < queueSpan_.size()) return;
  const std::size_t n = static_cast<std::size_t>(task) + 1;
  queueSpan_.resize(n, kNoSpan);
  taskSpan_.resize(n, kNoSpan);
  computeSpan_.resize(n, kNoSpan);
  closedTaskSpan_.resize(n, kNoSpan);
  taskLane_.resize(n, kLaneNone);
}

void SpanSink::onTaskReady(double t, std::uint32_t task) {
  ensureTask(task);
  const std::uint32_t qw =
      store_.beginSpan(SpanKind::QueueWait, t, task, kNoFile, 0.0, kLaneNone);
  queueSpan_[task] = qw;
  // Dependency causality: the parent Task spans and external-input stage-in
  // spans whose completion made this task ready.
  if (!topo_.empty() && task + 1 < topo_.parentOffsets.size()) {
    for (std::uint32_t i = topo_.parentOffsets[task];
         i < topo_.parentOffsets[task + 1]; ++i) {
      const std::uint32_t parent = topo_.parents[i];
      if (parent < closedTaskSpan_.size() &&
          closedTaskSpan_[parent] != kNoSpan)
        store_.addEdge(closedTaskSpan_[parent], qw, EdgeKind::FollowsFrom);
    }
  }
  if (task + 1 < topo_.extInputOffsets.size()) {
    for (std::uint32_t i = topo_.extInputOffsets[task];
         i < topo_.extInputOffsets[task + 1]; ++i) {
      const std::uint32_t f = topo_.extInputs[i];
      if (f < extStageSpan_.size() && extStageSpan_[f] != kNoSpan)
        store_.addEdge(extStageSpan_[f], qw, EdgeKind::FollowsFrom);
    }
  }
}

std::int32_t SpanSink::claimLane(std::uint32_t queueSpan) {
  std::int32_t lane;
  if (!freeLanes_.empty()) {
    lane = freeLanes_.back();  // sorted descending: back is the lowest
    freeLanes_.pop_back();
  } else {
    lane = nextLane_++;
    lanePrev_.resize(static_cast<std::size_t>(nextLane_), kNoSpan);
  }
  // Contention causality: the lane's previous occupant had to finish before
  // this task's queue wait could end.
  const std::uint32_t prev = lanePrev_[static_cast<std::size_t>(lane)];
  if (prev != kNoSpan && queueSpan != kNoSpan)
    store_.addEdge(prev, queueSpan, EdgeKind::Resource);
  return lane;
}

void SpanSink::freeLane(std::int32_t lane) {
  if (lane < 0) return;
  const auto it = std::lower_bound(freeLanes_.begin(), freeLanes_.end(), lane,
                                   std::greater<std::int32_t>());
  freeLanes_.insert(it, lane);
}

void SpanSink::onTaskStarted(double t, std::uint32_t task) {
  ensureTask(task);
  const std::uint32_t qw = queueSpan_[task];
  if (qw != kNoSpan && store_.isOpen(qw)) store_.endSpan(qw, t);
  const std::int32_t lane = claimLane(qw);
  const std::uint32_t span =
      store_.beginSpan(SpanKind::Task, t, task, kNoFile, 0.0, lane);
  if (qw != kNoSpan) store_.addEdge(qw, span, EdgeKind::FollowsFrom);
  taskSpan_[task] = span;
  taskLane_[task] = lane;
  lanePrev_[static_cast<std::size_t>(lane)] = span;
}

void SpanSink::onTaskExecStarted(double t, std::uint32_t task) {
  ensureTask(task);
  const std::uint32_t span = store_.beginSpan(SpanKind::Compute, t, task,
                                              kNoFile, 0.0, taskLane_[task]);
  if (taskSpan_[task] != kNoSpan)
    store_.addEdge(taskSpan_[task], span, EdgeKind::Child);
  computeSpan_[task] = span;
}

void SpanSink::closeCompute(double t, std::uint32_t task, bool failed) {
  if (task >= computeSpan_.size()) return;
  const std::uint32_t span = computeSpan_[task];
  if (span == kNoSpan) return;
  store_.endSpan(span, t);
  if (failed) store_.markFailed(span);
  computeSpan_[task] = kNoSpan;
}

void SpanSink::onTaskDone(double t, std::uint32_t task, bool failed) {
  ensureTask(task);
  closeCompute(t, task, failed);
  const std::uint32_t span = taskSpan_[task];
  if (span != kNoSpan) {
    store_.endSpan(span, t);
    if (failed) store_.markFailed(span);
    closedTaskSpan_[task] = span;
    if (!failed) lastClosedTask_ = span;
    taskSpan_[task] = kNoSpan;
  }
  freeLane(taskLane_[task]);
  taskLane_[task] = kLaneNone;
}

void SpanSink::onStageStarted(SpanKind kind, double t, std::uint32_t file,
                              std::uint32_t task, double bytes) {
  ensureTask(task);
  // Task-attributed staging (remote I/O) holds the task's processor for the
  // duration, so the span lives on the task's lane and nests under its Task
  // span; workflow-level staging lives on the shared link lane.
  std::int32_t lane = kLaneLink;
  if (task != kNoTask && taskLane_[task] >= 0) lane = taskLane_[task];
  const std::uint32_t span = store_.beginSpan(kind, t, task, file, bytes, lane);
  if (task != kNoTask && taskSpan_[task] != kNoSpan)
    store_.addEdge(taskSpan_[task], span, EdgeKind::Child);
  if (kind == SpanKind::StageOut && task == kNoTask &&
      lastClosedTask_ != kNoSpan)
    store_.addEdge(lastClosedTask_, span, EdgeKind::FollowsFrom);
  openStage_[stageKey(task, file)] = span;
}

void SpanSink::onStageFinished(double t, std::uint32_t file,
                               std::uint32_t task) {
  const auto it = openStage_.find(stageKey(task, file));
  if (it == openStage_.end()) return;
  const std::uint32_t span = it->second;
  openStage_.erase(it);
  store_.endSpan(span, t);
  if (task == kNoTask && store_.kind(span) == SpanKind::StageIn) {
    if (file >= extStageSpan_.size())
      extStageSpan_.resize(static_cast<std::size_t>(file) + 1, kNoSpan);
    extStageSpan_[file] = span;
  }
}

void SpanSink::onEvent(const Event& event) {
  const double t = event.time;
  switch (obs::kind(event)) {
    case EventKind::RunStarted: {
      const auto& p = std::get<RunStarted>(event.payload);
      if (p.tasks > 0) ensureTask(static_cast<std::uint32_t>(p.tasks - 1));
      extStageSpan_.assign(p.files, kNoSpan);
      // Typical fault-free shape: queue-wait + task + compute per task, one
      // stage span per file, plus the run span; each task contributes its
      // dependency edges plus qw->task, task->compute and a resource edge,
      // and the storage counter sees at most a put and an erase per file.
      // Pre-size all the columns so the hot path never reallocates mid-run.
      store_.reserve(3 * p.tasks + p.files + 8,
                     topo_.parents.size() + topo_.extInputs.size() +
                         3 * p.tasks + p.files + 8,
                     2 * p.files + 64);
      runSpan_ = store_.beginSpan(SpanKind::Run, t, kNoTask, kNoFile, 0.0,
                                  kLaneNone);
      break;
    }
    case EventKind::RunFinished:
      if (runSpan_ != kNoSpan && store_.isOpen(runSpan_))
        store_.endSpan(runSpan_, t);
      break;
    case EventKind::TaskReady:
      onTaskReady(t, std::get<TaskReady>(event.payload).task);
      break;
    case EventKind::TaskStarted:
      onTaskStarted(t, std::get<TaskStarted>(event.payload).task);
      break;
    case EventKind::TaskExecStarted:
      onTaskExecStarted(t, std::get<TaskExecStarted>(event.payload).task);
      break;
    case EventKind::TaskFinished:
      onTaskDone(t, std::get<TaskFinished>(event.payload).task, false);
      break;
    case EventKind::TaskFailed:
      onTaskDone(t, std::get<TaskFailed>(event.payload).task, true);
      break;
    case EventKind::ProcessorCrashed:
      closeCompute(t, std::get<ProcessorCrashed>(event.payload).task, true);
      break;
    case EventKind::TaskRetryScheduled: {
      const auto& p = std::get<TaskRetryScheduled>(event.payload);
      ensureTask(p.task);
      const std::uint32_t span =
          store_.beginSpan(SpanKind::RetryWait, t, p.task, kNoFile, 0.0,
                           taskLane_[p.task]);
      store_.endSpan(span, t + p.delaySeconds);
      if (taskSpan_[p.task] != kNoSpan)
        store_.addEdge(taskSpan_[p.task], span, EdgeKind::Child);
      break;
    }
    case EventKind::StageInStarted: {
      const auto& p = std::get<StageInStarted>(event.payload);
      onStageStarted(SpanKind::StageIn, t, p.file, p.task, p.bytes);
      break;
    }
    case EventKind::StageInFinished: {
      const auto& p = std::get<StageInFinished>(event.payload);
      onStageFinished(t, p.file, p.task);
      break;
    }
    case EventKind::StageOutStarted: {
      const auto& p = std::get<StageOutStarted>(event.payload);
      // Remote I/O: the first output leaving marks the end of computation —
      // there is no separate exec-end event.
      if (p.task != kNoTask) closeCompute(t, p.task, false);
      onStageStarted(SpanKind::StageOut, t, p.file, p.task, p.bytes);
      break;
    }
    case EventKind::StageOutFinished: {
      const auto& p = std::get<StageOutFinished>(event.payload);
      onStageFinished(t, p.file, p.task);
      break;
    }
    case EventKind::LinkSuspended:
      outageSpan_ = store_.beginSpan(SpanKind::OutageStall, t, kNoTask,
                                     kNoFile, 0.0, kLaneLink);
      break;
    case EventKind::LinkResumed:
      if (outageSpan_ != kNoSpan && store_.isOpen(outageSpan_))
        store_.endSpan(outageSpan_, t);
      outageSpan_ = kNoSpan;
      break;
    case EventKind::StorageFilePut: {
      const auto& p = std::get<StorageFilePut>(event.payload);
      store_.addCounterSample(t, p.residentBytes,
                              static_cast<double>(p.objects));
      break;
    }
    case EventKind::StorageFileErased: {
      const auto& p = std::get<StorageFileErased>(event.payload);
      store_.addCounterSample(t, p.residentBytes,
                              static_cast<double>(p.objects));
      break;
    }
    case EventKind::StorageSampled: {
      const auto& p = std::get<StorageSampled>(event.payload);
      store_.addCounterSample(t, p.residentBytes,
                              static_cast<double>(p.objects));
      break;
    }
    default:
      break;
  }
}

// -- Perfetto / Chrome trace-event export -------------------------------------

namespace {

void num(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os << buf;
}

void jsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

constexpr int kPidProcessors = 1;
constexpr int kPidLink = 2;
constexpr int kPidQueue = 3;
constexpr int kPidRun = 4;

/// Greedy sub-lane packing for spans that share one logical resource (link
/// transfers, queue waits): spans sorted by begin take the lowest sub-lane
/// free at their begin.
std::vector<int> packLanes(const TraceStore& store,
                           const std::vector<std::uint32_t>& spans,
                           int* laneCountOut) {
  std::vector<std::uint32_t> order = spans;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (store.begin(a) != store.begin(b))
                return store.begin(a) < store.begin(b);
              return a < b;
            });
  std::vector<double> freeAt;
  std::vector<int> lane(store.spanCount(), 0);
  for (std::uint32_t s : order) {
    const double b = store.begin(s);
    const double e = store.isOpen(s) ? store.maxTime() : store.end(s);
    int chosen = -1;
    for (std::size_t l = 0; l < freeAt.size(); ++l) {
      if (freeAt[l] <= b + 1e-12) {
        chosen = static_cast<int>(l);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(freeAt.size());
      freeAt.push_back(0.0);
    }
    freeAt[static_cast<std::size_t>(chosen)] = e;
    lane[s] = chosen;
  }
  if (laneCountOut != nullptr) *laneCountOut = static_cast<int>(freeAt.size());
  return lane;
}

std::string spanDisplayName(const TraceStore& store, std::uint32_t s,
                            const TraceNames* names) {
  const SpanKind k = store.kind(s);
  const std::uint32_t task = store.task(s);
  const std::uint32_t file = store.file(s);
  switch (k) {
    case SpanKind::Run: return "run";
    case SpanKind::OutageStall: return "outage";
    case SpanKind::Compute: return "exec";
    case SpanKind::RetryWait: return "retry wait";
    case SpanKind::QueueWait:
    case SpanKind::Task:
      if (names != nullptr && task < names->taskNames.size())
        return names->taskNames[task];
      return "task " + std::to_string(task);
    case SpanKind::StageIn:
    case SpanKind::StageOut:
      if (names != nullptr && file < names->fileNames.size())
        return names->fileNames[file];
      return "file " + std::to_string(file);
  }
  return "span";
}

void writeMeta(std::ostream& os, const char* what, int pid, int tid,
               const std::string& name, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "  {\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os << ",\"tid\":" << tid;
  os << ",\"name\":\"" << what << "\",\"args\":{\"name\":";
  jsonString(os, name);
  os << "}}";
}

}  // namespace

void writePerfettoTrace(std::ostream& os, const TraceStore& store,
                        const TraceNames* names) {
  // Partition spans across processes: processor lanes (tasks and their
  // nested sub-spans), the shared link, the scheduler queue, and the run
  // marker.
  std::vector<std::uint32_t> linkSpans;
  std::vector<std::uint32_t> queueSpans;
  for (std::uint32_t s = 0; s < store.spanCount(); ++s) {
    if (store.kind(s) == SpanKind::QueueWait) queueSpans.push_back(s);
    else if (store.lane(s) == kLaneLink) linkSpans.push_back(s);
  }
  int linkLanes = 0;
  int queueLanes = 0;
  const std::vector<int> linkLane = packLanes(store, linkSpans, &linkLanes);
  const std::vector<int> queueLane = packLanes(store, queueSpans, &queueLanes);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  writeMeta(os, "process_name", kPidProcessors, -1, "processors", &first);
  writeMeta(os, "process_name", kPidLink, -1, "link", &first);
  writeMeta(os, "process_name", kPidQueue, -1, "queue", &first);
  writeMeta(os, "process_name", kPidRun, -1, "run", &first);
  for (int l = 0; l < store.laneCount(); ++l)
    writeMeta(os, "thread_name", kPidProcessors, l,
              "cpu " + std::to_string(l), &first);
  for (int l = 0; l < linkLanes; ++l)
    writeMeta(os, "thread_name", kPidLink, l, "link " + std::to_string(l),
              &first);
  for (int l = 0; l < queueLanes; ++l)
    writeMeta(os, "thread_name", kPidQueue, l, "queue " + std::to_string(l),
              &first);

  // Complete events, ordered by (begin, -duration, id) so outer spans precede
  // the sub-spans they contain (trace viewers nest by containment).
  std::vector<std::uint32_t> order(store.spanCount());
  for (std::uint32_t s = 0; s < store.spanCount(); ++s) order[s] = s;
  const auto duration = [&](std::uint32_t s) {
    return (store.isOpen(s) ? store.maxTime() : store.end(s)) - store.begin(s);
  };
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (store.begin(a) != store.begin(b))
      return store.begin(a) < store.begin(b);
    if (duration(a) != duration(b)) return duration(a) > duration(b);
    return a < b;
  });

  for (std::uint32_t s : order) {
    int pid = kPidProcessors;
    int tid = 0;
    if (store.kind(s) == SpanKind::Run) {
      pid = kPidRun;
    } else if (store.kind(s) == SpanKind::QueueWait) {
      pid = kPidQueue;
      tid = queueLane[s];
    } else if (store.lane(s) == kLaneLink) {
      pid = kPidLink;
      tid = linkLane[s];
    } else if (store.lane(s) >= 0) {
      tid = store.lane(s);
    }
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\":";
    jsonString(os, spanDisplayName(store, s, names));
    os << ",\"cat\":\"" << spanKindName(store.kind(s))
       << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":";
    num(os, store.begin(s) * 1e6);
    os << ",\"dur\":";
    num(os, std::max(0.0, duration(s)) * 1e6);
    os << ",\"args\":{";
    bool firstArg = true;
    const auto arg = [&](const char* key) -> std::ostream& {
      if (!firstArg) os << ',';
      firstArg = false;
      os << '"' << key << "\":";
      return os;
    };
    if (store.task(s) != kNoTask) arg("task") << store.task(s);
    if (store.file(s) != kNoFile) arg("file") << store.file(s);
    if (store.bytes(s) > 0.0) num(arg("bytes"), store.bytes(s));
    if (store.isFailed(s)) arg("failed") << "true";
    if (store.isOpen(s)) arg("open") << "true";
    if (names != nullptr && store.task(s) != kNoTask &&
        store.task(s) < names->taskTypes.size()) {
      arg("type");
      jsonString(os, names->taskTypes[store.task(s)]);
    }
    os << "}}";
  }

  // Storage occupancy as a counter track.
  for (std::size_t i = 0; i < store.counterCount(); ++i) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\":\"storage\",\"ph\":\"C\",\"pid\":" << kPidLink
       << ",\"ts\":";
    num(os, store.counterTimes()[i] * 1e6);
    os << ",\"args\":{\"resident_bytes\":";
    num(os, store.counterBytes()[i]);
    os << ",\"objects\":";
    num(os, store.counterObjects()[i]);
    os << "}}";
  }
  os << "\n]}\n";
}

// -- .mctrace binary format ---------------------------------------------------

namespace {

constexpr char kMagic[4] = {'M', 'C', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <class T>
void writeColumn(std::ostream& os, const std::vector<T>& column) {
  if (!column.empty())
    os.write(reinterpret_cast<const char*>(column.data()),
             static_cast<std::streamsize>(column.size() * sizeof(T)));
}

void writeU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void writeU64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

class MctraceReader {
 public:
  explicit MctraceReader(std::istream& is) : is_(is) {}

  template <class T>
  T scalar(const char* what) {
    T v{};
    is_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!is_) fail(what);
    return v;
  }

  template <class T>
  std::vector<T> column(std::size_t count, const char* what) {
    std::vector<T> v(count);
    if (count > 0) {
      is_.read(reinterpret_cast<char*>(v.data()),
               static_cast<std::streamsize>(count * sizeof(T)));
      if (!is_) fail(what);
    }
    return v;
  }

  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string("readMctrace: truncated or corrupt "
                                         "stream (") +
                             what + ")");
  }

 private:
  std::istream& is_;
};

}  // namespace

void writeMctrace(std::ostream& os, const TraceStore& store) {
  os.write(kMagic, sizeof kMagic);
  writeU32(os, kVersion);
  writeU64(os, store.spanCount());
  writeU64(os, store.edgeCount());
  writeU64(os, store.counterCount());
  writeColumn(os, store.spanKinds());
  writeColumn(os, store.spanFlags());
  writeColumn(os, store.spanBegins());
  writeColumn(os, store.spanEnds());
  writeColumn(os, store.spanTasks());
  writeColumn(os, store.spanFiles());
  writeColumn(os, store.spanByteCounts());
  writeColumn(os, store.spanLanes());
  writeColumn(os, store.edgeFroms());
  writeColumn(os, store.edgeTos());
  writeColumn(os, store.edgeKinds());
  writeColumn(os, store.counterTimes());
  writeColumn(os, store.counterBytes());
  writeColumn(os, store.counterObjects());
}

TraceStore readMctrace(std::istream& is) {
  MctraceReader r(is);
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("readMctrace: not an mctrace stream (bad magic)");
  const std::uint32_t version = r.scalar<std::uint32_t>("version");
  if (version != kVersion)
    throw std::runtime_error("readMctrace: unsupported version " +
                             std::to_string(version));
  const std::uint64_t spans = r.scalar<std::uint64_t>("span count");
  const std::uint64_t edges = r.scalar<std::uint64_t>("edge count");
  const std::uint64_t counters = r.scalar<std::uint64_t>("counter count");
  // Cap declared counts by what the remaining stream could possibly hold, so
  // a corrupted header cannot drive a huge allocation.
  const auto here = is.tellg();
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(here);
  if (here >= 0 && end >= 0) {
    const std::uint64_t remaining = static_cast<std::uint64_t>(end - here);
    const std::uint64_t needed =
        spans * (2 * sizeof(std::uint8_t) + 3 * sizeof(double) +
                 2 * sizeof(std::uint32_t) + sizeof(std::int32_t)) +
        edges * (2 * sizeof(std::uint32_t) + sizeof(std::uint8_t)) +
        counters * (3 * sizeof(double));
    if (needed != remaining)
      throw std::runtime_error(
          "readMctrace: declared sizes do not match stream length");
  }

  TraceStore store;
  const auto kinds = r.column<std::uint8_t>(spans, "span kinds");
  const auto flags = r.column<std::uint8_t>(spans, "span flags");
  const auto begins = r.column<double>(spans, "span begins");
  const auto ends = r.column<double>(spans, "span ends");
  const auto tasks = r.column<std::uint32_t>(spans, "span tasks");
  const auto files = r.column<std::uint32_t>(spans, "span files");
  const auto byteCounts = r.column<double>(spans, "span bytes");
  const auto lanes = r.column<std::int32_t>(spans, "span lanes");
  const auto edgeFrom = r.column<std::uint32_t>(edges, "edge froms");
  const auto edgeTo = r.column<std::uint32_t>(edges, "edge tos");
  const auto edgeKinds = r.column<std::uint8_t>(edges, "edge kinds");
  const auto counterTimes = r.column<double>(counters, "counter times");
  const auto counterBytes = r.column<double>(counters, "counter bytes");
  const auto counterObjects = r.column<double>(counters, "counter objects");

  store.reserve(spans, edges, counters);
  for (std::uint64_t i = 0; i < spans; ++i) {
    if (kinds[i] >= kSpanKindCount)
      throw std::runtime_error("readMctrace: invalid span kind " +
                               std::to_string(kinds[i]));
    const std::uint32_t id =
        store.beginSpan(static_cast<SpanKind>(kinds[i]), begins[i], tasks[i],
                        files[i], byteCounts[i], lanes[i]);
    if (ends[i] >= 0.0) store.endSpan(id, ends[i]);
    if ((flags[i] & kSpanFlagFailed) != 0) store.markFailed(id);
  }
  for (std::uint64_t i = 0; i < edges; ++i) {
    if (edgeFrom[i] >= spans || edgeTo[i] >= spans)
      throw std::runtime_error("readMctrace: edge references missing span");
    if (edgeKinds[i] > static_cast<std::uint8_t>(EdgeKind::Resource))
      throw std::runtime_error("readMctrace: invalid edge kind " +
                               std::to_string(edgeKinds[i]));
    store.addEdge(edgeFrom[i], edgeTo[i],
                  static_cast<EdgeKind>(edgeKinds[i]));
  }
  for (std::uint64_t i = 0; i < counters; ++i)
    store.addCounterSample(counterTimes[i], counterBytes[i],
                           counterObjects[i]);
  return store;
}

}  // namespace mcsim::obs
