// Causal span tracing: folds the typed event stream into typed spans with
// parent/child and causal edges — the layer `mcsim explain` (critical-path
// cost attribution) and the Perfetto/Chrome trace exporters stand on.
//
// Design:
//  * `TraceStore` is a flat structure-of-arrays: one std::vector column per
//    span attribute (kind, begin, end, task, file, bytes, lane, flags), plus
//    edge and counter-sample columns.  Million-task runs produce a few
//    million spans; SoA keeps that at tens of bytes per span with zero
//    per-span allocation, and makes the binary `.mctrace` format a straight
//    dump of the columns.
//  * `SpanSink` is an ordinary obs::Sink: it consumes the engine's event
//    stream and opens/closes spans.  Folding is purely event-driven, so the
//    sink works on live runs, replayed runner captures, and JSONL re-reads
//    alike.  Tracing off = sink absent = zero cost (the engine's null
//    observer check).
//  * Causality is explicit: Child edges tie sub-spans (compute, stage-in/out,
//    retry wait) to their Task span; FollowsFrom edges record *why a span
//    could start* (parent task finished, external input landed, queue wait
//    ended); Resource edges record contention (the previous occupant of the
//    processor lane a task had to wait for).  analysis/explain walks these
//    edges backward to extract the simulated critical path.
//
// Like every obs header, this sits below sim/cloud/engine/dag and speaks raw
// integer ids only.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcsim/obs/sink.hpp"

namespace mcsim::obs {

/// What a span measures.  Values are stable (part of the .mctrace format).
enum class SpanKind : std::uint8_t {
  Run,          ///< RunStarted .. RunFinished (excludes VM startup/teardown).
  QueueWait,    ///< TaskReady .. TaskStarted (deps met, waiting to dispatch).
  Task,         ///< TaskStarted .. TaskFinished/TaskFailed (whole occupancy).
  Compute,      ///< TaskExecStarted .. attempt end (finish, crash, or first
                ///< stage-out in remote I/O, which marks exec end there).
  StageIn,      ///< StageInStarted .. StageInFinished (one file transfer).
  StageOut,     ///< StageOutStarted .. StageOutFinished.
  RetryWait,    ///< TaskRetryScheduled's delay window before the re-attempt.
  OutageStall,  ///< LinkSuspended .. LinkResumed (outage stalling transfers).
};
inline constexpr std::size_t kSpanKindCount = 8;

/// Stable snake_case name (Perfetto categories, explain buckets, JSON).
const char* spanKindName(SpanKind kind);

/// How two spans relate.  Values are stable (part of the .mctrace format).
enum class EdgeKind : std::uint8_t {
  Child,        ///< `to` is a sub-span of `from` (same task, nested in time).
  FollowsFrom,  ///< `from` ending is why `to` could begin (causality).
  Resource,     ///< `from` freeing a processor lane is why `to` could end.
};

const char* edgeKindName(EdgeKind kind);

inline constexpr std::uint32_t kNoSpan = 0xffffffffu;
/// Mirrors dag-level "no file" for spans not tied to a file.
inline constexpr std::uint32_t kNoFile = 0xffffffffu;
/// Lane of spans that occupy no schedulable resource (Run, QueueWait).
inline constexpr std::int32_t kLaneNone = -2;
/// The shared user<->storage link lane (transfers, outage stalls).
inline constexpr std::int32_t kLaneLink = -1;

/// Span flag bits (column `spanFlags`).
inline constexpr std::uint8_t kSpanFlagFailed = 1u << 0;

/// Flat structure-of-arrays span storage.  Spans are identified by their
/// index; an open span has end < 0 until endSpan() closes it.  Columns are
/// exposed by const reference so exporters and analysis iterate without
/// copies.
class TraceStore {
 public:
  /// Pre-size the columns so the emit hot path never reallocates mid-run.
  void reserve(std::size_t spans, std::size_t edges = 0,
               std::size_t counters = 0);

  std::uint32_t beginSpan(SpanKind kind, double begin, std::uint32_t task,
                          std::uint32_t file, double bytes, std::int32_t lane);
  void endSpan(std::uint32_t span, double end);
  void markFailed(std::uint32_t span);
  void addEdge(std::uint32_t from, std::uint32_t to, EdgeKind kind);
  /// Storage-occupancy counter track (resident bytes / object count).
  void addCounterSample(double time, double residentBytes, double objects);

  std::size_t spanCount() const { return spanKind_.size(); }
  std::size_t edgeCount() const { return edgeFrom_.size(); }
  std::size_t counterCount() const { return counterTime_.size(); }

  SpanKind kind(std::uint32_t span) const {
    return static_cast<SpanKind>(spanKind_[span]);
  }
  double begin(std::uint32_t span) const { return spanBegin_[span]; }
  double end(std::uint32_t span) const { return spanEnd_[span]; }
  bool isOpen(std::uint32_t span) const { return spanEnd_[span] < 0.0; }
  bool isFailed(std::uint32_t span) const {
    return (spanFlags_[span] & kSpanFlagFailed) != 0;
  }
  std::uint32_t task(std::uint32_t span) const { return spanTask_[span]; }
  std::uint32_t file(std::uint32_t span) const { return spanFile_[span]; }
  double bytes(std::uint32_t span) const { return spanBytes_[span]; }
  std::int32_t lane(std::uint32_t span) const { return spanLane_[span]; }

  // Raw columns (exporters, .mctrace, tests).
  const std::vector<std::uint8_t>& spanKinds() const { return spanKind_; }
  const std::vector<std::uint8_t>& spanFlags() const { return spanFlags_; }
  const std::vector<double>& spanBegins() const { return spanBegin_; }
  const std::vector<double>& spanEnds() const { return spanEnd_; }
  const std::vector<std::uint32_t>& spanTasks() const { return spanTask_; }
  const std::vector<std::uint32_t>& spanFiles() const { return spanFile_; }
  const std::vector<double>& spanByteCounts() const { return spanBytes_; }
  const std::vector<std::int32_t>& spanLanes() const { return spanLane_; }
  const std::vector<std::uint32_t>& edgeFroms() const { return edgeFrom_; }
  const std::vector<std::uint32_t>& edgeTos() const { return edgeTo_; }
  const std::vector<std::uint8_t>& edgeKinds() const { return edgeKind_; }
  const std::vector<double>& counterTimes() const { return counterTime_; }
  const std::vector<double>& counterBytes() const { return counterBytes_; }
  const std::vector<double>& counterObjects() const { return counterObjects_; }

  /// Number of processor lanes touched (max processor lane + 1).
  int laneCount() const { return laneCount_; }
  /// Latest time seen across span begins/ends and counter samples — the
  /// clip point exporters use for still-open spans.
  double maxTime() const { return maxTime_; }

  bool operator==(const TraceStore& other) const;

 private:
  void note(double t) {
    if (t > maxTime_) maxTime_ = t;
  }

  std::vector<std::uint8_t> spanKind_;
  std::vector<std::uint8_t> spanFlags_;
  std::vector<double> spanBegin_;
  std::vector<double> spanEnd_;
  std::vector<std::uint32_t> spanTask_;
  std::vector<std::uint32_t> spanFile_;
  std::vector<double> spanBytes_;
  std::vector<std::int32_t> spanLane_;

  std::vector<std::uint32_t> edgeFrom_;
  std::vector<std::uint32_t> edgeTo_;
  std::vector<std::uint8_t> edgeKind_;

  std::vector<double> counterTime_;
  std::vector<double> counterBytes_;
  std::vector<double> counterObjects_;

  int laneCount_ = 0;
  double maxTime_ = 0.0;
};

/// Static task-graph context for causal edges, in obs-layer terms (raw ids;
/// build one from a dag::Workflow with analysis::traceTopology).  CSR layout:
/// task t's parents are parents[parentOffsets[t] .. parentOffsets[t+1]), its
/// external-input files likewise.  An empty topology is valid: spans still
/// fold correctly, only dependency FollowsFrom edges are omitted.
struct TraceTopology {
  std::vector<std::uint32_t> parentOffsets;
  std::vector<std::uint32_t> parents;
  std::vector<std::uint32_t> extInputOffsets;
  std::vector<std::uint32_t> extInputs;

  bool empty() const { return parentOffsets.size() < 2; }
};

/// Folds the event stream into spans.  Stateless across runs is NOT
/// guaranteed — use one SpanSink per run, like the engine's other sinks.
///
/// Folding rules (documented in DESIGN.md "Span model"):
///  * RunStarted/RunFinished bound the Run span.
///  * TaskReady opens QueueWait; FollowsFrom edges arrive from each parent's
///    closed Task span and (regular modes) each external input's stage-in.
///  * TaskStarted closes QueueWait, claims the lowest free processor lane
///    (mirroring the engine's dispatch order) and opens the Task span; the
///    lane's previous occupant gets a Resource edge to the QueueWait.
///  * TaskExecStarted opens a Compute child span; it closes at TaskFinished,
///    at ProcessorCrashed (marked failed), or at the task's first
///    StageOutStarted (remote I/O defines exec end that way).
///  * Stage events open/close StageIn/StageOut spans on the link lane,
///    children of their task's span when task-attributed.
///  * TaskRetryScheduled records the delay window as a closed RetryWait
///    child span.
///  * TaskFinished/TaskFailed close the Task span (failed marks it) and free
///    the lane; the last closed Task span feeds FollowsFrom edges into the
///    workflow-level stage-out spans.
///  * LinkSuspended/Resumed bound OutageStall spans on the link lane;
///    storage put/erase/sample events feed the counter track.
class SpanSink final : public Sink {
 public:
  explicit SpanSink(TraceStore& store, TraceTopology topology = {});

  void onEvent(const Event& event) override;
  bool accepts(EventKind kind) const override;

  const TraceStore& store() const { return store_; }

 private:
  void ensureTask(std::uint32_t task);
  void onTaskReady(double t, std::uint32_t task);
  void onTaskStarted(double t, std::uint32_t task);
  void onTaskExecStarted(double t, std::uint32_t task);
  void closeCompute(double t, std::uint32_t task, bool failed);
  void onTaskDone(double t, std::uint32_t task, bool failed);
  void onStageStarted(SpanKind kind, double t, std::uint32_t file,
                      std::uint32_t task, double bytes);
  void onStageFinished(double t, std::uint32_t file, std::uint32_t task);
  std::int32_t claimLane(std::uint32_t queueSpan);
  void freeLane(std::int32_t lane);

  TraceStore& store_;
  TraceTopology topo_;

  std::uint32_t runSpan_ = kNoSpan;
  std::uint32_t outageSpan_ = kNoSpan;
  std::uint32_t lastClosedTask_ = kNoSpan;

  // Task-indexed state (grown on demand; RunStarted pre-sizes).
  std::vector<std::uint32_t> queueSpan_;
  std::vector<std::uint32_t> taskSpan_;
  std::vector<std::uint32_t> computeSpan_;
  std::vector<std::uint32_t> closedTaskSpan_;
  std::vector<std::int32_t> taskLane_;

  // File-indexed: the closed workflow-level stage-in span per external file.
  std::vector<std::uint32_t> extStageSpan_;

  // Lane bookkeeping: free lanes (lowest first) and each lane's previous
  // occupant Task span, for Resource contention edges.
  std::vector<std::int32_t> freeLanes_;  ///< Kept sorted descending.
  std::int32_t nextLane_ = 0;
  std::vector<std::uint32_t> lanePrev_;

  /// Open stage spans keyed by (task << 32 | file).  Looked up only, never
  /// iterated, so hash order cannot reach any output.
  std::unordered_map<std::uint64_t, std::uint32_t> openStage_;
};

/// Optional display names for the exporters (index = task/file id).  Build
/// from a workflow with analysis::traceNames.
struct TraceNames {
  std::vector<std::string> taskNames;
  std::vector<std::string> taskTypes;
  std::vector<std::string> fileNames;
};

/// Chrome trace-event JSON (object form, loads in Perfetto and
/// chrome://tracing).  One lane ("thread") per processor with task spans and
/// their nested compute/stage sub-spans; the shared link and queue waits get
/// their own processes with greedily packed sub-lanes; the storage counter
/// track renders as a "C" series.  Timestamps are microseconds.  Open spans
/// are clipped at store.maxTime().
void writePerfettoTrace(std::ostream& os, const TraceStore& store,
                        const TraceNames* names = nullptr);

/// Compact binary trace: magic "MCTR", version, column sizes, then the raw
/// little-endian columns.  ~44 bytes/span, no JSON parse cost on re-read.
void writeMctrace(std::ostream& os, const TraceStore& store);

/// Parse a .mctrace stream.  Throws std::runtime_error on bad magic,
/// unsupported version, or truncation.
TraceStore readMctrace(std::istream& is);

}  // namespace mcsim::obs
