#include "mcsim/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace mcsim::obs {
namespace {

/// Prometheus renders values as Go's %g; shortest-ish round-trip is fine.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::vector<double> powersOfTen(double lo, double hi) {
  std::vector<double> out;
  for (double b = lo; b <= hi * 1.0000001; b *= 10.0) out.push_back(b);
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         [](double a, double b) { return a >= b; }) !=
      bounds_.end())
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

MetricsRegistry::Entry& MetricsRegistry::findOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      Type type) {
  if (const auto it = byName_.find(name); it != byName_.end()) {
    Entry& entry = entries_[it->second];
    if (entry.type != type)
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered as another type");
    return entry;
  }
  byName_.emplace(name, entries_.size());
  entries_.push_back(Entry{name, help, type, nullptr, nullptr, nullptr});
  return entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  Entry& e = findOrCreate(name, help, Type::Counter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  Entry& e = findOrCreate(name, help, Type::Gauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upperBounds) {
  Entry& e = findOrCreate(name, help, Type::Histogram);
  if (!e.histogram)
    e.histogram = std::make_unique<Histogram>(std::move(upperBounds));
  return *e.histogram;
}

void MetricsRegistry::writePrometheus(std::ostream& os) const {
  for (const Entry& e : entries_) {
    os << "# HELP " << e.name << ' ' << e.help << '\n';
    switch (e.type) {
      case Type::Counter:
        os << "# TYPE " << e.name << " counter\n";
        os << e.name << ' ' << num(e.counter->value()) << '\n';
        break;
      case Type::Gauge:
        os << "# TYPE " << e.name << " gauge\n";
        os << e.name << ' ' << num(e.gauge->value()) << '\n';
        break;
      case Type::Histogram: {
        os << "# TYPE " << e.name << " histogram\n";
        const Histogram& h = *e.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upperBounds().size(); ++i) {
          cumulative += h.bucketCounts()[i];
          os << e.name << "_bucket{le=\"" << num(h.upperBounds()[i]) << "\"} "
             << cumulative << '\n';
        }
        os << e.name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
        os << e.name << "_sum " << num(h.sum()) << '\n';
        os << e.name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

MetricsSink::MetricsSink(MetricsRegistry& registry)
    : registry_(registry),
      eventsScheduled_(registry.counter("mcsim_sim_events_scheduled_total",
                                        "Calendar events scheduled")),
      eventsFired_(registry.counter("mcsim_sim_events_fired_total",
                                    "Calendar events executed")),
      eventsCancelled_(registry.counter("mcsim_sim_events_cancelled_total",
                                        "Calendar events cancelled")),
      transfersStarted_(registry.counter("mcsim_transfers_started_total",
                                         "Link transfers begun")),
      transfersFinished_(registry.counter("mcsim_transfers_finished_total",
                                          "Link transfers completed")),
      transferBytes_(registry.counter("mcsim_transfer_bytes_total",
                                      "Bytes moved over the link")),
      tasksReady_(registry.counter("mcsim_tasks_ready_total",
                                   "Tasks whose dependencies were satisfied")),
      tasksStarted_(registry.counter("mcsim_tasks_started_total",
                                     "Tasks dispatched to a processor")),
      tasksFinished_(registry.counter("mcsim_tasks_finished_total",
                                      "Tasks completed successfully")),
      tasksRetried_(registry.counter("mcsim_tasks_retried_total",
                                     "Failure-injected re-executions")),
      tasksBlocked_(registry.counter("mcsim_tasks_blocked_total",
                                     "Dispatches deferred on storage space")),
      storagePuts_(registry.counter("mcsim_storage_puts_total",
                                    "Objects created on cloud storage")),
      storageErases_(registry.counter("mcsim_storage_erases_total",
                                      "Objects removed from cloud storage")),
      cleanupDeletes_(registry.counter("mcsim_cleanup_deletes_total",
                                       "Files removed by dynamic cleanup")),
      logMessages_(registry.counter("mcsim_log_messages_total",
                                    "Log records routed through the bus")),
      processorCrashes_(registry.counter("mcsim_processor_crashes_total",
                                         "Spot-style mid-task processor losses")),
      tasksFailed_(registry.counter("mcsim_tasks_failed_total",
                                    "Tasks that exhausted their retry budget")),
      tasksAbandoned_(registry.counter(
          "mcsim_tasks_abandoned_total",
          "Tasks skipped because an ancestor permanently failed")),
      wastedCpuSeconds_(registry.counter(
          "mcsim_wasted_cpu_seconds_total",
          "Billed compute lost to crashes and deadline preemption")),
      activeTransfers_(registry.gauge("mcsim_link_active_transfers",
                                      "Transfers currently sharing the link")),
      busyProcessors_(registry.gauge("mcsim_processors_busy",
                                     "Claimed processors")),
      queueDepth_(registry.gauge("mcsim_processor_queue_depth",
                                 "Requests waiting for a processor")),
      residentBytes_(registry.gauge("mcsim_storage_resident_bytes",
                                    "Bytes currently on cloud storage")),
      storageObjects_(registry.gauge("mcsim_storage_objects",
                                     "Objects currently on cloud storage")),
      transferSize_(registry.histogram("mcsim_transfer_size_bytes",
                                       "Distribution of transfer sizes",
                                       powersOfTen(1e3, 1e10))),
      taskWait_(registry.histogram(
          "mcsim_task_wait_seconds",
          "Ready-to-dispatch wait per task",
          {0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0})),
      taskExec_(registry.histogram(
          "mcsim_task_exec_seconds", "Computation time per task",
          {0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0})),
      cacheHits_(registry.counter("mcsim_cache_hits",
                                  "Scenarios served from the memo cache")),
      cacheMisses_(registry.counter("mcsim_cache_misses",
                                    "Scenarios that had to be simulated")),
      cacheEntries_(registry.gauge("mcsim_cache_entries",
                                   "Memo-cache population after the batch")),
      cacheEvictions_(registry.gauge(
          "mcsim_cache_evictions",
          "Cumulative LRU evictions over the cache lifetime")),
      cacheBytes_(registry.gauge("mcsim_cache_bytes",
                                 "Approximate resident memo-cache bytes")),
      workerBusySeconds_(registry.counter(
          "mcsim_runner_worker_busy_seconds_total",
          "Wall-clock runner workers spent simulating scenarios")),
      workerScenarios_(registry.counter(
          "mcsim_runner_worker_scenarios_total",
          "Scenarios executed by runner workers")),
      runnerJobs_(registry.gauge("mcsim_runner_jobs",
                                 "Configured runner parallelism")),
      runnerBatches_(registry.counter("mcsim_runner_batches_total",
                                      "Runner batches executed")),
      runnerBatchSeconds_(registry.counter(
          "mcsim_runner_batch_seconds_total",
          "End-to-end wall-clock across runner batches")),
      runnerCachedScenarios_(registry.counter(
          "mcsim_runner_cached_scenarios_total",
          "Scenarios satisfied without simulation across batches")),
      shardsCompleted_(registry.counter(
          "mcsim_campaign_shards_completed_total",
          "Survey campaign shards simulated to completion")),
      campaignsCompleted_(registry.counter(
          "mcsim_campaigns_completed_total",
          "Survey campaigns simulated to completion")),
      campaignTasks_(registry.counter(
          "mcsim_campaign_tasks_total",
          "Tasks across completed survey campaigns")),
      jobsSubmitted_(registry.counter("mcsim_jobs_submitted_total",
                                      "Jobs admitted to the queue")),
      jobsCompleted_(registry.counter("mcsim_jobs_completed_total",
                                      "Jobs that ran every scenario")),
      jobsFailed_(registry.counter("mcsim_jobs_failed_total",
                                   "Jobs terminated by a scenario failure")),
      jobsCancelled_(registry.counter("mcsim_jobs_cancelled_total",
                                      "Jobs cancelled before completion")),
      jobScenarios_(registry.counter(
          "mcsim_job_scenarios_total",
          "Scenarios across terminally resolved jobs")),
      jobsQueued_(registry.gauge("mcsim_jobs_queued",
                                 "Jobs waiting for a worker")) {
  for (std::size_t i = 0; i < kSimPhaseCount; ++i)
    selfPhaseSeconds_[i] = &registry.counter(
        std::string("mcsim_self_") + simPhaseName(static_cast<SimPhase>(i)) +
            "_seconds_total",
        std::string("Simulator wall-clock spent in the ") +
            simPhaseName(static_cast<SimPhase>(i)) + " phase");
}

void MetricsSink::onEvent(const Event& event) {
  switch (kind(event)) {
    case EventKind::SimEventScheduled: eventsScheduled_.increment(); break;
    case EventKind::SimEventFired: eventsFired_.increment(); break;
    case EventKind::SimEventCancelled: eventsCancelled_.increment(); break;
    case EventKind::TransferStarted: {
      const auto& p = std::get<TransferStarted>(event.payload);
      transfersStarted_.increment();
      transferSize_.observe(p.bytes);
      activeTransfers_.set(static_cast<double>(p.active));
      break;
    }
    case EventKind::TransferFinished: {
      const auto& p = std::get<TransferFinished>(event.payload);
      transfersFinished_.increment();
      transferBytes_.increment(p.bytes);
      activeTransfers_.add(-1.0);
      break;
    }
    case EventKind::LinkShareChanged:
      activeTransfers_.set(static_cast<double>(
          std::get<LinkShareChanged>(event.payload).active));
      break;
    case EventKind::ProcessorClaimed: {
      const auto& p = std::get<ProcessorClaimed>(event.payload);
      busyProcessors_.set(p.busy);
      queueDepth_.set(static_cast<double>(p.queued));
      break;
    }
    case EventKind::ProcessorReleased: {
      const auto& p = std::get<ProcessorReleased>(event.payload);
      busyProcessors_.set(p.busy);
      queueDepth_.set(static_cast<double>(p.queued));
      break;
    }
    case EventKind::ProcessorQueued:
      queueDepth_.set(static_cast<double>(
          std::get<ProcessorQueued>(event.payload).queued));
      break;
    case EventKind::StorageFilePut: {
      const auto& p = std::get<StorageFilePut>(event.payload);
      storagePuts_.increment();
      residentBytes_.set(p.residentBytes);
      storageObjects_.set(static_cast<double>(p.objects));
      break;
    }
    case EventKind::StorageFileErased: {
      const auto& p = std::get<StorageFileErased>(event.payload);
      storageErases_.increment();
      residentBytes_.set(p.residentBytes);
      storageObjects_.set(static_cast<double>(p.objects));
      break;
    }
    case EventKind::StorageSampled: {
      const auto& p = std::get<StorageSampled>(event.payload);
      residentBytes_.set(p.residentBytes);
      storageObjects_.set(static_cast<double>(p.objects));
      break;
    }
    case EventKind::TaskReady:
      tasksReady_.increment();
      readyAt_[std::get<TaskReady>(event.payload).task] = event.time;
      break;
    case EventKind::TaskStarted: {
      const auto& p = std::get<TaskStarted>(event.payload);
      tasksStarted_.increment();
      if (const auto it = readyAt_.find(p.task); it != readyAt_.end()) {
        taskWait_.observe(event.time - it->second);
        readyAt_.erase(it);
      }
      break;
    }
    case EventKind::TaskExecStarted:
      execAt_[std::get<TaskExecStarted>(event.payload).task] = event.time;
      break;
    case EventKind::TaskFinished: {
      const auto& p = std::get<TaskFinished>(event.payload);
      tasksFinished_.increment();
      if (const auto it = execAt_.find(p.task); it != execAt_.end()) {
        taskExec_.observe(event.time - it->second);
        execAt_.erase(it);
      }
      break;
    }
    case EventKind::TaskRetried: tasksRetried_.increment(); break;
    case EventKind::TaskBlocked: tasksBlocked_.increment(); break;
    case EventKind::ProcessorCrashed:
      processorCrashes_.increment();
      wastedCpuSeconds_.increment(
          std::get<ProcessorCrashed>(event.payload).wastedSeconds);
      break;
    case EventKind::TaskFailed: tasksFailed_.increment(); break;
    case EventKind::TaskAbandoned: tasksAbandoned_.increment(); break;
    case EventKind::FileCleanupDeleted: cleanupDeletes_.increment(); break;
    case EventKind::LogEmitted: logMessages_.increment(); break;
    case EventKind::ScenarioCacheStats: {
      const auto& p = std::get<ScenarioCacheStats>(event.payload);
      cacheHits_.increment(static_cast<double>(p.hits));
      cacheMisses_.increment(static_cast<double>(p.misses));
      cacheEntries_.set(static_cast<double>(p.entries));
      cacheEvictions_.set(static_cast<double>(p.evictions));
      cacheBytes_.set(static_cast<double>(p.bytes));
      break;
    }
    case EventKind::PhaseProfile: {
      const auto& p = std::get<PhaseProfile>(event.payload);
      if (p.phase < kSimPhaseCount)
        selfPhaseSeconds_[p.phase]->increment(p.wallSeconds);
      break;
    }
    case EventKind::WorkerProfile: {
      const auto& p = std::get<WorkerProfile>(event.payload);
      workerBusySeconds_.increment(p.busySeconds);
      workerScenarios_.increment(static_cast<double>(p.scenarios));
      break;
    }
    case EventKind::RunnerBatchProfile: {
      const auto& p = std::get<RunnerBatchProfile>(event.payload);
      runnerJobs_.set(p.jobs);
      runnerBatches_.increment();
      runnerBatchSeconds_.increment(p.wallSeconds);
      runnerCachedScenarios_.increment(static_cast<double>(p.cached));
      break;
    }
    case EventKind::ShardCompleted: {
      shardsCompleted_.increment();
      break;
    }
    case EventKind::CampaignCompleted: {
      const auto& p = std::get<CampaignCompleted>(event.payload);
      campaignsCompleted_.increment();
      campaignTasks_.increment(static_cast<double>(p.tasks));
      break;
    }
    case EventKind::JobSubmitted: {
      const auto& p = std::get<JobSubmitted>(event.payload);
      jobsSubmitted_.increment();
      jobsQueued_.set(static_cast<double>(p.queued));
      break;
    }
    case EventKind::JobFinished: {
      const auto& p = std::get<JobFinished>(event.payload);
      switch (p.outcome) {
        case 2: jobsCompleted_.increment(); break;  // JobState::Completed
        case 3: jobsFailed_.increment(); break;     // JobState::Failed
        case 4: jobsCancelled_.increment(); break;  // JobState::Cancelled
        default: break;
      }
      jobScenarios_.increment(static_cast<double>(p.scenarios));
      break;
    }
    default: break;  // progress, suspend/resume, run markers, line items
  }
}

}  // namespace mcsim::obs
