// TelemetrySession: one-stop wiring for the common "run a workflow with
// full telemetry" case — owns a JSONL event log, a metrics registry fed by
// a MetricsSink, and a ReportBuilder, fanned out behind a single Sink* to
// hand to EngineConfig::observer.  finish() writes the on-disk artifacts:
//
//   <dir>/events.jsonl   every event, one JSON object per line
//   <dir>/metrics.prom   Prometheus text exposition of the run's metrics
//   <dir>/report.json    cost attribution by task / level / resource
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "mcsim/cloud/billing.hpp"
#include "mcsim/cloud/pricing.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/obs/jsonl.hpp"
#include "mcsim/obs/metrics.hpp"
#include "mcsim/obs/report.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::obs {

struct TelemetryOptions {
  std::string directory;  ///< Created (recursively) if missing.
  bool events = true;     ///< Write events.jsonl.
  bool metrics = true;    ///< Maintain the registry and write metrics.prom.
  bool report = true;     ///< Accumulate line items and write report.json.
};

class TelemetrySession {
 public:
  explicit TelemetrySession(TelemetryOptions options);

  /// Install as EngineConfig::observer (valid for the session's lifetime).
  Sink* sink() { return &fanOut_; }

  MetricsRegistry& registry() { return registry_; }
  const ReportBuilder& reportBuilder() const { return report_; }

  /// Flush events.jsonl and write metrics.prom + report.json.  Returns the
  /// built report.  Call once, after simulateWorkflow returns.
  RunReport finish(const dag::Workflow& wf,
                   const engine::ExecutionResult& result,
                   const cloud::Pricing& pricing,
                   cloud::CpuBillingMode cpuMode);

  std::string eventsPath() const;
  std::string metricsPath() const;
  std::string reportPath() const;

 private:
  TelemetryOptions options_;
  std::ofstream eventsFile_;
  std::unique_ptr<JsonlSink> jsonl_;
  MetricsRegistry registry_;
  std::unique_ptr<MetricsSink> metrics_;
  ReportBuilder report_;
  FanOutSink fanOut_;
};

}  // namespace mcsim::obs
