#include "mcsim/obs/telemetry.hpp"

#include <filesystem>
#include <stdexcept>
#include <utility>

namespace mcsim::obs {

TelemetrySession::TelemetrySession(TelemetryOptions options)
    : options_(std::move(options)) {
  if (options_.directory.empty())
    throw std::invalid_argument("TelemetrySession: directory required");
  std::filesystem::create_directories(options_.directory);
  if (options_.events) {
    eventsFile_.open(eventsPath(), std::ios::trunc);
    if (!eventsFile_)
      throw std::runtime_error("TelemetrySession: cannot write " +
                               eventsPath());
    jsonl_ = std::make_unique<JsonlSink>(eventsFile_);
    fanOut_.add(jsonl_.get());
  }
  if (options_.metrics) {
    metrics_ = std::make_unique<MetricsSink>(registry_);
    fanOut_.add(metrics_.get());
  }
  if (options_.report) fanOut_.add(&report_);
}

std::string TelemetrySession::eventsPath() const {
  return options_.directory + "/events.jsonl";
}
std::string TelemetrySession::metricsPath() const {
  return options_.directory + "/metrics.prom";
}
std::string TelemetrySession::reportPath() const {
  return options_.directory + "/report.json";
}

RunReport TelemetrySession::finish(const dag::Workflow& wf,
                                   const engine::ExecutionResult& result,
                                   const cloud::Pricing& pricing,
                                   cloud::CpuBillingMode cpuMode) {
  if (eventsFile_.is_open()) eventsFile_.flush();
  if (options_.metrics) {
    std::ofstream out(metricsPath(), std::ios::trunc);
    if (!out)
      throw std::runtime_error("TelemetrySession: cannot write " +
                               metricsPath());
    registry_.writePrometheus(out);
  }
  RunReport runReport = report_.build(wf, result, pricing, cpuMode);
  if (options_.report) {
    std::ofstream out(reportPath(), std::ios::trunc);
    if (!out)
      throw std::runtime_error("TelemetrySession: cannot write " +
                               reportPath());
    writeReportJson(out, runReport);
  }
  return runReport;
}

}  // namespace mcsim::obs
