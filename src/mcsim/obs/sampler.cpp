#include "mcsim/obs/sampler.hpp"

#include <stdexcept>
#include <utility>

namespace mcsim::obs {

PeriodicSampler::PeriodicSampler(sim::Simulator& sim, double period,
                                 SampleFn sample)
    : sim_(sim), period_(period), sample_(std::move(sample)) {
  if (!(period > 0.0))
    throw std::invalid_argument("PeriodicSampler: period must be positive");
  if (!sample_)
    throw std::invalid_argument("PeriodicSampler: empty sample callback");
}

void PeriodicSampler::start() {
  if (running()) return;
  pending_ = sim_.scheduleAfter(period_, [this] { tick(); });
}

void PeriodicSampler::stop() {
  if (!running()) return;
  sim_.cancel(pending_);
  pending_ = sim::kInvalidEvent;
}

void PeriodicSampler::tick() {
  pending_ = sim::kInvalidEvent;
  sample_();
  pending_ = sim_.scheduleAfter(period_, [this] { tick(); });
}

}  // namespace mcsim::obs
