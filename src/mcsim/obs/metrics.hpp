// Metrics registry: counters, gauges and fixed-bucket histograms with a
// Prometheus-style text exposition, plus a MetricsSink that derives the
// standard mcsim_* instrument set from the event stream.
//
// The simulator is single-threaded, so instruments are plain doubles — no
// atomics.  Instruments are owned by the registry and referenced by pointer;
// registering the same name twice returns the existing instrument (so
// multiple sinks can share a registry), registering it as a different type
// throws.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcsim/obs/selfprofile.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::obs {

class Counter {
 public:
  void increment(double amount = 1.0) { value_ += amount; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed upper-bound buckets (ascending; an implicit +Inf bucket catches the
/// rest), plus sum and count — enough to recover means and coarse quantiles
/// of e.g. transfer sizes and task wait times.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double value);

  const std::vector<double>& upperBounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  const std::vector<std::uint64_t>& bucketCounts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upperBounds);

  std::size_t instrumentCount() const { return entries_.size(); }

  /// Prometheus text exposition format v0.0.4, instruments in registration
  /// order (deterministic output for diffing runs).
  void writePrometheus(std::ostream& os) const;

 private:
  enum class Type { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    std::string help;
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& findOrCreate(const std::string& name, const std::string& help,
                      Type type);

  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> byName_;
};

/// Translates the event stream into the standard instrument set:
/// counters (events, transfers, bytes, task lifecycle, retries, storage
/// churn), gauges (active transfers, busy processors, queue depth, resident
/// bytes) and histograms (transfer sizes, task wait and execution times).
class MetricsSink final : public Sink {
 public:
  explicit MetricsSink(MetricsRegistry& registry);

  void onEvent(const Event& event) override;
  /// Everything except per-credit transfer progress, which would only bump
  /// a counter nobody has asked for yet.
  bool accepts(EventKind kind) const override {
    return kind != EventKind::TransferProgress;
  }

 private:
  MetricsRegistry& registry_;

  Counter& eventsScheduled_;
  Counter& eventsFired_;
  Counter& eventsCancelled_;
  Counter& transfersStarted_;
  Counter& transfersFinished_;
  Counter& transferBytes_;
  Counter& tasksReady_;
  Counter& tasksStarted_;
  Counter& tasksFinished_;
  Counter& tasksRetried_;
  Counter& tasksBlocked_;
  Counter& storagePuts_;
  Counter& storageErases_;
  Counter& cleanupDeletes_;
  Counter& logMessages_;
  Counter& processorCrashes_;
  Counter& tasksFailed_;
  Counter& tasksAbandoned_;
  Counter& wastedCpuSeconds_;
  Gauge& activeTransfers_;
  Gauge& busyProcessors_;
  Gauge& queueDepth_;
  Gauge& residentBytes_;
  Gauge& storageObjects_;
  Histogram& transferSize_;
  Histogram& taskWait_;
  Histogram& taskExec_;
  // Self-profiling + runner instruments (PR-6 observability layer).
  Counter& cacheHits_;
  Counter& cacheMisses_;
  Gauge& cacheEntries_;
  // Server-cache instruments (PR-8 serve layer).  Evictions and bytes are
  // cumulative/instantaneous in the event, so both are gauges.
  Gauge& cacheEvictions_;
  Gauge& cacheBytes_;
  Counter& workerBusySeconds_;
  Counter& workerScenarios_;
  Gauge& runnerJobs_;
  Counter& runnerBatches_;
  Counter& runnerBatchSeconds_;
  Counter& runnerCachedScenarios_;
  // Survey campaign instruments (PR-7 survey-scale workloads).
  Counter& shardsCompleted_;
  Counter& campaignsCompleted_;
  Counter& campaignTasks_;
  // Job-queue lifecycle instruments (PR-8 serve layer).
  Counter& jobsSubmitted_;
  Counter& jobsCompleted_;
  Counter& jobsFailed_;
  Counter& jobsCancelled_;
  Counter& jobScenarios_;
  Gauge& jobsQueued_;
  /// Simulator wall-clock per internal phase, indexed by obs::SimPhase.
  std::array<Counter*, kSimPhaseCount> selfPhaseSeconds_{};

  /// TaskReady/TaskExecStarted times, pending the matching start/finish.
  std::unordered_map<std::uint32_t, double> readyAt_;
  std::unordered_map<std::uint32_t, double> execAt_;
};

}  // namespace mcsim::obs
