// The event bus: a Sink receives every Event an instrumented component
// emits.  Components hold a `Sink*` that defaults to nullptr, so disabled
// telemetry costs exactly one pointer test per potential emission ("null
// sink check") and never formats a string.
//
// `accepts()` is a cheap pre-filter: emitters of high-volume kinds (per-byte
// transfer progress, billing attribution bookkeeping) ask before building
// the payload, so a sink that only wants task lifecycle events does not tax
// the hot paths.  accepts() must be stable for the lifetime of a run.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "mcsim/obs/event.hpp"

namespace mcsim::obs {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void onEvent(const Event& event) = 0;
  /// Would this sink do anything with events of `kind`?  Default: yes.
  virtual bool accepts(EventKind kind) const {
    (void)kind;
    return true;
  }
};

/// Swallows everything.  Useful as an explicit "telemetry off" terminal and
/// for measuring the enabled-but-ignored overhead in benchmarks.
class NullSink final : public Sink {
 public:
  void onEvent(const Event&) override {}
  bool accepts(EventKind) const override { return false; }
};

/// Forwards each event to every child that accepts its kind.  Children are
/// not owned; nullptr children are ignored at add() time.
class FanOutSink final : public Sink {
 public:
  FanOutSink() = default;
  explicit FanOutSink(std::vector<Sink*> sinks);

  void add(Sink* sink);
  std::size_t childCount() const { return sinks_.size(); }

  void onEvent(const Event& event) override;
  bool accepts(EventKind kind) const override;

 private:
  std::vector<Sink*> sinks_;
};

/// Appends every event to an unbounded in-memory vector — the runner's
/// per-scenario capture buffer (replayed into the shared observer at join)
/// and a convenient test double.  Prefer RingBufferSink when only the tail
/// of a long run matters.
class CollectingSink final : public Sink {
 public:
  void onEvent(const Event& event) override;

  std::size_t size() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }
  /// Move the buffer out, leaving the sink empty.
  std::vector<Event> take();

 private:
  std::vector<Event> events_;
};

/// Serializes delivery to a single-threaded inner sink.  The simulator
/// itself is single-threaded, but the runner's JobQueue finalizes jobs on
/// whichever worker finishes last — a MetricsSink or JSONL writer shared
/// across jobs must sit behind one of these.  The inner sink is borrowed.
class MutexSink final : public Sink {
 public:
  explicit MutexSink(Sink& inner);

  void onEvent(const Event& event) override;
  bool accepts(EventKind kind) const override;

  /// The serializing mutex, for callers that must read the *inner* sink's
  /// state coherently while events keep arriving — e.g. scraping a metrics
  /// registry that a MetricsSink behind this wrapper is still updating.
  std::mutex& mutex() { return mutex_; }

 private:
  Sink& inner_;
  std::mutex mutex_;
};

/// Keeps the most recent `capacity` events in memory — the flight recorder
/// for tests and post-mortem inspection of a run's tail.
class RingBufferSink final : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void onEvent(const Event& event) override;

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted because the buffer was full.
  std::size_t dropped() const { return dropped_; }
  /// Retained events, oldest first.
  std::vector<Event> snapshot() const;

  /// Number of retained events holding payload type T.
  template <class T>
  std::size_t countOf() const {
    std::size_t n = 0;
    for (const Event& e : buffer_)
      if (std::holds_alternative<T>(e.payload)) ++n;
    return n;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< Index of the oldest event once full.
  std::size_t dropped_ = 0;
  std::vector<Event> buffer_;
};

}  // namespace mcsim::obs
