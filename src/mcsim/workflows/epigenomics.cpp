#include <stdexcept>
#include <string>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::workflows {

dag::Workflow buildEpigenomics(const EpigenomicsParams& p) {
  if (p.chunks < 1)
    throw std::invalid_argument("epigenomics: chunks must be >= 1");
  dag::Workflow wf("epigenomics-" + std::to_string(p.chunks));

  const dag::FileId lane = wf.addFile("lane.fastq", p.laneBytes);
  const dag::TaskId split =
      wf.addTask("fastQSplit", "fastQSplit", p.splitSeconds);
  wf.addInput(split, lane);

  const dag::TaskId merge =
      wf.addTask("mapMerge", "mapMerge", p.mergeSeconds);

  for (int i = 0; i < p.chunks; ++i) {
    const std::string n = std::to_string(i);
    const dag::FileId chunk = wf.addFile("chunk_" + n + ".fastq", p.chunkBytes);
    wf.addOutput(split, chunk);

    const dag::TaskId filter =
        wf.addTask("filterContams_" + n, "filterContams", p.filterSeconds);
    wf.addInput(filter, chunk);
    const dag::FileId filtered =
        wf.addFile("filtered_" + n + ".fastq", p.chunkBytes * 0.95);
    wf.addOutput(filter, filtered);

    const dag::TaskId s2s =
        wf.addTask("sol2sanger_" + n, "sol2sanger", p.sol2sangerSeconds);
    wf.addInput(s2s, filtered);
    const dag::FileId sanger =
        wf.addFile("sanger_" + n + ".fastq", p.chunkBytes * 0.95);
    wf.addOutput(s2s, sanger);

    const dag::TaskId f2b =
        wf.addTask("fastq2bfq_" + n, "fastq2bfq", p.fastq2bfqSeconds);
    wf.addInput(f2b, sanger);
    const dag::FileId bfq =
        wf.addFile("reads_" + n + ".bfq", p.chunkBytes * 0.25);
    wf.addOutput(f2b, bfq);

    const dag::TaskId map = wf.addTask("map_" + n, "map", p.mapSeconds);
    wf.addInput(map, bfq);
    const dag::FileId mapped = wf.addFile("map_" + n + ".out", p.mappedBytes);
    wf.addOutput(map, mapped);
    wf.addInput(merge, mapped);
  }

  const dag::FileId merged = wf.addFile(
      "merged.map", p.mappedBytes * static_cast<double>(p.chunks));
  wf.addOutput(merge, merged);

  const dag::TaskId index =
      wf.addTask("maqIndex", "maqIndex", p.indexSeconds);
  wf.addInput(index, merged);
  const dag::FileId indexed = wf.addFile(
      "merged.index", p.mappedBytes * static_cast<double>(p.chunks) * 0.3);
  wf.addOutput(index, indexed);

  const dag::TaskId pileup = wf.addTask("pileup", "pileup", p.pileupSeconds);
  wf.addInput(pileup, indexed);
  const dag::FileId result = wf.addFile(
      "methylation.pileup",
      p.mappedBytes * static_cast<double>(p.chunks) * 0.6);
  wf.addOutput(pileup, result);

  wf.finalize();
  return wf;
}

}  // namespace mcsim::workflows
