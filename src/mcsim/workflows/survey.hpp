// Sky-survey campaign generator: thousands of Montage mosaics as one DAG.
//
// The paper simulates single mosaics (up to 4°, 3,027 tasks); the regime
// that actually stresses a cloud deployment is the one sketched in its
// Question 3 and realized by the follow-on mosaic-service work
// (arXiv:1006.4860): a continuous survey rendering the sky tile by tile,
// 10⁶–10⁷ tasks per campaign.  This generator composes `tiles` Montage
// mosaics on a sky grid into one workflow:
//
//   * each tile is a full Montage DAG (montage::paramsForDegrees structure,
//     calibrated to the paper's aggregates in closed form),
//   * horizontally adjacent tiles share `overlapFraction` of their raw
//     input images (the survey analog of the paper's overlapping plates —
//     shared inputs are staged in once, not once per tile),
//   * per-tile runtimes jitter deterministically around the calibration
//     target (seeded; same seed ⇒ byte-identical workflow),
//   * tiles can be released on a cadence (releaseIntervalSeconds), modeling
//     a survey feed rather than a backlogged batch.
//
// Campaigns build through dag::WorkflowBuilder (streaming, structure-of-
// arrays; see DESIGN.md) so a million-task DAG materializes in one pass.
// The naive composition path — per-tile Workflows merged with
// dag::mergeWorkflows — is kept as `buildSurveyCampaignReference` and
// differential-tested against the streaming path, per the reference-core
// pattern.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/util/expected.hpp"

namespace mcsim::workflows {

/// Everything that determines a survey campaign.
struct SurveyConfig {
  std::string name = "survey";

  /// Number of mosaic tiles in the campaign.
  std::uint64_t tiles = 1;
  /// Tiles are laid out row-major on a tileCols-wide sky grid (the last row
  /// may be partial).  0 = auto: ceil(sqrt(tiles)).
  std::uint32_t tileCols = 0;
  /// Mosaic edge length per tile, in degrees (montage::paramsForDegrees).
  double tileDegrees = 1.0;
  /// Fraction of a tile's raw input images shared with its left neighbour,
  /// in [0, 0.5].  Shared files have one copy in the campaign: staged in
  /// once, consumed by both tiles' mProject stages.
  double overlapFraction = 0.0;
  /// Campaign seed; per-tile seeds derive from it (splitmix64), so a tile's
  /// content depends only on (seed, tile index), not on campaign size.
  std::uint64_t seed = 0;
  /// Per-tile CPU-time jitter: tile target CPU = calibrated * (1 + j*u),
  /// u uniform in [-1, 1] from the tile seed.  In [0, 0.9].  0 = identical
  /// tiles.  File sizes scale along (CCR is preserved per tile).
  double runtimeJitterFraction = 0.0;
  /// Tile t's source tasks (mProject) may not start before t * interval —
  /// a survey feed arriving at a running service.  0 = all available at 0.
  double releaseIntervalSeconds = 0.0;
};

/// Closed-form structure of a campaign — what the generator will emit,
/// computable without building anything (property tests assert the built
/// workflow matches; the builder pre-sizes its columns from this).
struct SurveyCounts {
  std::uint64_t tiles = 0;
  std::uint32_t cols = 0;  ///< Resolved grid width.
  std::uint32_t rows = 0;  ///< ceil(tiles / cols); last row may be partial.
  std::uint64_t tasksPerTile = 0;   ///< 2n + d + 6 (montage closed form).
  std::uint64_t filesPerTile = 0;   ///< 5n + d + 6.
  std::uint64_t sharedRawsPerEdge = 0;  ///< k = round(overlap * n).
  std::uint64_t sharedFiles = 0;    ///< k * (tiles with a left neighbour).
  std::uint64_t tasks = 0;          ///< tiles * tasksPerTile.
  std::uint64_t files = 0;          ///< tiles * filesPerTile - sharedFiles.
  std::uint64_t inputEdges = 0;     ///< Σ task input bindings.
  std::uint64_t outputEdges = 0;    ///< Σ task output bindings.
};

/// Resolve the closed-form counts for `config`.  Throws
/// std::invalid_argument on invalid configs (see validateSurveyConfig).
SurveyCounts surveyCounts(const SurveyConfig& config);

/// Empty string if `config` is buildable; otherwise a human-readable reason
/// (zero tiles, overlap out of range, id-space overflow, ...).
std::string validateSurveyConfig(const SurveyConfig& config);

/// Build the campaign through the streaming WorkflowBuilder.  Returns a
/// finalized workflow.  Throws std::invalid_argument on invalid configs.
dag::Workflow buildSurveyCampaign(const SurveyConfig& config);

/// Non-throwing boundary variant: validation failures (and any build-time
/// error) come back as the error alternative instead of an exception.
Expected<dag::Workflow> trySurveyCampaign(const SurveyConfig& config);

/// One tile as a standalone finalized workflow, named "t<index>" — byte-
/// identical in structure, runtimes and sizes to that tile's slice of the
/// campaign (tile content is a pure function of (seed, tile)).  Release
/// intervals and overlap sharing are campaign-level and do not apply.
dag::Workflow buildSurveyTile(const SurveyConfig& config, std::uint64_t tile);

/// Reference composition path: every tile built standalone, then merged
/// with dag::mergeWorkflows / mergeWorkflowsStaggered.  Differential tests
/// hold it to the streaming path's simulated cost/makespan.  Requires
/// overlapFraction == 0 (file sharing cannot be expressed as a merge of
/// independent parts); throws std::invalid_argument otherwise.  Memory
/// scales with tiles * tile size — use only at test/bench scale.
dag::Workflow buildSurveyCampaignReference(const SurveyConfig& config);

/// Split a campaign into `shards` independent sub-campaigns (contiguous
/// tile ranges, remainder spread over the first shards) for the runner's
/// campaign mode: shards simulate concurrently on separate processor
/// pools.  Requires overlapFraction == 0 (shards must not share files) and
/// 1 <= shards <= tiles.  Tile t keeps its campaign-wide identity: seed,
/// jitter and release time are computed from the global tile index, so the
/// union of shards is the campaign.
std::vector<dag::Workflow> buildSurveyShards(const SurveyConfig& config,
                                             std::uint32_t shards);

}  // namespace mcsim::workflows
