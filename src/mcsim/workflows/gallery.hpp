// A gallery of Pegasus-era scientific workflows beyond Montage.
//
// The paper closes Question 2a by noting "Montage is only one of a number
// of scientific applications that can potentially benefit from cloud
// services" and probes other regimes by scaling Montage's CCR.  This
// gallery provides the actual structures of the four other workflows that
// the contemporaneous workflow-characterization literature (Bharathi et
// al., "Characterization of Scientific Workflows", WORKS/SC 2008) made
// standard: CyberShake (earthquake hazard), Epigenomics (DNA methylation),
// LIGO Inspiral (gravitational-wave search) and SIPHT (sRNA prediction).
// Runtimes and file sizes are representative of that characterization's
// regimes (CyberShake: data-heavy with short tasks; Epigenomics: CPU-bound
// pipelines; Inspiral: CPU-heavy with moderate data; SIPHT: small fan-in),
// so the gallery spans the CCR spectrum the paper's Figure 11 sweeps
// synthetically.
//
// All generators are deterministic and return finalized workflows.
#pragma once

#include "mcsim/dag/workflow.hpp"

namespace mcsim::workflows {

/// CyberShake: for each rupture variation, ExtractSGT feeds
/// SeismogramSynthesis feeds PeakValCalcOkaya; seismograms are zipped by
/// ZipSeis and peak values by ZipPSA.  Data-intensive: the strain-green-
/// tensor files dominate (hundreds of MB each), task runtimes are short —
/// the high-CCR regime of the paper's Figure 11.
struct CyberShakeParams {
  int variations = 40;                       ///< Rupture variations.
  Bytes sgtBytes = Bytes::fromMB(200.0);     ///< Extracted SGT per variation.
  Bytes seismogramBytes = Bytes::fromMB(0.2);
  Bytes peakValueBytes = Bytes::fromKB(1.0);
  double extractSeconds = 110.0;
  double synthesisSeconds = 80.0;
  double peakValSeconds = 1.0;
  double zipSeconds = 30.0;
};
dag::Workflow buildCyberShake(const CyberShakeParams& params = {});

/// Epigenomics: a fastQSplit fans a sequencing lane into chunks; each chunk
/// runs the filterContams -> sol2sanger -> fastq2bfq -> map chain; mapMerge,
/// maqIndex and pileup reduce to the final methylation map.  CPU-bound
/// pipelines (map dominates): the low-CCR regime.
struct EpigenomicsParams {
  int chunks = 25;                            ///< Parallel chunks per lane.
  Bytes laneBytes = Bytes::fromGB(1.8);       ///< Raw sequencing lane.
  Bytes chunkBytes = Bytes::fromMB(72.0);
  Bytes mappedBytes = Bytes::fromMB(14.0);
  double splitSeconds = 35.0;
  double filterSeconds = 2.0;
  double sol2sangerSeconds = 0.5;
  double fastq2bfqSeconds = 0.5;
  double mapSeconds = 3600.0;                 ///< Alignment dominates.
  double mergeSeconds = 280.0;
  double indexSeconds = 45.0;
  double pileupSeconds = 56.0;
};
dag::Workflow buildEpigenomics(const EpigenomicsParams& params = {});

/// LIGO Inspiral: template banks feed matched-filter Inspiral jobs whose
/// triggers are coincidence-tested (Thinca) per group, then the surviving
/// candidates are re-filtered (TrigBank -> Inspiral -> Thinca).  CPU-heavy
/// with moderate data.
struct InspiralParams {
  int groups = 5;            ///< Detector-segment groups.
  int jobsPerGroup = 9;      ///< Inspiral jobs per group.
  Bytes templateBankBytes = Bytes::fromMB(1.0);
  Bytes triggerBytes = Bytes::fromMB(1.3);
  double tmpltBankSeconds = 600.0;
  double inspiralSeconds = 1200.0;
  double thincaSeconds = 6.0;
  double trigBankSeconds = 6.0;
};
dag::Workflow buildInspiral(const InspiralParams& params = {});

/// SIPHT: many independent Patser scans concatenate into one file; a band
/// of heterogeneous analysis jobs (Blast variants, RNA folding, parsing)
/// all feed the final SRNA annotation.  Small files, wide shallow fan-in.
struct SiphtParams {
  int patserJobs = 22;
  int blastJobs = 8;
  Bytes motifBytes = Bytes::fromKB(650.0);
  Bytes blastOutBytes = Bytes::fromMB(0.7);
  double patserSeconds = 1.0;
  double concatSeconds = 0.3;
  double blastSeconds = 1200.0;
  double srnaSeconds = 900.0;
  double annotateSeconds = 20.0;
};
dag::Workflow buildSipht(const SiphtParams& params = {});

/// All four gallery workflows at their default scales (plus names), for
/// sweep-style tooling.
std::vector<dag::Workflow> buildGallery();

}  // namespace mcsim::workflows
