#include <stdexcept>
#include <string>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::workflows {

dag::Workflow buildInspiral(const InspiralParams& p) {
  if (p.groups < 1 || p.jobsPerGroup < 1)
    throw std::invalid_argument("inspiral: groups and jobsPerGroup must be >= 1");
  dag::Workflow wf("inspiral-" + std::to_string(p.groups) + "x" +
                   std::to_string(p.jobsPerGroup));

  // Calibrated detector data shared by all template banks.
  const dag::FileId frames = wf.addFile("gw_frames.gwf", Bytes::fromMB(750.0));

  std::vector<dag::FileId> secondStageTriggers;
  for (int g = 0; g < p.groups; ++g) {
    const std::string gn = std::to_string(g);

    // First stage: bank -> inspiral per job, coincidence across the group.
    const dag::TaskId thinca1 =
        wf.addTask("Thinca1_" + gn, "Thinca", p.thincaSeconds);
    for (int j = 0; j < p.jobsPerGroup; ++j) {
      const std::string n = gn + "_" + std::to_string(j);
      const dag::TaskId bank =
          wf.addTask("TmpltBank_" + n, "TmpltBank", p.tmpltBankSeconds);
      wf.addInput(bank, frames);
      const dag::FileId bankFile =
          wf.addFile("bank_" + n + ".xml", p.templateBankBytes);
      wf.addOutput(bank, bankFile);

      const dag::TaskId inspiral =
          wf.addTask("Inspiral1_" + n, "Inspiral", p.inspiralSeconds);
      wf.addInput(inspiral, bankFile);
      const dag::FileId triggers =
          wf.addFile("trig1_" + n + ".xml", p.triggerBytes);
      wf.addOutput(inspiral, triggers);
      wf.addInput(thinca1, triggers);
    }
    const dag::FileId coinc1 =
        wf.addFile("coinc1_" + gn + ".xml", p.triggerBytes);
    wf.addOutput(thinca1, coinc1);

    // Second stage: re-filter the coincident candidates.
    const dag::TaskId thinca2 =
        wf.addTask("Thinca2_" + gn, "Thinca", p.thincaSeconds);
    for (int j = 0; j < p.jobsPerGroup; ++j) {
      const std::string n = gn + "_" + std::to_string(j);
      const dag::TaskId trigBank =
          wf.addTask("TrigBank_" + n, "TrigBank", p.trigBankSeconds);
      wf.addInput(trigBank, coinc1);
      const dag::FileId tb = wf.addFile("trigbank_" + n + ".xml",
                                        p.templateBankBytes);
      wf.addOutput(trigBank, tb);

      const dag::TaskId inspiral2 =
          wf.addTask("Inspiral2_" + n, "Inspiral", p.inspiralSeconds);
      wf.addInput(inspiral2, tb);
      const dag::FileId triggers2 =
          wf.addFile("trig2_" + n + ".xml", p.triggerBytes);
      wf.addOutput(inspiral2, triggers2);
      wf.addInput(thinca2, triggers2);
    }
    const dag::FileId coinc2 =
        wf.addFile("coinc2_" + gn + ".xml", p.triggerBytes);
    wf.addOutput(thinca2, coinc2);
    secondStageTriggers.push_back(coinc2);
  }

  wf.finalize();
  return wf;
}

}  // namespace mcsim::workflows
