#include <stdexcept>
#include <string>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::workflows {

dag::Workflow buildCyberShake(const CyberShakeParams& p) {
  if (p.variations < 1)
    throw std::invalid_argument("cybershake: variations must be >= 1");
  dag::Workflow wf("cybershake-" + std::to_string(p.variations));

  // Master SGT volume staged from the SCEC archive; every extraction reads it.
  const dag::FileId master =
      wf.addFile("sgt_master.bin", p.sgtBytes * 4.0);

  const dag::TaskId zipSeis =
      wf.addTask("ZipSeis", "ZipSeis", p.zipSeconds);
  const dag::TaskId zipPsa = wf.addTask("ZipPSA", "ZipPSA", p.zipSeconds);

  for (int i = 0; i < p.variations; ++i) {
    const std::string n = std::to_string(i);
    const dag::TaskId extract =
        wf.addTask("ExtractSGT_" + n, "ExtractSGT", p.extractSeconds);
    wf.addInput(extract, master);
    const dag::FileId sgt = wf.addFile("sgt_" + n + ".bin", p.sgtBytes);
    wf.addOutput(extract, sgt);

    const dag::TaskId synth = wf.addTask("SeismogramSynthesis_" + n,
                                         "SeismogramSynthesis",
                                         p.synthesisSeconds);
    wf.addInput(synth, sgt);
    const dag::FileId seis =
        wf.addFile("seis_" + n + ".grm", p.seismogramBytes);
    wf.addOutput(synth, seis);
    wf.addInput(zipSeis, seis);

    const dag::TaskId peak = wf.addTask("PeakValCalcOkaya_" + n,
                                        "PeakValCalcOkaya", p.peakValSeconds);
    wf.addInput(peak, seis);
    const dag::FileId pv = wf.addFile("peak_" + n + ".bsa", p.peakValueBytes);
    wf.addOutput(peak, pv);
    wf.addInput(zipPsa, pv);
  }

  const dag::FileId seisZip =
      wf.addFile("seismograms.zip",
                 p.seismogramBytes * static_cast<double>(p.variations));
  wf.addOutput(zipSeis, seisZip);
  const dag::FileId psaZip =
      wf.addFile("peakvals.zip",
                 p.peakValueBytes * static_cast<double>(p.variations));
  wf.addOutput(zipPsa, psaZip);

  wf.finalize();
  return wf;
}

}  // namespace mcsim::workflows
