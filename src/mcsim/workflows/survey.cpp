#include "mcsim/workflows/survey.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "mcsim/dag/merge.hpp"
#include "mcsim/montage/catalog.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::workflows {

namespace {

using dag::FileId;
using dag::TaskId;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A tile's seed is a pure function of (campaign seed, tile index): tile
/// content never depends on campaign size or shard boundaries.
std::uint64_t tileSeed(const SurveyConfig& config, std::uint64_t tile) {
  return splitmix64(config.seed + splitmix64(tile + 1));
}

/// Deterministic per-tile CPU multiplier in [1-j, 1+j].
double jitterFactor(const SurveyConfig& config, std::uint64_t tile) {
  // 0.0 is the exact "jitter disabled" default, never a computed value.
  // mcsim-lint: allow(float-equality)
  if (config.runtimeJitterFraction == 0.0) return 1.0;
  const double u =
      static_cast<double>(tileSeed(config, tile) >> 11) * 0x1.0p-53;
  return 1.0 + config.runtimeJitterFraction * (2.0 * u - 1.0);
}

/// Closed-form equivalent of the factory's two post-hoc calibration passes
/// (buildMontageWorkflow): a uniform runtime scale hitting the tile's
/// target CPU seconds, and the per-file size of the 4n intermediate images
/// that makes total bytes = targetCcr * B * targetCpu with the fixed file
/// population held constant.  Computing these up front lets the streaming
/// path emit final values directly — no rescaling sweep over 10⁷ files —
/// while matching the factory's arithmetic exactly.
struct TileCalib {
  double runtimeScale = 1.0;
  Bytes intermediateBytes;
};

double baseTileCpuSeconds(const montage::MontageParams& p) {
  using montage::baseRuntimeSeconds;
  using montage::TaskType;
  const double n = static_cast<double>(p.imageCount());
  const double d = static_cast<double>(p.diffCount);
  return n * (baseRuntimeSeconds(TaskType::mProject) +
              baseRuntimeSeconds(TaskType::mBackground)) +
         d * baseRuntimeSeconds(TaskType::mDiffFit) +
         baseRuntimeSeconds(TaskType::mConcatFit) +
         baseRuntimeSeconds(TaskType::mBgModel) +
         baseRuntimeSeconds(TaskType::mImgtbl) +
         baseRuntimeSeconds(TaskType::mAdd) +
         baseRuntimeSeconds(TaskType::mShrink) +
         baseRuntimeSeconds(TaskType::mJPEG);
}

double fixedTileBytes(const montage::MontageParams& p) {
  const double n = static_cast<double>(p.imageCount());
  // Header + raws + (d fit files + fits/corrections/cimages tables) +
  // mosaic + shrunk mosaic + preview: everything the CCR calibration does
  // NOT scale.
  return p.headerBytes.value() + n * p.inputImageBytes.value() +
         static_cast<double>(p.diffCount + 3) * p.textFileBytes.value() +
         p.mosaicBytes.value() * (1.0 + p.shrinkFactor) + p.jpegBytes.value();
}

/// Empty `error` on success.
TileCalib computeTileCalib(const montage::MontageParams& p, double cpuFactor,
                           std::string* error) {
  TileCalib calib;
  const double targetCpu = p.targetCpuSeconds * cpuFactor;
  calib.runtimeScale = targetCpu / baseTileCpuSeconds(p);
  const double targetTotalBytes =
      p.targetCcr * p.referenceBandwidthBytesPerSec * targetCpu;
  const double needed = targetTotalBytes - fixedTileBytes(p);
  if (!(needed > 0.0)) {
    if (error)
      *error =
          "CCR calibration infeasible: target data volume does not cover "
          "the tile's fixed files (tileDegrees too small or jitter too "
          "large)";
    return calib;
  }
  calib.intermediateBytes =
      Bytes(needed / (4.0 * static_cast<double>(p.imageCount())));
  return calib;
}

std::string tilePrefix(std::uint64_t tile, bool slash) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "t%05llu%s",
                static_cast<unsigned long long>(tile), slash ? "/" : "");
  return buf;
}

/// Emit one calibrated Montage tile into `sink` — either a legacy
/// dag::Workflow (reference path) or a dag::WorkflowBuilder (streaming
/// path); both expose the same add/bind vocabulary.  The emission order
/// mirrors buildMontageWorkflow stage by stage and satisfies the builder's
/// streaming contract (bindings on the newest task, producers before
/// consumers).
///
/// `leftRaws` + `sharedK`: ids of the left neighbour's n raw images inside
/// the same sink; the tile's first sharedK raws alias the neighbour's last
/// sharedK (the overlapping sky strip) instead of adding fresh files.
/// `rawsOut` receives this tile's n raw ids for the next tile.
template <class Sink>
void emitTile(Sink& sink, const montage::MontageParams& p,
              const std::vector<std::pair<int, int>>& pairs,
              const TileCalib& calib, const std::string& prefix,
              const std::vector<FileId>* leftRaws, std::size_t sharedK,
              std::vector<FileId>* rawsOut, double releaseSeconds) {
  using montage::baseRuntimeSeconds;
  using montage::TaskType;
  using montage::typeName;

  const std::size_t n = static_cast<std::size_t>(p.imageCount());
  std::string buf;
  auto plain = [&](const char* name) -> const std::string& {
    buf.assign(prefix);
    buf.append(name);
    return buf;
  };
  auto indexed = [&](const char* stem, std::size_t i,
                     const char* suffix) -> const std::string& {
    char num[16];
    std::snprintf(num, sizeof num, "_%05d", static_cast<int>(i));
    buf.assign(prefix);
    buf.append(stem);
    buf.append(num);
    buf.append(suffix);
    return buf;
  };
  auto runtime = [&](TaskType type) {
    return baseRuntimeSeconds(type) * calib.runtimeScale;
  };

  // -- files staged in from the archive -------------------------------------
  const FileId header = sink.addFile(plain("region.hdr"), p.headerBytes);
  std::vector<FileId> raws(n);
  for (std::size_t i = 0; i < n; ++i)
    raws[i] = (i < sharedK && leftRaws)
                  ? (*leftRaws)[leftRaws->size() - sharedK + i]
                  : sink.addFile(indexed("2mass", i, ".fits"),
                                 p.inputImageBytes);

  // -- level 1: mProject ------------------------------------------------------
  std::vector<FileId> projImages(n);
  std::vector<FileId> projAreas(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t = sink.addTask(indexed("mProject", i, ""),
                                  typeName(TaskType::mProject),
                                  runtime(TaskType::mProject));
    sink.addInput(t, raws[i]);
    sink.addInput(t, header);
    projImages[i] =
        sink.addFile(indexed("proj", i, ".fits"), calib.intermediateBytes);
    projAreas[i] = sink.addFile(indexed("proj", i, "_area.fits"),
                                calib.intermediateBytes);
    sink.addOutput(t, projImages[i]);
    sink.addOutput(t, projAreas[i]);
    if (releaseSeconds > 0.0) sink.setEarliestStart(t, releaseSeconds);
  }

  // -- level 2: mDiffFit over overlapping pairs -------------------------------
  std::vector<FileId> fitFiles(pairs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const TaskId t = sink.addTask(indexed("mDiffFit", k, ""),
                                  typeName(TaskType::mDiffFit),
                                  runtime(TaskType::mDiffFit));
    sink.addInput(t, projImages[static_cast<std::size_t>(pairs[k].first)]);
    sink.addInput(t, projImages[static_cast<std::size_t>(pairs[k].second)]);
    fitFiles[k] = sink.addFile(indexed("fit", k, ".txt"), p.textFileBytes);
    sink.addOutput(t, fitFiles[k]);
  }

  // -- level 3/4: mConcatFit, mBgModel ---------------------------------------
  const TaskId concat =
      sink.addTask(plain("mConcatFit"), typeName(TaskType::mConcatFit),
                   runtime(TaskType::mConcatFit));
  for (FileId f : fitFiles) sink.addInput(concat, f);
  const FileId fitsTbl = sink.addFile(plain("fits.tbl"), p.textFileBytes);
  sink.addOutput(concat, fitsTbl);

  const TaskId bgModel =
      sink.addTask(plain("mBgModel"), typeName(TaskType::mBgModel),
                   runtime(TaskType::mBgModel));
  sink.addInput(bgModel, fitsTbl);
  const FileId corrections =
      sink.addFile(plain("corrections.tbl"), p.textFileBytes);
  sink.addOutput(bgModel, corrections);

  // -- level 5: mBackground ----------------------------------------------------
  std::vector<FileId> corrImages(n);
  std::vector<FileId> corrAreas(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t = sink.addTask(indexed("mBackground", i, ""),
                                  typeName(TaskType::mBackground),
                                  runtime(TaskType::mBackground));
    sink.addInput(t, projImages[i]);
    sink.addInput(t, projAreas[i]);
    sink.addInput(t, corrections);
    corrImages[i] =
        sink.addFile(indexed("corr", i, ".fits"), calib.intermediateBytes);
    corrAreas[i] = sink.addFile(indexed("corr", i, "_area.fits"),
                                calib.intermediateBytes);
    sink.addOutput(t, corrImages[i]);
    sink.addOutput(t, corrAreas[i]);
  }

  // -- level 6/7: mImgtbl, mAdd ------------------------------------------------
  const TaskId imgtbl = sink.addTask(
      plain("mImgtbl"), typeName(TaskType::mImgtbl), runtime(TaskType::mImgtbl));
  for (std::size_t i = 0; i < n; ++i) sink.addInput(imgtbl, corrImages[i]);
  const FileId imagesTbl = sink.addFile(plain("cimages.tbl"), p.textFileBytes);
  sink.addOutput(imgtbl, imagesTbl);

  const TaskId add = sink.addTask(plain("mAdd"), typeName(TaskType::mAdd),
                                  runtime(TaskType::mAdd));
  for (std::size_t i = 0; i < n; ++i) {
    sink.addInput(add, corrImages[i]);
    sink.addInput(add, corrAreas[i]);
  }
  sink.addInput(add, imagesTbl);
  sink.addInput(add, header);
  const FileId mosaic = sink.addFile(plain("mosaic.fits"), p.mosaicBytes);
  sink.addOutput(add, mosaic);
  sink.markExplicitOutput(mosaic);

  // -- level 8/9: mShrink, mJPEG ----------------------------------------------
  const TaskId shrink = sink.addTask(
      plain("mShrink"), typeName(TaskType::mShrink), runtime(TaskType::mShrink));
  sink.addInput(shrink, mosaic);
  const FileId shrunk = sink.addFile(plain("mosaic_small.fits"),
                                     p.mosaicBytes * p.shrinkFactor);
  sink.addOutput(shrink, shrunk);

  const TaskId jpeg = sink.addTask(plain("mJPEG"), typeName(TaskType::mJPEG),
                                   runtime(TaskType::mJPEG));
  sink.addInput(jpeg, shrunk);
  const FileId preview = sink.addFile(plain("mosaic.jpg"), p.jpegBytes);
  sink.addOutput(jpeg, preview);

  if (rawsOut) *rawsOut = std::move(raws);
}

/// Build tiles [firstTile, lastTile) of the campaign through the streaming
/// builder.  Shared-raw aliasing only engages for tiles whose left
/// neighbour is inside the range (full campaigns start at 0, so every
/// left neighbour is; shard mode requires overlap 0).
dag::Workflow buildTileRange(const SurveyConfig& config,
                             const SurveyCounts& counts, std::string name,
                             std::uint64_t firstTile, std::uint64_t lastTile) {
  const montage::MontageParams p =
      montage::paramsForDegrees(config.tileDegrees);
  const auto pairs = montage::overlapPairs(p.gridCols, p.gridRows, p.diffCount);
  const std::uint64_t tiles = lastTile - firstTile;
  const std::size_t k = static_cast<std::size_t>(counts.sharedRawsPerEdge);

  dag::WorkflowBuilder builder(std::move(name));
  // Average name ~= 7-char tile prefix + ~17-char stem; 28 covers both
  // comfortably without measuring.
  builder.reserve(tiles * counts.tasksPerTile, tiles * counts.filesPerTile,
                  tiles * (counts.inputEdges / counts.tiles),
                  tiles * (counts.outputEdges / counts.tiles),
                  tiles * (counts.tasksPerTile + counts.filesPerTile) * 28);

  std::vector<FileId> prevRaws;
  std::vector<FileId> raws;
  std::string error;
  for (std::uint64_t t = firstTile; t < lastTile; ++t) {
    const TileCalib calib =
        computeTileCalib(p, jitterFactor(config, t), &error);
    if (!error.empty())
      throw std::invalid_argument("survey: tile " + std::to_string(t) + ": " +
                                  error);
    const bool shareLeft = k > 0 && t % counts.cols != 0 && t > firstTile;
    emitTile(builder, p, pairs, calib, tilePrefix(t, true),
             shareLeft ? &prevRaws : nullptr, shareLeft ? k : 0, &raws,
             static_cast<double>(t) * config.releaseIntervalSeconds);
    std::swap(prevRaws, raws);
  }
  return builder.build();
}

}  // namespace

std::string validateSurveyConfig(const SurveyConfig& config) {
  if (config.tiles == 0) return "tiles must be >= 1";
  if (!(config.tileDegrees > 0.0) || !(config.tileDegrees <= 16.0))
    return "tileDegrees must be in (0, 16]";
  if (!(config.overlapFraction >= 0.0 && config.overlapFraction <= 0.5))
    return "overlapFraction must be in [0, 0.5]";
  if (!(config.runtimeJitterFraction >= 0.0 &&
        config.runtimeJitterFraction <= 0.9))
    return "runtimeJitterFraction must be in [0, 0.9]";
  if (!(config.releaseIntervalSeconds >= 0.0) ||
      !std::isfinite(config.releaseIntervalSeconds))
    return "releaseIntervalSeconds must be finite and >= 0";

  const montage::MontageParams p =
      montage::paramsForDegrees(config.tileDegrees);
  const std::uint64_t tasksPerTile = static_cast<std::uint64_t>(p.taskCount());
  const std::uint64_t filesPerTile =
      5ull * static_cast<std::uint64_t>(p.imageCount()) +
      static_cast<std::uint64_t>(p.diffCount) + 7;
  // Task/file ids are 32-bit with the max value reserved (dag::kNoTask).
  const std::uint64_t maxIds = dag::kNoTask - 1;
  if (config.tiles > maxIds / tasksPerTile)
    return "campaign exceeds the 32-bit task id space (" +
           std::to_string(config.tiles) + " tiles x " +
           std::to_string(tasksPerTile) + " tasks/tile)";
  if (config.tiles > maxIds / filesPerTile)
    return "campaign exceeds the 32-bit file id space";

  // The CCR calibration must be feasible for every tile; the binding case
  // is the lowest-CPU tile (jitter factor 1 - j).
  std::string error;
  computeTileCalib(p, 1.0 - config.runtimeJitterFraction, &error);
  return error;
}

SurveyCounts surveyCounts(const SurveyConfig& config) {
  const std::string error = validateSurveyConfig(config);
  if (!error.empty()) throw std::invalid_argument("survey: " + error);

  const montage::MontageParams p =
      montage::paramsForDegrees(config.tileDegrees);
  const std::uint64_t n = static_cast<std::uint64_t>(p.imageCount());
  const std::uint64_t d = static_cast<std::uint64_t>(p.diffCount);

  SurveyCounts c;
  c.tiles = config.tiles;
  c.cols = config.tileCols != 0
               ? config.tileCols
               : static_cast<std::uint32_t>(std::ceil(std::sqrt(
                     static_cast<double>(config.tiles))));
  c.rows = static_cast<std::uint32_t>((config.tiles + c.cols - 1) / c.cols);
  // Header + n raws + 2n proj + 2n corr + d fit files + fits/corrections/
  // cimages tables + mosaic + shrunk mosaic + preview.
  c.tasksPerTile = 2 * n + d + 6;
  c.filesPerTile = 5 * n + d + 7;
  c.sharedRawsPerEdge =
      static_cast<std::uint64_t>(std::llround(config.overlapFraction *
                                              static_cast<double>(n)));
  // Every tile except the first of each (possibly partial) row has a left
  // neighbour to share with.
  c.sharedFiles = c.sharedRawsPerEdge * (c.tiles - c.rows);
  c.tasks = c.tiles * c.tasksPerTile;
  c.files = c.tiles * c.filesPerTile - c.sharedFiles;
  // Per tile: mProject 2n, mDiffFit 2d, mConcatFit d, mBgModel 1,
  // mBackground 3n, mImgtbl n, mAdd 2n+2, mShrink 1, mJPEG 1.
  c.inputEdges = c.tiles * (8 * n + 3 * d + 5);
  // Every non-external file (everything but the header and the raws) is
  // declared exactly once.
  c.outputEdges = c.tiles * (4 * n + d + 6);
  return c;
}

dag::Workflow buildSurveyCampaign(const SurveyConfig& config) {
  const SurveyCounts counts = surveyCounts(config);
  dag::Workflow wf =
      buildTileRange(config, counts, config.name, 0, config.tiles);
  if (wf.taskCount() != counts.tasks || wf.fileCount() != counts.files)
    throw std::logic_error(
        "survey: built campaign does not match the closed-form counts "
        "(generator bug): built " +
        std::to_string(wf.taskCount()) + " tasks / " +
        std::to_string(wf.fileCount()) + " files, expected " +
        std::to_string(counts.tasks) + " / " + std::to_string(counts.files));
  return wf;
}

Expected<dag::Workflow> trySurveyCampaign(const SurveyConfig& config) {
  const std::string error = validateSurveyConfig(config);
  if (!error.empty()) return makeUnexpected("survey: " + error);
  try {
    return buildSurveyCampaign(config);
  } catch (const std::exception& e) {
    return makeUnexpected(std::string(e.what()));
  }
}

dag::Workflow buildSurveyTile(const SurveyConfig& config, std::uint64_t tile) {
  const std::string error = validateSurveyConfig(config);
  if (!error.empty()) throw std::invalid_argument("survey: " + error);
  if (tile >= config.tiles)
    throw std::invalid_argument("survey: tile " + std::to_string(tile) +
                                " out of range (tiles = " +
                                std::to_string(config.tiles) + ")");

  const montage::MontageParams p =
      montage::paramsForDegrees(config.tileDegrees);
  const auto pairs = montage::overlapPairs(p.gridCols, p.gridRows, p.diffCount);
  std::string calibError;
  const TileCalib calib =
      computeTileCalib(p, jitterFactor(config, tile), &calibError);
  if (!calibError.empty())
    throw std::invalid_argument("survey: tile " + std::to_string(tile) + ": " +
                                calibError);

  dag::Workflow wf(tilePrefix(tile, false));
  wf.reserve(static_cast<std::size_t>(p.taskCount()),
             5 * static_cast<std::size_t>(p.imageCount()) +
                 static_cast<std::size_t>(p.diffCount) + 7);
  emitTile(wf, p, pairs, calib, std::string(), nullptr, 0, nullptr, 0.0);
  wf.finalize();
  return wf;
}

dag::Workflow buildSurveyCampaignReference(const SurveyConfig& config) {
  const SurveyCounts counts = surveyCounts(config);
  if (counts.sharedRawsPerEdge != 0)
    throw std::invalid_argument(
        "survey: the reference (merge-based) path cannot express overlap "
        "sharing; use overlapFraction = 0");

  std::vector<dag::Workflow> parts;
  parts.reserve(config.tiles);
  for (std::uint64_t t = 0; t < config.tiles; ++t)
    parts.push_back(buildSurveyTile(config, t));

  if (config.releaseIntervalSeconds > 0.0) {
    std::vector<double> releases(config.tiles);
    for (std::uint64_t t = 0; t < config.tiles; ++t)
      releases[t] = static_cast<double>(t) * config.releaseIntervalSeconds;
    return dag::mergeWorkflowsStaggered(parts, releases, config.name);
  }
  return dag::mergeWorkflows(parts, config.name);
}

std::vector<dag::Workflow> buildSurveyShards(const SurveyConfig& config,
                                             std::uint32_t shards) {
  const SurveyCounts counts = surveyCounts(config);
  if (counts.sharedRawsPerEdge != 0)
    throw std::invalid_argument(
        "survey: shard mode requires overlapFraction = 0 (shards must not "
        "share files)");
  if (shards == 0 || shards > config.tiles)
    throw std::invalid_argument(
        "survey: shards must be in [1, tiles] (got " + std::to_string(shards) +
        " for " + std::to_string(config.tiles) + " tiles)");

  const std::uint64_t base = config.tiles / shards;
  const std::uint64_t rem = config.tiles % shards;
  std::vector<dag::Workflow> out;
  out.reserve(shards);
  std::uint64_t cursor = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t len = base + (s < rem ? 1 : 0);
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "/shard%03u", s);
    out.push_back(buildTileRange(config, counts, config.name + suffix, cursor,
                                 cursor + len));
    cursor += len;
  }
  return out;
}

}  // namespace mcsim::workflows
