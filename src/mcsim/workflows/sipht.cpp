#include <stdexcept>
#include <string>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::workflows {

dag::Workflow buildSipht(const SiphtParams& p) {
  if (p.patserJobs < 1 || p.blastJobs < 1)
    throw std::invalid_argument("sipht: job counts must be >= 1");
  dag::Workflow wf("sipht-" + std::to_string(p.patserJobs) + "p" +
                   std::to_string(p.blastJobs) + "b");

  // Genome under analysis, read by everything.
  const dag::FileId genome = wf.addFile("genome.ffn", Bytes::fromMB(4.5));

  // Transcription-factor binding-site scans, concatenated.
  const dag::TaskId concat =
      wf.addTask("Patser_concate", "PatserConcate", p.concatSeconds);
  for (int i = 0; i < p.patserJobs; ++i) {
    const std::string n = std::to_string(i);
    const dag::TaskId patser = wf.addTask("Patser_" + n, "Patser",
                                          p.patserSeconds);
    wf.addInput(patser, genome);
    const dag::FileId motif = wf.addFile("motif_" + n + ".txt", p.motifBytes);
    wf.addOutput(patser, motif);
    wf.addInput(concat, motif);
  }
  const dag::FileId motifs = wf.addFile(
      "motifs.txt", p.motifBytes * static_cast<double>(p.patserJobs));
  wf.addOutput(concat, motifs);

  // The SRNA prediction core.
  const dag::TaskId srna = wf.addTask("SRNA", "SRNA", p.srnaSeconds);
  wf.addInput(srna, genome);
  wf.addInput(srna, motifs);
  const dag::FileId candidates = wf.addFile("srna_candidates.fasta",
                                            Bytes::fromMB(1.2));
  wf.addOutput(srna, candidates);

  // Heterogeneous homology searches over the candidates.
  const dag::TaskId annotate =
      wf.addTask("SRNA_annotate", "SRNAAnnotate", p.annotateSeconds);
  static const char* kBlastKinds[] = {
      "Blast", "Blast_synteny", "Blast_candidate", "Blast_QRNA",
      "Blast_paralogues", "FFN_parse", "RNAMotif", "Transterm"};
  for (int i = 0; i < p.blastJobs; ++i) {
    const std::string kind = kBlastKinds[i % 8];
    const std::string name = kind + "_" + std::to_string(i);
    const dag::TaskId blast = wf.addTask(name, kind, p.blastSeconds);
    wf.addInput(blast, candidates);
    const dag::FileId out =
        wf.addFile(name + ".out", p.blastOutBytes);
    wf.addOutput(blast, out);
    wf.addInput(annotate, out);
  }
  const dag::FileId annotation = wf.addFile("srna.annotated",
                                            Bytes::fromMB(0.5));
  wf.addOutput(annotate, annotation);

  wf.finalize();
  return wf;
}

std::vector<dag::Workflow> buildGallery() {
  std::vector<dag::Workflow> gallery;
  gallery.push_back(buildCyberShake());
  gallery.push_back(buildEpigenomics());
  gallery.push_back(buildInspiral());
  gallery.push_back(buildSipht());
  return gallery;
}

}  // namespace mcsim::workflows
