// mcsim — the umbrella header: one include for the whole public surface.
//
//   #include "mcsim/mcsim.hpp"
//
// pulls in every layer, bottom-up:
//
//   util/      units, tables, CSV, logging, RNG, usage curves, contracts,
//              CLI args
//   obs/       typed telemetry events, sinks, JSONL/metrics/report exporters
//   sim/       the deterministic event calendar, shared link, processor pool
//   dag/       workflows, DAX import, DAG algorithms, cleanup analysis
//   montage/   the paper's Montage workflow factory and CCR rescaling
//   cloud/     pricing, storage service, billing meter
//   faults/    fault-injection models and retry policies
//   engine/    the workflow execution engine and its metrics/trace
//   runner/    the parallel scenario runner and the scenario memo cache
//   analysis/  every figure/table driver, planner, economics, placement
//   workflows/ the non-Montage workflow gallery
//   serve/     the `mcsim serve` daemon: protocol, service, socket client
//
// Tools, examples and quick experiments should prefer this header; code
// inside the library keeps including the specific headers it needs so the
// dependency layering (DESIGN.md "Module map") stays visible and enforced.
#pragma once

#include "mcsim/version.hpp"

#include "mcsim/util/args.hpp"
#include "mcsim/util/contract.hpp"
#include "mcsim/util/csv.hpp"
#include "mcsim/util/expected.hpp"
#include "mcsim/util/json.hpp"
#include "mcsim/util/log.hpp"
#include "mcsim/util/rng.hpp"
#include "mcsim/util/table.hpp"
#include "mcsim/util/units.hpp"
#include "mcsim/util/usage_curve.hpp"

#include "mcsim/obs/event.hpp"
#include "mcsim/obs/jsonl.hpp"
#include "mcsim/obs/metrics.hpp"
#include "mcsim/obs/report.hpp"
#include "mcsim/obs/sampler.hpp"
#include "mcsim/obs/selfprofile.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/obs/telemetry.hpp"
#include "mcsim/obs/trace.hpp"

#include "mcsim/sim/link.hpp"
#include "mcsim/sim/processor_pool.hpp"
#include "mcsim/sim/simulator.hpp"

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/dag/cleanup.hpp"
#include "mcsim/dag/dax.hpp"
#include "mcsim/dag/merge.hpp"
#include "mcsim/dag/random_dag.hpp"
#include "mcsim/dag/stats.hpp"
#include "mcsim/dag/workflow.hpp"

#include "mcsim/montage/catalog.hpp"
#include "mcsim/montage/ccr.hpp"
#include "mcsim/montage/factory.hpp"

#include "mcsim/cloud/billing.hpp"
#include "mcsim/cloud/pricing.hpp"
#include "mcsim/cloud/provider.hpp"
#include "mcsim/cloud/storage.hpp"

#include "mcsim/faults/faults.hpp"

#include "mcsim/engine/engine.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/engine/trace.hpp"
#include "mcsim/engine/trace_export.hpp"

#include "mcsim/runner/campaign.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/memo.hpp"
#include "mcsim/runner/runner.hpp"

#include "mcsim/analysis/economics.hpp"
#include "mcsim/analysis/experiments.hpp"
#include "mcsim/analysis/explain.hpp"
#include "mcsim/analysis/model.hpp"
#include "mcsim/analysis/placement.hpp"
#include "mcsim/analysis/planner.hpp"
#include "mcsim/analysis/reliability.hpp"
#include "mcsim/analysis/report.hpp"
#include "mcsim/analysis/service.hpp"

#include "mcsim/workflows/gallery.hpp"
#include "mcsim/workflows/survey.hpp"

#include "mcsim/serve/client.hpp"
#include "mcsim/serve/daemon.hpp"
#include "mcsim/serve/protocol.hpp"
#include "mcsim/serve/service.hpp"
