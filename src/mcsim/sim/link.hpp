// Network link between the user/archive site and the cloud storage.
//
// The paper fixes "the bandwidth between the user and the storage resource
// ... at 10 Mbps" (§5).  Concurrent stage-in/stage-out transfers contend for
// that link; the default policy splits bandwidth fairly among active
// transfers (processor-sharing), so a batch of N files takes
// total-bytes/bandwidth regardless of how the transfers overlap — which is
// the aggregate behaviour the paper's stage-in times reflect.  A dedicated
// policy (every transfer sees the full bandwidth, i.e. infinitely many
// parallel links) is provided for the link-sharing ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "mcsim/sim/simulator.hpp"
#include "mcsim/util/units.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::sim {

enum class LinkSharing {
  FairShare,  ///< Active transfers each progress at bandwidth / activeCount.
  Dedicated,  ///< Every transfer progresses at full bandwidth.
};

class Link {
 public:
  using TransferId = std::uint64_t;
  using CompletionHandler = std::function<void()>;

  /// `bandwidth` in bytes per second (> 0).
  Link(Simulator& sim, double bandwidthBytesPerSecond,
       LinkSharing sharing = LinkSharing::FairShare);

  /// Begin transferring `size` bytes; `onComplete` fires (as a simulator
  /// event) when the last byte arrives.  Zero-sized transfers complete at
  /// the current time (still asynchronously, preserving event ordering).
  TransferId startTransfer(Bytes size, CompletionHandler onComplete);

  /// Suspend the link (outage injection): active transfers stop progressing
  /// until resume().  New transfers may still be enqueued; they simply make
  /// no progress while down.
  void suspend();
  void resume();
  bool suspended() const { return suspended_; }

  /// Install a telemetry sink (transfer start/progress/finish, share
  /// changes, suspend/resume); nullptr disables.  Per-credit
  /// TransferProgress events are emitted only if the sink accepts them.
  void setObserver(obs::Sink* observer) { observer_ = observer; }

  std::size_t activeTransfers() const { return active_.size(); }
  Bytes totalBytesTransferred() const { return Bytes(completedBytes_); }
  std::size_t completedTransfers() const { return completedCount_; }
  double bandwidth() const { return bandwidth_; }
  LinkSharing sharing() const { return sharing_; }

 private:
  struct Transfer {
    double totalBytes;
    double remainingBytes;
    double startTime;
    CompletionHandler onComplete;
  };

  /// Advance every active transfer by the progress accrued since
  /// `lastUpdate_`, then reschedule the next-completion event.
  void reschedule();
  /// Credit progress for [lastUpdate_, now] to all active transfers.
  void accrueProgress();
  /// Fire completions for all transfers that have (numerically) finished.
  void completeFinished();

  double perTransferRate() const;

  Simulator& sim_;
  double bandwidth_;
  LinkSharing sharing_;
  bool suspended_ = false;

  std::map<TransferId, Transfer> active_;  ///< Ordered: deterministic iteration.
  TransferId nextId_ = 1;
  double lastUpdate_ = 0.0;
  EventId pendingEvent_ = kInvalidEvent;

  double completedBytes_ = 0.0;
  std::size_t completedCount_ = 0;

  obs::Sink* observer_ = nullptr;
  double lastEmittedRate_ = -1.0;  ///< Last LinkShareChanged rate published.
};

}  // namespace mcsim::sim
