// Network link between the user/archive site and the cloud storage.
//
// The paper fixes "the bandwidth between the user and the storage resource
// ... at 10 Mbps" (§5).  Concurrent stage-in/stage-out transfers contend for
// that link; the default policy splits bandwidth fairly among active
// transfers (processor-sharing), so a batch of N files takes
// total-bytes/bandwidth regardless of how the transfers overlap — which is
// the aggregate behaviour the paper's stage-in times reflect.  A dedicated
// policy (every transfer sees the full bandwidth, i.e. infinitely many
// parallel links) is provided for the link-sharing ablation.
//
// Two transfer schedulers live behind one API (LinkConfig::schedule):
//
//   * Incremental (default) — processor-sharing in virtual time.  Because
//     every active transfer progresses at the same instantaneous rate (the
//     fair share, or the full bandwidth under Dedicated), a single virtual
//     byte clock V(t) = ∫ rate dt orders all completions: a transfer
//     started at virtual time v finishes at v + totalBytes.  Starts and
//     completions are O(log n) heap operations; nothing rescans the active
//     set, so a burst of n concurrent stage-ins costs O(n log n) instead of
//     the reference scheduler's O(n²).
//   * Reference — the original per-event rescan (credit rate·dt to every
//     active transfer, scan for the minimum remaining), kept selectable
//     in-binary for bench/perf_core before/after runs and differential
//     tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "mcsim/sim/simulator.hpp"
#include "mcsim/util/units.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::sim {

enum class LinkSharing {
  FairShare,  ///< Active transfers each progress at bandwidth / activeCount.
  Dedicated,  ///< Every transfer progresses at full bandwidth.
};

/// Which transfer-completion scheduler a Link uses.  Both produce the same
/// completion times up to floating-point accumulation order; Reference
/// exists for benchmarking and differential testing only.
enum class LinkSchedule {
  Incremental,  ///< Virtual-time processor sharing, O(log n) per event.
  Reference,    ///< Legacy full rescan per event, O(n) per event.
};

/// Designated-initializer construction options (PR 3 config-struct style).
struct LinkConfig {
  double bandwidthBytesPerSec = 0.0;  ///< Required; must be > 0.
  LinkSharing sharing = LinkSharing::FairShare;
  LinkSchedule schedule = LinkSchedule::Incremental;
};

class Link {
 public:
  using TransferId = std::uint64_t;
  // mcsim-lint: allow(sim-std-function) — boundary API invoked once per
  // transfer (not per calendar event); engine handlers outgrow EventFn's
  // inline budget and transfers are orders of magnitude rarer than events.
  using CompletionHandler = std::function<void()>;

  Link(Simulator& sim, const LinkConfig& config);

  [[deprecated("use Link(sim, LinkConfig{.bandwidthBytesPerSec = ...}) — "
               "see DESIGN.md deprecation schedule")]]
  Link(Simulator& sim, double bandwidthBytesPerSecond,
       LinkSharing sharing = LinkSharing::FairShare)
      : Link(sim, LinkConfig{bandwidthBytesPerSecond, sharing,
                             LinkSchedule::Incremental}) {}

  /// Begin transferring `size` bytes; `onComplete` fires (as a simulator
  /// event) when the last byte arrives.  Zero-sized transfers complete at
  /// the current time (still asynchronously, preserving event ordering).
  TransferId startTransfer(Bytes size, CompletionHandler onComplete);

  /// Suspend the link (outage injection): active transfers stop progressing
  /// until resume().  New transfers may still be enqueued; they simply make
  /// no progress while down.
  void suspend();
  void resume();
  bool suspended() const { return suspended_; }

  /// Install a telemetry sink (transfer start/progress/finish, share
  /// changes, suspend/resume); nullptr disables.  Per-credit
  /// TransferProgress events are emitted only if the sink accepts them.
  void setObserver(obs::Sink* observer) { observer_ = observer; }

  std::size_t activeTransfers() const { return active_.size(); }
  Bytes totalBytesTransferred() const { return Bytes(completedBytes_); }
  std::size_t completedTransfers() const { return completedCount_; }
  double bandwidth() const { return bandwidth_; }
  LinkSharing sharing() const { return sharing_; }
  LinkSchedule schedule() const {
    return reference_ ? LinkSchedule::Reference : LinkSchedule::Incremental;
  }

 private:
  struct Transfer {
    double totalBytes;
    double remainingBytes;  ///< Reference scheduler state.
    double finishV;         ///< Incremental scheduler: completion virtual time.
    double startTime;
    CompletionHandler onComplete;
  };

  /// Reschedule the next-completion event after any boundary (start,
  /// suspend/resume, completion).  Dispatches on the configured scheduler.
  void reschedule();
  /// Emit LinkShareChanged when the per-transfer rate moved (both paths).
  void emitShareChange(double rate);
  void onLinkEvent();

  // -- Reference scheduler ---------------------------------------------------
  /// Credit progress for [lastUpdate_, now] to all active transfers.
  void accrueProgress();
  /// Fire completions for all transfers that have (numerically) finished.
  void completeFinished();

  // -- Incremental scheduler -------------------------------------------------
  /// Advance the virtual byte clock to sim_.now().
  void advanceVirtualTime();
  /// True if `t` has (numerically) finished at the current virtual time.
  bool virtuallyComplete(const Transfer& t) const;
  /// Pop and fire every finished transfer, in transfer-id order.
  void completeFinishedIncremental();

  double perTransferRate() const;

  Simulator& sim_;
  double bandwidth_;
  LinkSharing sharing_;
  bool reference_ = false;
  bool suspended_ = false;

  std::map<TransferId, Transfer> active_;  ///< Ordered: deterministic iteration.
  TransferId nextId_ = 1;
  double lastUpdate_ = 0.0;
  EventId pendingEvent_ = kInvalidEvent;

  /// Incremental scheduler: virtual byte clock and (finishV, id) min-heap.
  /// The heap holds exactly the active transfer ids; transfers are never
  /// cancelled, so no tombstones are needed.
  double virtualBytes_ = 0.0;
  std::priority_queue<std::pair<double, TransferId>,
                      std::vector<std::pair<double, TransferId>>,
                      std::greater<std::pair<double, TransferId>>>
      finishHeap_;

  double completedBytes_ = 0.0;
  std::size_t completedCount_ = 0;

  obs::Sink* observer_ = nullptr;
  double lastEmittedRate_ = -1.0;  ///< Last LinkShareChanged rate published.
};

}  // namespace mcsim::sim
