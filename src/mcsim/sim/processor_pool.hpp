// A pool of identical provisioned processors with a FIFO grant queue.
//
// The paper provisions P processors for the lifetime of a workflow run
// (Question 1) or "more than the maximum parallelism" (Question 2); tasks
// claim one processor each.  The pool also integrates busy-processor time so
// the engine can report utilization — the paper's observation that "CPU
// utilization can be low in the provisioned case" (§6, Question 2a).
#pragma once

#include <deque>
#include <functional>

#include "mcsim/sim/simulator.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::sim {

class ProcessorPool {
 public:
  // mcsim-lint: allow(sim-std-function) — boundary API invoked once per
  // processor grant (per task attempt, not per calendar event).
  using GrantHandler = std::function<void()>;

  ProcessorPool(Simulator& sim, int processorCount);

  /// Request one processor.  The handler fires as a simulator event as soon
  /// as a processor is available — immediately (same timestamp) if one is
  /// free now, otherwise FIFO when one is released.
  void acquire(GrantHandler onGranted);

  /// Return one previously granted processor.
  void release();

  int size() const { return count_; }
  int busy() const { return busy_; }
  int idle() const { return count_ - busy_; }
  std::size_t queuedRequests() const { return waiting_.size(); }

  /// Integral of busy processors over time, in processor-seconds, up to the
  /// current simulation time.
  double busyProcessorSeconds() const;

  /// Install a telemetry sink (claim / release / queue depth); nullptr
  /// disables.
  void setObserver(obs::Sink* observer) { observer_ = observer; }

 private:
  void grantOne();
  void accrue();

  Simulator& sim_;
  int count_;
  int busy_ = 0;
  std::deque<GrantHandler> waiting_;
  double busyIntegral_ = 0.0;
  double lastUpdate_ = 0.0;
  obs::Sink* observer_ = nullptr;
};

}  // namespace mcsim::sim
