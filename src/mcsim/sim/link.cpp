#include "mcsim/sim/link.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mcsim/obs/sink.hpp"
#include "mcsim/util/contract.hpp"

namespace mcsim::sim {
namespace {
/// Residual byte counts below the completion threshold are treated as done.
/// The threshold must scale with the transfer size: progress is credited as
/// rate * dt across many events, so the accumulated rounding error is
/// relative to the byte count (a 173 MB mosaic accrues ~1e-6 B of dust over
/// a few dozen events, and the final reschedule delay can underflow
/// `now + delay == now`, stalling the transfer forever at an absolute
/// epsilon).  1e-9 relative keeps five orders of margin over observed error
/// while remaining far below any meaningful byte count.
constexpr double kEpsilonBytes = 1e-6;
constexpr double kRelativeEpsilon = 1e-9;

double completionThreshold(double totalBytes) {
  return std::max(kEpsilonBytes, kRelativeEpsilon * totalBytes);
}
}  // namespace

Link::Link(Simulator& sim, const LinkConfig& config)
    : sim_(sim),
      bandwidth_(config.bandwidthBytesPerSec),
      sharing_(config.sharing),
      reference_(config.schedule == LinkSchedule::Reference) {
  if (!(config.bandwidthBytesPerSec > 0.0))
    throw std::invalid_argument("Link: bandwidth must be positive");
}

double Link::perTransferRate() const {
  if (suspended_ || active_.empty()) return 0.0;
  if (sharing_ == LinkSharing::Dedicated) return bandwidth_;
  return bandwidth_ / static_cast<double>(active_.size());
}

Link::TransferId Link::startTransfer(Bytes size, CompletionHandler onComplete) {
  if (size.value() < 0.0)
    throw std::invalid_argument("Link::startTransfer: negative size");
  if (!onComplete)
    throw std::invalid_argument("Link::startTransfer: empty completion handler");
  if (reference_)
    accrueProgress();
  else
    advanceVirtualTime();
  const TransferId id = nextId_++;
  const double bytes = size.value();
  const double finishV = virtualBytes_ + bytes;
  active_.emplace(
      id, Transfer{bytes, bytes, finishV, sim_.now(), std::move(onComplete)});
  if (!reference_) finishHeap_.push({finishV, id});
  if (observer_ && observer_->accepts(obs::EventKind::TransferStarted))
    observer_->onEvent(
        obs::Event{sim_.now(), obs::TransferStarted{id, bytes, active_.size()}});
  reschedule();
  return id;
}

void Link::suspend() {
  if (suspended_) return;
  if (reference_)
    accrueProgress();
  else
    advanceVirtualTime();
  suspended_ = true;
  if (observer_)
    observer_->onEvent(obs::Event{sim_.now(), obs::LinkSuspended{}});
  reschedule();
}

void Link::resume() {
  if (!suspended_) return;
  // No progress accrued while down; just restart the clock from now.
  lastUpdate_ = sim_.now();
  suspended_ = false;
  if (observer_)
    observer_->onEvent(obs::Event{sim_.now(), obs::LinkResumed{}});
  reschedule();
}

void Link::emitShareChange(double rate) {
  if (observer_ && rate != lastEmittedRate_ &&
      observer_->accepts(obs::EventKind::LinkShareChanged)) {
    observer_->onEvent(
        obs::Event{sim_.now(), obs::LinkShareChanged{active_.size(), rate}});
    lastEmittedRate_ = rate;
  }
}

void Link::onLinkEvent() {
  pendingEvent_ = kInvalidEvent;
  if (reference_) {
    accrueProgress();
    completeFinished();
  } else {
    advanceVirtualTime();
    completeFinishedIncremental();
  }
  reschedule();
}

// -- Reference scheduler -----------------------------------------------------

void Link::accrueProgress() {
  const double now = sim_.now();
  const double rate = perTransferRate();
  if (rate > 0.0 && now > lastUpdate_) {
    const double credit = rate * (now - lastUpdate_);
    for (auto& [id, t] : active_) t.remainingBytes -= credit;
    if (observer_ && observer_->accepts(obs::EventKind::TransferProgress))
      for (const auto& [id, t] : active_)
        observer_->onEvent(
            obs::Event{now, obs::TransferProgress{id, t.remainingBytes}});
  }
  lastUpdate_ = now;
}

void Link::completeFinished() {
  // Collect handlers first: a completion handler may start new transfers on
  // this link, which mutates active_.
  std::vector<CompletionHandler> done;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remainingBytes <= completionThreshold(it->second.totalBytes)) {
      completedBytes_ += it->second.totalBytes;
      if (observer_ && observer_->accepts(obs::EventKind::TransferFinished))
        observer_->onEvent(obs::Event{
            sim_.now(),
            obs::TransferFinished{it->first, it->second.totalBytes,
                                  sim_.now() - it->second.startTime}});
      done.push_back(std::move(it->second.onComplete));
      it = active_.erase(it);
      ++completedCount_;
    } else {
      ++it;
    }
  }
  for (auto& handler : done) handler();
}

// -- Incremental scheduler ---------------------------------------------------

void Link::advanceVirtualTime() {
  const double now = sim_.now();
  MCSIM_EXPECTS(now >= lastUpdate_, "link virtual clock ran backwards: now=",
                now, " lastUpdate=", lastUpdate_);
  const double rate = perTransferRate();
  if (rate > 0.0 && now > lastUpdate_) {
    virtualBytes_ += rate * (now - lastUpdate_);
    if (observer_ && observer_->accepts(obs::EventKind::TransferProgress))
      for (const auto& [id, t] : active_)
        observer_->onEvent(
            obs::Event{now, obs::TransferProgress{id, t.finishV - virtualBytes_}});
  }
  lastUpdate_ = now;
}

bool Link::virtuallyComplete(const Transfer& t) const {
  // The virtual clock accumulates every byte the link ever carried, so its
  // rounding error is relative to virtualBytes_, not to the transfer size;
  // fold it into the threshold so a finished transfer is never stranded by
  // ulp-level residue on a long run.
  const double threshold = std::max(completionThreshold(t.totalBytes),
                                    kRelativeEpsilon * virtualBytes_);
  return t.finishV - virtualBytes_ <= threshold;
}

void Link::completeFinishedIncremental() {
  // Pop every finished transfer off the (finishV, id) heap, then fire the
  // handlers in transfer-id order — the order the reference scheduler's
  // id-ordered map scan produces.
  std::vector<TransferId> doneIds;
  while (!finishHeap_.empty()) {
    const auto it = active_.find(finishHeap_.top().second);
    MCSIM_ASSERT(it != active_.end(), "finish heap holds transfer ",
                 finishHeap_.top().second, " with no active record");
    if (!virtuallyComplete(it->second)) break;
    doneIds.push_back(it->first);
    finishHeap_.pop();
  }
  if (doneIds.empty()) return;
  std::sort(doneIds.begin(), doneIds.end());
  std::vector<CompletionHandler> done;
  done.reserve(doneIds.size());
  for (const TransferId id : doneIds) {
    const auto it = active_.find(id);
    completedBytes_ += it->second.totalBytes;
    if (observer_ && observer_->accepts(obs::EventKind::TransferFinished))
      observer_->onEvent(obs::Event{
          sim_.now(), obs::TransferFinished{id, it->second.totalBytes,
                                            sim_.now() - it->second.startTime}});
    done.push_back(std::move(it->second.onComplete));
    active_.erase(it);
    ++completedCount_;
  }
  for (auto& handler : done) handler();
}

// -- Shared rescheduling -----------------------------------------------------

void Link::reschedule() {
  if (pendingEvent_ != kInvalidEvent) {
    sim_.cancel(pendingEvent_);
    pendingEvent_ = kInvalidEvent;
  }
  if (suspended_) return;
  if (active_.empty()) {
    // Idle link: rewind the virtual clock so precision never degrades over
    // arbitrarily long runs (the heap is empty whenever active_ is).
    virtualBytes_ = 0.0;
    return;
  }

  const double rate = perTransferRate();
  double delay = 0.0;
  if (reference_) {
    // Under fair share all transfers progress at the same rate, so the next
    // completion is the one with the least remaining bytes.  Under dedicated
    // the same selection applies (equal rates again).
    double minRemaining = std::numeric_limits<double>::infinity();
    bool anyComplete = false;
    for (const auto& [id, t] : active_) {
      minRemaining = std::min(minRemaining, t.remainingBytes);
      anyComplete =
          anyComplete || t.remainingBytes <= completionThreshold(t.totalBytes);
    }
    emitShareChange(rate);
    delay = anyComplete ? 0.0 : minRemaining / rate;
  } else {
    // The heap top is the least-remaining transfer: remaining bytes are
    // finishV - V for every transfer, so finishV order is remaining order.
    emitShareChange(rate);
    const Transfer& top = active_.find(finishHeap_.top().second)->second;
    delay = virtuallyComplete(top)
                ? 0.0
                : (top.finishV - virtualBytes_) / rate;
  }

  MCSIM_ENSURES(delay >= 0.0, "negative reschedule delay ", delay);
  pendingEvent_ = sim_.scheduleAfter(delay, [this] { onLinkEvent(); });
}

}  // namespace mcsim::sim
