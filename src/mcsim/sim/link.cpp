#include "mcsim/sim/link.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mcsim/obs/sink.hpp"

namespace mcsim::sim {
namespace {
/// Residual byte counts below the completion threshold are treated as done.
/// The threshold must scale with the transfer size: progress is credited as
/// rate * dt across many events, so the accumulated rounding error is
/// relative to the byte count (a 173 MB mosaic accrues ~1e-6 B of dust over
/// a few dozen events, and the final reschedule delay can underflow
/// `now + delay == now`, stalling the transfer forever at an absolute
/// epsilon).  1e-9 relative keeps five orders of margin over observed error
/// while remaining far below any meaningful byte count.
constexpr double kEpsilonBytes = 1e-6;
constexpr double kRelativeEpsilon = 1e-9;

double completionThreshold(double totalBytes) {
  return std::max(kEpsilonBytes, kRelativeEpsilon * totalBytes);
}
}  // namespace

Link::Link(Simulator& sim, double bandwidthBytesPerSecond, LinkSharing sharing)
    : sim_(sim), bandwidth_(bandwidthBytesPerSecond), sharing_(sharing) {
  if (!(bandwidthBytesPerSecond > 0.0))
    throw std::invalid_argument("Link: bandwidth must be positive");
}

double Link::perTransferRate() const {
  if (suspended_ || active_.empty()) return 0.0;
  if (sharing_ == LinkSharing::Dedicated) return bandwidth_;
  return bandwidth_ / static_cast<double>(active_.size());
}

Link::TransferId Link::startTransfer(Bytes size, CompletionHandler onComplete) {
  if (size.value() < 0.0)
    throw std::invalid_argument("Link::startTransfer: negative size");
  if (!onComplete)
    throw std::invalid_argument("Link::startTransfer: empty completion handler");
  accrueProgress();
  const TransferId id = nextId_++;
  active_.emplace(id, Transfer{size.value(), size.value(), sim_.now(),
                               std::move(onComplete)});
  if (observer_)
    observer_->onEvent(obs::Event{
        sim_.now(), obs::TransferStarted{id, size.value(), active_.size()}});
  reschedule();
  return id;
}

void Link::suspend() {
  if (suspended_) return;
  accrueProgress();
  suspended_ = true;
  if (observer_)
    observer_->onEvent(obs::Event{sim_.now(), obs::LinkSuspended{}});
  reschedule();
}

void Link::resume() {
  if (!suspended_) return;
  // No progress accrued while down; just restart the clock from now.
  lastUpdate_ = sim_.now();
  suspended_ = false;
  if (observer_)
    observer_->onEvent(obs::Event{sim_.now(), obs::LinkResumed{}});
  reschedule();
}

void Link::accrueProgress() {
  const double now = sim_.now();
  const double rate = perTransferRate();
  if (rate > 0.0 && now > lastUpdate_) {
    const double credit = rate * (now - lastUpdate_);
    for (auto& [id, t] : active_) t.remainingBytes -= credit;
    if (observer_ && observer_->accepts(obs::EventKind::TransferProgress))
      for (const auto& [id, t] : active_)
        observer_->onEvent(
            obs::Event{now, obs::TransferProgress{id, t.remainingBytes}});
  }
  lastUpdate_ = now;
}

void Link::completeFinished() {
  // Collect handlers first: a completion handler may start new transfers on
  // this link, which mutates active_.
  std::vector<CompletionHandler> done;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remainingBytes <= completionThreshold(it->second.totalBytes)) {
      completedBytes_ += it->second.totalBytes;
      if (observer_)
        observer_->onEvent(obs::Event{
            sim_.now(),
            obs::TransferFinished{it->first, it->second.totalBytes,
                                  sim_.now() - it->second.startTime}});
      done.push_back(std::move(it->second.onComplete));
      it = active_.erase(it);
      ++completedCount_;
    } else {
      ++it;
    }
  }
  for (auto& handler : done) handler();
}

void Link::reschedule() {
  if (pendingEvent_ != kInvalidEvent) {
    sim_.cancel(pendingEvent_);
    pendingEvent_ = kInvalidEvent;
  }
  if (suspended_ || active_.empty()) return;

  // Under fair share all transfers progress at the same rate, so the next
  // completion is the one with the least remaining bytes.  Under dedicated
  // the same selection applies (equal rates again).
  double minRemaining = std::numeric_limits<double>::infinity();
  bool anyComplete = false;
  for (const auto& [id, t] : active_) {
    minRemaining = std::min(minRemaining, t.remainingBytes);
    anyComplete = anyComplete ||
                  t.remainingBytes <= completionThreshold(t.totalBytes);
  }
  const double rate = perTransferRate();
  if (observer_ && rate != lastEmittedRate_) {
    observer_->onEvent(obs::Event{
        sim_.now(), obs::LinkShareChanged{active_.size(), rate}});
    lastEmittedRate_ = rate;
  }
  const double delay = anyComplete ? 0.0 : minRemaining / rate;

  pendingEvent_ = sim_.scheduleAfter(delay, [this] {
    pendingEvent_ = kInvalidEvent;
    accrueProgress();
    completeFinished();
    reschedule();
  });
}

}  // namespace mcsim::sim
