#include "mcsim/sim/processor_pool.hpp"

#include <stdexcept>
#include <utility>

#include "mcsim/obs/sink.hpp"

namespace mcsim::sim {

ProcessorPool::ProcessorPool(Simulator& sim, int processorCount)
    : sim_(sim), count_(processorCount) {
  if (processorCount <= 0)
    throw std::invalid_argument("ProcessorPool: count must be positive");
}

void ProcessorPool::accrue() {
  const double now = sim_.now();
  busyIntegral_ += static_cast<double>(busy_) * (now - lastUpdate_);
  lastUpdate_ = now;
}

void ProcessorPool::acquire(GrantHandler onGranted) {
  if (!onGranted)
    throw std::invalid_argument("ProcessorPool::acquire: empty handler");
  waiting_.push_back(std::move(onGranted));
  if (busy_ < count_) {
    grantOne();
    return;
  }
  if (observer_ && observer_->accepts(obs::EventKind::ProcessorQueued))
    observer_->onEvent(
        obs::Event{sim_.now(), obs::ProcessorQueued{waiting_.size()}});
}

void ProcessorPool::grantOne() {
  // Claim the processor synchronously (so back-to-back acquires at the same
  // timestamp cannot over-grant) but deliver the handler as an event, which
  // keeps grant ordering FIFO and avoids reentrancy into caller state.
  accrue();
  ++busy_;
  GrantHandler handler = std::move(waiting_.front());
  waiting_.pop_front();
  if (observer_ && observer_->accepts(obs::EventKind::ProcessorClaimed))
    observer_->onEvent(obs::Event{
        sim_.now(), obs::ProcessorClaimed{busy_, count_, waiting_.size()}});
  sim_.scheduleAfter(0.0, std::move(handler));
}

void ProcessorPool::release() {
  if (busy_ <= 0)
    throw std::logic_error("ProcessorPool::release: no processor is busy");
  accrue();
  --busy_;
  if (observer_ && observer_->accepts(obs::EventKind::ProcessorReleased))
    observer_->onEvent(obs::Event{
        sim_.now(), obs::ProcessorReleased{busy_, count_, waiting_.size()}});
  if (!waiting_.empty()) grantOne();
}

double ProcessorPool::busyProcessorSeconds() const {
  return busyIntegral_ +
         static_cast<double>(busy_) * (sim_.now() - lastUpdate_);
}

}  // namespace mcsim::sim
