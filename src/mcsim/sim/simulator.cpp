#include "mcsim/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "mcsim/obs/sink.hpp"

namespace mcsim::sim {

EventId Simulator::schedule(double time, Callback cb) {
  if (time < now_)
    throw std::invalid_argument("Simulator::schedule: time " +
                                std::to_string(time) + " is in the past (now " +
                                std::to_string(now_) + ")");
  if (!cb) throw std::invalid_argument("Simulator::schedule: empty callback");
  const EventId id = nextId_++;
  queue_.push(Event{time, nextSequence_++, id, std::move(cb)});
  pending_.insert(id);
  if (observer_)
    observer_->onEvent(
        obs::Event{now_, obs::SimEventScheduled{id, time}});
  return id;
}

EventId Simulator::scheduleAfter(double delay, Callback cb) {
  if (delay < 0.0)
    throw std::invalid_argument("Simulator::scheduleAfter: negative delay");
  return schedule(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  // Only a still-pending event can be cancelled; fired or unknown ids are
  // rejected so double-cancel and cancel-after-fire are harmless no-ops.
  if (pending_.erase(id) == 0) return false;
  if (observer_)
    observer_->onEvent(obs::Event{now_, obs::SimEventCancelled{id}});
  return true;
}

void Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (pending_.erase(ev.id) == 0) continue;  // was cancelled; drop lazily
    now_ = ev.time;
    ++processed_;
    if (observer_)
      observer_->onEvent(obs::Event{now_, obs::SimEventFired{ev.id}});
    ev.callback();
    return;
  }
}

void Simulator::run() {
  while (!pending_.empty()) step();
}

void Simulator::runUntil(double horizon) {
  while (!pending_.empty()) {
    // Skim cancelled events off the top so queue_.top() is live.
    while (!queue_.empty() && pending_.count(queue_.top().id) == 0)
      queue_.pop();
    if (queue_.empty()) break;
    if (queue_.top().time > horizon) {
      now_ = horizon;
      return;
    }
    step();
  }
}

}  // namespace mcsim::sim
