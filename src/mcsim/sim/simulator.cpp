#include "mcsim/sim/simulator.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "mcsim/obs/sink.hpp"
#include "mcsim/util/contract.hpp"

namespace mcsim::sim {

Simulator::Simulator(const SimulatorOptions& options)
    : reference_(options.calendar == CalendarImpl::Reference) {
  if (!reference_ && options.reserveEvents > 0) {
    slots_.reserve(options.reserveEvents);
    heap_.reserve(options.reserveEvents);
    idSlot_.reserve(options.reserveEvents + 1);
  }
  if (!reference_) idSlot_.push_back(kNpos);  // index 0 = kInvalidEvent
}

void Simulator::setObserver(obs::Sink* observer) {
  observer_ = observer;
  emitScheduled_ =
      observer != nullptr && observer->accepts(obs::EventKind::SimEventScheduled);
  emitCancelled_ =
      observer != nullptr && observer->accepts(obs::EventKind::SimEventCancelled);
  emitFired_ =
      observer != nullptr && observer->accepts(obs::EventKind::SimEventFired);
}

// -- arena helpers -----------------------------------------------------------

std::uint32_t Simulator::allocSlot() {
  if (freeHead_ != kNpos) {
    const std::uint32_t s = freeHead_;
    freeHead_ = slots_[s].heapPos;
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::freeSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.callback.reset();
  s.id = kInvalidEvent;
  s.heapPos = freeHead_;
  freeHead_ = slot;
}

bool Simulator::before(std::uint32_t a, std::uint32_t b) const {
  const Slot& sa = slots_[a];
  const Slot& sb = slots_[b];
  if (sa.time != sb.time) return sa.time < sb.time;
  return sa.sequence < sb.sequence;
}

std::size_t Simulator::siftUp(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heapPos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heapPos = static_cast<std::uint32_t>(pos);
  return pos;
}

void Simulator::siftDown(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], moving)) break;
    heap_[pos] = heap_[child];
    slots_[heap_[pos]].heapPos = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = moving;
  slots_[moving].heapPos = static_cast<std::uint32_t>(pos);
}

void Simulator::removeFromHeap(std::size_t pos) {
  MCSIM_EXPECTS(pos < heap_.size(), "heap position ", pos, " out of range (",
                heap_.size(), " pending)");
  MCSIM_EXPECTS(slots_[heap_[pos]].heapPos == pos,
                "slot/heap index mismatch at position ", pos);
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  slots_[heap_[pos]].heapPos = static_cast<std::uint32_t>(pos);
  heap_.pop_back();
  // The filler came from the bottom: it may need to move either direction.
  if (siftUp(pos) == pos) siftDown(pos);
}

// -- public API --------------------------------------------------------------

EventId Simulator::schedule(double time, Callback cb) {
  if (time < now_)
    throw std::invalid_argument("Simulator::schedule: time " +
                                std::to_string(time) + " is in the past (now " +
                                std::to_string(now_) + ")");
  if (!cb) throw std::invalid_argument("Simulator::schedule: empty callback");
  const EventId id = nextId_++;
  if (reference_) {
    // mcsim-lint: allow(sim-heap-alloc) — the reference calendar keeps the
    // legacy one-allocation-per-event behaviour for differential testing.
    auto callback = std::make_shared<EventFn>(std::move(cb));
    refQueue_.push(RefEvent{time, nextSequence_++, id, std::move(callback)});
    refPending_.insert(id);
  } else {
    const std::uint32_t s = allocSlot();
    Slot& slot = slots_[s];
    slot.time = time;
    slot.sequence = nextSequence_++;
    slot.id = id;
    slot.callback = std::move(cb);
    slot.heapPos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(s);
    siftUp(heap_.size() - 1);
    idSlot_.push_back(s);
  }
  if (emitScheduled_)
    observer_->onEvent(obs::Event{now_, obs::SimEventScheduled{id, time}});
  return id;
}

EventId Simulator::scheduleAfter(double delay, Callback cb) {
  if (delay < 0.0)
    throw std::invalid_argument("Simulator::scheduleAfter: negative delay");
  return schedule(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  // Only a still-pending event can be cancelled; fired or unknown ids are
  // rejected so double-cancel and cancel-after-fire are harmless no-ops.
  if (reference_) {
    if (refPending_.erase(id) == 0) return false;
  } else {
    if (id == kInvalidEvent || id >= nextId_) return false;
    const std::uint32_t s = idSlot_[static_cast<std::size_t>(id)];
    if (s == kNpos) return false;
    MCSIM_ASSERT(heap_[slots_[s].heapPos] == s, "cancel(", id,
                 "): slot ", s, " not found at its recorded heap position");
    removeFromHeap(slots_[s].heapPos);
    idSlot_[static_cast<std::size_t>(id)] = kNpos;
    freeSlot(s);
  }
  if (emitCancelled_)
    observer_->onEvent(obs::Event{now_, obs::SimEventCancelled{id}});
  return true;
}

void Simulator::stepArena() {
  const std::uint32_t s = heap_[0];
  Slot& slot = slots_[s];
  MCSIM_ASSERT(slot.heapPos == 0, "heap top slot ", s,
               " believes it sits at position ", slot.heapPos);
  MCSIM_ASSERT(slot.time >= now_, "calendar went backwards: event at ",
               slot.time, " fired with now=", now_);
  now_ = slot.time;
  ++processed_;
  const EventId id = slot.id;
  // Move the callback out before releasing the slot: the callback may
  // schedule new events, growing or reusing the arena underneath us.
  EventFn fn = std::move(slot.callback);
  removeFromHeap(0);
  idSlot_[static_cast<std::size_t>(id)] = kNpos;
  freeSlot(s);
  if (emitFired_) observer_->onEvent(obs::Event{now_, obs::SimEventFired{id}});
  fn();
}

void Simulator::stepReference() {
  while (!refQueue_.empty()) {
    RefEvent ev = refQueue_.top();
    refQueue_.pop();
    if (refPending_.erase(ev.id) == 0) continue;  // was cancelled; drop lazily
    now_ = ev.time;
    ++processed_;
    if (emitFired_)
      observer_->onEvent(obs::Event{now_, obs::SimEventFired{ev.id}});
    (*ev.callback)();
    return;
  }
}

void Simulator::run() {
  if (reference_) {
    while (!refPending_.empty()) stepReference();
  } else {
    while (!heap_.empty()) stepArena();
  }
}

void Simulator::runUntil(double horizon) {
  if (reference_) {
    while (!refPending_.empty()) {
      // Skim cancelled events off the top so refQueue_.top() is live.
      while (!refQueue_.empty() && refPending_.count(refQueue_.top().id) == 0)
        refQueue_.pop();
      if (refQueue_.empty()) break;
      if (refQueue_.top().time > horizon) {
        now_ = horizon;
        return;
      }
      stepReference();
    }
  } else {
    while (!heap_.empty()) {
      if (slots_[heap_[0]].time > horizon) {
        now_ = horizon;
        return;
      }
      stepArena();
    }
  }
}

}  // namespace mcsim::sim
