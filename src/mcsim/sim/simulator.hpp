// Discrete-event simulation core — the GridSim substitute.
//
// A single-threaded, deterministic event calendar: callbacks scheduled at
// absolute times execute in (time, insertion-order) order, so two events at
// the same timestamp run FIFO.  Determinism is a hard requirement — every
// experiment in the paper is a point comparison between runs, so replaying a
// configuration must reproduce costs bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace mcsim::obs {
class Sink;
}

namespace mcsim::sim {

using Callback = std::function<void()>;
using EventId = std::uint64_t;

/// Sentinel returned by schedule() never equals this.
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.  Starts at 0.
  double now() const { return now_; }

  /// Schedule `cb` at absolute time `time` (>= now(); throws otherwise).
  /// Returns an id usable with cancel().
  EventId schedule(double time, Callback cb);

  /// Schedule `cb` `delay` seconds from now (delay >= 0).
  EventId scheduleAfter(double delay, Callback cb);

  /// Cancel a pending event.  Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, unknown).
  bool cancel(EventId id);

  /// Run until the calendar is empty.
  void run();

  /// Run events with time <= `horizon`; afterwards now() == horizon if any
  /// events remain beyond it, else the time of the last executed event.
  void runUntil(double horizon);

  /// True if any events remain pending (cancelled events may linger
  /// internally but never fire).
  bool hasPending() const { return !pending_.empty(); }

  std::size_t processedEvents() const { return processed_; }

  /// Install a telemetry sink observing the calendar (scheduled / fired /
  /// cancelled events); nullptr disables.  Disabled observation costs one
  /// pointer test per operation.
  void setObserver(obs::Sink* observer) { observer_ = observer; }
  obs::Sink* observer() const { return observer_; }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;  ///< Insertion order; breaks timestamp ties FIFO.
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Pop and execute the earliest event.  Precondition: queue non-empty.
  void step();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> pending_;  ///< Scheduled, not yet fired/cancelled.
  double now_ = 0.0;
  std::uint64_t nextSequence_ = 0;
  EventId nextId_ = 1;
  std::size_t processed_ = 0;
  obs::Sink* observer_ = nullptr;
};

}  // namespace mcsim::sim
