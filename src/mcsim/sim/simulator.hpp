// Discrete-event simulation core — the GridSim substitute.
//
// A single-threaded, deterministic event calendar: callbacks scheduled at
// absolute times execute in (time, insertion-order) order, so two events at
// the same timestamp run FIFO.  Determinism is a hard requirement — every
// experiment in the paper is a point comparison between runs, so replaying a
// configuration must reproduce costs bit-for-bit.
//
// Two calendar implementations live behind one API (selected at
// construction, see SimulatorOptions::calendar):
//
//   * ArenaHeap (default) — event records live in a per-run arena with a
//     freelist, callbacks are stored inline (EventFn small-buffer storage,
//     no per-event heap allocation for captures up to kInlineBytes), and
//     the pending set is an index-tracked binary heap: every slot remembers
//     its heap position, so cancel() removes the event in-place in O(log n)
//     instead of leaving a tombstone.  Event ids stay sequential and map to
//     slots through a flat vector, so telemetry output is identical to the
//     reference calendar.
//   * Reference — the original std::priority_queue + lazy-deletion
//     tombstone-set calendar, kept selectable in-binary so bench/perf_core
//     can measure an honest before/after on identical workloads and tests
//     can diff the two implementations event-for-event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

namespace mcsim::obs {
class Sink;
}

namespace mcsim::sim {

using EventId = std::uint64_t;

/// Sentinel returned by schedule() never equals this.
inline constexpr EventId kInvalidEvent = 0;

/// Move-only type-erased callable with inline small-buffer storage sized for
/// the engine's largest event captures.  Replaces std::function on the
/// schedule hot path: a capture up to kInlineBytes lives inside the event's
/// arena slot instead of in a per-event heap allocation.
class EventFn {
 public:
  /// Inline capture budget.  The engine's fattest lambdas capture
  /// [this, task, file, key, size] ≈ 40 bytes; a std::function<void()> is 32.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    // mcsim-lint: allow(sim-std-function) — compile-time detection of the
    // legacy callable type so empty handlers convert to empty EventFns.
    if constexpr (std::is_same_v<D, std::function<void()>>) {
      if (!f) return;  // wrap an empty std::function as an empty EventFn
    }
    constexpr bool fitsInline = sizeof(D) <= kInlineBytes &&
                                alignof(D) <= alignof(std::max_align_t) &&
                                std::is_nothrow_move_constructible_v<D>;
    if constexpr (fitsInline) {
      ::new (storage()) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      // mcsim-lint: allow(sim-heap-alloc) — fallback for captures over
      // kInlineBytes; the engine's event lambdas all fit inline.
      ::new (storage()) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage()); }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable from src storage into dst storage and
    /// destroy the src copy.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename D>
  static void inlineInvoke(void* p) {
    (*static_cast<D*>(p))();
  }
  template <typename D>
  static void inlineRelocate(void* src, void* dst) {
    ::new (dst) D(std::move(*static_cast<D*>(src)));
    static_cast<D*>(src)->~D();
  }
  template <typename D>
  static void inlineDestroy(void* p) {
    static_cast<D*>(p)->~D();
  }

  template <typename D>
  static D*& heapPtr(void* p) {
    return *static_cast<D**>(p);
  }
  template <typename D>
  static void heapInvoke(void* p) {
    (*heapPtr<D>(p))();
  }
  template <typename D>
  static void heapRelocate(void* src, void* dst) {
    ::new (dst) D*(heapPtr<D>(src));
  }
  template <typename D>
  static void heapDestroy(void* p) {
    delete heapPtr<D>(p);
  }

  template <typename D>
  static constexpr Ops kInlineOps{&inlineInvoke<D>, &inlineRelocate<D>,
                                  &inlineDestroy<D>};
  template <typename D>
  static constexpr Ops kHeapOps{&heapInvoke<D>, &heapRelocate<D>,
                                &heapDestroy<D>};

  void* storage() noexcept { return buf_; }

  void moveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(other.storage(), storage());
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

using Callback = EventFn;

/// Which event-calendar implementation a Simulator uses.  Both produce
/// byte-identical event streams; Reference exists for benchmarking and
/// differential testing only.
enum class CalendarImpl {
  ArenaHeap,  ///< Arena/freelist slots + index-tracked binary heap (default).
  Reference,  ///< Legacy std::priority_queue + lazy-deletion tombstones.
};

/// Designated-initializer construction options (PR 3 config-struct style).
struct SimulatorOptions {
  CalendarImpl calendar = CalendarImpl::ArenaHeap;
  /// Pre-reserve arena capacity for this many concurrently pending events.
  std::size_t reserveEvents = 0;
};

class Simulator {
 public:
  Simulator() : Simulator(SimulatorOptions{}) {}
  explicit Simulator(const SimulatorOptions& options);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.  Starts at 0.
  double now() const { return now_; }

  /// Schedule `cb` at absolute time `time` (>= now(); throws otherwise).
  /// Returns an id usable with cancel().
  EventId schedule(double time, Callback cb);

  /// Schedule `cb` `delay` seconds from now (delay >= 0).
  EventId scheduleAfter(double delay, Callback cb);

  /// Cancel a pending event.  Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, unknown).
  /// O(log n) in-place removal under the ArenaHeap calendar.
  bool cancel(EventId id);

  /// Run until the calendar is empty.
  void run();

  /// Run events with time <= `horizon`; afterwards now() == horizon if any
  /// events remain beyond it, else the time of the last executed event.
  void runUntil(double horizon);

  /// True if any events remain pending.
  bool hasPending() const {
    return reference_ ? !refPending_.empty() : !heap_.empty();
  }

  std::size_t processedEvents() const { return processed_; }

  /// The calendar implementation selected at construction.
  CalendarImpl calendar() const {
    return reference_ ? CalendarImpl::Reference : CalendarImpl::ArenaHeap;
  }

  /// Install a telemetry sink observing the calendar (scheduled / fired /
  /// cancelled events); nullptr disables.  Disabled observation costs one
  /// pointer test per operation.
  /// Install the event observer.  The accepts() verdict for the calendar
  /// kinds (SimEventScheduled/Fired/Cancelled — the hottest emissions in the
  /// simulator) is cached here; accepts() is contractually stable for a run.
  void setObserver(obs::Sink* observer);
  obs::Sink* observer() const { return observer_; }

 private:
  /// One arena slot.  Free slots chain through `heapPos` (freelist).
  struct Slot {
    double time = 0.0;
    std::uint64_t sequence = 0;  ///< Insertion order; breaks time ties FIFO.
    EventId id = kInvalidEvent;
    std::uint32_t heapPos = 0;
    EventFn callback;
  };
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  // -- ArenaHeap calendar ----------------------------------------------------
  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t slot);
  bool before(std::uint32_t a, std::uint32_t b) const;
  std::size_t siftUp(std::size_t pos);
  void siftDown(std::size_t pos);
  void removeFromHeap(std::size_t pos);
  void stepArena();

  // -- Reference calendar ----------------------------------------------------
  struct RefEvent {
    double time;
    std::uint64_t sequence;
    EventId id;
    std::shared_ptr<EventFn> callback;
  };
  struct RefLater {
    bool operator()(const RefEvent& a, const RefEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };
  void stepReference();

  bool reference_ = false;
  std::vector<Slot> slots_;            ///< Arena; index = slot handle.
  std::vector<std::uint32_t> heap_;    ///< Binary heap of slot handles.
  std::uint32_t freeHead_ = kNpos;     ///< Freelist head into slots_.
  std::vector<std::uint32_t> idSlot_;  ///< EventId -> slot, kNpos once done.

  std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> refQueue_;
  std::unordered_set<EventId> refPending_;

  double now_ = 0.0;
  std::uint64_t nextSequence_ = 0;
  EventId nextId_ = 1;
  std::size_t processed_ = 0;
  obs::Sink* observer_ = nullptr;
  bool emitScheduled_ = false;  ///< Cached observer_->accepts(SimEventScheduled).
  bool emitCancelled_ = false;  ///< Cached observer_->accepts(SimEventCancelled).
  bool emitFired_ = false;      ///< Cached observer_->accepts(SimEventFired).
};

}  // namespace mcsim::sim
