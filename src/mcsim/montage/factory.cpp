#include "mcsim/montage/factory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mcsim::montage {
namespace {

std::string indexed(const std::string& stem, int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%05d", i);
  return stem + "_" + buf;
}

}  // namespace

std::vector<std::pair<int, int>> overlapPairs(int cols, int rows, int count) {
  std::vector<std::pair<int, int>> pairs;
  auto at = [cols](int c, int r) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c + 1 < cols; ++c)
      pairs.emplace_back(at(c, r), at(c + 1, r));
  for (int r = 0; r + 1 < rows; ++r)
    for (int c = 0; c < cols; ++c)
      pairs.emplace_back(at(c, r), at(c, r + 1));
  for (int r = 0; r + 1 < rows; ++r)
    for (int c = 0; c + 1 < cols; ++c)
      pairs.emplace_back(at(c, r), at(c + 1, r + 1));
  for (int r = 0; r + 1 < rows; ++r)
    for (int c = 1; c < cols; ++c)
      pairs.emplace_back(at(c, r), at(c - 1, r + 1));
  if (static_cast<int>(pairs.size()) < count)
    throw std::invalid_argument(
        "montage: grid too small for requested diffCount (" +
        std::to_string(pairs.size()) + " adjacencies < " +
        std::to_string(count) + ")");
  pairs.resize(static_cast<std::size_t>(count));
  return pairs;
}

MontageParams montage1DegreeParams() {
  MontageParams p;
  p.name = "montage-1deg";
  p.degrees = 1.0;
  p.gridCols = 9;
  p.gridRows = 5;                       // 45 images
  p.diffCount = 107;                    // 2*45 + 107 + 6 = 203 tasks
  p.mosaicBytes = Bytes::fromMB(173.46);
  p.targetCpuSeconds = 5.6 * kSecondsPerHour;   // $0.56 at $0.1/CPU-h
  p.targetCcr = 0.053;
  return p;
}

MontageParams montage2DegreeParams() {
  MontageParams p;
  p.name = "montage-2deg";
  p.degrees = 2.0;
  p.gridCols = 15;
  p.gridRows = 11;                      // 165 images
  p.diffCount = 395;                    // 2*165 + 395 + 6 = 731 tasks
  p.mosaicBytes = Bytes::fromMB(557.9);
  p.targetCpuSeconds = 20.3 * kSecondsPerHour;  // $2.03
  p.targetCcr = 0.053;
  return p;
}

MontageParams montage4DegreeParams() {
  MontageParams p;
  p.name = "montage-4deg";
  p.degrees = 4.0;
  p.gridCols = 28;
  p.gridRows = 25;                      // 700 images
  p.diffCount = 1621;                   // 2*700 + 1621 + 6 = 3027 tasks
  p.mosaicBytes = Bytes::fromGB(2.229);
  p.targetCpuSeconds = 84.0 * kSecondsPerHour;  // $8.40
  p.targetCcr = 0.045;
  return p;
}

MontageParams paramsForDegrees(double degrees) {
  if (!(degrees > 0.0))
    throw std::invalid_argument("montage: degrees must be positive");
  // Catalog lookup keyed on the exact user-supplied survey sizes; anything
  // else falls through to interpolation below.
  // mcsim-lint: allow(float-equality)
  if (degrees == 1.0) return montage1DegreeParams();
  if (degrees == 2.0) return montage2DegreeParams();  // mcsim-lint: allow(float-equality)
  if (degrees == 4.0) return montage4DegreeParams();  // mcsim-lint: allow(float-equality)

  MontageParams p;
  p.name = "montage-" + std::to_string(degrees) + "deg";
  p.degrees = degrees;
  // Image count grows with mosaic area (presets: ~44 images per square
  // degree); keep the grid near the presets' column/row aspect.
  const int images = std::max(4, static_cast<int>(std::lround(43.75 * degrees * degrees)));
  int cols = std::max(2, static_cast<int>(std::lround(std::sqrt(images * 1.4))));
  int rows = std::max(2, (images + cols - 1) / cols);
  p.gridCols = cols;
  p.gridRows = rows;
  const int n = p.imageCount();
  // Presets average ~2.35 diffs per image; cap by the grid's adjacency
  // supply (~4 per interior image).
  const int maxDiffs = (cols - 1) * rows + cols * (rows - 1) + 2 * (cols - 1) * (rows - 1);
  p.diffCount = std::min(maxDiffs, static_cast<int>(std::lround(2.35 * n)));
  // CPU time scales with the number of images (presets: ~448 s per image).
  p.targetCpuSeconds = 448.0 * n;
  // Mosaic bytes scale with area (preset: 173.46 MB per square degree).
  p.mosaicBytes = Bytes::fromMB(173.46 * degrees * degrees);
  // CCR drifts down slightly for larger mosaics (0.053 at <=2 deg, 0.045 at
  // 4 deg); interpolate and clamp.
  const double t = std::clamp((degrees - 2.0) / 2.0, 0.0, 1.0);
  p.targetCcr = 0.053 + t * (0.045 - 0.053);
  return p;
}

dag::Workflow buildMontageWorkflow(const MontageParams& p) {
  if (p.gridCols < 2 || p.gridRows < 2)
    throw std::invalid_argument("montage: grid must be at least 2x2");
  if (p.diffCount < 1)
    throw std::invalid_argument("montage: diffCount must be >= 1");
  if (!(p.targetCpuSeconds > 0.0))
    throw std::invalid_argument("montage: targetCpuSeconds must be positive");
  if (!(p.targetCcr > 0.0))
    throw std::invalid_argument("montage: targetCcr must be positive");

  const int n = p.imageCount();
  dag::Workflow wf(p.name);

  // -- files staged in from the archive -------------------------------------
  const dag::FileId header = wf.addFile("region.hdr", p.headerBytes);
  std::vector<dag::FileId> rawImages(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    rawImages[static_cast<std::size_t>(i)] =
        wf.addFile(indexed("2mass", i) + ".fits", p.inputImageBytes);

  // -- level 1: mProject ------------------------------------------------------
  // Each reprojection emits the projected image plus its area (coverage)
  // file; these are the "intermediate image" population whose size the CCR
  // calibration scales.
  std::vector<dag::TaskId> projectTasks(static_cast<std::size_t>(n));
  std::vector<dag::FileId> projImages(static_cast<std::size_t>(n));
  std::vector<dag::FileId> projAreas(static_cast<std::size_t>(n));
  std::vector<dag::FileId> intermediates;  // all CCR-scalable files
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const dag::TaskId t =
        wf.addTask(indexed("mProject", i), typeName(TaskType::mProject),
                   baseRuntimeSeconds(TaskType::mProject));
    wf.addInput(t, rawImages[idx]);
    wf.addInput(t, header);
    projImages[idx] = wf.addFile(indexed("proj", i) + ".fits",
                                 p.baseIntermediateBytes);
    projAreas[idx] = wf.addFile(indexed("proj", i) + "_area.fits",
                                p.baseIntermediateBytes);
    wf.addOutput(t, projImages[idx]);
    wf.addOutput(t, projAreas[idx]);
    intermediates.push_back(projImages[idx]);
    intermediates.push_back(projAreas[idx]);
    projectTasks[idx] = t;
  }

  // -- level 2: mDiffFit over overlapping pairs -------------------------------
  const auto pairs = overlapPairs(p.gridCols, p.gridRows, p.diffCount);
  std::vector<dag::FileId> fitFiles;
  fitFiles.reserve(pairs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const dag::TaskId t = wf.addTask(indexed("mDiffFit", static_cast<int>(k)),
                                     typeName(TaskType::mDiffFit),
                                     baseRuntimeSeconds(TaskType::mDiffFit));
    wf.addInput(t, projImages[static_cast<std::size_t>(pairs[k].first)]);
    wf.addInput(t, projImages[static_cast<std::size_t>(pairs[k].second)]);
    const dag::FileId fit = wf.addFile(
        indexed("fit", static_cast<int>(k)) + ".txt", p.textFileBytes);
    wf.addOutput(t, fit);
    fitFiles.push_back(fit);
  }

  // -- level 3/4: mConcatFit, mBgModel ---------------------------------------
  const dag::TaskId concat =
      wf.addTask("mConcatFit", typeName(TaskType::mConcatFit),
                 baseRuntimeSeconds(TaskType::mConcatFit));
  for (dag::FileId f : fitFiles) wf.addInput(concat, f);
  const dag::FileId fitsTbl = wf.addFile("fits.tbl", p.textFileBytes);
  wf.addOutput(concat, fitsTbl);

  const dag::TaskId bgModel =
      wf.addTask("mBgModel", typeName(TaskType::mBgModel),
                 baseRuntimeSeconds(TaskType::mBgModel));
  wf.addInput(bgModel, fitsTbl);
  const dag::FileId corrections = wf.addFile("corrections.tbl", p.textFileBytes);
  wf.addOutput(bgModel, corrections);

  // -- level 5: mBackground ----------------------------------------------------
  std::vector<dag::FileId> corrImages(static_cast<std::size_t>(n));
  std::vector<dag::FileId> corrAreas(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const dag::TaskId t =
        wf.addTask(indexed("mBackground", i), typeName(TaskType::mBackground),
                   baseRuntimeSeconds(TaskType::mBackground));
    wf.addInput(t, projImages[idx]);
    wf.addInput(t, projAreas[idx]);
    wf.addInput(t, corrections);
    corrImages[idx] = wf.addFile(indexed("corr", i) + ".fits",
                                 p.baseIntermediateBytes);
    corrAreas[idx] = wf.addFile(indexed("corr", i) + "_area.fits",
                                p.baseIntermediateBytes);
    wf.addOutput(t, corrImages[idx]);
    wf.addOutput(t, corrAreas[idx]);
    intermediates.push_back(corrImages[idx]);
    intermediates.push_back(corrAreas[idx]);
  }

  // -- level 6/7: mImgtbl, mAdd ------------------------------------------------
  const dag::TaskId imgtbl = wf.addTask("mImgtbl", typeName(TaskType::mImgtbl),
                                        baseRuntimeSeconds(TaskType::mImgtbl));
  for (int i = 0; i < n; ++i)
    wf.addInput(imgtbl, corrImages[static_cast<std::size_t>(i)]);
  const dag::FileId imagesTbl = wf.addFile("cimages.tbl", p.textFileBytes);
  wf.addOutput(imgtbl, imagesTbl);

  const dag::TaskId add = wf.addTask("mAdd", typeName(TaskType::mAdd),
                                     baseRuntimeSeconds(TaskType::mAdd));
  for (int i = 0; i < n; ++i) {
    wf.addInput(add, corrImages[static_cast<std::size_t>(i)]);
    wf.addInput(add, corrAreas[static_cast<std::size_t>(i)]);
  }
  wf.addInput(add, imagesTbl);
  wf.addInput(add, header);
  const dag::FileId mosaic = wf.addFile("mosaic.fits", p.mosaicBytes);
  wf.addOutput(add, mosaic);
  // The full-resolution mosaic is the user's product even though mShrink
  // also reads it.
  wf.markExplicitOutput(mosaic);

  // -- level 8/9: mShrink, mJPEG ----------------------------------------------
  const dag::TaskId shrink = wf.addTask("mShrink", typeName(TaskType::mShrink),
                                        baseRuntimeSeconds(TaskType::mShrink));
  wf.addInput(shrink, mosaic);
  const dag::FileId shrunk =
      wf.addFile("mosaic_small.fits", p.mosaicBytes * p.shrinkFactor);
  wf.addOutput(shrink, shrunk);

  const dag::TaskId jpeg = wf.addTask("mJPEG", typeName(TaskType::mJPEG),
                                      baseRuntimeSeconds(TaskType::mJPEG));
  wf.addInput(jpeg, shrunk);
  const dag::FileId preview = wf.addFile("mosaic.jpg", p.jpegBytes);
  wf.addOutput(jpeg, preview);

  wf.finalize();

  if (static_cast<int>(wf.taskCount()) != p.taskCount())
    throw std::logic_error("montage: task count mismatch (builder bug)");

  // -- calibration: runtimes ---------------------------------------------------
  // (Runtime scaling must precede CCR scaling: CCR's denominator is Σ r.)
  wf.scaleAllRuntimes(p.targetCpuSeconds / wf.totalRuntimeSeconds());

  // -- calibration: CCR ---------------------------------------------------------
  // Fixed bytes (inputs, products, metadata) stay put; intermediate images
  // are scaled so total bytes = targetCcr * B * Σ r.
  {
    const double targetTotalBytes =
        p.targetCcr * p.referenceBandwidthBytesPerSec * p.targetCpuSeconds;
    double intermediateBytes = 0.0;
    for (dag::FileId f : intermediates) intermediateBytes += wf.file(f).size.value();
    const double fixedBytes = wf.totalFileBytes().value() - intermediateBytes;
    const double needed = targetTotalBytes - fixedBytes;
    if (needed <= 0.0)
      throw std::invalid_argument(
          "montage: targetCcr too small for the fixed file population");
    const double scale = needed / intermediateBytes;
    for (dag::FileId f : intermediates)
      wf.setFileSize(f, wf.file(f).size * scale);
  }

  return wf;
}

dag::Workflow buildMontageWorkflow(double degrees) {
  return buildMontageWorkflow(paramsForDegrees(degrees));
}

}  // namespace mcsim::montage
