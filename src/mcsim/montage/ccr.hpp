// The paper's CCR knob (§6, "Impact of the Communication to Computation
// Ratio"): "let CCRd be the desired CCR and CCRr the real CCR of the
// workflow.  Then we multiply each file size by CCRd/CCRr to get the desired
// CCR."
#pragma once

#include "mcsim/dag/workflow.hpp"

namespace mcsim::montage {

/// Rescale every file size in place so wf.ccr(bandwidth) == targetCcr.
/// Returns the applied factor CCRd/CCRr.
double rescaleToCcr(dag::Workflow& wf, double targetCcr,
                    double bandwidthBytesPerSecond);

/// Non-mutating convenience: a copy of `wf` rescaled to `targetCcr`.
dag::Workflow withCcr(const dag::Workflow& wf, double targetCcr,
                      double bandwidthBytesPerSecond);

}  // namespace mcsim::montage
