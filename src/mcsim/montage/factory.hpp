// Montage workflow generator, calibrated against the paper's published
// aggregates.
//
// The paper used real mDAG-generated workflows with file sizes and runtimes
// "taken from real runs" (§5); those artifacts are not published, so this
// factory generates workflows with the documented structure and *solves* the
// free parameters against every aggregate the paper does publish:
//
//   * exact task counts: 203 / 731 / 3,027 (1/2/4 degrees),
//   * total CPU cost at $0.1/CPU-hour: $0.56 / $2.03 / $8.40, i.e. total
//     runtimes of 5.6 h / 20.3 h / 84 h (a uniform runtime scale),
//   * mosaic sizes: 173.46 MB / 557.9 MB / 2.229 GB (fixed),
//   * CCR at 10 Mbps: 0.053 / 0.053 / 0.045 (a uniform scale over the
//     intermediate image files, with inputs and products held fixed).
//
// See DESIGN.md's substitution table for why matching these aggregates
// preserves every result in the evaluation.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/montage/catalog.hpp"

namespace mcsim::montage {

/// The user↔cloud bandwidth the paper fixes for CCR purposes: 10 Mbps.
inline constexpr double kReferenceBandwidthBytesPerSec = 10e6 / 8.0;

/// Everything that determines a generated Montage workflow.  Obtain from a
/// preset (below) and tweak, or fill in manually for custom studies.
struct MontageParams {
  std::string name = "montage";
  double degrees = 1.0;  ///< Mosaic edge length in degrees.

  // -- structure -------------------------------------------------------------
  int gridCols = 9;    ///< Input images arranged on a grid...
  int gridRows = 5;    ///< ...gridCols x gridRows = mProject count.
  int diffCount = 107; ///< mDiffFit tasks (overlapping image pairs).

  // -- fixed file sizes ------------------------------------------------------
  /// One 2MASS plate.  5 MB makes the 2-degree stage-in cost ~= the paper's
  /// $0.10 pre-staged-vs-on-demand gap (Question 2b).
  Bytes inputImageBytes = Bytes::fromMB(5.0);
  Bytes headerBytes = Bytes::fromKB(50.0);     ///< Template header (all
                                               ///< level-1 tasks read it).
  Bytes textFileBytes = Bytes::fromKB(10.0);   ///< Fit/tbl metadata files.
  Bytes mosaicBytes = Bytes::fromMB(173.46);   ///< Final mosaic (paper §6 Q3).
  Bytes jpegBytes = Bytes::fromMB(2.0);
  /// mShrink reduces the mosaic by this linear factor for the preview.
  double shrinkFactor = 0.01;

  // -- calibration targets ---------------------------------------------------
  /// Pre-calibration size of each intermediate image (projected /
  /// background-corrected FITS + area files); rescaled to meet targetCcr.
  Bytes baseIntermediateBytes = Bytes::fromMB(8.0);
  double targetCpuSeconds = 5.6 * kSecondsPerHour;
  double targetCcr = 0.053;
  double referenceBandwidthBytesPerSec = kReferenceBandwidthBytesPerSec;

  int imageCount() const { return gridCols * gridRows; }
  /// Total tasks this parameterization yields: 2n + m + 6.
  int taskCount() const { return 2 * imageCount() + diffCount + 6; }
};

/// Presets matching the paper's three workflows exactly.
MontageParams montage1DegreeParams();
MontageParams montage2DegreeParams();
MontageParams montage4DegreeParams();

/// Parameterization for an arbitrary mosaic size, extrapolating the paper's
/// presets (used for the 6-degree plates mentioned in Question 3).
MontageParams paramsForDegrees(double degrees);

/// Build and finalize the workflow.  Postconditions (tested):
///   taskCount() tasks; Σ runtimes == targetCpuSeconds;
///   ccr(referenceBandwidth) == targetCcr; the mosaic file has mosaicBytes.
/// Throws std::invalid_argument for inconsistent parameters (e.g. a CCR
/// target too small to cover the fixed files).
dag::Workflow buildMontageWorkflow(const MontageParams& params);

/// Convenience: preset lookup by degrees (1, 2 or 4), else generic.
dag::Workflow buildMontageWorkflow(double degrees);

/// Deterministic overlapping-pair enumeration on the image grid: all
/// right-neighbour pairs, then down, then the two diagonals — the order a
/// plane sweep over the sky would discover overlaps.  Throws if the grid
/// cannot supply `count` distinct adjacent pairs.  Shared with the survey
/// campaign generator (workflows/survey), which emits the same per-tile
/// structure through the streaming builder.
std::vector<std::pair<int, int>> overlapPairs(int cols, int rows, int count);

}  // namespace mcsim::montage
