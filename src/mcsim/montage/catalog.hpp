// Montage task-type catalog.
//
// Montage computes a mosaic in stages (paper §2): input images are
// reprojected (mProject), the reprojected images are background-rectified
// (mDiffFit fits each overlapping pair, mConcatFit merges the fits, mBgModel
// solves for corrections, mBackground applies them) and finally coadded
// (mImgtbl builds the image table, mAdd coadds, mShrink + mJPEG produce the
// preview).  All tasks at one level invoke the same routine on different
// data.  Base runtimes are relative weights on the reference CPU; the
// factory rescales them uniformly so the whole workflow hits the paper's
// aggregate CPU hours, so only their ratios matter (they set the critical
// path length relative to total work, i.e. how well the workflow speeds up).
#pragma once

#include <array>
#include <string>

namespace mcsim::montage {

enum class TaskType {
  mProject,
  mDiffFit,
  mConcatFit,
  mBgModel,
  mBackground,
  mImgtbl,
  mAdd,
  mShrink,
  mJPEG,
};

inline constexpr std::array<TaskType, 9> kAllTaskTypes = {
    TaskType::mProject, TaskType::mDiffFit,    TaskType::mConcatFit,
    TaskType::mBgModel, TaskType::mBackground, TaskType::mImgtbl,
    TaskType::mAdd,     TaskType::mShrink,     TaskType::mJPEG,
};

/// Routine name as it appears in DAX files and reports.
const std::string& typeName(TaskType type);

/// Parse a routine name; throws std::invalid_argument for unknown names.
TaskType typeFromName(const std::string& name);

/// Base (uncalibrated) runtime weight in reference-CPU seconds.
double baseRuntimeSeconds(TaskType type);

/// Workflow level at which this routine runs (1-based, paper Fig. 1).
int levelOf(TaskType type);

}  // namespace mcsim::montage
