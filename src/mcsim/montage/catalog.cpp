#include "mcsim/montage/catalog.hpp"

#include <stdexcept>

namespace mcsim::montage {
namespace {

struct TypeInfo {
  TaskType type;
  const char* name;
  double baseRuntime;
  int level;
};

// Base runtimes are relative weights chosen so that, after calibration to
// the paper's total CPU hours, the 9-routine critical path is short relative
// to total work — reproducing the paper's observed speedups (1-degree: 5.5 h
// serial vs 18 min on 128 processors).  mProject dominates, as in real
// Montage runs of the 2008 era.
constexpr TypeInfo kTypes[] = {
    {TaskType::mProject, "mProject", 300.0, 1},
    {TaskType::mDiffFit, "mDiffFit", 10.0, 2},
    {TaskType::mConcatFit, "mConcatFit", 15.0, 3},
    {TaskType::mBgModel, "mBgModel", 60.0, 4},
    {TaskType::mBackground, "mBackground", 20.0, 5},
    {TaskType::mImgtbl, "mImgtbl", 15.0, 6},
    {TaskType::mAdd, "mAdd", 120.0, 7},
    {TaskType::mShrink, "mShrink", 30.0, 8},
    {TaskType::mJPEG, "mJPEG", 15.0, 9},
};

const TypeInfo& info(TaskType type) {
  for (const TypeInfo& t : kTypes)
    if (t.type == type) return t;
  throw std::logic_error("montage: unknown task type");
}

}  // namespace

const std::string& typeName(TaskType type) {
  static const std::string names[] = {
      "mProject", "mDiffFit", "mConcatFit", "mBgModel", "mBackground",
      "mImgtbl",  "mAdd",     "mShrink",    "mJPEG"};
  return names[static_cast<int>(type)];
}

TaskType typeFromName(const std::string& name) {
  for (const TypeInfo& t : kTypes)
    if (name == t.name) return t.type;
  throw std::invalid_argument("montage: unknown routine name '" + name + "'");
}

double baseRuntimeSeconds(TaskType type) { return info(type).baseRuntime; }

int levelOf(TaskType type) { return info(type).level; }

}  // namespace mcsim::montage
