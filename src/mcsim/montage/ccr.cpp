#include "mcsim/montage/ccr.hpp"

#include <stdexcept>

namespace mcsim::montage {

double rescaleToCcr(dag::Workflow& wf, double targetCcr,
                    double bandwidthBytesPerSecond) {
  if (!(targetCcr > 0.0))
    throw std::invalid_argument("rescaleToCcr: target must be positive");
  const double current = wf.ccr(bandwidthBytesPerSecond);
  const double factor = targetCcr / current;
  wf.scaleAllFileSizes(factor);
  return factor;
}

dag::Workflow withCcr(const dag::Workflow& wf, double targetCcr,
                      double bandwidthBytesPerSecond) {
  dag::Workflow copy = wf;
  rescaleToCcr(copy, targetCcr, bandwidthBytesPerSecond);
  return copy;
}

}  // namespace mcsim::montage
