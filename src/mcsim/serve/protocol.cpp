#include "mcsim/serve/protocol.hpp"

#include <stdexcept>
#include <utility>

#include "mcsim/dag/dax.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::serve {
namespace {

engine::DataMode parseDataMode(const std::string& name) {
  if (name == "remote-io" || name == "remote_io")
    return engine::DataMode::RemoteIO;
  if (name == "regular") return engine::DataMode::Regular;
  if (name == "cleanup" || name == "dynamic-cleanup" ||
      name == "dynamic_cleanup")
    return engine::DataMode::DynamicCleanup;
  throw std::runtime_error("serve: unknown mode '" + name +
                           "' (want remote-io|regular|cleanup)");
}

std::uint64_t asUint(const json::JsonValue& v, const char* what) {
  const double d = v.asNumber();
  if (d < 0) throw std::runtime_error(std::string("serve: ") + what +
                                      " must be >= 0");
  return static_cast<std::uint64_t>(d);
}

}  // namespace

dag::Workflow loadWorkflowSpec(const std::string& spec) {
  if (spec.rfind("montage:", 0) == 0)
    return montage::buildMontageWorkflow(std::stod(spec.substr(8)));
  if (spec == "cybershake") return workflows::buildCyberShake();
  if (spec == "epigenomics") return workflows::buildEpigenomics();
  if (spec == "inspiral") return workflows::buildInspiral();
  if (spec == "sipht") return workflows::buildSipht();
  return dag::readDaxFile(spec);
}

SubmitRequest parseSubmitRequest(const json::JsonValue& request) {
  if (!request.isObject())
    throw std::runtime_error("serve: submit 'request' must be an object");
  if (!request.has("workflow") || !request.at("workflow").isString())
    throw std::runtime_error("serve: submit needs a 'workflow' spec string");

  SubmitRequest out;
  out.workflows.push_back(std::make_shared<const dag::Workflow>(
      loadWorkflowSpec(request.at("workflow").asString())));
  const dag::Workflow& wf = *out.workflows.back();

  if (!request.has("scenarios") || !request.at("scenarios").isArray() ||
      request.at("scenarios").asArray().empty())
    throw std::runtime_error(
        "serve: submit needs a non-empty 'scenarios' array");

  for (const json::JsonValue& s : request.at("scenarios").asArray()) {
    if (!s.isObject())
      throw std::runtime_error("serve: each scenario must be an object");
    runner::ScenarioSpec spec;
    spec.workflow = &wf;
    if (s.has("mode")) spec.config.mode = parseDataMode(s.at("mode").asString());
    if (s.has("processors")) {
      const double p = s.at("processors").asNumber();
      if (p < 1) throw std::runtime_error("serve: processors must be >= 1");
      spec.config.processors = static_cast<int>(p);
    }
    if (s.has("bandwidth_mbps"))
      spec.config.linkBandwidthBytesPerSec =
          s.at("bandwidth_mbps").asNumber() * 1e6 / 8.0;
    if (s.has("mtbf_seconds"))
      spec.config.faults.processor.mtbfSeconds =
          s.at("mtbf_seconds").asNumber();
    if (s.has("fault_seed"))
      spec.config.faults.seed = asUint(s.at("fault_seed"), "fault_seed");
    if (s.has("label")) spec.label = s.at("label").asString();
    out.scenarios.push_back(std::move(spec));
  }

  if (request.has("base_seed"))
    out.baseSeed = asUint(request.at("base_seed"), "base_seed");
  if (request.has("label")) out.label = request.at("label").asString();
  if (request.has("events")) out.events = request.at("events").asBool();
  return out;
}

json::JsonValue scenarioResultToJson(const runner::ScenarioResult& scenario,
                                     const cloud::Pricing& pricing) {
  const engine::ExecutionResult& r = scenario.result;
  const cloud::CostBreakdown cost =
      engine::computeCost(r, pricing, cloud::CpuBillingMode::Usage);

  json::JsonObject cost_obj;
  cost_obj["cpu_usd"] = cost.cpu.value();
  cost_obj["storage_usd"] = cost.storage.value();
  cost_obj["transfer_in_usd"] = cost.transferIn.value();
  cost_obj["transfer_out_usd"] = cost.transferOut.value();
  cost_obj["total_usd"] = cost.total().value();

  json::JsonObject o;
  o["index"] = scenario.index;
  o["label"] = scenario.label;
  o["from_cache"] = scenario.fromCache;
  o["mode"] = std::string(engine::dataModeName(r.mode));
  o["processors"] = r.processors;
  o["makespan_seconds"] = r.makespanSeconds;
  o["cpu_busy_seconds"] = r.cpuBusySeconds;
  o["bytes_in"] = r.bytesIn.value();
  o["bytes_out"] = r.bytesOut.value();
  o["storage_byte_seconds"] = r.storageByteSeconds;
  o["peak_storage_bytes"] = r.peakStorageBytes.value();
  o["tasks_executed"] = r.tasksExecuted;
  o["task_retries"] = r.taskRetries;
  o["tasks_failed"] = r.tasksFailed;
  o["completed"] = r.completed();
  o["cost"] = std::move(cost_obj);
  return json::JsonValue(std::move(o));
}

json::JsonValue scenarioResultsToJson(
    const std::vector<runner::ScenarioResult>& results,
    const cloud::Pricing& pricing) {
  json::JsonArray arr;
  arr.reserve(results.size());
  for (const runner::ScenarioResult& r : results)
    arr.push_back(scenarioResultToJson(r, pricing));
  return json::JsonValue(std::move(arr));
}

}  // namespace mcsim::serve
