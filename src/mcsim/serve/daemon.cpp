#include "mcsim/serve/daemon.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "mcsim/serve/protocol.hpp"
#include "mcsim/util/json.hpp"

namespace mcsim::serve {
namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " +
                           std::strerror(errno));
}

/// write() the whole buffer, retrying on EINTR and short writes.  Returns
/// false when the peer is gone (EPIPE & friends) — the caller just drops the
/// connection.
bool writeAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool writeAll(int fd, const std::string& s) {
  return writeAll(fd, s.data(), s.size());
}

}  // namespace

ServeDaemon::ServeDaemon(DaemonOptions options)
    : options_(std::move(options)), service_(options_.service) {
  const std::string& path = options_.socketPath;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) throwErrno("socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int savedErrno = errno;
    ::close(listenFd_);
    listenFd_ = -1;
    errno = savedErrno;
    throwErrno("bind " + path);
  }
  if (::listen(listenFd_, 64) != 0) {
    const int savedErrno = errno;
    ::close(listenFd_);
    listenFd_ = -1;
    errno = savedErrno;
    throwErrno("listen " + path);
  }
  if (::pipe(wakePipe_) != 0) {
    const int savedErrno = errno;
    ::close(listenFd_);
    listenFd_ = -1;
    errno = savedErrno;
    throwErrno("pipe");
  }
}

ServeDaemon::~ServeDaemon() {
  stop();
  wait();
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
  ::unlink(options_.socketPath.c_str());
}

void ServeDaemon::start() {
  if (started_) return;
  started_ = true;
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void ServeDaemon::requestStop() {
  // Only the two calls below — both async-signal-safe — so this can be a
  // SIGTERM handler body.
  stopRequested_.store(true);
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &byte, 1);
}

void ServeDaemon::stop() {
  requestStop();
  const std::lock_guard<std::mutex> lock(connectionsMutex_);
  for (const auto& conn : connections_)
    if (!conn->done.load()) ::shutdown(conn->fd, SHUT_RDWR);
}

void ServeDaemon::wait() {
  if (acceptThread_.joinable()) acceptThread_.join();
  // The accept loop has exited, so no new connections can appear.  Shut
  // down any connection still blocked in read() so its thread can observe
  // the stop flag and exit.
  stop();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connectionsMutex_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections)
    if (conn->thread.joinable()) conn->thread.join();
}

void ServeDaemon::reapFinishedConnections() {
  const std::lock_guard<std::mutex> lock(connectionsMutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServeDaemon::acceptLoop() {
  while (!stopRequested_.load()) {
    pollfd fds[2];
    fds[0] = {listenFd_, POLLIN, 0};
    fds[1] = {wakePipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopRequested_.load()) break;
    if (!(fds[0].revents & POLLIN)) continue;

    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    reapFinishedConnections();
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(connectionsMutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      serveConnection(raw->fd);
      // close() under the same mutex stop() holds while calling shutdown(),
      // so a stopping daemon never shuts down a recycled descriptor.
      const std::lock_guard<std::mutex> lock(connectionsMutex_);
      ::close(raw->fd);
      raw->done.store(true);
    });
  }
}

void ServeDaemon::handleHttp(int fd, const std::string& firstLine) {
  // Minimal HTTP/1.0 so `curl --unix-socket mcsim.sock http://x/metrics`
  // works.  The request line was already consumed; drain the headers only
  // far enough to be polite — we answer and close regardless.
  std::string body;
  std::string status = "200 OK";
  std::string contentType = "text/plain; version=0.0.4; charset=utf-8";
  if (firstLine.rfind("GET /metrics", 0) == 0) {
    body = service_.metricsText();
  } else {
    status = "404 Not Found";
    contentType = "text/plain";
    body = "only /metrics lives here\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + contentType +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  writeAll(fd, response);
}

void ServeDaemon::serveConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool sniffed = false;
  while (!stopRequested_.load()) {
    // Process complete lines already buffered before reading more.
    std::size_t eol;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!sniffed) {
        sniffed = true;
        if (line.rfind("GET ", 0) == 0 || line.rfind("HEAD ", 0) == 0) {
          handleHttp(fd, line);
          return;  // HTTP is one-shot: answer and close
        }
      }
      if (line.empty()) continue;

      json::JsonValue request;
      bool parsed = true;
      try {
        request = json::parseJson(line);
      } catch (const std::exception& e) {
        parsed = false;
        json::JsonObject o;
        o["ok"] = false;
        o["error"] = std::string("parse error: ") + e.what();
        if (!writeAll(fd, json::dumpJson(json::JsonValue(std::move(o))) + "\n"))
          return;
      }
      if (!parsed) continue;

      const bool isShutdown = request.isObject() && request.has("verb") &&
                              request.at("verb").isString() &&
                              request.at("verb").asString() == "shutdown";
      const json::JsonValue response = service_.handle(request);
      if (!writeAll(fd, json::dumpJson(response) + "\n")) return;
      if (isShutdown) {
        requestStop();
        return;
      }
    }

    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mcsim::serve
