// Wire protocol for `mcsim serve`: newline-delimited JSON requests and
// responses over a local stream socket (see DESIGN.md "serve wire
// protocol").
//
// Every request is one JSON object on one line:
//
//   {"verb":"submit","id":7,"request":{"workflow":"montage:4",
//    "scenarios":[{"mode":"regular","processors":8}],"base_seed":0,
//    "label":"demo","events":false}}
//   {"verb":"status","job":1}
//   {"verb":"result","job":1}        <- blocks until the job is terminal
//   {"verb":"cancel","job":1}
//   {"verb":"metrics"}               <- Prometheus text, JSON-wrapped
//   {"verb":"ping"}
//   {"verb":"shutdown"}
//
// and every response is one JSON object on one line: {"ok":true,...} with
// the request's "id" echoed when present, or {"ok":false,"error":"..."}.
// The daemon additionally answers a literal HTTP "GET /metrics" on a fresh
// connection with a text/plain Prometheus exposition, so an off-the-shelf
// scraper can mount the socket without speaking the JSON protocol.
//
// This header is the shared half: the request model, the workflow spec
// loader (one syntax for --workflow flags and "workflow" fields), and the
// scenario-result serializer used by the service, the CLI client and the
// golden tests — byte-identical result rendering everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/runner/runner.hpp"
#include "mcsim/util/json.hpp"

namespace mcsim::dag {
class Workflow;
}

namespace mcsim::serve {

/// Load a workflow from the spec syntax shared by the CLI's --workflow flag
/// and the protocol's "workflow" field: "montage:<degrees>", "cybershake",
/// "epigenomics", "inspiral", "sipht", or a path to a DAX file.  Throws
/// std::invalid_argument / std::runtime_error on unknown specs.
dag::Workflow loadWorkflowSpec(const std::string& spec);

/// A parsed submit payload: scenario specs pointing into `workflows`, which
/// must stay alive as long as the specs are in use (hand both to
/// runner::JobRequest — `keepAlive` exists for exactly this).
struct SubmitRequest {
  std::vector<std::shared_ptr<const dag::Workflow>> workflows;
  std::vector<runner::ScenarioSpec> scenarios;
  std::uint64_t baseSeed = 0;
  std::string label;
  /// Return the job's merged JSONL event stream with the result.
  bool events = false;
};

/// Parse the "request" object of a submit verb.  Throws std::runtime_error
/// on malformed payloads (missing workflow, empty scenarios, unknown mode).
SubmitRequest parseSubmitRequest(const json::JsonValue& request);

/// Serialize one scenario result the way the serve protocol reports it:
/// execution metrics plus a usage-billed cost breakdown.  Shared with tests
/// so batch-mode goldens and server responses compare byte-for-byte.
json::JsonValue scenarioResultToJson(const runner::ScenarioResult& scenario,
                                     const cloud::Pricing& pricing);

/// Render a whole result vector (spec order preserved).
json::JsonValue scenarioResultsToJson(
    const std::vector<runner::ScenarioResult>& results,
    const cloud::Pricing& pricing);

}  // namespace mcsim::serve
