// ServeClient: the CLI's (and the tests') connection to a running daemon.
//
// One client holds one AF_UNIX connection and exchanges newline-delimited
// JSON request/response pairs — call() writes one line and blocks for one
// line back, which is exactly the protocol's pacing (the "result" verb can
// legitimately block for the length of a simulation).  fetchMetrics() opens
// its own short-lived connection and speaks the HTTP special case instead,
// mirroring what a Prometheus scraper would do.
#pragma once

#include <string>

#include "mcsim/util/json.hpp"

namespace mcsim::serve {

class ServeClient {
 public:
  /// Connects immediately; throws std::runtime_error if the daemon is not
  /// listening at `socketPath`.
  explicit ServeClient(const std::string& socketPath);
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Send one request, block for the matching response line.  Throws
  /// std::runtime_error if the daemon hangs up mid-exchange.
  json::JsonValue call(const json::JsonValue& request);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Bytes read past the last response line.
};

/// Scrape the daemon's Prometheus exposition over a fresh connection using
/// the HTTP "GET /metrics" special case; returns the response body.
std::string fetchMetrics(const std::string& socketPath);

}  // namespace mcsim::serve
