#include "mcsim/serve/service.hpp"

#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "mcsim/obs/jsonl.hpp"
#include "mcsim/serve/protocol.hpp"
#include "mcsim/version.hpp"

namespace mcsim::serve {
namespace {

json::JsonValue errorResponse(const json::JsonValue& request,
                              const std::string& what,
                              bool retryable = false) {
  json::JsonObject o;
  o["ok"] = false;
  o["error"] = what;
  if (retryable) o["retryable"] = true;
  if (request.has("id")) o["id"] = request.at("id");
  return json::JsonValue(std::move(o));
}

json::JsonObject okResponse(const json::JsonValue& request) {
  json::JsonObject o;
  o["ok"] = true;
  if (request.has("id")) o["id"] = request.at("id");
  return o;
}

}  // namespace

struct SimulationService::Session {
  std::ostringstream os;
  std::optional<obs::JsonlSink> jsonl;  ///< Engaged when events requested.
  obs::FanOutSink fan;                  ///< jsonl (maybe) + shared metrics.
};

SimulationService::SimulationService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      metricsSink_(registry_),
      sharedMetrics_(metricsSink_),
      queue_([this] {
        runner::JobQueueOptions qo;
        qo.workers = options_.workers;
        qo.maxQueuedJobs = options_.maxQueuedJobs;
        qo.cache = &cache_;
        qo.observer = &sharedMetrics_;
        return qo;
      }()) {}

SimulationService::~SimulationService() = default;

runner::JobId SimulationService::parseJobId(const json::JsonValue& request) {
  if (!request.has("job") || !request.at("job").isNumber())
    throw std::runtime_error("serve: verb needs a numeric 'job' field");
  const double id = request.at("job").asNumber();
  if (id < 1) throw std::runtime_error("serve: 'job' must be >= 1");
  return static_cast<runner::JobId>(id);
}

json::JsonValue SimulationService::handle(const json::JsonValue& request) {
  try {
    if (!request.isObject() || !request.has("verb") ||
        !request.at("verb").isString())
      return errorResponse(request, "request needs a string 'verb'");
    const std::string& verb = request.at("verb").asString();
    if (verb == "submit") return handleSubmit(request);
    if (verb == "status") return handleStatus(request);
    if (verb == "result") return handleResult(request);
    if (verb == "cancel") return handleCancel(request);
    if (verb == "metrics") {
      json::JsonObject o = okResponse(request);
      o["metrics"] = metricsText();
      return json::JsonValue(std::move(o));
    }
    if (verb == "ping") {
      json::JsonObject o = okResponse(request);
      o["service"] = std::string("mcsim-serve");
      o["version"] = versionString();
      o["workers"] = options_.workers;
      o["queued_jobs"] = queue_.queuedJobs();
      o["live_jobs"] = queue_.liveJobs();
      return json::JsonValue(std::move(o));
    }
    if (verb == "shutdown") {
      // The transport layer owns the actual stop; acknowledging here keeps
      // the service transport-independent.
      json::JsonObject o = okResponse(request);
      o["shutting_down"] = true;
      return json::JsonValue(std::move(o));
    }
    return errorResponse(request, "unknown verb '" + verb + "'");
  } catch (const std::exception& e) {
    return errorResponse(request, e.what());
  }
}

json::JsonValue SimulationService::handleSubmit(
    const json::JsonValue& request) {
  if (!request.has("request"))
    return errorResponse(request, "submit needs a 'request' object");
  SubmitRequest sub = parseSubmitRequest(request.at("request"));

  auto session = std::make_unique<Session>();
  if (sub.events) session->jsonl.emplace(session->os);
  if (session->jsonl) session->fan.add(&*session->jsonl);
  session->fan.add(&sharedMetrics_);

  runner::JobRequest job;
  job.scenarios = std::move(sub.scenarios);
  job.options.baseSeed = sub.baseSeed;
  job.options.observer = &session->fan;
  job.label = std::move(sub.label);
  job.keepAlive = std::move(sub.workflows);
  const std::size_t total = job.scenarios.size();

  const std::optional<runner::JobId> id = queue_.trySubmit(std::move(job));
  if (!id) return errorResponse(request, "queue full", /*retryable=*/true);
  {
    const std::lock_guard<std::mutex> lock(sessionsMutex_);
    sessions_.emplace(*id, std::move(session));
  }

  json::JsonObject o = okResponse(request);
  o["job"] = *id;
  o["scenarios"] = total;
  o["queued_jobs"] = queue_.queuedJobs();
  return json::JsonValue(std::move(o));
}

json::JsonValue SimulationService::handleStatus(
    const json::JsonValue& request) {
  const runner::JobStatus status = queue_.status(parseJobId(request));
  json::JsonObject o = okResponse(request);
  o["job"] = status.id;
  o["state"] = std::string(runner::jobStateName(status.state));
  o["completed_scenarios"] = status.completedScenarios;
  o["total_scenarios"] = status.totalScenarios;
  o["label"] = status.label;
  return json::JsonValue(std::move(o));
}

json::JsonValue SimulationService::handleResult(
    const json::JsonValue& request) {
  const runner::JobId id = parseJobId(request);
  const runner::JobOutcome outcome = queue_.wait(id);

  std::unique_ptr<Session> session;
  {
    const std::lock_guard<std::mutex> lock(sessionsMutex_);
    if (const auto it = sessions_.find(id); it != sessions_.end()) {
      session = std::move(it->second);
      sessions_.erase(it);
    }
  }

  json::JsonObject o = okResponse(request);
  o["job"] = outcome.id;
  o["state"] = std::string(runner::jobStateName(outcome.state));
  o["label"] = outcome.label;
  o["cached_scenarios"] = outcome.cachedScenarios;
  if (outcome.state == runner::JobState::Completed)
    o["results"] = scenarioResultsToJson(outcome.results, options_.pricing);
  if (!outcome.error.empty()) o["error"] = outcome.error;
  if (session && session->jsonl) o["events_jsonl"] = session->os.str();
  return json::JsonValue(std::move(o));
}

json::JsonValue SimulationService::handleCancel(
    const json::JsonValue& request) {
  const runner::JobId id = parseJobId(request);
  json::JsonObject o = okResponse(request);
  o["job"] = id;
  o["cancelled"] = queue_.cancel(id);
  return json::JsonValue(std::move(o));
}

std::string SimulationService::metricsText() {
  const std::lock_guard<std::mutex> lock(sharedMetrics_.mutex());
  // Event-driven instruments are only as fresh as the last finalized job;
  // refresh the instantaneous ones at scrape time.  Names and help strings
  // mirror the MetricsSink registrations, so these resolve to the same
  // instruments the event path updates.
  const runner::MemoStats stats = cache_.stats();
  registry_
      .gauge("mcsim_cache_entries", "Memo-cache population after the batch")
      .set(static_cast<double>(stats.entries));
  registry_
      .gauge("mcsim_cache_bytes", "Approximate resident memo-cache bytes")
      .set(static_cast<double>(stats.bytes));
  registry_
      .gauge("mcsim_cache_evictions",
             "Cumulative LRU evictions over the cache lifetime")
      .set(static_cast<double>(stats.evictions));
  registry_.gauge("mcsim_jobs_queued", "Jobs waiting for a worker")
      .set(static_cast<double>(queue_.queuedJobs()));
  std::ostringstream os;
  registry_.writePrometheus(os);
  return os.str();
}

}  // namespace mcsim::serve
