#include "mcsim/serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mcsim::serve {
namespace {

int connectUnix(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: socket path too long: " + socketPath);
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int savedErrno = errno;
    ::close(fd);
    throw std::runtime_error("serve: connect " + socketPath + ": " +
                             std::strerror(savedErrno));
  }
  return fd;
}

void writeAll(int fd, const std::string& s) {
  const char* data = s.data();
  std::size_t size = s.size();
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: write: ") +
                               std::strerror(errno));
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

/// Read until `buffer` holds at least one full line; pops and returns it.
std::string readLine(int fd, std::string& buffer) {
  char chunk[4096];
  for (;;) {
    const std::size_t eol = buffer.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      return line;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: read: ") +
                               std::strerror(errno));
    }
    if (n == 0)
      throw std::runtime_error("serve: daemon closed the connection");
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

ServeClient::ServeClient(const std::string& socketPath)
    : fd_(connectUnix(socketPath)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

json::JsonValue ServeClient::call(const json::JsonValue& request) {
  writeAll(fd_, json::dumpJson(request) + "\n");
  return json::parseJson(readLine(fd_, buffer_));
}

std::string fetchMetrics(const std::string& socketPath) {
  const int fd = connectUnix(socketPath);
  std::string body;
  try {
    writeAll(fd, "GET /metrics HTTP/1.0\r\n\r\n");
    std::string response;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("serve: read: ") +
                                 std::strerror(errno));
      }
      if (n == 0) break;  // daemon closes after the body
      response.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos || response.rfind("HTTP/1.0 200", 0) != 0)
      throw std::runtime_error("serve: bad /metrics response");
    body = response.substr(split + 4);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return body;
}

}  // namespace mcsim::serve
