// SimulationService: the transport-independent core of `mcsim serve`.
//
// One service owns the whole server-side stack — a capacity-bounded
// ScenarioMemoCache shared across requests, a persistent runner::JobQueue,
// and a MetricsRegistry fed by a mutex-wrapped MetricsSink that observes
// both the queue's lifecycle events and every job's merged scenario stream.
// handle() maps one protocol request (see protocol.hpp) to one response;
// the daemon, the CLI client loopback tests and the unit tests all talk to
// this same object, so the socket layer stays a dumb byte pump.
//
// Isolation: each submit gets a private telemetry session — its merged
// event stream is captured per job (JSONL, returned with the result when
// the submit asked for "events":true) and never interleaves with another
// request's stream.  The shared metrics sink sits behind obs::MutexSink,
// so the Prometheus exposition aggregates all requests while each job's
// own stream stays byte-deterministic.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "mcsim/cloud/pricing.hpp"
#include "mcsim/cloud/provider.hpp"
#include "mcsim/obs/metrics.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/memo.hpp"
#include "mcsim/util/json.hpp"

namespace mcsim::serve {

struct ServiceOptions {
  /// Worker threads in the persistent pool; 0 runs jobs inline in the
  /// connection thread (useful for tests and tiny deployments).
  int workers = runner::defaultJobs();
  /// Backpressure bound: submits beyond this many queued jobs are refused
  /// with {"ok":false,"error":"queue full","retryable":true}.
  std::size_t maxQueuedJobs = 64;
  /// Server memo cache bounds; the defaults keep a warm working set while
  /// holding a long-lived daemon to a predictable footprint.
  runner::MemoCacheOptions cache{/*maxEntries=*/256,
                                 /*maxBytes=*/256u << 20};
  /// Pricing used for the cost block of every result.
  cloud::Pricing pricing = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
};

class SimulationService {
 public:
  explicit SimulationService(ServiceOptions options = {});
  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;
  ~SimulationService();

  /// Handle one protocol request.  Never throws: malformed or failing
  /// requests come back as {"ok":false,"error":...}.  Thread-safe; the
  /// "result" verb blocks its calling thread until the job is terminal.
  json::JsonValue handle(const json::JsonValue& request);

  /// The Prometheus text exposition, refreshed with the cache's
  /// instantaneous entries/bytes/evictions at scrape time.
  std::string metricsText();

  const ServiceOptions& options() const { return options_; }
  runner::JobQueue& queue() { return queue_; }
  const runner::ScenarioMemoCache& cache() const { return cache_; }

 private:
  /// Per-job telemetry session: the job's private merged stream, captured
  /// as JSONL when the submit asked for events, always teed into the shared
  /// (mutex-guarded) metrics sink.
  struct Session;

  json::JsonValue handleSubmit(const json::JsonValue& request);
  json::JsonValue handleStatus(const json::JsonValue& request);
  json::JsonValue handleResult(const json::JsonValue& request);
  json::JsonValue handleCancel(const json::JsonValue& request);
  static runner::JobId parseJobId(const json::JsonValue& request);

  ServiceOptions options_;
  runner::ScenarioMemoCache cache_;
  obs::MetricsRegistry registry_;
  obs::MetricsSink metricsSink_;
  obs::MutexSink sharedMetrics_;  ///< Serializes all registry writes.

  std::mutex sessionsMutex_;
  std::map<runner::JobId, std::unique_ptr<Session>> sessions_;

  /// Declared last: the queue's destructor joins workers that may still be
  /// merging job streams into the sessions above.
  runner::JobQueue queue_;
};

}  // namespace mcsim::serve
