// ServeDaemon: the socket transport for SimulationService.
//
// Listens on an AF_UNIX stream socket and speaks the newline-delimited JSON
// protocol from protocol.hpp, one connection per client, one thread per
// connection (the heavy lifting happens inside the service's worker pool, so
// connection threads mostly block on reads).  A connection whose first bytes
// spell "GET /metrics" instead receives a plain HTTP/1.0 response carrying
// the Prometheus text exposition — curl and off-the-shelf scrapers can mount
// the socket without speaking JSON.
//
// Shutdown: requestStop() is async-signal-safe (an atomic flag plus one
// write to a self-pipe), so the CLI installs it directly as its SIGTERM and
// SIGINT handler.  stop() additionally shuts down live connection sockets so
// blocked reads unblock; wait() joins everything.  A client "shutdown" verb
// is answered first, then treated as requestStop().
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mcsim/serve/service.hpp"

namespace mcsim::serve {

struct DaemonOptions {
  /// Filesystem path of the AF_UNIX listening socket.  An existing socket
  /// file at this path is unlinked before binding (stale sockets from a
  /// crashed daemon would otherwise wedge restarts).
  std::string socketPath = "mcsim.sock";
  ServiceOptions service;
};

class ServeDaemon {
 public:
  /// Binds and listens; throws std::runtime_error on socket errors.
  explicit ServeDaemon(DaemonOptions options);
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;
  /// Implies stop() + wait().
  ~ServeDaemon();

  /// Start the accept loop on a background thread.  Idempotent.
  void start();

  /// Async-signal-safe stop request: sets the flag and pokes the accept
  /// loop's self-pipe.  Safe to call from a signal handler.
  void requestStop();

  /// Full stop: requestStop() plus shutdown of live connection sockets so
  /// blocked reads return.  Not signal-safe.
  void stop();

  /// Join the accept loop and every connection thread.  Returns once all
  /// in-flight requests have been answered or abandoned.
  void wait();

  /// True until requestStop()/stop() is called.
  bool running() const { return !stopRequested_.load(); }

  const std::string& socketPath() const { return options_.socketPath; }
  SimulationService& service() { return service_; }

 private:
  void acceptLoop();
  void serveConnection(int fd);
  void handleHttp(int fd, const std::string& firstLine);
  void reapFinishedConnections();

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  DaemonOptions options_;
  SimulationService service_;

  int listenFd_ = -1;
  int wakePipe_[2] = {-1, -1};  ///< [0]=poll end, [1]=requestStop() end.
  std::atomic<bool> stopRequested_{false};

  std::thread acceptThread_;
  bool started_ = false;

  std::mutex connectionsMutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace mcsim::serve
