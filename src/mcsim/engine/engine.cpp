#include "mcsim/engine/engine.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <limits>
#include <optional>

#include "mcsim/cloud/storage.hpp"
#include "mcsim/dag/cleanup.hpp"
#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/trace_export.hpp"
#include "mcsim/obs/sampler.hpp"
#include "mcsim/obs/selfprofile.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/sim/simulator.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::engine {
namespace {

using dag::FileId;
using dag::TaskId;
using dag::Workflow;

/// The engine-side fault configuration: the user's FaultConfig with the
/// deprecated EngineConfig coin-flip fields folded into `legacy`.
faults::FaultConfig effectiveFaults(const EngineConfig& cfg) {
  faults::FaultConfig fc = cfg.faults;
  if (cfg.taskFailureProbability > 0.0) {
    fc.legacy.probability = cfg.taskFailureProbability;
    fc.legacy.seed = cfg.failureSeed;
  }
  fc.link.outages = faults::normalizeOutages(fc.link.outages);
  fc.storage.outages = faults::normalizeOutages(fc.storage.outages);
  return fc;
}

/// One simulated execution.  Owns the simulator, link and storage for its
/// lifetime; `execute()` drives the event loop to completion and extracts
/// the metrics.
class Run {
 public:
  Run(const Workflow& wf, const EngineConfig& cfg)
      : wf_(wf),
        cfg_(cfg),
        fcfg_(effectiveFaults(cfg)),
        plan_(dag::analyzeCleanup(wf)),
        sim_(sim::SimulatorOptions{
            cfg.referenceCore ? sim::CalendarImpl::Reference
                              : sim::CalendarImpl::ArenaHeap,
            wf.taskCount() * 2 + wf.fileCount() + 16}),
        link_(sim_,
              sim::LinkConfig{cfg.linkBandwidthBytesPerSec, cfg.linkSharing,
                              cfg.referenceCore ? sim::LinkSchedule::Reference
                                                : sim::LinkSchedule::Incremental}),
        storage_(sim_, cloud::StorageConfig{
                           cfg.storageCapacityBytes > 0.0
                               ? cfg.storageCapacityBytes
                               : std::numeric_limits<double>::infinity()}) {
    if (fcfg_.anyEnabled()) injector_.emplace(fcfg_);
    if (!fcfg_.storage.outages.empty()) {
      std::vector<std::pair<double, double>> windows;
      for (const auto& w : fcfg_.storage.outages)
        windows.emplace_back(w.startSeconds, w.endSeconds());
      storage_.setOutages(std::move(windows));
    }
    // Tracing is an event consumer: cfg.trace installs an internal
    // TimelineSink next to the user's observer.
    if (cfg.trace) {
      timeline_.emplace(wf.taskCount());
      fan_.add(&*timeline_);
      fan_.add(cfg.observer);  // add() ignores nullptr
      obs_ = &fan_;
    } else {
      obs_ = cfg.observer;
    }
    sim_.setObserver(cfg.observer);
    link_.setObserver(cfg.observer);
    storage_.setObserver(cfg.observer);
    // Billing attribution keeps a per-object residency map; skip all of that
    // bookkeeping unless some sink actually wants the line items.
    billed_ = obs_ != nullptr && obs_->accepts(obs::EventKind::BillingLineItem);
  }

  /// Argument validation, ahead of any member construction that assumes a
  /// well-formed workflow/config.
  static void validate(const Workflow& wf, const EngineConfig& cfg) {
    if (!wf.finalized())
      throw std::invalid_argument("simulateWorkflow: workflow not finalized");
    if (cfg.processors < 1)
      throw std::invalid_argument("simulateWorkflow: processors must be >= 1");
    if (cfg.vmStartupSeconds < 0.0 || cfg.vmTeardownSeconds < 0.0)
      throw std::invalid_argument("simulateWorkflow: negative VM overhead");
    if (cfg.storageCapacityBytes < 0.0)
      throw std::invalid_argument("simulateWorkflow: negative storage capacity");
    if (cfg.taskFailureProbability < 0.0 || cfg.taskFailureProbability >= 1.0)
      throw std::invalid_argument(
          "simulateWorkflow: task failure probability must be in [0, 1)");
    if (cfg.samplePeriodSeconds < 0.0)
      throw std::invalid_argument("simulateWorkflow: negative sample period");
    cfg.faults.validate();
  }

  ExecutionResult execute(obs::PhaseProfiler* profiler = nullptr) {
    {
      MCSIM_TRACE_PHASE(profiler, obs::SimPhase::Setup);
      prepare();
    }
    {
      MCSIM_TRACE_PHASE(profiler, obs::SimPhase::Schedule);
      scheduleOutages();
      scheduleStorageOutages();
      if (fcfg_.deadlineSeconds > 0.0)
        sim_.schedule(fcfg_.deadlineSeconds, [this] { onDeadline(); });
      if (obs_ != nullptr && cfg_.samplePeriodSeconds > 0.0) {
        sampler_.emplace(sim_, cfg_.samplePeriodSeconds, [this] {
          emit(obs::StorageSampled{storage_.residentBytes().value(),
                                   storage_.objectCount()});
        });
        sampler_->start();
      }
      sim_.schedule(cfg_.vmStartupSeconds, [this] { begin(); });
    }
    {
      MCSIM_TRACE_PHASE(profiler, obs::SimPhase::EventLoop);
      sim_.run();
    }
    MCSIM_TRACE_PHASE(profiler, obs::SimPhase::Extract);
    if (!finished_) {
      if (!blocked_.empty())
        throw std::runtime_error(
            "simulateWorkflow: deadlock -- " + std::to_string(blocked_.size()) +
            " task(s) blocked on storage capacity with nothing left to free "
            "(regular mode frees no space mid-run; use DynamicCleanup or "
            "raise storageCapacityBytes)");
      throw std::logic_error(
          "simulateWorkflow: simulation drained without completing the "
          "workflow (engine bug)");
    }

    result_.mode = cfg_.mode;
    result_.processors = cfg_.processors;
    result_.makespanSeconds = endTime_ + cfg_.vmTeardownSeconds;
    result_.processorBusySeconds = busyIntegral_;
    result_.storageByteSeconds = storage_.curve().integralByteSeconds(endTime_);
    result_.peakStorageBytes = storage_.peakBytes();
    result_.storageCurve = storage_.curve();
    if (timeline_) result_.taskRecords = timeline_->take();
    return result_;
  }

 private:
  // -- setup ------------------------------------------------------------------
  void prepare() {
    const std::size_t nTasks = wf_.taskCount();
    waitCount_.assign(nTasks, 0);
    abandoned_.assign(nTasks, false);
    running_.assign(nTasks, Attempt{});
    if (cfg_.mode == DataMode::RemoteIO) {
      pendingIo_.assign(nTasks, 0);
      remoteKeys_.assign(nTasks, {});
    }
    remainingUses_ = plan_.remainingUses;

    isExternal_.assign(wf_.fileCount(), false);
    for (FileId f : wf_.externalInputs()) isExternal_[f] = true;

    for (const dag::Task& t : wf_.tasks()) {
      std::size_t waits = t.parents.size();
      if (cfg_.mode != DataMode::RemoteIO) {
        for (FileId f : t.inputs)
          if (isExternal_[f]) ++waits;
      }
      if (t.earliestStartSeconds > 0.0) ++waits;  // released by timer
      waitCount_[t.id] = waits;
    }

    if (cfg_.scheduler == SchedulerPolicy::CriticalPathFirst) {
      // Upward rank: runtime + max child rank, computed sinks-first.
      upwardRank_.assign(nTasks, 0.0);
      const auto order = dag::topologicalOrder(wf_);
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const dag::Task& t = wf_.task(*it);
        double best = 0.0;
        for (TaskId c : t.children) best = std::max(best, upwardRank_[c]);
        upwardRank_[*it] = t.runtimeSeconds + best;
      }
    }

    freeProcessors_ = cfg_.processors;
    tasksRemaining_ = nTasks;
  }

  /// Overlapping windows (legacy outages, fault-model link windows and
  /// storage windows all stall the shared link) are refcounted: the link
  /// resumes only when the last window ends.
  void suspendLink() {
    if (linkSuspends_++ == 0) link_.suspend();
  }
  void resumeLink() {
    if (--linkSuspends_ == 0) link_.resume();
  }

  void scheduleOutages() {
    for (const Outage& o : cfg_.outages) {
      if (o.startSeconds < 0.0 || o.durationSeconds < 0.0)
        throw std::invalid_argument("simulateWorkflow: negative outage bounds");
      sim_.schedule(o.startSeconds, [this] { suspendLink(); });
      sim_.schedule(o.startSeconds + o.durationSeconds,
                    [this] { resumeLink(); });
    }
    for (const faults::OutageWindow& w : fcfg_.link.outages) {
      sim_.schedule(w.startSeconds, [this] { suspendLink(); });
      sim_.schedule(w.endSeconds(), [this] { resumeLink(); });
    }
  }

  /// Storage (S3) unavailability: nothing can be read from or written to
  /// storage, so the user<->storage link stalls too, and task completions
  /// that land inside a window defer their output commit to the window end
  /// (the finish* entry points check storage_.availableFrom).
  void scheduleStorageOutages() {
    for (const faults::OutageWindow& w : fcfg_.storage.outages) {
      sim_.schedule(w.startSeconds, [this] {
        emit(obs::StorageOutageStarted{});
        suspendLink();
      });
      sim_.schedule(w.endSeconds(), [this] {
        emit(obs::StorageOutageEnded{});
        resumeLink();
      });
    }
  }

  // -- telemetry ---------------------------------------------------------------
  template <class Payload>
  void emit(Payload&& payload) {
    // accepts() pre-filter: a rejected kind costs one predicted branch, not
    // a 41-alternative variant construction plus a virtual dispatch.
    using P = std::remove_cvref_t<Payload>;
    if (obs_ != nullptr && obs_->accepts(obs::kEventKindOf<P>))
      obs_->onEvent(obs::Event{sim_.now(), std::forward<Payload>(payload)});
  }

  void bill(obs::Resource resource, std::uint32_t task, double quantity) {
    if (billed_) emit(obs::BillingLineItem{resource, task, quantity});
  }

  /// Billing attribution of storage residency: remember who put the object
  /// and when, and convert that into byte-seconds when it is erased.  The
  /// per-key sum over a run equals the usage-curve integral (same additions,
  /// grouped by object instead of by time).
  void noteStored(std::uint64_t key, std::uint32_t task, double bytes) {
    if (billed_) stored_.emplace(key, StoredObject{sim_.now(), task, bytes});
  }
  void billErase(std::uint64_t key) {
    if (!billed_) return;
    auto it = stored_.find(key);
    if (it == stored_.end()) return;
    bill(obs::Resource::Storage, it->second.task,
         it->second.bytes * (sim_.now() - it->second.createdAt));
    stored_.erase(it);
  }

  std::size_t queuedTasks() const { return ready_.size() + blocked_.size(); }

  // -- common machinery --------------------------------------------------------
  void accrueBusy() {
    busyIntegral_ += static_cast<double>(busyCount_) * (sim_.now() - busyLast_);
    busyLast_ = sim_.now();
  }
  void claimProcessor() {
    accrueBusy();
    ++busyCount_;
    --freeProcessors_;
    emit(obs::ProcessorClaimed{busyCount_, cfg_.processors, queuedTasks()});
  }
  void releaseProcessor() {
    accrueBusy();
    --busyCount_;
    ++freeProcessors_;
    emit(obs::ProcessorReleased{busyCount_, cfg_.processors, queuedTasks()});
  }

  void begin() {
    busyLast_ = sim_.now();
    emit(obs::RunStarted{wf_.taskCount(), wf_.fileCount(), cfg_.processors});
    if (tasksRemaining_ == 0) {
      beginStageOut();
      return;
    }
    // Release-time gates: the extra wait added in prepare() drops when the
    // request "arrives".
    for (const dag::Task& t : wf_.tasks()) {
      if (t.earliestStartSeconds <= 0.0) continue;
      sim_.scheduleAfter(t.earliestStartSeconds, [this, id = t.id] {
        if (halted_) return;
        if (--waitCount_[id] == 0) markReady(id);
      });
    }
    if (cfg_.mode != DataMode::RemoteIO) {
      // Stage in every external input concurrently over the shared link.
      // Under a capacity cap the whole stage-in volume is reserved up
      // front: these bytes *will* arrive regardless of scheduling, so task
      // admission must leave room for them or later arrivals would
      // overflow.
      if (cfg_.storageCapacityBytes > 0.0)
        reservedBytes_ += wf_.externalInputBytes().value();
      for (FileId f : wf_.externalInputs()) {
        const Bytes size = wf_.file(f).size;
        emit(obs::StageInStarted{f, obs::kNoTask, size.value()});
        link_.startTransfer(size, [this, f, size] {
          if (halted_) return;
          result_.bytesIn += size;
          ++result_.transfersIn;
          if (cfg_.storageCapacityBytes > 0.0)
            reservedBytes_ -= size.value();
          try {
            storage_.put(f, size);
          } catch (const std::runtime_error&) {
            throw std::runtime_error(
                "simulateWorkflow: stage-in overflow -- storage capacity is "
                "too small for the workflow's external inputs ('" +
                wf_.file(f).name + "' does not fit)");
          }
          noteStored(f, obs::kNoTask, size.value());
          emit(obs::StageInFinished{f, obs::kNoTask, size.value()});
          bill(obs::Resource::TransferIn, obs::kNoTask, size.value());
          onExternalFileArrived(f);
        });
      }
    }
    // Tasks with no waits (sources without external inputs in regular mode;
    // all sources in remote mode) are ready immediately.
    for (const dag::Task& t : wf_.tasks())
      if (waitCount_[t.id] == 0) markReady(t.id);
  }

  void onExternalFileArrived(FileId f) {
    for (TaskId consumer : wf_.file(f).consumers) {
      if (--waitCount_[consumer] == 0) markReady(consumer);
    }
    // An external file no task reads (possible in hand-built workflows) just
    // sits on storage until the end-of-run sweep.
  }

  void markReady(TaskId id) {
    if (halted_ || abandoned_[id]) return;
    emit(obs::TaskReady{id});
    const double rank = cfg_.scheduler == SchedulerPolicy::CriticalPathFirst
                            ? upwardRank_[id]
                            : 0.0;
    ready_.push(ReadyEntry{rank, readySeq_++, id});
    scheduleDispatch();
  }

  /// Run dispatch() as a same-timestamp event, coalescing multiple requests.
  /// Deferring matters for scheduling policy: every task that becomes ready
  /// at this instant must be in the queue before processors are assigned,
  /// or priority ordering degenerates to arrival order.
  void scheduleDispatch() {
    if (dispatchScheduled_) return;
    dispatchScheduled_ = true;
    sim_.scheduleAfter(0.0, [this] {
      dispatchScheduled_ = false;
      if (halted_) return;
      dispatch();
    });
  }

  /// Bytes the task will add to storage while it runs.
  double storageDemand(TaskId id) const {
    const dag::Task& t = wf_.task(id);
    double needed = 0.0;
    if (cfg_.mode == DataMode::RemoteIO)
      for (FileId f : t.inputs) needed += wf_.file(f).size.value();
    for (FileId f : t.outputs) needed += wf_.file(f).size.value();
    return needed;
  }

  bool fitsOnStorage(TaskId id) const {
    if (cfg_.storageCapacityBytes <= 0.0) return true;
    // Count both resident bytes and reservations of admitted-but-not-yet-
    // materialized tasks, or same-instant dispatches would over-commit.
    return storage_.residentBytes().value() + reservedBytes_ +
               storageDemand(id) <=
           cfg_.storageCapacityBytes + 1e-6;
  }

  void dispatch() {
    while (freeProcessors_ > 0 && !ready_.empty()) {
      const ReadyEntry entry = ready_.top();
      ready_.pop();
      if (!fitsOnStorage(entry.id)) {
        // Defer until space frees up; backfill with later ready tasks.
        blocked_.push_back(entry);
        ++result_.tasksEverBlocked;
        emit(obs::TaskBlocked{entry.id});
        continue;
      }
      if (cfg_.storageCapacityBytes > 0.0)
        reservedBytes_ += storageDemand(entry.id);
      claimProcessor();
      emit(obs::TaskStarted{entry.id});
      if (cfg_.mode == DataMode::RemoteIO) startRemote(entry.id);
      else startRegular(entry.id);
    }
  }

  /// Storage was freed: give every blocked task another chance, preserving
  /// its original priority/sequence.
  void unblock() {
    if (blocked_.empty()) return;
    for (const ReadyEntry& entry : blocked_) ready_.push(entry);
    blocked_.clear();
    scheduleDispatch();
  }

  /// Dependency bookkeeping after a task is fully complete.
  void completeTask(TaskId id) {
    emit(obs::TaskFinished{id, wf_.task(id).runtimeSeconds});
    ++result_.tasksExecuted;
    releaseProcessor();
    for (TaskId c : wf_.task(id).children)
      if (--waitCount_[c] == 0) markReady(c);
    if (--tasksRemaining_ == 0) beginStageOut();
    scheduleDispatch();
  }

  // -- execution attempts & fault mechanics -------------------------------------
  /// Schedule the completion of one execution attempt and, when the crash
  /// model is armed, the spot-style loss that may preempt it.  Exactly one
  /// of the two events fires: a drawn time-to-failure shorter than the
  /// runtime schedules a crash (which cancels the completion); otherwise no
  /// crash event exists at all.
  void registerAttempt(TaskId id, void (Run::*finish)(TaskId)) {
    const dag::Task& t = wf_.task(id);
    Attempt a;
    a.execStart = sim_.now();
    a.runtimeSeconds = t.runtimeSeconds;
    a.finishEvent = sim_.scheduleAfter(
        t.runtimeSeconds, [this, id, finish] { (this->*finish)(id); });
    if (injector_) {
      if (const auto ttf = injector_->drawCrashTime(t.runtimeSeconds))
        a.crashEvent = sim_.scheduleAfter(*ttf, [this, id] { onCrash(id); });
    }
    a.active = true;
    running_[id] = a;
  }

  /// A processor crash preempted the attempt: the completion event is
  /// cancelled (Simulator::cancel), the partial work is billed as waste, and
  /// the task either retries per policy or is permanently failed.  In remote
  /// I/O mode the dead instance's staged inputs are lost; the retry
  /// re-stages (and re-bills) them — the paper's "you pay for the S3
  /// transfer again" accounting.
  void onCrash(TaskId id) {
    if (halted_) return;
    if (!running_[id].active)
      throw std::logic_error("engine: crash for a task with no attempt");
    const Attempt a = running_[id];
    running_[id].active = false;
    sim_.cancel(a.finishEvent);
    const double wasted = sim_.now() - a.execStart;
    result_.cpuBusySeconds += wasted;
    result_.wastedCpuSeconds += wasted;
    ++result_.processorCrashes;
    emit(obs::ProcessorCrashed{id, wasted});
    bill(obs::Resource::Cpu, id, wasted);
    bool freed = false;
    if (cfg_.mode == DataMode::RemoteIO) {
      for (const std::uint64_t key : remoteKeys_[id]) {
        storage_.erase(key);
        billErase(key);
      }
      freed = !remoteKeys_[id].empty();
      remoteKeys_[id].clear();
      pendingIo_[id] = 0;
    }
    if (freed) unblock();
    if (const auto delay = injector_->nextRetryDelay(id)) {
      ++result_.taskRetries;
      emit(obs::TaskRetryScheduled{id, injector_->attemptsMade(id), *delay});
      emit(obs::TaskRetried{id});
      const bool remote = cfg_.mode == DataMode::RemoteIO;
      sim_.scheduleAfter(*delay, [this, id, remote] {
        if (halted_) return;
        if (remote) startRemote(id);
        else startRegular(id);
      });
    } else {
      failTask(id);
    }
  }

  /// Retry budget exhausted: the task is reported failed, its descendants
  /// can never run and are abandoned, and the rest of the workflow carries
  /// on (partial results still stage out).
  void failTask(TaskId id) {
    emit(obs::TaskFailed{id, injector_->attemptsMade(id)});
    ++result_.tasksFailed;
    releaseProcessor();
    if (cfg_.storageCapacityBytes > 0.0) {
      reservedBytes_ -= storageDemand(id);  // outputs never materialize
      unblock();
    }
    abandonDescendants(id);
    if (--tasksRemaining_ == 0) beginStageOut();
    else scheduleDispatch();
  }

  void abandonDescendants(TaskId failedTask) {
    std::vector<std::pair<TaskId, TaskId>> stack;  // (task, sealing ancestor)
    for (TaskId c : wf_.task(failedTask).children)
      stack.emplace_back(c, failedTask);
    while (!stack.empty()) {
      const auto [id, ancestor] = stack.back();
      stack.pop_back();
      if (abandoned_[id]) continue;
      abandoned_[id] = true;
      emit(obs::TaskAbandoned{id, ancestor});
      ++result_.tasksAbandoned;
      --tasksRemaining_;
      for (TaskId c : wf_.task(id).children) stack.emplace_back(c, id);
    }
  }

  /// The workflow deadline passed: preempt every in-flight attempt (billing
  /// the partial work as waste), stop dispatching, and report the run
  /// incomplete.  Already-scheduled calendar events become no-ops via the
  /// halted_ guards.
  void onDeadline() {
    if (finished_ || halted_) return;
    halted_ = true;
    result_.deadlineExceeded = true;
    // The task-indexed attempt vector is naturally in ascending id order —
    // the order the old map-based code had to sort into.
    for (TaskId id = 0; id < static_cast<TaskId>(running_.size()); ++id) {
      const Attempt& a = running_[id];
      if (!a.active) continue;
      sim_.cancel(a.finishEvent);
      if (a.crashEvent != sim::kInvalidEvent) sim_.cancel(a.crashEvent);
      const double wasted =
          std::min(sim_.now() - a.execStart, a.runtimeSeconds);
      result_.cpuBusySeconds += wasted;
      result_.wastedCpuSeconds += wasted;
      bill(obs::Resource::Cpu, id, wasted);
      running_[id].active = false;
    }
    emit(obs::DeadlineExceeded{tasksRemaining_});
    finish();
  }

  // -- regular / cleanup path ---------------------------------------------------
  void startRegular(TaskId id) {
    emit(obs::TaskExecStarted{id});
    registerAttempt(id, &Run::finishRegular);
  }

  /// Legacy failure injection (the deprecated taskFailureProbability shim,
  /// routed through faults::FaultInjector): true if this completion attempt
  /// fails and the task re-executes immediately on the same processor — full
  /// runtime billed, no retry budget, no re-staging, draw order identical to
  /// the pre-faults engine.
  bool attemptFails(TaskId id, void (Run::*retry)(TaskId)) {
    const dag::Task& t = wf_.task(id);
    if (!injector_ || !injector_->legacyAttemptFails()) return false;
    result_.cpuBusySeconds += t.runtimeSeconds;  // the failed attempt
    result_.wastedCpuSeconds += t.runtimeSeconds;
    ++result_.taskRetries;
    emit(obs::TaskRetried{id});
    bill(obs::Resource::Cpu, id, t.runtimeSeconds);
    sim_.scheduleAfter(t.runtimeSeconds,
                       [this, id, retry] { (this->*retry)(id); });
    return true;
  }

  void finishRegular(TaskId id) {
    if (halted_) return;
    // An S3 outage blocks the output commit: the task holds its processor
    // until the service returns (extending the billed makespan), then
    // finishes normally.
    if (const double at = storage_.availableFrom(sim_.now()); at > sim_.now()) {
      sim_.schedule(at, [this, id] { finishRegular(id); });
      return;
    }
    running_[id].active = false;
    if (attemptFails(id, &Run::finishRegular)) return;
    const dag::Task& t = wf_.task(id);
    result_.cpuBusySeconds += t.runtimeSeconds;
    bill(obs::Resource::Cpu, id, t.runtimeSeconds);
    for (FileId f : t.outputs) {
      const Bytes size = wf_.file(f).size;
      storage_.put(f, size);
      noteStored(f, id, size.value());
    }
    if (cfg_.storageCapacityBytes > 0.0)
      reservedBytes_ -= storageDemand(id);  // materialized: now counted as
                                            // resident instead
    bool freed = false;
    if (cfg_.mode == DataMode::DynamicCleanup) {
      for (FileId f : t.inputs) {
        if (remainingUses_[f] == 0)
          throw std::logic_error("engine: cleanup refcount underflow");
        if (--remainingUses_[f] == 0 && !plan_.isOutput[f]) {
          const double bytes = storage_.sizeOf(f).value();
          storage_.erase(f);
          billErase(f);
          emit(obs::FileCleanupDeleted{f, id, bytes});
          freed = true;
        }
      }
    }
    if (freed) unblock();
    completeTask(id);
  }

  // -- remote I/O path -----------------------------------------------------------
  // Residency follows the paper's accounting ("the files are present on the
  // resource only during the execution of the current task", Fig 7): inputs
  // occupy storage from execution start until execution end; each output
  // occupies storage from execution end until its own stage-out completes.
  void startRemote(TaskId id) {
    const dag::Task& t = wf_.task(id);
    pendingIo_[id] = t.inputs.size();
    if (t.inputs.empty()) {
      execRemote(id);
      return;
    }
    for (FileId f : t.inputs) {
      const Bytes size = wf_.file(f).size;
      emit(obs::StageInStarted{f, id, size.value()});
      link_.startTransfer(size, [this, id, f, size] {
        if (halted_) return;
        result_.bytesIn += size;
        ++result_.transfersIn;
        emit(obs::StageInFinished{f, id, size.value()});
        bill(obs::Resource::TransferIn, id, size.value());
        if (--pendingIo_[id] == 0) execRemote(id);
      });
    }
  }

  void execRemote(TaskId id) {
    const dag::Task& t = wf_.task(id);
    emit(obs::TaskExecStarted{id});
    auto& keys = remoteKeys_[id];
    keys.clear();
    for (FileId f : t.inputs) {
      const std::uint64_t key = nextObjectKey_++;
      storage_.put(key, wf_.file(f).size);
      noteStored(key, id, wf_.file(f).size.value());
      keys.push_back(key);
    }
    registerAttempt(id, &Run::finishRemote);
  }

  void finishRemote(TaskId id) {
    if (halted_) return;
    if (const double at = storage_.availableFrom(sim_.now()); at > sim_.now()) {
      sim_.schedule(at, [this, id] { finishRemote(id); });
      return;
    }
    running_[id].active = false;
    if (attemptFails(id, &Run::finishRemote)) return;
    const dag::Task& t = wf_.task(id);
    result_.cpuBusySeconds += t.runtimeSeconds;
    bill(obs::Resource::Cpu, id, t.runtimeSeconds);
    for (std::uint64_t key : remoteKeys_[id]) {
      storage_.erase(key);
      billErase(key);
    }
    if (cfg_.storageCapacityBytes > 0.0)
      reservedBytes_ -= storageDemand(id);  // outputs materialize below
    if (!t.inputs.empty()) unblock();
    remoteKeys_[id].clear();
    pendingIo_[id] = t.outputs.size();
    if (t.outputs.empty()) {
      teardownRemote(id);
      return;
    }
    for (FileId f : t.outputs) {
      const Bytes size = wf_.file(f).size;
      const std::uint64_t key = nextObjectKey_++;
      storage_.put(key, size);
      noteStored(key, id, size.value());
      emit(obs::StageOutStarted{f, id, size.value()});
      link_.startTransfer(size, [this, id, f, key, size] {
        if (halted_) return;
        result_.bytesOut += size;
        ++result_.transfersOut;
        storage_.erase(key);
        billErase(key);
        emit(obs::StageOutFinished{f, id, size.value()});
        bill(obs::Resource::TransferOut, id, size.value());
        unblock();
        if (--pendingIo_[id] == 0) teardownRemote(id);
      });
    }
  }

  void teardownRemote(TaskId id) {
    pendingIo_[id] = 0;
    completeTask(id);
  }

  // -- final stage-out -------------------------------------------------------------
  void beginStageOut() {
    if (cfg_.mode == DataMode::RemoteIO) {
      // Every task already delivered its outputs to the user site.
      finish();
      return;
    }
    auto outputs = wf_.workflowOutputs();
    if (result_.tasksFailed + result_.tasksAbandoned > 0) {
      // Failed branches never produced their outputs; stage out only what is
      // actually resident.
      std::erase_if(outputs,
                    [this](FileId f) { return !storage_.contains(f); });
    }
    pendingStageOut_ = outputs.size();
    if (pendingStageOut_ == 0) {
      sweepStorageAndFinish();
      return;
    }
    for (FileId f : outputs) {
      const Bytes size = wf_.file(f).size;
      emit(obs::StageOutStarted{f, obs::kNoTask, size.value()});
      link_.startTransfer(size, [this, f, size] {
        if (halted_) return;
        result_.bytesOut += size;
        ++result_.transfersOut;
        emit(obs::StageOutFinished{f, obs::kNoTask, size.value()});
        bill(obs::Resource::TransferOut, obs::kNoTask, size.value());
        if (--pendingStageOut_ == 0) sweepStorageAndFinish();
      });
    }
  }

  void sweepStorageAndFinish() {
    // "After that ... all the files are deleted from the storage resource."
    for (FileId f = 0; f < static_cast<FileId>(wf_.fileCount()); ++f)
      if (storage_.contains(f)) {
        storage_.erase(f);
        billErase(f);
      }
    finish();
  }

  void finish() {
    accrueBusy();
    finished_ = true;
    endTime_ = sim_.now();
    if (sampler_) sampler_->stop();
    emit(obs::RunFinished{sim_.now()});
  }

  // -- data -------------------------------------------------------------------------
  struct ReadyEntry {
    double rank;
    std::uint64_t sequence;
    TaskId id;
  };
  struct WorseReady {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.rank != b.rank) return a.rank < b.rank;  // higher rank first
      return a.sequence > b.sequence;                // then FIFO
    }
  };

  const Workflow& wf_;
  const EngineConfig& cfg_;
  const faults::FaultConfig fcfg_;
  dag::CleanupPlan plan_;

  sim::Simulator sim_;
  sim::Link link_;
  cloud::StorageService storage_;

  std::vector<std::size_t> waitCount_;
  std::vector<std::size_t> remainingUses_;
  std::vector<bool> isExternal_;
  std::vector<double> upwardRank_;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, WorseReady> ready_;
  std::uint64_t readySeq_ = 0;
  bool dispatchScheduled_ = false;
  int freeProcessors_ = 0;
  std::size_t tasksRemaining_ = 0;
  std::size_t pendingStageOut_ = 0;

  /// Remote I/O: per-task in-flight transfer counts and the storage keys of
  /// the task's resident input objects (unique per use, since two tasks may
  /// stage the same logical file concurrently).  Task-indexed flat vectors
  /// (sized in prepare()); empty in the other data modes.
  std::vector<std::size_t> pendingIo_;
  std::vector<std::vector<std::uint64_t>> remoteKeys_;
  std::uint64_t nextObjectKey_ = 1ull << 32;

  std::vector<ReadyEntry> blocked_;  ///< Ready but waiting for storage space.
  double reservedBytes_ = 0.0;       ///< Admitted tasks' unmaterialized bytes.

  /// Fault machinery.  One Attempt per task currently executing: the
  /// calendar events for its completion and (when drawn) its crash, so
  /// either outcome can cancel the other.
  struct Attempt {
    sim::EventId finishEvent = sim::kInvalidEvent;
    sim::EventId crashEvent = sim::kInvalidEvent;
    double execStart = 0.0;
    double runtimeSeconds = 0.0;
    bool active = false;
  };
  std::optional<faults::FaultInjector> injector_;
  std::vector<Attempt> running_;  ///< Task-indexed; active marks in-flight.
  std::vector<bool> abandoned_;  ///< Descendants of permanently failed tasks.
  bool halted_ = false;          ///< Deadline hit: pending events are no-ops.
  int linkSuspends_ = 0;         ///< Overlapping-outage refcount.

  int busyCount_ = 0;
  double busyIntegral_ = 0.0;
  double busyLast_ = 0.0;

  /// Telemetry plumbing.  obs_ is what the engine emits to: the fan-out of
  /// the internal timeline sink and the configured observer when tracing,
  /// else the observer directly (nullptr = fully disabled).
  obs::FanOutSink fan_;
  std::optional<TimelineSink> timeline_;
  obs::Sink* obs_ = nullptr;
  bool billed_ = false;
  std::optional<obs::PeriodicSampler> sampler_;
  struct StoredObject {
    double createdAt;
    std::uint32_t task;
    double bytes;
  };
  std::unordered_map<std::uint64_t, StoredObject> stored_;

  bool finished_ = false;
  double endTime_ = 0.0;
  ExecutionResult result_;
};

}  // namespace

ExecutionResult simulateWorkflow(const dag::Workflow& workflow,
                                 const EngineConfig& config) {
  Run::validate(workflow, config);
  if (!config.profile || config.observer == nullptr) {
    Run run(workflow, config);
    return run.execute();
  }
  // Self-profiling path: time Run construction as Setup, let execute()
  // attribute the rest, then surface the totals through the observer (after
  // RunFinished, with time < 0 — wall-clock stays out of simulated time).
  obs::PhaseProfiler profiler;
  std::optional<Run> run;
  {
    MCSIM_TRACE_PHASE(&profiler, obs::SimPhase::Setup);
    run.emplace(workflow, config);
  }
  ExecutionResult result = run->execute(&profiler);
  profiler.emitTo(config.observer);
  return result;
}

}  // namespace mcsim::engine
