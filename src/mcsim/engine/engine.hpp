// The workflow execution engine: simulates one workflow run on the cloud
// under a data-management mode and a provisioning plan, producing the
// metrics the paper reports.
//
// Semantics (matching §3/§5; see DESIGN.md "Key semantic decisions"):
//  * Regular / DynamicCleanup: every external input starts staging in at
//    t=0 over the shared user<->storage link; a task is ready once its
//    parent tasks have finished and its external inputs have landed; ready
//    tasks are dispatched to free processors (FIFO by default); task outputs
//    appear on storage the instant the task completes (in-cloud access is
//    free and fast, as with EC2/S3); when all tasks are done the workflow
//    outputs are staged out, then everything resident is deleted.
//    DynamicCleanup additionally deletes each file the moment its last
//    consumer finishes (Pegasus data-use analysis).
//  * RemoteIO: a task claims a processor, stages in every one of its inputs
//    from the user site, executes, stages out every output to the user site,
//    deletes its files from storage and only then releases the processor and
//    unblocks its children.  Files used by several tasks transfer once per
//    use (paper: "the file may be transferred in multiple times").
#pragma once

#include <cstdint>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/faults/faults.hpp"
#include "mcsim/sim/link.hpp"

namespace mcsim::obs {
class Sink;
}

namespace mcsim::engine {

/// Dispatch order for ready tasks competing for processors.
enum class SchedulerPolicy {
  Fifo,               ///< By readiness time (paper's behaviour).
  CriticalPathFirst,  ///< Highest upward rank first (HEFT-style ablation).
};

/// A storage/link outage window (S3 availability ablation, paper §8).
/// Transfers in flight stop progressing during [start, start+duration);
/// running computations are unaffected.
struct Outage {
  double startSeconds = 0.0;
  double durationSeconds = 0.0;
};

struct EngineConfig {
  DataMode mode = DataMode::Regular;
  int processors = 1;
  /// User <-> cloud-storage bandwidth; the paper fixes 10 Mbps.
  double linkBandwidthBytesPerSec = 10e6 / 8.0;
  /// Default Dedicated: every transfer sees the nominal bandwidth, which is
  /// GridSim's network model and what the paper's stage-in/out times imply.
  /// FairShare divides the pipe among concurrent transfers (the
  /// link-sharing ablation).
  sim::LinkSharing linkSharing = sim::LinkSharing::Dedicated;
  SchedulerPolicy scheduler = SchedulerPolicy::Fifo;
  /// VM provisioning overhead (paper §8 future work): startup delays all
  /// work; teardown extends the billed makespan after the last stage-out.
  double vmStartupSeconds = 0.0;
  double vmTeardownSeconds = 0.0;
  std::vector<Outage> outages;
  /// Finite cloud-storage capacity in bytes; 0 = unlimited (the paper's
  /// default, §5).  With a cap, a task is dispatched only when its outputs
  /// (remote I/O: inputs + outputs) fit in the remaining space; blocked
  /// tasks resume as cleanup frees space.  Regular mode frees nothing
  /// mid-run, so a cap below its peak footprint aborts with
  /// std::runtime_error — which is precisely why dynamic cleanup exists
  /// (§3's storage-constrained-scheduling citation).
  double storageCapacityBytes = 0.0;
  /// \deprecated Thin shim over faults.legacy — per-task end-of-attempt
  /// failure probability (paper §8).  A failed task is re-executed
  /// immediately on the same processor; the wasted runtime is billed.
  /// Deterministic per `failureSeed`.  When > 0 it overrides faults.legacy;
  /// new code should configure `faults` directly.
  double taskFailureProbability = 0.0;
  std::uint64_t failureSeed = 1;  ///< \deprecated See taskFailureProbability.
  /// Fault-injection and recovery models (processor crashes, link/storage
  /// outages, retry policies, deadlines).  Default-constructed = disabled:
  /// runs are bit-identical to a fault-free engine.
  faults::FaultConfig faults;
  /// Record per-task timelines in ExecutionResult::taskRecords (implemented
  /// as an internal obs::Sink consuming the task lifecycle events).
  bool trace = false;
  /// Telemetry sink observing the run: the engine emits task lifecycle,
  /// staging, cleanup and billing-line-item events and installs the sink on
  /// its simulator, link and storage.  nullptr (default) disables all
  /// instrumentation at the cost of one pointer test per site.  The sink is
  /// borrowed; it must outlive simulateWorkflow.
  obs::Sink* observer = nullptr;
  /// > 0: emit obs::StorageSampled every this many simulated seconds while
  /// the run is active (requires `observer`).  0 disables sampling.
  double samplePeriodSeconds = 0.0;
  /// Emit obs::PhaseProfile events (simulator self wall-clock per internal
  /// phase: setup / schedule / event loop / extract) to `observer` after the
  /// run.  Off by default so wall-clock never enters captured event streams
  /// — replay and the scenario memo cache stay deterministic; the runner
  /// force-disables it on worker threads for the same reason.
  bool profile = false;
  /// Run on the reference (pre-overhaul) simulation core: the lazy-deletion
  /// priority-queue event calendar and the O(n)-rescan link scheduler.
  /// Results match the optimized core up to floating-point accumulation
  /// order.  Exists for bench/perf_core before/after runs and differential
  /// tests; leave false in real experiments.
  bool referenceCore = false;
};

/// Simulate one execution of `workflow` (must be finalized) and return its
/// metrics.  Deterministic: identical inputs give identical results.
///
/// Re-entrant: the engine touches no global state, so concurrent calls are
/// safe as long as each call has its own `config.observer` (or none) — the
/// contract mcsim::runner relies on to parallelize whole scenarios while
/// each event loop stays single-threaded.
ExecutionResult simulateWorkflow(const dag::Workflow& workflow,
                                 const EngineConfig& config);

}  // namespace mcsim::engine
