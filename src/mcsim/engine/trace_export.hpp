// Machine-readable trace export.
//
// Two formats: a flat CSV of per-task timelines (for spreadsheets/plots)
// and the Chrome Trace Event format (chrome://tracing or Perfetto), where
// each provisioned processor appears as a "thread" and tasks as complete
// events — the fastest way to *see* why a provisioning plan behaves the way
// it does.
//
// Timelines are assembled from the obs event stream: TimelineSink folds the
// engine's task lifecycle events into TaskRecord rows, and the engine's
// `trace` option is implemented by installing one internally — tracing is an
// event consumer like any other, not a parallel bookkeeping path.
#pragma once

#include <ostream>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::engine {

/// Folds TaskReady/TaskStarted/TaskExecStarted/TaskFinished events into
/// per-task timelines.  Retried attempts keep the first exec start, matching
/// the historical TaskRecord semantics (the record spans the whole billed
/// occupancy of the task).
class TimelineSink final : public obs::Sink {
 public:
  explicit TimelineSink(std::size_t taskCount) : records_(taskCount) {}

  void onEvent(const obs::Event& event) override;
  bool accepts(obs::EventKind kind) const override {
    return kind == obs::EventKind::TaskReady ||
           kind == obs::EventKind::TaskStarted ||
           kind == obs::EventKind::TaskExecStarted ||
           kind == obs::EventKind::TaskFinished;
  }

  const std::vector<TaskRecord>& records() const { return records_; }
  std::vector<TaskRecord> take() { return std::move(records_); }

 private:
  std::vector<TaskRecord> records_;
};

/// CSV: task,type,level,ready_s,start_s,exec_start_s,finish_s.
/// Requires a traced result (EngineConfig::trace).
void writeTraceCsv(std::ostream& os, const dag::Workflow& wf,
                   const ExecutionResult& result);

/// Chrome Trace Event JSON (array form).  Tasks are "X" (complete) events;
/// timestamps are microseconds as the format requires.  Lane assignment
/// reconstructs processor occupancy greedily from start/finish times, which
/// matches the engine's actual assignment because starts are handed to the
/// lowest free slot in dispatch order.  Requires a traced result.
void writeChromeTrace(std::ostream& os, const dag::Workflow& wf,
                      const ExecutionResult& result);

}  // namespace mcsim::engine
