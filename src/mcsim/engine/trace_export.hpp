// Machine-readable trace export.
//
// Two formats: a flat CSV of per-task timelines (for spreadsheets/plots)
// and the Chrome Trace Event format (chrome://tracing or Perfetto), where
// each provisioned processor appears as a "thread" and tasks as complete
// events — the fastest way to *see* why a provisioning plan behaves the way
// it does.
//
// Timelines are assembled from the obs event stream: TimelineSink folds the
// engine's task lifecycle events into TaskRecord rows, and the engine's
// `trace` option is implemented by installing one internally — tracing is an
// event consumer like any other, not a parallel bookkeeping path.
#pragma once

#include <ostream>
#include <vector>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/obs/trace.hpp"

namespace mcsim::engine {

/// Folds the task lifecycle events into per-task timelines.  Since PR-6 this
/// is a thin adapter over obs::SpanSink/TraceStore — spans are the single
/// source of truth and TaskRecord rows are derived views (first queue-wait
/// begin = readyTime, Task-span begin = startTime, first Compute begin =
/// execStart, successful Task-span end = finishTime; unfinished or failed
/// tasks keep the historical -1 sentinels).  Retried attempts keep the first
/// exec start, matching the historical TaskRecord semantics (the record
/// spans the whole billed occupancy of the task).
class TimelineSink final : public obs::Sink {
 public:
  explicit TimelineSink(std::size_t taskCount)
      : taskCount_(taskCount), sink_(store_) {}

  void onEvent(const obs::Event& event) override { sink_.onEvent(event); }
  bool accepts(obs::EventKind kind) const override {
    return sink_.accepts(kind);
  }

  /// Derive the legacy per-task rows from the span store.
  std::vector<TaskRecord> records() const;
  std::vector<TaskRecord> take() { return records(); }

  /// The underlying span store (borrowed; valid while the sink lives).
  const obs::TraceStore& trace() const { return store_; }

 private:
  std::size_t taskCount_;
  obs::TraceStore store_;
  obs::SpanSink sink_;
};

/// CSV: task,type,level,ready_s,start_s,exec_start_s,finish_s.
/// Requires a traced result (EngineConfig::trace).
void writeTraceCsv(std::ostream& os, const dag::Workflow& wf,
                   const ExecutionResult& result);

/// Chrome Trace Event JSON (array form).  Tasks are "X" (complete) events;
/// timestamps are microseconds as the format requires.  Lane assignment
/// reconstructs processor occupancy greedily from start/finish times, which
/// matches the engine's actual assignment because starts are handed to the
/// lowest free slot in dispatch order.  Requires a traced result.
void writeChromeTrace(std::ostream& os, const dag::Workflow& wf,
                      const ExecutionResult& result);

}  // namespace mcsim::engine
