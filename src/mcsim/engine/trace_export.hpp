// Machine-readable trace export.
//
// Two formats: a flat CSV of per-task timelines (for spreadsheets/plots)
// and the Chrome Trace Event format (chrome://tracing or Perfetto), where
// each provisioned processor appears as a "thread" and tasks as complete
// events — the fastest way to *see* why a provisioning plan behaves the way
// it does.
#pragma once

#include <ostream>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"

namespace mcsim::engine {

/// CSV: task,type,level,ready_s,start_s,exec_start_s,finish_s.
/// Requires a traced result (EngineConfig::trace).
void writeTraceCsv(std::ostream& os, const dag::Workflow& wf,
                   const ExecutionResult& result);

/// Chrome Trace Event JSON (array form).  Tasks are "X" (complete) events;
/// timestamps are microseconds as the format requires.  Lane assignment
/// reconstructs processor occupancy greedily from start/finish times, which
/// matches the engine's actual assignment because starts are handed to the
/// lowest free slot in dispatch order.  Requires a traced result.
void writeChromeTrace(std::ostream& os, const dag::Workflow& wf,
                      const ExecutionResult& result);

}  // namespace mcsim::engine
