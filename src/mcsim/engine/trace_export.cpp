#include "mcsim/engine/trace_export.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "mcsim/util/csv.hpp"
#include "mcsim/util/xml.hpp"

namespace mcsim::engine {
namespace {

void requireTrace(const ExecutionResult& result, const char* fn) {
  if (result.taskRecords.empty())
    throw std::invalid_argument(std::string(fn) +
                                ": result was not traced (EngineConfig::trace)");
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

/// JSON string escaping (names are ASCII task names, but be safe).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<TaskRecord> TimelineSink::records() const {
  std::vector<TaskRecord> out(taskCount_);
  // Spans are appended in event order, so the first span of a kind for a
  // task is the earliest — exactly the legacy "keep the first exec start"
  // rule.  Tasks the stream never mentioned keep every field at -1.
  for (std::uint32_t s = 0; s < store_.spanCount(); ++s) {
    const std::uint32_t task = store_.task(s);
    if (task == obs::kNoTask || task >= taskCount_) continue;
    TaskRecord& r = out[task];
    switch (store_.kind(s)) {
      case obs::SpanKind::QueueWait:
        if (r.readyTime < 0.0) r.readyTime = store_.begin(s);
        break;
      case obs::SpanKind::Task:
        if (r.startTime < 0.0) r.startTime = store_.begin(s);
        // Failed tasks keep finishTime = -1: the legacy sink only folded
        // TaskFinished, never TaskFailed.
        if (!store_.isOpen(s) && !store_.isFailed(s))
          r.finishTime = store_.end(s);
        break;
      case obs::SpanKind::Compute:
        if (r.execStart < 0.0) r.execStart = store_.begin(s);
        break;
      default:
        break;
    }
  }
  return out;
}

void writeTraceCsv(std::ostream& os, const dag::Workflow& wf,
                   const ExecutionResult& result) {
  requireTrace(result, "writeTraceCsv");
  CsvWriter csv(os, {"task", "type", "level", "ready_s", "start_s",
                     "exec_start_s", "finish_s"});
  for (const dag::Task& t : wf.tasks()) {
    const TaskRecord& r = result.taskRecords[t.id];
    csv.writeRow({t.name, t.type, std::to_string(t.level), num(r.readyTime),
                  num(r.startTime), num(r.execStart), num(r.finishTime)});
  }
}

void writeChromeTrace(std::ostream& os, const dag::Workflow& wf,
                      const ExecutionResult& result) {
  requireTrace(result, "writeChromeTrace");

  // Reconstruct lane occupancy: tasks sorted by start time grab the first
  // lane that is free at their start.
  std::vector<dag::TaskId> byStart(wf.taskCount());
  for (std::size_t i = 0; i < byStart.size(); ++i)
    byStart[i] = static_cast<dag::TaskId>(i);
  std::sort(byStart.begin(), byStart.end(), [&](dag::TaskId a, dag::TaskId b) {
    const auto& ra = result.taskRecords[a];
    const auto& rb = result.taskRecords[b];
    if (ra.startTime != rb.startTime) return ra.startTime < rb.startTime;
    return a < b;
  });
  std::vector<double> laneFreeAt;
  std::vector<int> lane(wf.taskCount(), 0);
  for (dag::TaskId id : byStart) {
    const TaskRecord& r = result.taskRecords[id];
    int chosen = -1;
    for (std::size_t l = 0; l < laneFreeAt.size(); ++l) {
      if (laneFreeAt[l] <= r.startTime + 1e-12) {
        chosen = static_cast<int>(l);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(laneFreeAt.size());
      laneFreeAt.push_back(0.0);
    }
    laneFreeAt[static_cast<std::size_t>(chosen)] = r.finishTime;
    lane[id] = chosen;
  }

  os << "[\n";
  bool first = true;
  for (const dag::Task& t : wf.tasks()) {
    const TaskRecord& r = result.taskRecords[t.id];
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\":\"" << jsonEscape(t.name) << "\",\"cat\":\""
       << jsonEscape(t.type) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << lane[t.id] << ",\"ts\":" << num(r.startTime * 1e6)
       << ",\"dur\":" << num((r.finishTime - r.startTime) * 1e6)
       << ",\"args\":{\"level\":" << t.level << ",\"ready\":"
       << num(r.readyTime) << "}}";
  }
  os << "\n]\n";
}

}  // namespace mcsim::engine
