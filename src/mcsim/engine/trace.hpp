// Human-readable rendering of a traced execution: a per-level summary and a
// text Gantt chart.  Used by the examples and by failure-diagnosis in tests.
#pragma once

#include <ostream>
#include <string>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"

namespace mcsim::engine {

/// Per-level timing/throughput summary (requires a traced result).
void printLevelSummary(std::ostream& os, const dag::Workflow& wf,
                       const ExecutionResult& result);

/// A coarse text Gantt chart: one row per task (capped at `maxRows`),
/// `width` columns spanning the makespan.  Requires a traced result.
void printGantt(std::ostream& os, const dag::Workflow& wf,
                const ExecutionResult& result, std::size_t maxRows = 40,
                std::size_t width = 72);

/// One-paragraph summary of a run (works without tracing).
std::string summarize(const dag::Workflow& wf, const ExecutionResult& result);

}  // namespace mcsim::engine
