// Execution metrics and cost computation.
//
// One `ExecutionResult` captures the paper's four simulation metrics (§5):
// workflow execution time, data transferred in, data transferred out, and
// storage used (area under the resident-bytes curve) — plus the CPU
// accounting needed for the two billing schemes of Questions 1 and 2.
#pragma once

#include <cstddef>
#include <vector>

#include "mcsim/cloud/billing.hpp"
#include "mcsim/cloud/pricing.hpp"
#include "mcsim/util/units.hpp"
#include "mcsim/util/usage_curve.hpp"

namespace mcsim::engine {

/// The paper's three data-management execution modes (§3).
enum class DataMode {
  RemoteIO,        ///< Stage in/out around every task; nothing persists.
  Regular,         ///< Everything persists on shared storage until the end.
  DynamicCleanup,  ///< Files deleted as soon as their last consumer is done.
};

const char* dataModeName(DataMode mode);

/// Per-task timeline entry (populated when tracing is enabled).
struct TaskRecord {
  double readyTime = -1.0;   ///< All dependencies satisfied.
  double startTime = -1.0;   ///< Processor claimed (remote I/O: stage-in begins).
  double execStart = -1.0;   ///< Computation begins.
  double finishTime = -1.0;  ///< Fully complete (remote I/O: stage-out done).
};

/// Everything measured during one simulated execution.
struct ExecutionResult {
  DataMode mode = DataMode::Regular;
  int processors = 0;

  double makespanSeconds = 0.0;       ///< Submission to final stage-out (incl.
                                      ///< VM startup/teardown if configured).
  double cpuBusySeconds = 0.0;        ///< Σ executed task runtimes.
  double processorBusySeconds = 0.0;  ///< Integral of claimed processors
                                      ///< (remote I/O holds during transfers).
  Bytes bytesIn;                      ///< User/archive -> cloud storage.
  Bytes bytesOut;                     ///< Cloud storage -> user.
  double storageByteSeconds = 0.0;    ///< Area under resident-bytes curve.
  Bytes peakStorageBytes;
  std::size_t tasksExecuted = 0;
  std::size_t transfersIn = 0;
  std::size_t transfersOut = 0;
  std::size_t taskRetries = 0;      ///< Failure-injected re-executions.
  std::size_t tasksEverBlocked = 0; ///< Dispatches deferred for storage space.
  std::size_t tasksFailed = 0;      ///< Retry budget exhausted; never finished.
  std::size_t tasksAbandoned = 0;   ///< Skipped: an ancestor failed.
  std::size_t processorCrashes = 0; ///< Spot-style mid-task losses.
  double wastedCpuSeconds = 0.0;    ///< Billed compute lost to crashes,
                                    ///< failed attempts and preemption.
  bool deadlineExceeded = false;    ///< The run was cut off at the deadline.

  /// True iff every task ran to completion (no permanent failures, no
  /// abandoned descendants, no deadline cut-off).
  bool completed() const {
    return tasksFailed == 0 && tasksAbandoned == 0 && !deadlineExceeded;
  }

  std::vector<TaskRecord> taskRecords;  ///< Indexed by TaskId when traced.
  /// The resident-bytes step curve over the whole run — the literal curve
  /// of the paper's §5 storage metric ("a curve that shows the amount of
  /// storage used at the resource with the passage of time").
  UsageCurve storageCurve;

  double storageGBHours() const {
    return storageByteSeconds / kBytesPerGB / kSecondsPerHour;
  }
  /// Fraction of provisioned processor time actually claimed by tasks.
  double utilization() const {
    const double provisioned = processors * makespanSeconds;
    return provisioned > 0.0 ? processorBusySeconds / provisioned : 0.0;
  }
};

/// Price one run.  For Provisioned mode, CPU cost is processors x makespan
/// (Question 1); for Usage, Σ task runtimes (Question 2).  The breakdown's
/// `storage` and `storageCleanup` fields are both set to this run's storage
/// cost; the figure-level drivers overwrite `storageCleanup` from a paired
/// DynamicCleanup run (Fig 4's two storage curves).
cloud::CostBreakdown computeCost(
    const ExecutionResult& result, const cloud::Pricing& pricing,
    cloud::CpuBillingMode cpuMode,
    cloud::BillingGranularity granularity = cloud::BillingGranularity::PerSecond);

}  // namespace mcsim::engine
