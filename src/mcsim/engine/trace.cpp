#include "mcsim/engine/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mcsim/util/table.hpp"

namespace mcsim::engine {
namespace {

void requireTrace(const ExecutionResult& result, const char* fn) {
  if (result.taskRecords.empty())
    throw std::invalid_argument(std::string(fn) +
                                ": result was not traced (EngineConfig::trace)");
}

std::string fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

void printLevelSummary(std::ostream& os, const dag::Workflow& wf,
                       const ExecutionResult& result) {
  requireTrace(result, "printLevelSummary");
  struct LevelStats {
    std::size_t tasks = 0;
    double firstStart = 1e300;
    double lastFinish = 0.0;
    double cpuSeconds = 0.0;
    std::string routine;
  };
  std::map<int, LevelStats> levels;
  for (const dag::Task& t : wf.tasks()) {
    LevelStats& s = levels[t.level];
    const TaskRecord& r = result.taskRecords[t.id];
    ++s.tasks;
    s.firstStart = std::min(s.firstStart, r.startTime);
    s.lastFinish = std::max(s.lastFinish, r.finishTime);
    s.cpuSeconds += t.runtimeSeconds;
    if (s.routine.empty()) s.routine = t.type;
    else if (s.routine != t.type) s.routine = "(mixed)";
  }
  Table table({"level", "routine", "tasks", "first start", "last finish",
               "cpu time"});
  for (const auto& [level, s] : levels) {
    table.addRow({std::to_string(level), s.routine, std::to_string(s.tasks),
                  formatDuration(s.firstStart), formatDuration(s.lastFinish),
                  formatDuration(s.cpuSeconds)});
  }
  table.print(os);
}

void printGantt(std::ostream& os, const dag::Workflow& wf,
                const ExecutionResult& result, std::size_t maxRows,
                std::size_t width) {
  requireTrace(result, "printGantt");
  if (width < 8) width = 8;
  const double span = std::max(result.makespanSeconds, 1e-9);
  std::vector<dag::TaskId> byStart(wf.taskCount());
  for (std::size_t i = 0; i < byStart.size(); ++i)
    byStart[i] = static_cast<dag::TaskId>(i);
  std::sort(byStart.begin(), byStart.end(), [&](dag::TaskId a, dag::TaskId b) {
    return result.taskRecords[a].startTime < result.taskRecords[b].startTime;
  });
  const std::size_t rows = std::min(maxRows, byStart.size());
  const std::size_t step = std::max<std::size_t>(1, byStart.size() / rows);
  os << "gantt (" << rows << " of " << byStart.size() << " tasks, span "
     << formatDuration(span) << ")\n";
  for (std::size_t i = 0; i < byStart.size(); i += step) {
    const dag::TaskId id = byStart[i];
    const TaskRecord& r = result.taskRecords[id];
    std::string row(width, '.');
    auto col = [&](double t) {
      return std::min(width - 1,
                      static_cast<std::size_t>(t / span * (width - 1)));
    };
    const std::size_t a = col(std::max(0.0, r.startTime));
    const std::size_t b = col(std::max(0.0, r.finishTime));
    for (std::size_t c = a; c <= b; ++c) row[c] = '#';
    os << row << "  " << wf.task(id).name << '\n';
  }
}

std::string summarize(const dag::Workflow& wf, const ExecutionResult& result) {
  std::ostringstream os;
  os << wf.name() << " [" << dataModeName(result.mode) << ", "
     << result.processors << " proc]: makespan "
     << formatDuration(result.makespanSeconds) << ", cpu "
     << formatDuration(result.cpuBusySeconds) << ", in "
     << formatBytes(result.bytesIn) << ", out " << formatBytes(result.bytesOut)
     << ", storage " << fixed1(result.storageGBHours()) << " GB-h, peak "
     << formatBytes(result.peakStorageBytes) << ", utilization "
     << fixed1(result.utilization() * 100.0) << "%";
  return os.str();
}

}  // namespace mcsim::engine
