#include "mcsim/engine/metrics.hpp"

#include <stdexcept>

namespace mcsim::engine {

const char* dataModeName(DataMode mode) {
  switch (mode) {
    case DataMode::RemoteIO: return "remote-io";
    case DataMode::Regular: return "regular";
    case DataMode::DynamicCleanup: return "cleanup";
  }
  throw std::logic_error("dataModeName: unknown mode");
}

cloud::CostBreakdown computeCost(const ExecutionResult& result,
                                 const cloud::Pricing& pricing,
                                 cloud::CpuBillingMode cpuMode,
                                 cloud::BillingGranularity granularity) {
  cloud::CostBreakdown cost;
  switch (cpuMode) {
    case cloud::CpuBillingMode::Provisioned: {
      // Each of the P provisioned processors is billed for the whole run.
      const double perProcessor =
          cloud::billedSeconds(result.makespanSeconds, granularity);
      cost.cpu = pricing.cpuCost(perProcessor * result.processors);
      break;
    }
    case cloud::CpuBillingMode::Usage:
      cost.cpu = pricing.cpuCost(
          cloud::billedSeconds(result.cpuBusySeconds, granularity));
      break;
  }
  cost.storage = pricing.storageCost(result.storageByteSeconds);
  cost.storageCleanup = cost.storage;
  cost.transferIn = pricing.transferInCost(result.bytesIn);
  cost.transferOut = pricing.transferOutCost(result.bytesOut);
  return cost;
}

}  // namespace mcsim::engine
