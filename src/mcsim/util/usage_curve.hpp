// Piecewise-constant resource-usage-over-time accounting.
//
// The paper's fourth simulation metric (§5): "The storage used at the
// resource in terms of GB-hours.  This is done by creating a curve that
// shows the amount of storage used at the resource with the passage of time
// and then calculating the area under the curve."  `UsageCurve` is exactly
// that curve: `add`/`remove` record step changes and `integral` computes the
// area in byte-seconds.
//
// Storage layout: one flat vector of step events (the export format) plus
// incremental running accumulators (level, peak, area, last event time)
// maintained on every append.  While events arrive in non-decreasing time
// order — the only order a simulation produces — every query is O(1) and
// replays the exact floating-point accumulation sequence of a full scan, so
// results are bit-identical to the scanning implementation.  Out-of-order
// recording is still supported: it falls back to lazy sort + scan.
#pragma once

#include <cstddef>
#include <vector>

#include "mcsim/util/units.hpp"

namespace mcsim {

/// One step change in resident bytes at a point in time.
struct UsageEvent {
  double time = 0.0;  ///< Simulation time in seconds.
  double delta = 0.0; ///< Signed change in resident bytes.
};

/// Records step changes in a byte-valued level and integrates the resulting
/// piecewise-constant curve.  Events may be recorded out of order; queries
/// sort lazily.
class UsageCurve {
 public:
  /// Record `amount` becoming resident at `time`.
  void add(double time, Bytes amount);
  /// Record `amount` being released at `time`.
  void remove(double time, Bytes amount);

  /// Current level: sum of all recorded deltas (time-independent).
  Bytes current() const { return Bytes(level_); }

  /// Maximum level ever attained.  Zero for an empty curve.
  Bytes peak() const;

  /// Area under the curve from the first event to `endTime`, in
  /// byte-seconds.  Events after `endTime` are ignored; if the level is
  /// nonzero at `endTime` the final segment is truncated there.
  double integralByteSeconds(double endTime) const;

  /// Area under the curve over its full recorded span (last event time is
  /// the end).  A level left nonzero after the last event contributes
  /// nothing beyond it.
  double integralByteSeconds() const;

  /// GB-hours under the curve up to `endTime` — the paper's reporting unit.
  double integralGBHours(double endTime) const;

  /// The step events in time order (ties keep insertion order).
  std::vector<UsageEvent> sortedEvents() const;

  std::size_t eventCount() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

 private:
  void append(double time, double delta);
  void ensureSorted() const;
  /// Full scan of the sorted event list (out-of-order fallback).
  double scanIntegral(double endTime) const;

  std::vector<UsageEvent> events_;
  mutable bool sorted_ = true;

  // Incremental accumulators, valid while events arrive in time order
  // (sorted_ == true).  level_ tracks insertion order and is always valid —
  // current() is order-independent.
  double level_ = 0.0;
  double peak_ = 0.0;
  double area_ = 0.0;     ///< Area from the first event to lastTime_.
  double lastTime_ = 0.0; ///< Time of the latest in-order event.
};

}  // namespace mcsim
