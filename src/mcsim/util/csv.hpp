// Minimal CSV emission (RFC 4180 quoting) so experiment rows can be dumped
// for external plotting alongside the ASCII tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mcsim {

/// Streams rows of cells as CSV, quoting cells that contain commas, quotes
/// or newlines.  The header row is written on construction.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);

  void writeRow(const std::vector<std::string>& cells);

  std::size_t rowsWritten() const { return rows_; }

  /// Quote a single cell per RFC 4180 if needed (exposed for tests).
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace mcsim
