// Contracts — machine-checked invariants for the determinism-critical core.
//
// Three macros, one per contract kind:
//
//   MCSIM_EXPECTS(cond, ...)  precondition  (caller handed us bad state)
//   MCSIM_ENSURES(cond, ...)  postcondition (we are about to hand back bad
//                             state)
//   MCSIM_ASSERT(cond, ...)   internal invariant (our own bookkeeping broke)
//
// Each takes the condition plus optional streamed message fragments:
//
//   MCSIM_ASSERT(heap_[slot.heapPos] == s, "slot ", s, " lost its heap slot");
//
// Gating: the macros compile to real checks only when MCSIM_ENABLE_CONTRACTS
// is defined non-zero (the MCSIM_CONTRACTS CMake option; AUTO enables it for
// Debug builds).  Disabled, they expand to an unevaluated sizeof so the
// condition still has to compile (and variables it names stay "used") but
// costs nothing at runtime — safe on the event hot path.
//
// Failure path: the violation is formatted once, routed through the
// mcsim::logMessage path (so it lands in the same obs log sink / JSONL
// stream as everything else, when one is installed), also written to stderr,
// and then the process aborts.  Tests substitute the terminal step with
// setContractFailureHandler to observe violations without dying.
#pragma once

#include <sstream>
#include <string>

namespace mcsim::contract {

/// Everything known about one failed contract check.
struct Violation {
  const char* kind = "";  ///< "expects" | "ensures" | "assert".
  const char* condition = "";
  const char* file = "";
  int line = 0;
  std::string message;  ///< Optional caller-supplied context ("" if none).
};

/// What happens after the violation is logged.  The default handler aborts;
/// a test handler may throw instead.  If a handler returns normally the
/// process still aborts — a violated contract never continues execution.
using Handler = void (*)(const Violation&);

/// Install `handler` (nullptr restores the default).  Returns the previous
/// handler.  Not thread-safe; intended for test setup.
Handler setContractFailureHandler(Handler handler);

/// Log the violation (obs log sink if installed, stderr always), invoke the
/// handler, and abort if the handler returns.
void fail(const char* kind, const char* condition, const char* file, int line,
          const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <class T, class... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append(os, rest...);
}
template <class... Args>
std::string format(const Args&... args) {
  std::ostringstream os;
  append(os, args...);
  return os.str();
}
}  // namespace detail

}  // namespace mcsim::contract

#ifndef MCSIM_ENABLE_CONTRACTS
#define MCSIM_ENABLE_CONTRACTS 0
#endif

#if MCSIM_ENABLE_CONTRACTS
#define MCSIM_CONTRACT_CHECK_(kind, cond, ...)                               \
  ((cond) ? static_cast<void>(0)                                             \
          : ::mcsim::contract::fail(                                         \
                kind, #cond, __FILE__, __LINE__,                             \
                ::mcsim::contract::detail::format(__VA_ARGS__)))
#else
// Unevaluated: the condition must still compile, so contracts cannot rot in
// Release builds, but no code is generated.
#define MCSIM_CONTRACT_CHECK_(kind, cond, ...)                               \
  static_cast<void>(sizeof((cond) ? 1 : 0))
#endif

#define MCSIM_EXPECTS(cond, ...) \
  MCSIM_CONTRACT_CHECK_("expects", cond, __VA_ARGS__)
#define MCSIM_ENSURES(cond, ...) \
  MCSIM_CONTRACT_CHECK_("ensures", cond, __VA_ARGS__)
#define MCSIM_ASSERT(cond, ...) \
  MCSIM_CONTRACT_CHECK_("assert", cond, __VA_ARGS__)
