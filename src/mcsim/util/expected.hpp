// A minimal expected/either type: a value or an error, never both.
//
// Boundary APIs that validate untrusted input (fuzzed configs, parsed
// files) return Expected so callers can branch on failure without the cost
// or the control-flow surprise of exceptions; internal invariant violations
// keep throwing.  Modeled on std::expected (C++23), which this toolchain
// does not ship yet — only the members the codebase uses are provided.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mcsim {

/// Tag wrapper marking a constructor argument as the error alternative.
template <class E>
struct Unexpected {
  E error;
};

template <class E>
Unexpected<std::decay_t<E>> makeUnexpected(E&& error) {
  return Unexpected<std::decay_t<E>>{std::forward<E>(error)};
}

template <class T, class E = std::string>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> error)
      : state_(std::in_place_index<1>, std::move(error.error)) {}

  bool hasValue() const { return state_.index() == 0; }
  explicit operator bool() const { return hasValue(); }

  /// The value; throws std::logic_error if this holds an error.
  T& value() & { return std::get<0>(require(true)); }
  const T& value() const& {
    return std::get<0>(const_cast<Expected*>(this)->require(true));
  }
  T&& value() && { return std::get<0>(std::move(require(true))); }

  /// The error; throws std::logic_error if this holds a value.
  const E& error() const {
    return std::get<1>(const_cast<Expected*>(this)->require(false));
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, E>& require(bool wantValue) {
    if (hasValue() != wantValue)
      throw std::logic_error(wantValue
                                 ? "Expected: value() on an error result"
                                 : "Expected: error() on a value result");
    return state_;
  }

  std::variant<T, E> state_;
};

}  // namespace mcsim
