// Tiny leveled logger.  The simulator is deterministic and single-threaded;
// logging exists for tracing engine decisions during development and for the
// examples' verbose modes, not for production telemetry.
//
// Messages normally go to stderr; installing an obs::Sink (setLogSink)
// reroutes them onto the telemetry event bus as obs::LogEmitted events, so a
// run has a single logging path and log lines land in the same JSONL stream
// as everything else.  Argument formatting stays lazy either way: logf()
// builds the string only after the threshold check passes.
#pragma once

#include <sstream>
#include <string>

namespace mcsim::obs {
class Sink;
}

namespace mcsim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Route passing messages to `sink` as obs::LogEmitted events instead of
/// stderr; nullptr restores stderr.  Returns the previous sink.
obs::Sink* setLogSink(obs::Sink* sink);
obs::Sink* logSink();

/// Emit a message at `level` to the installed sink, else stderr with a level
/// prefix.
void logMessage(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <class T, class... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append(os, rest...);
}
}  // namespace detail

/// Variadic convenience: logf(LogLevel::Info, "ran ", n, " tasks").
template <class... Args>
void logf(LogLevel level, const Args&... args) {
  if (level < logLevel()) return;
  std::ostringstream os;
  detail::append(os, args...);
  logMessage(level, os.str());
}

}  // namespace mcsim
