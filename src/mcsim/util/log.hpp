// Tiny leveled logger.  The simulator is deterministic and single-threaded;
// logging exists for tracing engine decisions during development and for the
// examples' verbose modes, not for production telemetry.
#pragma once

#include <sstream>
#include <string>

namespace mcsim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit a message at `level` to stderr with a level prefix.
void logMessage(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <class T, class... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append(os, rest...);
}
}  // namespace detail

/// Variadic convenience: logf(LogLevel::Info, "ran ", n, " tasks").
template <class... Args>
void logf(LogLevel level, const Args&... args) {
  if (level < logLevel()) return;
  std::ostringstream os;
  detail::append(os, args...);
  logMessage(level, os.str());
}

}  // namespace mcsim
