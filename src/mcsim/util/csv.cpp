#include "mcsim/util/csv.hpp"

#include <stdexcept>

namespace mcsim {

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : os_(os), columns_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(header[i]);
  }
  os_ << '\n';
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: wrong cell count");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needsQuote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

}  // namespace mcsim
