#include "mcsim/util/json.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace mcsim::json {
namespace {

/// Same formatting contract as the obs JSONL exporter: "%.12g" keeps
/// sub-microsecond resolution on day-long runs while staying compact, and
/// integral values render without a decimal point.
void writeNumber(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os << buf;
}

struct ValueWriter {
  std::ostream& os;

  void operator()(std::nullptr_t) const { os << "null"; }
  void operator()(bool b) const { os << (b ? "true" : "false"); }
  void operator()(double d) const { writeNumber(os, d); }
  void operator()(const std::string& s) const { writeJsonString(os, s); }
  void operator()(const JsonArray& arr) const {
    os << '[';
    bool first = true;
    for (const JsonValue& v : arr) {
      if (!first) os << ',';
      first = false;
      writeJson(os, v);
    }
    os << ']';
  }
  void operator()(const JsonObject& obj) const {
    os << '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) os << ',';
      first = false;
      writeJsonString(os, key);
      os << ':';
      writeJson(os, value);
    }
    os << '}';
  }
};

/// Visit the storage without exposing it: round-trip through the accessors.
void writeValue(std::ostream& os, const JsonValue& v) {
  const ValueWriter w{os};
  if (v.isNull()) w(nullptr);
  else if (v.isBool()) w(v.asBool());
  else if (v.isNumber()) w(v.asNumber());
  else if (v.isString()) w(v.asString());
  else if (v.isArray()) w(v.asArray());
  else w(v.asObject());
}

}  // namespace

void writeJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void writeJson(std::ostream& os, const JsonValue& value) {
  writeValue(os, value);
}

std::string dumpJson(const JsonValue& value) {
  std::ostringstream os;
  writeJson(os, value);
  return os.str();
}

void JsonParser::fail(const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " +
                           std::to_string(pos_));
}

void JsonParser::skipSpace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_])))
    ++pos_;
}

char JsonParser::peek() {
  if (pos_ >= text_.size()) fail("unexpected end");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool JsonParser::consumeWord(const char* word) {
  std::size_t n = 0;
  while (word[n] != '\0') ++n;
  if (text_.compare(pos_, n, word) != 0) return false;
  pos_ += n;
  return true;
}

JsonValue JsonParser::parseValue() {
  skipSpace();
  switch (peek()) {
    case '{': return parseObject();
    case '[': return parseArray();
    case '"': return JsonValue(parseString());
    case 't':
      if (consumeWord("true")) return JsonValue(true);
      fail("bad literal");
    case 'f':
      if (consumeWord("false")) return JsonValue(false);
      fail("bad literal");
    case 'n':
      if (consumeWord("null")) return JsonValue(nullptr);
      fail("bad literal");
    default: return parseNumber();
  }
}

JsonValue JsonParser::parseObject() {
  expect('{');
  JsonObject obj;
  skipSpace();
  if (peek() == '}') {
    ++pos_;
    return JsonValue(std::move(obj));
  }
  while (true) {
    skipSpace();
    std::string key = parseString();
    skipSpace();
    expect(':');
    obj.emplace(std::move(key), parseValue());
    skipSpace();
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect('}');
    return JsonValue(std::move(obj));
  }
}

JsonValue JsonParser::parseArray() {
  expect('[');
  JsonArray arr;
  skipSpace();
  if (peek() == ']') {
    ++pos_;
    return JsonValue(std::move(arr));
  }
  while (true) {
    arr.push_back(parseValue());
    skipSpace();
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect(']');
    return JsonValue(std::move(arr));
  }
}

std::string JsonParser::parseString() {
  expect('"');
  std::string out;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    char c = text_[pos_++];
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    char esc = text_[pos_++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("bad \\u escape");
        unsigned code = static_cast<unsigned>(
            std::stoul(text_.substr(pos_, 4), nullptr, 16));
        pos_ += 4;
        // ASCII only; the exporters never emit anything that needs UTF-8.
        if (code > 0x7f) fail("non-ascii \\u escape");
        out.push_back(static_cast<char>(code));
        break;
      }
      default: fail("bad escape");
    }
  }
}

JsonValue JsonParser::parseNumber() {
  const std::size_t start = pos_;
  if (peek() == '-') ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-'))
    ++pos_;
  if (pos_ == start) fail("expected number");
  std::size_t used = 0;
  const std::string slice = text_.substr(start, pos_ - start);
  const double value = std::stod(slice, &used);
  if (used != slice.size()) fail("bad number");
  return JsonValue(value);
}

JsonValue parseJson(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace mcsim::json
