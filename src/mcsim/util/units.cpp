#include "mcsim/util/units.hpp"

#include <cmath>
#include <cstdio>

namespace mcsim {
namespace {

/// Insert thousands separators into the integer part of a fixed-point
/// rendering ("1234567.89" -> "1,234,567.89").
std::string withThousandsSeparators(const std::string& fixed) {
  const auto dot = fixed.find('.');
  std::string intPart = fixed.substr(0, dot == std::string::npos ? fixed.size() : dot);
  const std::string rest = dot == std::string::npos ? "" : fixed.substr(dot);
  std::string sign;
  if (!intPart.empty() && intPart.front() == '-') {
    sign = "-";
    intPart.erase(intPart.begin());
  }
  std::string grouped;
  int count = 0;
  for (auto it = intPart.rbegin(); it != intPart.rend(); ++it) {
    if (count != 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  return sign + std::string(grouped.rbegin(), grouped.rend()) + rest;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

std::string formatMoney(Money m) {
  return "$" + withThousandsSeparators(fixed(m.value(), 2));
}

std::string formatBytes(Bytes b) {
  const double v = b.value();
  const double a = std::fabs(v);
  if (a >= kBytesPerTB) return fixed(b.tb(), 2) + " TB";
  if (a >= kBytesPerGB) return fixed(b.gb(), 2) + " GB";
  if (a >= kBytesPerMB) return fixed(b.mb(), 2) + " MB";
  if (a >= kBytesPerKB) return fixed(b.kb(), 2) + " KB";
  return fixed(v, 0) + " B";
}

std::string formatDuration(double seconds) {
  const double a = std::fabs(seconds);
  if (a >= kSecondsPerDay) return fixed(seconds / kSecondsPerDay, 2) + " d";
  if (a >= kSecondsPerHour) return fixed(seconds / kSecondsPerHour, 2) + " h";
  if (a >= 60.0) return fixed(seconds / 60.0, 1) + " min";
  return fixed(seconds, 1) + " s";
}

}  // namespace mcsim
