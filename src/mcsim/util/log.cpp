#include "mcsim/util/log.hpp"

#include <iostream>

#include "mcsim/obs/sink.hpp"

namespace mcsim {
namespace {
LogLevel g_level = LogLevel::Warn;
obs::Sink* g_sink = nullptr;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info: return "[info ] ";
    case LogLevel::Warn: return "[warn ] ";
    case LogLevel::Error: return "[error] ";
    case LogLevel::Off: return "";
  }
  return "";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

obs::Sink* setLogSink(obs::Sink* sink) {
  obs::Sink* previous = g_sink;
  g_sink = sink;
  return previous;
}
obs::Sink* logSink() { return g_sink; }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_sink != nullptr) {
    // Log events have no simulation clock in scope: time is -1 by
    // convention (exporters render it as null).
    g_sink->onEvent(
        obs::Event{-1.0, obs::LogEmitted{static_cast<int>(level), message}});
    return;
  }
  std::cerr << prefix(level) << message << '\n';
}

}  // namespace mcsim
