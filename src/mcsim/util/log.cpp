#include "mcsim/util/log.hpp"

#include <iostream>

namespace mcsim {
namespace {
LogLevel g_level = LogLevel::Warn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info: return "[info ] ";
    case LogLevel::Warn: return "[warn ] ";
    case LogLevel::Error: return "[error] ";
    case LogLevel::Off: return "";
  }
  return "";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::cerr << prefix(level) << message << '\n';
}

}  // namespace mcsim
