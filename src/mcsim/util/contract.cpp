#include "mcsim/util/contract.hpp"

#include <cstdio>
#include <cstdlib>

#include "mcsim/util/log.hpp"

namespace mcsim::contract {
namespace {
Handler g_handler = nullptr;

std::string describe(const Violation& v) {
  std::string out = "contract violation (";
  out += v.kind;
  out += ") at ";
  out += v.file;
  out += ':';
  out += std::to_string(v.line);
  out += ": ";
  out += v.condition;
  if (!v.message.empty()) {
    out += " — ";
    out += v.message;
  }
  return out;
}
}  // namespace

Handler setContractFailureHandler(Handler handler) {
  Handler previous = g_handler;
  g_handler = handler;
  return previous;
}

void fail(const char* kind, const char* condition, const char* file, int line,
          const std::string& message) {
  const Violation v{kind, condition, file, line, message};
  const std::string text = describe(v);
  // Through the obs log sink when one is installed (so the violation lands in
  // the run's JSONL stream next to the events that led to it)...
  logMessage(LogLevel::Error, text);
  // ...and unconditionally on stderr: if the sink buffers and we abort, the
  // message must still be visible.
  if (logSink() != nullptr) std::fprintf(stderr, "mcsim: %s\n", text.c_str());
  if (g_handler != nullptr) g_handler(v);
  // Reached with no handler installed, or with one that returned normally: a
  // violated contract never continues execution.
  std::abort();
}

}  // namespace mcsim::contract
