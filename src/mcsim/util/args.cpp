#include "mcsim/util/args.hpp"

namespace mcsim {

ArgParser::ArgParser(std::set<std::string> valueOptions,
                     std::set<std::string> flags)
    : valueOptions_(std::move(valueOptions)), flagOptions_(std::move(flags)) {}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inlineValue;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inlineValue = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    if (flagOptions_.count(name)) {
      if (inlineValue)
        throw std::invalid_argument("--" + name + " takes no value");
      if (!flags_.insert(name).second)
        throw std::invalid_argument("--" + name + " given twice");
      continue;
    }
    if (!valueOptions_.count(name))
      throw std::invalid_argument("unknown option --" + name);
    std::string value;
    if (inlineValue) {
      value = *inlineValue;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("--" + name + " needs a value");
      value = argv[++i];
    }
    if (!values_.emplace(name, std::move(value)).second)
      throw std::invalid_argument("--" + name + " given twice");
  }
}

bool ArgParser::hasFlag(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::optional<std::string> ArgParser::value(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::valueOr(const std::string& name,
                               const std::string& fallback) const {
  return value(name).value_or(fallback);
}

double ArgParser::numberOr(const std::string& name, double fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": bad number '" + *v + "'");
  }
}

int ArgParser::intOr(const std::string& name, int fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": bad integer '" + *v + "'");
  }
}

}  // namespace mcsim
