// Fixed-width ASCII table rendering for the benchmark harness.
//
// Every bench binary reproduces one of the paper's figures/tables as rows of
// text; this keeps the rendering consistent and the bench code focused on
// the experiment itself.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mcsim {

/// Column alignment for rendered cells.
enum class Align { Left, Right };

/// A simple monospaced table: set headers, append string rows, print.
/// Column widths are computed from content; numeric formatting is the
/// caller's job (see `formatMoney` / `formatBytes` / `formatDuration`).
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  /// Append one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> cells);

  /// Render with a header rule and two-space column gutters.
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string toString() const;

  std::size_t rowCount() const { return rows_.size(); }
  std::size_t columnCount() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a section banner ("== title ==") used between bench tables.
std::string sectionBanner(const std::string& title);

}  // namespace mcsim
