// Minimal command-line argument parser for the examples and the CLI tool.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments; unknown options are an error (catching typos beats silently
// ignoring them).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcsim {

class ArgParser {
 public:
  /// Declare the options before parsing.  `flags` take no value.
  ArgParser(std::set<std::string> valueOptions, std::set<std::string> flags);

  /// Parse argv (excluding argv[0]).  Throws std::invalid_argument on
  /// unknown options, missing values, or duplicated options.
  void parse(int argc, const char* const* argv);

  bool hasFlag(const std::string& name) const;
  std::optional<std::string> value(const std::string& name) const;
  std::string valueOr(const std::string& name,
                      const std::string& fallback) const;
  double numberOr(const std::string& name, double fallback) const;
  int intOr(const std::string& name, int fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::set<std::string> valueOptions_;
  std::set<std::string> flagOptions_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mcsim
