// Deterministic seeded randomness for workload generation and property
// tests.  A thin wrapper over std::mt19937_64 so call sites state intent
// (uniform int/real, exponential inter-arrival) and the seed travels with
// the generator.
#pragma once

#include <cstdint>
#include <random>

namespace mcsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0) — used for
  /// Poisson request inter-arrival times in the service simulation.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace mcsim
