#include "mcsim/util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mcsim {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
  if (aligns_.empty()) {
    // Default: first column left (labels), the rest right (numbers).
    aligns_.assign(headers_.size(), Align::Right);
    aligns_.front() = Align::Left;
  }
  if (aligns_.size() != headers_.size())
    throw std::invalid_argument("Table: aligns/headers size mismatch");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row has wrong number of cells");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::toString() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string sectionBanner(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace mcsim
