#include "mcsim/util/xml.hpp"

#include <cctype>

namespace mcsim::xml {

const std::string Element::kEmpty{};

ParseError::ParseError(const std::string& reason, std::size_t offset)
    : std::runtime_error("xml parse error at offset " + std::to_string(offset) +
                         ": " + reason),
      offset_(offset) {}

const std::string& Element::attr(const std::string& key,
                                 const std::string& fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

const std::string& Element::requiredAttr(const std::string& key) const {
  auto it = attributes.find(key);
  if (it == attributes.end())
    throw std::out_of_range("missing required attribute '" + key +
                            "' on element <" + name + ">");
  return it->second;
}

bool Element::hasAttr(const std::string& key) const {
  return attributes.count(key) != 0;
}

std::vector<const Element*> Element::childrenNamed(std::string_view n) const {
  std::vector<const Element*> out;
  for (const auto& c : children)
    if (c->name == n) out.push_back(c.get());
  return out;
}

const Element* Element::firstChild(std::string_view n) const {
  for (const auto& c : children)
    if (c->name == n) return c.get();
  return nullptr;
}

namespace {

/// Recursive-descent cursor over the input.
class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  std::unique_ptr<Element> parseDocument() {
    skipProlog();
    auto root = parseElement();
    skipMiscellaneous();
    if (pos_ != in_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    throw ParseError(reason, pos_);
  }

  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return eof() ? '\0' : in_[pos_]; }
  char get() {
    if (eof()) fail("unexpected end of input");
    return in_[pos_++];
  }
  bool consume(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  void expect(std::string_view lit) {
    if (!consume(lit)) fail("expected '" + std::string(lit) + "'");
  }
  void skipWhitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }

  static bool isNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool isNameChar(char c) {
    return isNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parseName() {
    if (eof() || !isNameStart(peek())) fail("expected name");
    std::size_t start = pos_;
    while (!eof() && isNameChar(in_[pos_])) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  std::string decodeEntity() {
    // Called with pos_ just past '&'.
    std::size_t semi = in_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 8)
      fail("unterminated entity reference");
    std::string_view name = in_.substr(pos_, semi - pos_);
    pos_ = semi + 1;
    if (name == "lt") return "<";
    if (name == "gt") return ">";
    if (name == "amp") return "&";
    if (name == "apos") return "'";
    if (name == "quot") return "\"";
    if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.remove_prefix(1);
      }
      unsigned long code = 0;
      try {
        code = std::stoul(std::string(digits), nullptr, base);
      } catch (const std::exception&) {
        fail("bad character reference");
      }
      if (code == 0 || code > 0x10FFFF) fail("character reference out of range");
      // Encode as UTF-8.
      std::string out;
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
      return out;
    }
    fail("unknown entity '&" + std::string(name) + ";'");
  }

  std::string parseAttributeValue() {
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    std::string value;
    while (true) {
      if (eof()) fail("unterminated attribute value");
      char c = get();
      if (c == quote) break;
      if (c == '<') fail("'<' in attribute value");
      if (c == '&') value += decodeEntity();
      else value.push_back(c);
    }
    return value;
  }

  void skipCommentOrPI() {
    if (consume("<!--")) {
      std::size_t end = in_.find("-->", pos_);
      if (end == std::string_view::npos) fail("unterminated comment");
      pos_ = end + 3;
    } else if (consume("<?")) {
      std::size_t end = in_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated processing instruction");
      pos_ = end + 2;
    } else if (consume("<!DOCTYPE")) {
      // Skip to matching '>' (no internal-subset support).
      std::size_t end = in_.find('>', pos_);
      if (end == std::string_view::npos) fail("unterminated DOCTYPE");
      pos_ = end + 1;
    } else {
      fail("unexpected markup");
    }
  }

  void skipProlog() {
    while (true) {
      skipWhitespace();
      if (in_.substr(pos_, 2) == "<?" || in_.substr(pos_, 4) == "<!--" ||
          in_.substr(pos_, 9) == "<!DOCTYPE") {
        skipCommentOrPI();
      } else {
        break;
      }
    }
  }

  void skipMiscellaneous() {
    while (true) {
      skipWhitespace();
      if (in_.substr(pos_, 2) == "<?" || in_.substr(pos_, 4) == "<!--") {
        skipCommentOrPI();
      } else {
        break;
      }
    }
  }

  std::unique_ptr<Element> parseElement() {
    expect("<");
    auto elem = std::make_unique<Element>();
    elem->name = parseName();
    // Attributes.
    while (true) {
      skipWhitespace();
      if (consume("/>")) return elem;
      if (consume(">")) break;
      std::string key = parseName();
      skipWhitespace();
      expect("=");
      skipWhitespace();
      std::string value = parseAttributeValue();
      if (!elem->attributes.emplace(std::move(key), std::move(value)).second)
        fail("duplicate attribute on <" + elem->name + ">");
    }
    // Content.
    while (true) {
      if (eof()) fail("unterminated element <" + elem->name + ">");
      if (in_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string closing = parseName();
        if (closing != elem->name)
          fail("mismatched closing tag </" + closing + "> for <" + elem->name + ">");
        skipWhitespace();
        expect(">");
        return elem;
      }
      if (in_.substr(pos_, 4) == "<!--" || in_.substr(pos_, 2) == "<?") {
        skipCommentOrPI();
        continue;
      }
      if (peek() == '<') {
        elem->children.push_back(parseElement());
        continue;
      }
      char c = get();
      if (c == '&') elem->text += decodeEntity();
      else elem->text.push_back(c);
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Element> parse(std::string_view input) {
  return Parser(input).parseDocument();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace mcsim::xml
