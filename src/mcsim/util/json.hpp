// Minimal JSON document model: parser + deterministic writer.
//
// Grown out of the test-suite helper (tests/common/json.hpp) when the serve
// layer needed a real request/response codec.  The model is deliberately
// small: a Value is null, bool, double, string, array or object; objects are
// std::map so iteration — and therefore serialized output — is key-ordered
// and byte-stable.  Numbers render with the same "%.12g" contract as the
// obs JSONL exporter, so a value that round-trips through parse/dump is
// byte-identical to one the exporters emitted.  Throws std::runtime_error
// on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace mcsim::json {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(Storage v) : v_(std::move(v)) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(unsigned u) : v_(static_cast<double>(u)) {}
  JsonValue(long long i) : v_(static_cast<double>(i)) {}
  JsonValue(unsigned long i) : v_(static_cast<double>(i)) {}
  JsonValue(unsigned long long i) : v_(static_cast<double>(i)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(JsonArray a) : v_(std::move(a)) {}
  JsonValue(JsonObject o) : v_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool isBool() const { return std::holds_alternative<bool>(v_); }
  bool isNumber() const { return std::holds_alternative<double>(v_); }
  bool isString() const { return std::holds_alternative<std::string>(v_); }
  bool isArray() const { return std::holds_alternative<JsonArray>(v_); }
  bool isObject() const { return std::holds_alternative<JsonObject>(v_); }

  bool asBool() const { return std::get<bool>(v_); }
  double asNumber() const { return std::get<double>(v_); }
  const std::string& asString() const { return std::get<std::string>(v_); }
  const JsonArray& asArray() const { return std::get<JsonArray>(v_); }
  const JsonObject& asObject() const { return std::get<JsonObject>(v_); }

  /// Object member access; throws if absent or not an object.
  const JsonValue& at(const std::string& key) const {
    const JsonObject& obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end())
      throw std::runtime_error("json: missing key '" + key + "'");
    return it->second;
  }
  bool has(const std::string& key) const {
    return isObject() && asObject().count(key) != 0;
  }

 private:
  Storage v_;
};

/// Parse one JSON document; trailing non-space input is an error.
JsonValue parseJson(const std::string& text);

/// Serialize compactly (no whitespace), object keys in map order, numbers
/// as "%.12g" — deterministic bytes for a given value.
void writeJson(std::ostream& os, const JsonValue& value);
std::string dumpJson(const JsonValue& value);

/// Escape + quote a string the same way the writer does — shared with the
/// obs JSONL exporter so event logs and serve responses agree on bytes.
void writeJsonString(std::ostream& os, const std::string& s);

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what);

  void skipSpace();
  char peek();
  void expect(char c);
  bool consumeWord(const char* word);
  JsonValue parseValue();
  JsonValue parseObject();
  JsonValue parseArray();
  std::string parseString();
  JsonValue parseNumber();

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace mcsim::json
