#include "mcsim/util/usage_curve.hpp"

#include <algorithm>
#include <cmath>

#include "mcsim/util/contract.hpp"

namespace mcsim {

void UsageCurve::append(double time, double delta) {
  MCSIM_EXPECTS(std::isfinite(time) && std::isfinite(delta),
                "non-finite usage event (t=", time, ", delta=", delta, ")");
  if (events_.empty()) {
    lastTime_ = time;
  } else if (time < events_.back().time) {
    sorted_ = false;
  } else if (sorted_ && time > lastTime_) {
    // Same accumulation step the scanning integral performs: close the
    // segment [lastTime_, time) at the pre-event level.
    area_ += level_ * (time - lastTime_);
    lastTime_ = time;
  }
  events_.push_back({time, delta});
  level_ += delta;
  if (sorted_ && level_ > peak_) peak_ = level_;
}

void UsageCurve::add(double time, Bytes amount) {
  MCSIM_EXPECTS(amount.value() >= 0.0, "negative add of ", amount.value(),
                " bytes — use remove()");
  append(time, amount.value());
}

void UsageCurve::remove(double time, Bytes amount) {
  MCSIM_EXPECTS(amount.value() >= 0.0, "negative remove of ", amount.value(),
                " bytes — use add()");
  append(time, -amount.value());
}

void UsageCurve::ensureSorted() const {
  if (sorted_) return;
  auto* self = const_cast<UsageCurve*>(this);
  std::stable_sort(self->events_.begin(), self->events_.end(),
                   [](const UsageEvent& a, const UsageEvent& b) { return a.time < b.time; });
  // sorted_ stays false: it also marks the incremental accumulators
  // (peak_/area_/lastTime_) as stale, so queries keep scanning.
}

Bytes UsageCurve::peak() const {
  if (sorted_) return Bytes(peak_);
  ensureSorted();
  double level = 0.0;
  double best = 0.0;
  for (const auto& e : events_) {
    level += e.delta;
    best = std::max(best, level);
  }
  return Bytes(best);
}

double UsageCurve::scanIntegral(double endTime) const {
  ensureSorted();
  double area = 0.0;
  double level = 0.0;
  double prev = events_.empty() ? endTime : events_.front().time;
  for (const auto& e : events_) {
    const double t = std::min(e.time, endTime);
    if (t > prev) {
      area += level * (t - prev);
      prev = t;
    }
    if (e.time > endTime) {
      // All later events are beyond the horizon; the current level persists
      // to endTime.
      break;
    }
    level += e.delta;
  }
  if (endTime > prev) area += level * (endTime - prev);
  return area;
}

double UsageCurve::integralByteSeconds(double endTime) const {
  if (events_.empty()) return scanIntegral(endTime);
  if (sorted_ && endTime >= lastTime_) {
    // O(1): the running area covers [first, lastTime_]; extend the final
    // segment to the horizon, exactly as the scan's last step does.
    MCSIM_ASSERT(lastTime_ == events_.back().time,
                 "incremental accumulator out of step: lastTime_=", lastTime_,
                 " but newest event is at ", events_.back().time);
    double area = area_;
    if (endTime > lastTime_) area += level_ * (endTime - lastTime_);
    return area;
  }
  return scanIntegral(endTime);
}

double UsageCurve::integralByteSeconds() const {
  if (events_.empty()) return 0.0;
  if (sorted_) return area_;
  ensureSorted();
  return scanIntegral(events_.back().time);
}

double UsageCurve::integralGBHours(double endTime) const {
  return integralByteSeconds(endTime) / kBytesPerGB / kSecondsPerHour;
}

std::vector<UsageEvent> UsageCurve::sortedEvents() const {
  ensureSorted();
  return events_;
}

}  // namespace mcsim
