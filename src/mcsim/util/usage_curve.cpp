#include "mcsim/util/usage_curve.hpp"

#include <algorithm>
#include <cmath>

namespace mcsim {

void UsageCurve::add(double time, Bytes amount) {
  if (!events_.empty() && time < events_.back().time) sorted_ = false;
  events_.push_back({time, amount.value()});
}

void UsageCurve::remove(double time, Bytes amount) {
  if (!events_.empty() && time < events_.back().time) sorted_ = false;
  events_.push_back({time, -amount.value()});
}

Bytes UsageCurve::current() const {
  double level = 0.0;
  for (const auto& e : events_) level += e.delta;
  return Bytes(level);
}

void UsageCurve::ensureSorted() const {
  if (sorted_) return;
  auto* self = const_cast<UsageCurve*>(this);
  std::stable_sort(self->events_.begin(), self->events_.end(),
                   [](const UsageEvent& a, const UsageEvent& b) { return a.time < b.time; });
  self->sorted_ = true;
}

Bytes UsageCurve::peak() const {
  ensureSorted();
  double level = 0.0;
  double best = 0.0;
  for (const auto& e : events_) {
    level += e.delta;
    best = std::max(best, level);
  }
  return Bytes(best);
}

double UsageCurve::integralByteSeconds(double endTime) const {
  ensureSorted();
  double area = 0.0;
  double level = 0.0;
  double prev = events_.empty() ? endTime : events_.front().time;
  for (const auto& e : events_) {
    const double t = std::min(e.time, endTime);
    if (t > prev) {
      area += level * (t - prev);
      prev = t;
    }
    if (e.time > endTime) {
      // All later events are beyond the horizon; the current level persists
      // to endTime.
      break;
    }
    level += e.delta;
  }
  if (endTime > prev) area += level * (endTime - prev);
  return area;
}

double UsageCurve::integralByteSeconds() const {
  if (events_.empty()) return 0.0;
  ensureSorted();
  return integralByteSeconds(events_.back().time);
}

double UsageCurve::integralGBHours(double endTime) const {
  return integralByteSeconds(endTime) / kBytesPerGB / kSecondsPerHour;
}

std::vector<UsageEvent> UsageCurve::sortedEvents() const {
  ensureSorted();
  return events_;
}

}  // namespace mcsim
