// Strong value types for the quantities the cost model trades in.
//
// The paper (§3) mixes GB-months, GB, CPU-hours and then normalizes
// everything to per-second rates; mixing raw doubles for bytes and dollars is
// exactly the kind of unit soup that produced off-by-1e9 bugs in early
// drafts of this code.  `Bytes` and `Money` are zero-overhead wrappers with
// explicit construction and explicit unit-named accessors.
//
// Conventions (documented once, used everywhere):
//   * time is `double` seconds (the simulator clock unit),
//   * 1 GB = 1e9 bytes (SI).  This is what the paper uses: with SI gigabytes
//     the archival break-evens come out to exactly 21.52 / 24.25 / 25.12
//     months (§6, Question 3).
//   * 1 month = 30 days (Amazon's 2008 GB-month accounting convention).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mcsim {

/// Seconds per unit of the billing-time vocabulary used by the paper.
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 24.0 * kSecondsPerHour;
inline constexpr double kSecondsPerMonth = 30.0 * kSecondsPerDay;

/// SI byte multiples (the paper's GB is 1e9 bytes).
inline constexpr double kBytesPerKB = 1e3;
inline constexpr double kBytesPerMB = 1e6;
inline constexpr double kBytesPerGB = 1e9;
inline constexpr double kBytesPerTB = 1e12;

/// An amount of data.  Internally a double byte count: file sizes in this
/// domain are statistical calibrations, not addressable memory, so
/// fractional bytes are acceptable and simplify scaling (CCR rescaling
/// multiplies sizes by arbitrary ratios).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double count) : count_(count) {}

  static constexpr Bytes fromKB(double kb) { return Bytes(kb * kBytesPerKB); }
  static constexpr Bytes fromMB(double mb) { return Bytes(mb * kBytesPerMB); }
  static constexpr Bytes fromGB(double gb) { return Bytes(gb * kBytesPerGB); }
  static constexpr Bytes fromTB(double tb) { return Bytes(tb * kBytesPerTB); }

  constexpr double value() const { return count_; }
  constexpr double kb() const { return count_ / kBytesPerKB; }
  constexpr double mb() const { return count_ / kBytesPerMB; }
  constexpr double gb() const { return count_ / kBytesPerGB; }
  constexpr double tb() const { return count_ / kBytesPerTB; }

  constexpr Bytes& operator+=(Bytes o) { count_ += o.count_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { count_ -= o.count_; return *this; }
  constexpr Bytes& operator*=(double s) { count_ *= s; return *this; }
  constexpr Bytes& operator/=(double s) { count_ /= s; return *this; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.count_ + b.count_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.count_ - b.count_); }
  friend constexpr Bytes operator*(Bytes a, double s) { return Bytes(a.count_ * s); }
  friend constexpr Bytes operator*(double s, Bytes a) { return Bytes(a.count_ * s); }
  friend constexpr Bytes operator/(Bytes a, double s) { return Bytes(a.count_ / s); }
  /// Ratio of two data amounts (dimensionless).
  friend constexpr double operator/(Bytes a, Bytes b) { return a.count_ / b.count_; }

  friend constexpr auto operator<=>(Bytes, Bytes) = default;

 private:
  double count_ = 0.0;
};

/// Monetary amount in US dollars.  Double precision is ample: the paper's
/// largest figure is $34,632 and its smallest distinction is fractions of a
/// cent on per-second rates.
class Money {
 public:
  constexpr Money() = default;
  constexpr explicit Money(double dollars) : dollars_(dollars) {}

  static constexpr Money dollars(double d) { return Money(d); }
  static constexpr Money cents(double c) { return Money(c / 100.0); }
  static constexpr Money zero() { return Money(0.0); }

  constexpr double value() const { return dollars_; }

  constexpr Money& operator+=(Money o) { dollars_ += o.dollars_; return *this; }
  constexpr Money& operator-=(Money o) { dollars_ -= o.dollars_; return *this; }
  constexpr Money& operator*=(double s) { dollars_ *= s; return *this; }
  constexpr Money& operator/=(double s) { dollars_ /= s; return *this; }

  friend constexpr Money operator+(Money a, Money b) { return Money(a.dollars_ + b.dollars_); }
  friend constexpr Money operator-(Money a, Money b) { return Money(a.dollars_ - b.dollars_); }
  friend constexpr Money operator*(Money a, double s) { return Money(a.dollars_ * s); }
  friend constexpr Money operator*(double s, Money a) { return Money(a.dollars_ * s); }
  friend constexpr Money operator/(Money a, double s) { return Money(a.dollars_ / s); }
  friend constexpr double operator/(Money a, Money b) { return a.dollars_ / b.dollars_; }

  friend constexpr auto operator<=>(Money, Money) = default;

 private:
  double dollars_ = 0.0;
};

/// "$1,234.57"-style rendering (used by report tables).
std::string formatMoney(Money m);

/// "1.30 GB" / "557.9 MB"-style rendering with an automatically chosen unit.
std::string formatBytes(Bytes b);

/// "5.5 h" / "18.0 min" / "42 s"-style rendering of a duration in seconds.
std::string formatDuration(double seconds);

}  // namespace mcsim
