// Minimal XML document parser for DAX workflow descriptions.
//
// The paper's workflows "are in XML format" produced by Montage's mDAG, and
// the authors "wrote a program for parsing the workflow description and
// creating an adjacency list representation of the graph" (§5).  This is
// that program's equivalent.  It supports the subset of XML that DAX files
// use: elements, attributes (single- or double-quoted), character data,
// comments, processing instructions/XML declarations, and the five
// predefined entities.  No namespaces-awareness (prefixes are kept verbatim
// in names), no DTDs, no CDATA.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mcsim::xml {

/// Parse failure; `what()` includes a byte offset and a short reason.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& reason, std::size_t offset);
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// An element node.  Children are owned; text content is the concatenation
/// of character data directly inside this element (whitespace preserved,
/// entities decoded).
struct Element {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;

  /// Attribute value or `fallback` if absent.
  const std::string& attr(const std::string& key,
                          const std::string& fallback = kEmpty) const;
  /// Attribute value; throws std::out_of_range if absent.
  const std::string& requiredAttr(const std::string& key) const;
  bool hasAttr(const std::string& key) const;

  /// All direct children with the given element name.
  std::vector<const Element*> childrenNamed(std::string_view name) const;
  /// First direct child with the given name, or nullptr.
  const Element* firstChild(std::string_view name) const;

 private:
  static const std::string kEmpty;
};

/// Parse a complete document and return its root element.
/// Throws ParseError on malformed input.
std::unique_ptr<Element> parse(std::string_view input);

/// Escape text for use as XML character data or an attribute value.
std::string escape(std::string_view text);

}  // namespace mcsim::xml
