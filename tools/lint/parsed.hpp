// Internal shared representation for mcsim-lint passes.
//
// lint.cpp owns the lexer and the line-local rule families; the v2
// project-wide passes (include graph / layering in graph.cpp, concurrency in
// concurrency.cpp, float determinism in floats.cpp) consume the same parsed
// views.  This header is the seam between them: one ParsedFile per input,
// carrying the stripped code view, the line index, the pre-extracted
// `#include` directives (from the raw text — the code view blanks quoted
// paths), and the collected allow() suppressions.  Everything here is an
// implementation detail of the linter; the public surface stays in lint.hpp.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace mcsim::lint::detail {

struct Suppression {
  int line = 0;    ///< Line carrying the allow() comment.
  int target = 0;  ///< Line the suppression covers (first code line at or
                   ///< after `line`; a trailing comment covers its own line).
  std::string rule;
  bool used = false;
  bool known = true;
};

/// One `#include` directive (recovered from the raw source line).
struct IncludeDirective {
  int line = 1;
  std::string path;  ///< As written, without quotes/brackets.
  bool angled = false;
};

struct ParsedFile {
  std::string path;
  std::vector<SourceLine> lines;
  std::string blob;                    ///< Code views joined by '\n'.
  std::vector<std::size_t> lineStart;  ///< Offset of each line in blob.
  std::vector<bool> preproc;           ///< Line starts with '#'.
  std::vector<Suppression> sups;
  std::vector<IncludeDirective> includes;
};

using Diags = std::vector<Diagnostic>;

// Rule ids shared between lint.cpp's catalog and the pass sources.
inline constexpr const char* kLayerOrder = "layer-order";
inline constexpr const char* kLayerConfig = "layer-config";
inline constexpr const char* kIncludeCycle = "include-cycle";
inline constexpr const char* kPragmaOnce = "pragma-once";
inline constexpr const char* kMissingInclude = "missing-include";
inline constexpr const char* kRawMutexLock = "raw-mutex-lock";
inline constexpr const char* kLockOrder = "lock-order";
inline constexpr const char* kThreadDetach = "thread-detach";
inline constexpr const char* kCvWaitPredicate = "cv-wait-predicate";
inline constexpr const char* kFloatEquality = "float-equality";

void diag(Diags& out, const ParsedFile& f, int line, const char* rule,
          std::string message);

int lineOf(const ParsedFile& f, std::size_t offset);
bool onPreprocLine(const ParsedFile& f, std::size_t offset);

// -- small text helpers shared by every pass ---------------------------------

inline bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(std::string_view s);
bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);
std::size_t nextNonSpace(const std::string& s, std::size_t i);
std::size_t prevNonSpace(const std::string& s, std::size_t i);
std::size_t matchAngle(const std::string& s, std::size_t pos);
std::size_t matchParen(const std::string& s, std::size_t pos);
std::size_t matchBrace(const std::string& s, std::size_t pos);
bool wholeWordIn(std::string_view haystack, std::string_view word);

inline bool pathUnder(const ParsedFile& f, std::string_view prefix) {
  return startsWith(f.path, prefix);
}

/// Invoke fn(name, begin, end) for every identifier token in `blob`.
template <typename Fn>
void forEachIdentifier(const std::string& blob, Fn fn) {
  const std::size_t n = blob.size();
  std::size_t i = 0;
  while (i < n) {
    if (isIdentChar(blob[i]) &&
        !std::isdigit(static_cast<unsigned char>(blob[i]))) {
      std::size_t b = i;
      while (i < n && isIdentChar(blob[i])) ++i;
      fn(std::string_view(blob).substr(b, i - b), b, i);
    } else {
      ++i;
    }
  }
}

/// For a member call `base.name(` / `base->name(` / `base[i].name(` where
/// `begin` indexes the first char of `name`, return the base identifier
/// ("base"), or "" when the shape does not match.
std::string memberCallBase(const std::string& blob, std::size_t begin);

// -- pass entry points (wired together by lintFiles in lint.cpp) -------------

/// Project passes: pragma-once, include cycles, layering against `layers`
/// (skipped when null), and the IWYU-lite qualified-name check.
void runGraphPasses(const std::vector<ParsedFile>& files,
                    const LayerGraph* layers, Diags& out);

/// Concurrency family: raw mutex lock/unlock, lock-order inversion,
/// thread detach, condition-variable wait without predicate.
void runConcurrencyPasses(const std::vector<ParsedFile>& files, Diags& out);

/// Float-determinism family: exact ==/!= against float literals outside
/// test code.  (The hash-ordered accumulation rule lives with the
/// unordered-iteration scanner in lint.cpp, which owns the declared-name
/// index it needs.)
void runFloatPasses(const std::vector<ParsedFile>& files, Diags& out);

}  // namespace mcsim::lint::detail
