// mcsim-lint — determinism-focused static analysis for the mcsim tree.
//
// The simulator's value rests on bit-stable replay: every cost table in the
// paper is a point comparison between runs, and the memo cache plus the
// reference-core differential tests assume a scenario's outcome is a pure
// function of its inputs.  Sanitizers catch dynamic violations; this tool
// statically blocks the classic regressions before they compile into the
// binary — wall-clock reads, unseeded randomness, hash-order iteration
// feeding ordered output, std::function or stray heap allocation creeping
// back into the sim hot path, and taxonomy drift between obs::EventKind and
// its exporters.
//
// Implementation is a lightweight lexer (comment/string stripping with line
// fidelity) plus per-rule scanners over the stripped "code view" — no
// libclang, no build dependency, so the linter runs in seconds on a bare
// checkout and is itself unit-testable against fixture trees.
//
// Suppressions: a comment carrying the tool name, a colon, and allow(rule-id)
// silences one rule for one line — its own line when trailing code, or the
// first code line after the comment block when standalone (so a multi-line
// justification can precede the code).  Unused suppressions are themselves
// diagnosed (rule `unused-suppression`) so stale allows cannot accumulate.
//
// v2 grows the per-line scanner into a project-wide semantic analyzer:
//  - an include-graph pass maps files to modules, checks every include edge
//    against the checked-in layering DAG (tools/lint/layers.json; see
//    layers.hpp), diagnoses include cycles and missing #pragma once, and
//    flags use of a sibling module's symbols without a direct include;
//  - a concurrency family (raw mutex lock/unlock outside RAII guards,
//    inconsistent pairwise lock order within a TU, std::thread detach,
//    condition-variable wait without predicate);
//  - a float-determinism family (accumulation inside hash-ordered
//    iteration, exact ==/!= against float literals outside test code);
//  - SARIF 2.1.0 / GitHub-annotation renderers and a baseline file
//    (tools/lint/baseline.json; see baseline.hpp) so new rules can land
//    strict while pre-existing findings are tracked, not blocking.
#pragma once

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace mcsim::lint {

struct LayerGraph;  // layers.hpp
struct Baseline;    // baseline.hpp

/// One finding, formatted by callers as `file:line: [rule] message`.
struct Diagnostic {
  std::string file;  ///< Path relative to the linted root (generic slashes).
  int line = 1;      ///< 1-based.
  std::string rule;
  std::string message;
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule catalog (stable order; ids are the suppression vocabulary).
const std::vector<RuleInfo>& ruleCatalog();

/// True if `id` names a known rule (unknown allow() targets are diagnosed).
bool isKnownRule(const std::string& id);

/// An in-memory file to lint.  `path` should be root-relative with forward
/// slashes — the path prefix (src/mcsim/sim/, bench/, ...) scopes
/// path-sensitive rules.
struct FileContent {
  std::string path;
  std::string text;
};

struct Options {
  /// Diagnose allow() suppression comments that suppressed nothing.
  bool checkUnusedSuppressions = true;

  /// Layering DAG for the include-graph pass; layering diagnostics
  /// (layer-order, layer-config) are skipped when null.  lintTree auto-loads
  /// <root>/tools/lint/layers.json when this is unset (see below).
  const LayerGraph* layers = nullptr;

  /// Baseline for --check-suppressions-against-baseline: when set together
  /// with checkSuppressionsAgainstBaseline, an allow() whose target
  /// (file, line, rule) is also tracked by the baseline is flagged as
  /// redundant-suppression.  Baseline *partitioning* is the caller's job
  /// (applyBaseline in baseline.hpp) — lintFiles always returns the full
  /// finding set.
  const Baseline* baseline = nullptr;
  bool checkSuppressionsAgainstBaseline = false;
};

// -- lexer (exposed for tests) ------------------------------------------------

/// One physical line split into a code view (string/char-literal contents and
/// comments blanked with spaces, lengths preserved) and the comment text.
struct SourceLine {
  std::string code;
  std::string comment;
};

/// Strip comments and literal contents, preserving line structure.  Handles
/// //, /*...*/, "..." with escapes, '...', and R"delim(...)delim".
std::vector<SourceLine> stripSource(const std::string& text);

// -- entry points -------------------------------------------------------------

/// Lint a set of in-memory files (the unit-test entry point).  Diagnostics
/// are sorted by (file, line, rule) and already suppression-filtered.
std::vector<Diagnostic> lintFiles(const std::vector<FileContent>& files,
                                  const Options& options = {});

/// Walk `root`'s subdirectories (default: src, tools, bench, examples,
/// tests), collecting *.hpp / *.cpp / *.hpp.in, and lint them.  Directories
/// named `fixtures` (seeded-violation test trees) are skipped.  When
/// `options.layers` is unset, `<root>/tools/lint/layers.json` is loaded
/// automatically if present (a malformed file is itself a layer-config
/// finding).  Returns diagnostics; sets `error` (if non-null) and returns
/// empty on I/O failure.
std::vector<Diagnostic> lintTree(const std::filesystem::path& root,
                                 std::vector<std::string> subdirs = {},
                                 const Options& options = {},
                                 std::string* error = nullptr);

/// Module-level include edges actually present in `files`, resolved through
/// `graph` (virtual sub-module overrides included): sorted unique
/// (from, to) pairs, self-edges omitted, files outside the graph skipped.
/// tests/lint/layers_test.cpp pins these edges against the committed DAG.
std::vector<std::pair<std::string, std::string>> moduleEdges(
    const std::vector<FileContent>& files, const LayerGraph& graph);

/// Render diagnostics as a stable JSON document (for CI consumption):
/// {"version":1,"findings":[{"file","line","rule","message"},...],
///  "counts":{"<rule>":n,...},"total":n}
std::string toJson(const std::vector<Diagnostic>& diagnostics);

/// Render findings as SARIF 2.1.0 (one run, driver "mcsim-lint", the full
/// rule catalog, one result per finding).  Baselined findings are emitted
/// with `suppressions: [{kind: "external"}]` so code-scanning UIs show them
/// as tracked, not new.  Deterministic bytes for given inputs.
std::string toSarif(const std::vector<Diagnostic>& fresh,
                    const std::vector<Diagnostic>& baselined);

/// Render findings as GitHub workflow commands (`::error file=..,line=..`);
/// baselined findings become `::notice` annotations.
std::string toGithubAnnotations(const std::vector<Diagnostic>& fresh,
                                const std::vector<Diagnostic>& baselined);

}  // namespace mcsim::lint
