// Float-determinism family: exact ==/!= comparison against a floating-point
// literal.  The simulator's invariants (cost tables, makespan comparisons,
// memo-cache hits) are all threatened by "it happened to be exactly 0.25";
// outside tests/ an exact comparison needs a tolerance, an integer
// representation, or a justified allow() stating why exactness is intended
// (e.g. comparing against a sentinel the code itself assigned).
//
// The hash-ordered accumulation half of the family lives with the
// unordered-iteration scanner in lint.cpp, which owns the declared-name
// index it needs.
#include <string>
#include <string_view>
#include <vector>

#include "parsed.hpp"

namespace mcsim::lint::detail {
namespace {

/// True for tokens like 1.0, .5, 2., 1e9, 0x1p3 is NOT handled (hex floats
/// are vanishingly rare here), 1.0f, 3F, 1'000.0 — i.e. the token parses as
/// a floating-point literal.
bool isFloatLiteral(std::string_view t) {
  if (t.empty()) return false;
  std::size_t end = t.size();
  bool floatSuffix = false;
  while (end > 0 && (t[end - 1] == 'f' || t[end - 1] == 'F' ||
                     t[end - 1] == 'l' || t[end - 1] == 'L')) {
    if (t[end - 1] == 'f' || t[end - 1] == 'F') floatSuffix = true;
    --end;
  }
  const std::string_view core = t.substr(0, end);
  if (core.empty()) return false;
  if (core.size() > 1 && core[0] == '0' &&
      (core[1] == 'x' || core[1] == 'X'))
    return false;
  bool digit = false, dot = false, exponent = false;
  for (std::size_t i = 0; i < core.size(); ++i) {
    const char c = core[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.') {
      if (dot || exponent) return false;
      dot = true;
    } else if ((c == 'e' || c == 'E') && digit) {
      if (exponent) return false;
      exponent = true;
      if (i + 1 < core.size() && (core[i + 1] == '+' || core[i + 1] == '-'))
        ++i;
    } else if (c == '\'') {
      continue;  // digit separator
    } else {
      return false;
    }
  }
  if (!digit) return false;
  return dot || exponent || floatSuffix;
}

/// The token ending at the last non-space char before `i` (identifier
/// chars, '.', digit separators, and an exponent sign).
std::string tokenBefore(const std::string& b, std::size_t i) {
  const std::size_t last = prevNonSpace(b, i);
  if (last == std::string::npos) return "";
  std::size_t s = last + 1;
  while (s > 0) {
    const char c = b[s - 1];
    if (isIdentChar(c) || c == '.' || c == '\'') {
      --s;
    } else if ((c == '+' || c == '-') && s >= 2 &&
               (b[s - 2] == 'e' || b[s - 2] == 'E')) {
      --s;
    } else {
      break;
    }
  }
  return b.substr(s, last + 1 - s);
}

/// The token starting at the first non-space char after `i` (skipping a
/// unary sign).
std::string tokenAfter(const std::string& b, std::size_t i) {
  std::size_t s = nextNonSpace(b, i);
  while (s < b.size() && (b[s] == '+' || b[s] == '-'))
    s = nextNonSpace(b, s + 1);
  std::size_t e = s;
  while (e < b.size()) {
    const char c = b[e];
    if (isIdentChar(c) || c == '.' || c == '\'') {
      ++e;
    } else if ((c == '+' || c == '-') && e >= 1 &&
               (b[e - 1] == 'e' || b[e - 1] == 'E') && e > s) {
      ++e;
    } else {
      break;
    }
  }
  return b.substr(s, e - s);
}

void scanFloatEquality(const ParsedFile& f, Diags& out) {
  // tests/ pin exact values on purpose; fixtures under tests/ are separate
  // trees whose paths the fixture loader rewrites to src/-style anyway.
  if (pathUnder(f, "tests/")) return;
  const std::string& b = f.blob;
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    const char c = b[i];
    const bool eq = c == '=' && b[i + 1] == '=';
    const bool ne = c == '!' && b[i + 1] == '=';
    if (!eq && !ne) continue;
    if (i + 2 < b.size() && b[i + 2] == '=') continue;  // ===, !== (n/a)
    if (eq && i > 0 &&
        (b[i - 1] == '=' || b[i - 1] == '!' || b[i - 1] == '<' ||
         b[i - 1] == '>'))
      continue;  // second char of ==, !=, <=, >=
    if (onPreprocLine(f, i)) continue;

    const std::string left = tokenBefore(b, i);
    const std::string right = tokenAfter(b, i + 2);
    if (left == "operator") continue;
    if (!isFloatLiteral(left) && !isFloatLiteral(right)) continue;
    diag(out, f, lineOf(f, i), kFloatEquality,
         std::string("exact ") + (eq ? "==" : "!=") + " against "
         "floating-point literal `" + (isFloatLiteral(left) ? left : right) +
         "`; use a tolerance or justify exactness with an allow()");
    ++i;  // skip the second operator char
  }
}

}  // namespace

void runFloatPasses(const std::vector<ParsedFile>& files, Diags& out) {
  for (const ParsedFile& f : files) scanFloatEquality(f, out);
}

}  // namespace mcsim::lint::detail
