// Include-graph passes: #pragma once, include cycles, layering against the
// checked-in DAG (tools/lint/layers.json), and the IWYU-lite check that a
// file using another module's symbols includes that module directly.
#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "layers.hpp"
#include "parsed.hpp"

namespace mcsim::lint::detail {
namespace {

bool isHeader(const std::string& path) {
  return endsWith(path, ".hpp") || endsWith(path, ".hpp.in");
}

/// Root-relative path an include directive resolves to inside the linted
/// set, or "" when it points outside (system headers, generated files).
std::string resolveInclude(const std::set<std::string>& known,
                           const std::string& fromPath,
                           const IncludeDirective& d) {
  if (d.angled) return "";
  // mcsim/-rooted includes live under src/.
  if (known.count("src/" + d.path)) return "src/" + d.path;
  // Quoted sibling include ("lint.hpp" next to lint.cpp).
  const std::size_t slash = fromPath.rfind('/');
  if (slash != std::string::npos) {
    const std::string sibling = fromPath.substr(0, slash + 1) + d.path;
    if (known.count(sibling)) return sibling;
  }
  // Repo-root-relative (tests including "tests/common/...").
  if (known.count(d.path)) return d.path;
  return "";
}

void checkPragmaOnce(const std::vector<ParsedFile>& files, Diags& out) {
  for (const ParsedFile& f : files) {
    if (!isHeader(f.path)) continue;
    bool found = false;
    for (std::size_t li = 0; li < f.lines.size() && !found; ++li) {
      const std::string& code = f.lines[li].code;
      const std::size_t hash = code.find('#');
      if (hash == std::string::npos ||
          !trim(code.substr(0, hash)).empty())
        continue;
      const std::string rest = trim(code.substr(hash + 1));
      if (startsWith(rest, "pragma") &&
          trim(rest.substr(6)).rfind("once", 0) == 0)
        found = true;
    }
    if (!found)
      diag(out, f, 1, kPragmaOnce,
           "header has no #pragma once; a double inclusion breaks the "
           "one-definition rule");
  }
}

// -- include cycles (Tarjan SCC over resolved header edges) ------------------

struct CycleFinder {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> index, low, sccOf;
  std::vector<bool> onStack;
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;

  explicit CycleFinder(const std::vector<std::vector<int>>& a)
      : adj(a),
        index(a.size(), -1),
        low(a.size(), 0),
        sccOf(a.size(), -1),
        onStack(a.size(), false) {}

  void visit(int v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    onStack[v] = true;
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (index[w] < 0) {
        visit(w);
        low[v] = std::min(low[v], low[w]);
      } else if (onStack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<int> scc;
      int w;
      do {
        w = stack.back();
        stack.pop_back();
        onStack[w] = false;
        sccOf[w] = static_cast<int>(sccs.size());
        scc.push_back(w);
      } while (w != v);
      sccs.push_back(std::move(scc));
    }
  }
};

void checkIncludeCycles(const std::vector<ParsedFile>& files,
                        const std::set<std::string>& known,
                        const std::map<std::string, int>& indexOf,
                        Diags& out) {
  std::vector<std::vector<int>> adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const IncludeDirective& d : files[i].includes) {
      const std::string target = resolveInclude(known, files[i].path, d);
      if (target.empty()) continue;
      const auto it = indexOf.find(target);
      if (it != indexOf.end() && it->second != static_cast<int>(i))
        adj[i].push_back(it->second);
    }
  }

  CycleFinder finder(adj);
  for (std::size_t i = 0; i < files.size(); ++i)
    if (finder.index[static_cast<int>(i)] < 0)
      finder.visit(static_cast<int>(i));

  for (std::vector<int>& scc : finder.sccs) {
    if (scc.size() < 2) continue;
    std::sort(scc.begin(), scc.end(), [&](int a, int b) {
      return files[static_cast<std::size_t>(a)].path <
             files[static_cast<std::size_t>(b)].path;
    });
    const std::set<int> members(scc.begin(), scc.end());

    // Render one concrete path around the cycle, starting from the
    // lexicographically smallest member (deterministic).
    std::vector<int> path{scc.front()};
    std::set<int> seen{scc.front()};
    while (true) {
      int next = -1;
      for (int w : adj[static_cast<std::size_t>(path.back())]) {
        if (members.count(w) == 0) continue;
        if (w == scc.front() && path.size() > 1) {
          next = w;
          break;
        }
        if (seen.count(w) == 0 && (next < 0 ||
                                   files[static_cast<std::size_t>(w)].path <
                                       files[static_cast<std::size_t>(next)]
                                           .path))
          next = w;
      }
      if (next < 0 || next == scc.front()) break;
      path.push_back(next);
      seen.insert(next);
    }
    std::string rendered;
    for (int v : path)
      rendered += files[static_cast<std::size_t>(v)].path + " -> ";
    rendered += files[static_cast<std::size_t>(scc.front())].path;

    const ParsedFile& anchor = files[static_cast<std::size_t>(scc.front())];
    int line = 1;
    for (const IncludeDirective& d : anchor.includes) {
      const std::string target = resolveInclude(known, anchor.path, d);
      const auto it = indexOf.find(target);
      if (it != indexOf.end() && members.count(it->second) != 0) {
        line = d.line;
        break;
      }
    }
    diag(out, anchor, line, kIncludeCycle,
         "include cycle spanning " + std::to_string(scc.size()) +
             " files: " + rendered);
  }
}

// -- layering ----------------------------------------------------------------

void checkLayering(const std::vector<ParsedFile>& files,
                   const LayerGraph& graph, Diags& out) {
  const std::string cycle = layersCycle(graph);
  if (!cycle.empty()) {
    out.push_back(Diagnostic{
        "tools/lint/layers.json", 1, kLayerConfig,
        "declared module graph is cyclic (" + cycle +
            "); the layering DAG must be acyclic to mean anything"});
    return;
  }

  std::set<std::string> unmappedReported;
  for (const ParsedFile& f : files) {
    const std::string from = graph.moduleOf(f.path);
    if (from.empty()) {
      // tools/tests/bench/examples are exempt from layering, but a new
      // src/mcsim/<dir>/ must be declared before it can be linted.
      if (!LayerGraph::dirModuleOf(f.path).empty() &&
          unmappedReported.insert(f.path).second)
        diag(out, f, 1, kLayerConfig,
             "file maps to module \"" + LayerGraph::dirModuleOf(f.path) +
                 "\", which tools/lint/layers.json does not declare");
      continue;
    }
    const LayerModule* mod = graph.find(from);
    if (mod == nullptr) {
      if (unmappedReported.insert(f.path).second)
        diag(out, f, 1, kLayerConfig,
             "file maps to module \"" + from +
                 "\", which tools/lint/layers.json does not declare");
      continue;
    }
    for (const IncludeDirective& d : f.includes) {
      if (d.angled || !startsWith(d.path, "mcsim/")) continue;
      const std::string target = "src/" + d.path;
      const std::string to = graph.moduleOf(target);
      if (to.empty() || to == from) continue;
      if (std::binary_search(mod->deps.begin(), mod->deps.end(), to))
        continue;
      diag(out, f, d.line, kLayerOrder,
           "module \"" + from + "\" does not declare a dependency on \"" +
               to + "\" (include of " + d.path +
               "); fix the include or extend tools/lint/layers.json");
    }
  }
}

// -- IWYU-lite ---------------------------------------------------------------

/// Namespace → owning directory-module, by majority claimant of
/// `namespace mcsim::X` declarations across the linted set.
std::map<std::string, std::string> namespaceOwners(
    const std::vector<ParsedFile>& files) {
  // owners[ns][module] = #files in `module` declaring `namespace mcsim::ns`.
  std::map<std::string, std::map<std::string, int>> claims;
  for (const ParsedFile& f : files) {
    const std::string mod = LayerGraph::dirModuleOf(f.path);
    if (mod.empty()) continue;
    const std::string& b = f.blob;
    std::size_t pos = 0;
    while ((pos = b.find("namespace", pos)) != std::string::npos) {
      const std::size_t end = pos + 9;
      if ((pos > 0 && isIdentChar(b[pos - 1])) ||
          (end < b.size() && isIdentChar(b[end]))) {
        pos = end;
        continue;
      }
      std::size_t i = nextNonSpace(b, end);
      if (b.compare(i, 5, "mcsim") == 0 && !isIdentChar(b[i + 5])) {
        i = nextNonSpace(b, i + 5);
        if (i + 1 < b.size() && b[i] == ':' && b[i + 1] == ':') {
          i = nextNonSpace(b, i + 2);
          std::size_t nb = i;
          while (i < b.size() && isIdentChar(b[i])) ++i;
          if (i > nb) ++claims[b.substr(nb, i - nb)][mod];
        }
      }
      pos = end;
    }
  }
  std::map<std::string, std::string> owners;
  for (const auto& [ns, byModule] : claims) {
    std::string best;
    int bestCount = 0;
    for (const auto& [mod, count] : byModule)
      if (count > bestCount || (count == bestCount && mod < best)) {
        best = mod;
        bestCount = count;
      }
    // Only self-named claims or clear majorities own a namespace; a couple
    // of forward declarations elsewhere must not steal ownership.
    if (byModule.count(ns) != 0)
      owners[ns] = ns;
    else
      owners[ns] = best;
  }
  return owners;
}

// Namespaces a file declares itself: `namespace mcsim::X` (definition or
// forward declaration — either satisfies pointer/reference use without an
// include).
std::set<std::string> declaredNamespaces(const ParsedFile& f) {
  std::set<std::string> declared;
  const std::string& b = f.blob;
  std::size_t pos = 0;
  while ((pos = b.find("namespace", pos)) != std::string::npos) {
    const std::size_t end = pos + 9;
    if ((pos > 0 && isIdentChar(b[pos - 1])) ||
        (end < b.size() && isIdentChar(b[end]))) {
      pos = end;
      continue;
    }
    std::size_t i = nextNonSpace(b, end);
    if (b.compare(i, 5, "mcsim") == 0 && !isIdentChar(b[i + 5])) {
      i = nextNonSpace(b, i + 5);
      if (i + 1 < b.size() && b[i] == ':' && b[i + 1] == ':') {
        i = nextNonSpace(b, i + 2);
        std::size_t nb = i;
        while (i < b.size() && isIdentChar(b[i])) ++i;
        if (i > nb) declared.insert(b.substr(nb, i - nb));
      }
    }
    pos = end;
  }
  return declared;
}

void checkMissingIncludes(const std::vector<ParsedFile>& files, Diags& out) {
  const std::map<std::string, std::string> owners = namespaceOwners(files);
  if (owners.empty()) return;

  for (const ParsedFile& f : files) {
    const std::string selfMod = LayerGraph::dirModuleOf(f.path);
    if (selfMod.empty()) continue;  // IWYU is scoped to src/mcsim/ files.

    // Modules satisfied by a direct include (or the umbrella, outside the
    // library the umbrella is legal).
    std::set<std::string> included{selfMod};
    bool umbrella = false;
    for (const IncludeDirective& d : f.includes) {
      if (d.angled) continue;
      if (d.path == "mcsim/mcsim.hpp") umbrella = true;
      if (startsWith(d.path, "mcsim/")) {
        const std::string dirMod = LayerGraph::dirModuleOf("src/" + d.path);
        if (!dirMod.empty()) included.insert(dirMod);
      }
    }
    std::set<std::string> declared = declaredNamespaces(f);

    // A .cpp's companion header transitively supplies its includes and its
    // forward declarations; treat both as satisfied for the .cpp too (the
    // IWYU convention: the header fwd-declares, the .cpp just defines).
    if (endsWith(f.path, ".cpp")) {
      const std::string companion =
          f.path.substr(0, f.path.size() - 4) + ".hpp";
      for (const ParsedFile& other : files) {
        if (other.path != companion) continue;
        for (const IncludeDirective& d : other.includes) {
          if (!d.angled && startsWith(d.path, "mcsim/")) {
            const std::string dirMod =
                LayerGraph::dirModuleOf("src/" + d.path);
            if (!dirMod.empty()) included.insert(dirMod);
          }
        }
        for (const std::string& ns : declaredNamespaces(other))
          declared.insert(ns);
        break;
      }
    }
    if (umbrella) continue;

    // First qualified use `X::` of a foreign namespace without a direct
    // include of its owning module.  Keyed by module; the namespace is kept
    // for the message (mcsim::json lives in util/).
    std::map<std::string, std::pair<std::size_t, std::string>> firstUse;
    const std::string& b = f.blob;
    forEachIdentifier(b, [&](std::string_view name, std::size_t begin,
                             std::size_t end) {
      const auto owner = owners.find(std::string(name));
      if (owner == owners.end()) return;
      const std::size_t nxt = nextNonSpace(b, end);
      if (nxt + 1 >= b.size() || b[nxt] != ':' || b[nxt + 1] != ':') return;
      if (begin >= 2 && b[begin - 1] == ':' && b[begin - 2] == ':') {
        // mcsim::X:: or foo::X:: — only mcsim-qualified names count.
        std::size_t q = begin - 2;
        std::size_t qe = q;
        while (qe > 0 && isIdentChar(b[qe - 1])) --qe;
        if (b.compare(qe, q - qe, "mcsim") != 0) return;
      }
      const std::string mod = owner->second;
      if (mod == selfMod || included.count(mod) != 0 ||
          declared.count(std::string(name)) != 0)
        return;
      if (firstUse.count(mod) == 0)
        firstUse[mod] = {begin, std::string(name)};
    });
    for (const auto& [mod, use] : firstUse)
      diag(out, f, lineOf(f, use.first), kMissingInclude,
           "uses mcsim::" + use.second + ":: symbols without directly "
           "including a mcsim/" + mod + "/ header (currently satisfied "
           "only transitively)");
  }
}

}  // namespace

void runGraphPasses(const std::vector<ParsedFile>& files,
                    const LayerGraph* layers, Diags& out) {
  std::set<std::string> known;
  std::map<std::string, int> indexOf;
  for (std::size_t i = 0; i < files.size(); ++i) {
    known.insert(files[i].path);
    indexOf[files[i].path] = static_cast<int>(i);
  }

  checkPragmaOnce(files, out);
  checkIncludeCycles(files, known, indexOf, out);
  if (layers != nullptr) checkLayering(files, *layers, out);
  checkMissingIncludes(files, out);
}

}  // namespace mcsim::lint::detail

namespace mcsim::lint {

std::vector<std::pair<std::string, std::string>> moduleEdges(
    const std::vector<FileContent>& files, const LayerGraph& graph) {
  std::set<std::pair<std::string, std::string>> edges;
  for (const FileContent& fc : files) {
    const std::string from = graph.moduleOf(fc.path);
    if (from.empty()) continue;
    std::istringstream in(fc.text);
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] != '#') continue;
      const std::size_t quote = line.find('"', first);
      if (quote == std::string::npos ||
          line.find("include", first) == std::string::npos ||
          line.find("include", first) > quote)
        continue;
      const std::size_t close = line.find('"', quote + 1);
      if (close == std::string::npos) continue;
      const std::string inc = line.substr(quote + 1, close - quote - 1);
      if (inc.compare(0, 6, "mcsim/") != 0) continue;
      const std::string to = graph.moduleOf("src/" + inc);
      if (!to.empty() && to != from) edges.emplace(from, to);
    }
  }
  return {edges.begin(), edges.end()};
}

}  // namespace mcsim::lint
