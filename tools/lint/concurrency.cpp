// Concurrency rule family: raw mutex lock/unlock outside RAII guards,
// inconsistent pairwise lock order within a TU, std::thread detach, and
// condition-variable waits without a predicate.
//
// Like the unordered-iteration rule, detection keys on declared names: a
// `std::mutex m_;` declaration anywhere in the file (or, for trailing-`_`
// members, anywhere in the tree) marks `m_` as a mutex, and subsequent
// `m_.lock()` calls are diagnosed.  This keeps the pass lexical — no type
// inference — while staying precise enough to run at zero findings on the
// real tree.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "parsed.hpp"

namespace mcsim::lint::detail {
namespace {

struct DeclIndex {
  std::set<std::string> mutexes;
  std::set<std::string> cvs;
  std::set<std::string> threads;
};

bool isMutexType(std::string_view name) {
  return name == "mutex" || name == "recursive_mutex" ||
         name == "timed_mutex" || name == "recursive_timed_mutex" ||
         name == "shared_mutex" || name == "shared_timed_mutex";
}

bool isGuardType(std::string_view name) {
  return name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock" || name == "shared_lock";
}

/// Collect declared variable names whose type is a std:: mutex,
/// condition_variable, or thread.  The declaration shape recognized is
/// `std::<type> [&*]name` — enough for members, locals, and parameters.
DeclIndex collectDecls(const ParsedFile& f) {
  DeclIndex decls;
  const std::string& b = f.blob;
  forEachIdentifier(b, [&](std::string_view name, std::size_t begin,
                           std::size_t end) {
    const bool mutex = isMutexType(name);
    const bool cv = name == "condition_variable" ||
                    name == "condition_variable_any";
    const bool thread = name == "thread" || name == "jthread";
    if (!mutex && !cv && !thread) return;
    const std::size_t prev = prevNonSpace(b, begin);
    if (prev == std::string::npos || b[prev] != ':') return;  // std:: only

    std::size_t i = nextNonSpace(b, end);
    while (i < b.size() && (b[i] == '&' || b[i] == '*'))
      i = nextNonSpace(b, i + 1);
    std::size_t nb = i;
    while (i < b.size() && isIdentChar(b[i])) ++i;
    if (i == nb) return;  // template arg, thread::id, temporary, ...
    const std::string declared = b.substr(nb, i - nb);
    if (mutex) decls.mutexes.insert(declared);
    if (cv) decls.cvs.insert(declared);
    if (thread) decls.threads.insert(declared);
  });
  return decls;
}

/// Count top-level commas of an argument list (depth-aware).
int topLevelCommas(std::string_view args) {
  int depth = 0, commas = 0;
  for (char c : args) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    else if (c == ',' && depth == 0) ++commas;
  }
  return commas;
}

/// Split an argument list on top-level commas.
std::vector<std::string> splitArgs(std::string_view args) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    const char c = i < args.size() ? args[i] : ',';
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    else if (c == ',' && depth <= 0) {
      const std::string arg = trim(args.substr(start, i - start));
      if (!arg.empty()) out.push_back(arg);
      start = i + 1;
    }
  }
  return out;
}

/// Normalize a guard constructor argument to a mutex key: tags and
/// non-lockable arguments map to "".
std::string mutexKeyOf(std::string arg) {
  if (startsWith(arg, "std::")) arg = arg.substr(5);
  if (arg == "adopt_lock" || arg == "defer_lock" || arg == "try_to_lock")
    return "";
  std::size_t i = 0;
  while (i < arg.size() && (arg[i] == '*' || arg[i] == '&')) ++i;
  arg = arg.substr(i);
  if (startsWith(arg, "this->")) arg = arg.substr(6);
  std::string key;
  for (char c : arg)
    if (!std::isspace(static_cast<unsigned char>(c))) key.push_back(c);
  return key;
}

/// raw-mutex-lock, thread-detach, cv-wait-predicate: one identifier sweep.
void scanCalls(const ParsedFile& f, const DeclIndex& decls, Diags& out) {
  const std::string& b = f.blob;
  forEachIdentifier(b, [&](std::string_view name, std::size_t begin,
                           std::size_t end) {
    const bool lockish =
        name == "lock" || name == "unlock" || name == "try_lock" ||
        name == "lock_shared" || name == "unlock_shared";
    const bool waitish =
        name == "wait" || name == "wait_for" || name == "wait_until";
    const bool detach = name == "detach";
    if (!lockish && !waitish && !detach) return;
    const std::size_t open = nextNonSpace(b, end);
    if (open >= b.size() || b[open] != '(') return;
    const std::string base = memberCallBase(b, begin);
    if (base.empty()) return;

    if (lockish && decls.mutexes.count(base) != 0) {
      diag(out, f, lineOf(f, begin), kRawMutexLock,
           "raw `" + base + "." + std::string(name) + "()`: an early "
           "return or exception leaks the lock; hold it via "
           "std::lock_guard/unique_lock/scoped_lock");
    } else if (detach &&
               (decls.threads.count(base) != 0 || base == "thread" ||
                base == "jthread")) {
      diag(out, f, lineOf(f, begin), kThreadDetach,
           "`" + base + ".detach()` orphans the thread past its owner's "
           "lifetime; join it so shutdown stays deterministic");
    } else if (waitish && decls.cvs.count(base) != 0) {
      const std::size_t close = matchParen(b, open);
      if (close == std::string::npos) return;
      const std::string_view args =
          std::string_view(b).substr(open + 1, close - open - 1);
      const int commas = topLevelCommas(args);
      const bool hasPredicate =
          name == "wait" ? commas >= 1 : commas >= 2;
      if (!hasPredicate)
        diag(out, f, lineOf(f, begin), kCvWaitPredicate,
             "`" + base + "." + std::string(name) + "(...)` without a "
             "predicate misses wakeups and wakes spuriously; pass a "
             "predicate re-checking the condition");
    }
  });
}

/// Lock-order inversion: record the ordered pairs of mutexes held together
/// (RAII guards tracked through brace scopes), then flag any (A,B) that
/// also occurs as (B,A) elsewhere in the TU.
struct Acquisition {
  std::size_t offset;           ///< Guard declaration position.
  std::vector<std::string> keys;  ///< Mutexes this guard takes (in order).
};

void scanLockOrder(const ParsedFile& f, const DeclIndex& decls, Diags& out) {
  if (decls.mutexes.empty()) return;
  const std::string& b = f.blob;

  // Pass A: find guard declarations and the mutex keys they take.
  std::vector<Acquisition> acquisitions;
  forEachIdentifier(b, [&](std::string_view name, std::size_t begin,
                           std::size_t end) {
    if (!isGuardType(name)) return;
    const std::size_t prev = prevNonSpace(b, begin);
    if (prev == std::string::npos || b[prev] != ':') return;  // std:: only
    std::size_t i = nextNonSpace(b, end);
    if (i < b.size() && b[i] == '<') {
      const std::size_t past = matchAngle(b, i);
      if (past == std::string::npos) return;
      i = nextNonSpace(b, past);
    }
    std::size_t nb = i;
    while (i < b.size() && isIdentChar(b[i])) ++i;
    if (i == nb) return;  // not a declaration (cast, using-alias, ...)
    i = nextNonSpace(b, i);
    if (i >= b.size() || (b[i] != '(' && b[i] != '{')) return;
    const std::size_t close =
        b[i] == '(' ? matchParen(b, i) : matchBrace(b, i);
    if (close == std::string::npos) return;

    Acquisition acq;
    acq.offset = begin;
    const std::string_view args =
        std::string_view(b).substr(i + 1, close - i - 1);
    std::vector<std::string> parts = splitArgs(args);
    const bool multi = name == "scoped_lock";
    for (const std::string& part : parts) {
      const std::string key = mutexKeyOf(part);
      if (key.empty()) continue;
      acq.keys.push_back(key);
      if (!multi) break;  // lock_guard/unique_lock take one lockable
    }
    if (!acq.keys.empty()) acquisitions.push_back(std::move(acq));
  });
  if (acquisitions.empty()) return;

  // Pass B: walk brace scopes; a guard's mutexes join the active set until
  // its enclosing block closes.  Record held-before pairs.
  struct Active {
    int depth;
    std::string key;
  };
  struct PairSeen {
    std::size_t offset;  ///< First place the pair was observed.
  };
  std::map<std::pair<std::string, std::string>, PairSeen> pairs;
  std::vector<Active> active;
  std::size_t next = 0;
  int depth = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] == '{') ++depth;
    else if (b[i] == '}') {
      --depth;
      while (!active.empty() && active.back().depth > depth) active.pop_back();
      // A new function/namespace resets held state defensively.
      if (depth <= 0) active.clear();
    }
    while (next < acquisitions.size() && acquisitions[next].offset == i) {
      const Acquisition& acq = acquisitions[next];
      for (const std::string& key : acq.keys) {
        for (const Active& held : active)
          if (held.key != key)
            pairs.emplace(std::make_pair(held.key, key),
                          PairSeen{acq.offset});
        active.push_back(Active{depth, key});
      }
      ++next;
    }
  }

  // Scoped_lock's own arguments count as simultaneous (std::lock order),
  // so (A,B) within one scoped_lock never conflicts with (B,A) — remove
  // same-acquisition pairs of multi-lock guards?  No: std::scoped_lock
  // deadlock-avoids internally, but we recorded its keys sequentially
  // above; treat its internal pairs as unordered by erasing them.
  for (const Acquisition& acq : acquisitions) {
    if (acq.keys.size() < 2) continue;
    for (std::size_t a = 0; a < acq.keys.size(); ++a)
      for (std::size_t c = 0; c < acq.keys.size(); ++c)
        if (a != c) pairs.erase(std::make_pair(acq.keys[a], acq.keys[c]));
  }

  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [pair, seen] : pairs) {
    const auto inverse = pairs.find(std::make_pair(pair.second, pair.first));
    if (inverse == pairs.end()) continue;
    const auto canonical = pair.first < pair.second
                               ? pair
                               : std::make_pair(pair.second, pair.first);
    if (!reported.insert(canonical).second) continue;
    diag(out, f, lineOf(f, seen.offset), kLockOrder,
         "mutexes `" + canonical.first + "` and `" + canonical.second +
             "` are acquired in both orders in this TU (also near line " +
             std::to_string(lineOf(f, inverse->second.offset)) +
             "); pick one order or take both via std::scoped_lock");
  }
}

}  // namespace

void runConcurrencyPasses(const std::vector<ParsedFile>& files, Diags& out) {
  // Trailing-underscore names are members: a mutex declared in the header
  // is still a mutex in the .cpp.
  DeclIndex global;
  std::vector<DeclIndex> local(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    local[i] = collectDecls(files[i]);
    for (const std::string& n : local[i].mutexes)
      if (endsWith(n, "_")) global.mutexes.insert(n);
    for (const std::string& n : local[i].cvs)
      if (endsWith(n, "_")) global.cvs.insert(n);
    for (const std::string& n : local[i].threads)
      if (endsWith(n, "_")) global.threads.insert(n);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    DeclIndex merged = global;
    merged.mutexes.insert(local[i].mutexes.begin(), local[i].mutexes.end());
    merged.cvs.insert(local[i].cvs.begin(), local[i].cvs.end());
    merged.threads.insert(local[i].threads.begin(), local[i].threads.end());
    scanCalls(files[i], merged, out);
    scanLockOrder(files[i], merged, out);
  }
}

}  // namespace mcsim::lint::detail
