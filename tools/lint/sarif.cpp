// SARIF 2.1.0 and GitHub-workflow-command renderers.
//
// The SARIF document is a single run with driver "mcsim-lint", the full rule
// catalog under tool.driver.rules (so code-scanning UIs can show rule help
// without a second lookup), and one result per finding; baselined findings
// carry `suppressions: [{"kind": "external"}]`, the SARIF way of saying
// "known, tracked elsewhere, not new".  Output bytes are deterministic for
// given inputs — tests pin the structure.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace mcsim::lint {
namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void appendResult(std::ostringstream& os, const Diagnostic& d,
                  int ruleIndex, bool suppressed, bool first) {
  if (!first) os << ',';
  os << "\n      {\"ruleId\": \"" << jsonEscape(d.rule) << "\"";
  if (ruleIndex >= 0) os << ", \"ruleIndex\": " << ruleIndex;
  os << ", \"level\": \"" << (suppressed ? "note" : "error") << "\""
     << ", \"message\": {\"text\": \"" << jsonEscape(d.message) << "\"}"
     << ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": \""
     << jsonEscape(d.file) << "\", \"uriBaseId\": \"SRCROOT\"}, "
     << "\"region\": {\"startLine\": " << d.line << "}}}]";
  if (suppressed) os << ", \"suppressions\": [{\"kind\": \"external\"}]";
  os << "}";
}

/// %-escape for GitHub workflow command *message* payloads.
std::string ghEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%') out += "%25";
    else if (c == '\r') out += "%0D";
    else if (c == '\n') out += "%0A";
    else out += c;
  }
  return out;
}

}  // namespace

std::string toSarif(const std::vector<Diagnostic>& fresh,
                    const std::vector<Diagnostic>& baselined) {
  const std::vector<RuleInfo>& catalog = ruleCatalog();
  auto indexOf = [&catalog](const std::string& rule) {
    for (std::size_t i = 0; i < catalog.size(); ++i)
      if (rule == catalog[i].id) return static_cast<int>(i);
    return -1;
  };

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"mcsim-lint\",\n"
     << "      \"informationUri\": "
        "\"https://example.invalid/mcsim/tools/lint\",\n"
     << "      \"rules\": [";
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i) os << ',';
    os << "\n        {\"id\": \"" << catalog[i].id
       << "\", \"shortDescription\": {\"text\": \""
       << jsonEscape(catalog[i].summary) << "\"}}";
  }
  os << "\n      ]\n"
     << "    }},\n"
     << "    \"columnKind\": \"utf16CodeUnits\",\n"
     << "    \"results\": [";
  bool first = true;
  for (const Diagnostic& d : fresh) {
    appendResult(os, d, indexOf(d.rule), /*suppressed=*/false, first);
    first = false;
  }
  for (const Diagnostic& d : baselined) {
    appendResult(os, d, indexOf(d.rule), /*suppressed=*/true, first);
    first = false;
  }
  os << (first ? "]\n" : "\n    ]\n") << "  }]\n}\n";
  return os.str();
}

std::string toGithubAnnotations(const std::vector<Diagnostic>& fresh,
                                const std::vector<Diagnostic>& baselined) {
  std::ostringstream os;
  for (const Diagnostic& d : fresh)
    os << "::error file=" << d.file << ",line=" << d.line
       << ",title=mcsim-lint " << d.rule << "::" << ghEscape(d.message)
       << "\n";
  for (const Diagnostic& d : baselined)
    os << "::notice file=" << d.file << ",line=" << d.line
       << ",title=mcsim-lint " << d.rule << " (baselined)::"
       << ghEscape(d.message) << "\n";
  return os.str();
}

}  // namespace mcsim::lint
