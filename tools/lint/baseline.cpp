#include "baseline.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "mcsim/util/json.hpp"

namespace mcsim::lint {
namespace {

using json::JsonValue;

Unexpected<std::string> fail(const std::string& what) {
  return makeUnexpected("baseline.json: " + what);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool operator<(const BaselineEntry& a, const BaselineEntry& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

bool operator==(const BaselineEntry& a, const BaselineEntry& b) {
  return a.file == b.file && a.line == b.line && a.rule == b.rule;
}

bool Baseline::contains(const std::string& file, int line,
                        const std::string& rule) const {
  const BaselineEntry probe{file, line, rule};
  return std::binary_search(entries.begin(), entries.end(), probe);
}

Expected<Baseline> baselineFromJson(const std::string& text) {
  JsonValue doc;
  try {
    doc = json::parseJson(text);
  } catch (const std::exception& e) {
    return fail(std::string("parse error: ") + e.what());
  }
  if (!doc.isObject()) return fail("top level must be an object");

  Baseline baseline;
  for (const auto& [key, value] : doc.asObject()) {
    if (key == "version") {
      // Exact format-version tag.  mcsim-lint: allow(float-equality)
      if (!value.isNumber() || value.asNumber() != 1.0)
        return fail("\"version\" must be the number 1");
    } else if (key == "findings") {
      if (!value.isArray()) return fail("\"findings\" must be an array");
      for (const JsonValue& entry : value.asArray()) {
        if (!entry.isObject()) return fail("each finding must be an object");
        BaselineEntry e;
        bool haveLine = false;
        for (const auto& [fk, fv] : entry.asObject()) {
          if (fk == "file") {
            if (!fv.isString() || fv.asString().empty())
              return fail("finding \"file\" must be a non-empty string");
            e.file = fv.asString();
          } else if (fk == "line") {
            if (!fv.isNumber() || fv.asNumber() < 1 ||
                fv.asNumber() != std::floor(fv.asNumber()))
              return fail("finding \"line\" must be a positive integer");
            e.line = static_cast<int>(fv.asNumber());
            haveLine = true;
          } else if (fk == "rule") {
            if (!fv.isString() || fv.asString().empty())
              return fail("finding \"rule\" must be a non-empty string");
            e.rule = fv.asString();
          } else {
            return fail("unknown finding key \"" + fk + "\"");
          }
        }
        if (e.file.empty() || e.rule.empty() || !haveLine)
          return fail("each finding needs \"file\", \"line\" and \"rule\"");
        baseline.entries.push_back(std::move(e));
      }
    } else {
      return fail("unknown key \"" + key + "\"");
    }
  }
  std::sort(baseline.entries.begin(), baseline.entries.end());
  baseline.entries.erase(
      std::unique(baseline.entries.begin(), baseline.entries.end()),
      baseline.entries.end());
  return baseline;
}

std::string baselineToJson(const Baseline& baseline) {
  Baseline canonical = baseline;
  std::sort(canonical.entries.begin(), canonical.entries.end());
  canonical.entries.erase(
      std::unique(canonical.entries.begin(), canonical.entries.end()),
      canonical.entries.end());

  std::string out = "{\n  \"version\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < canonical.entries.size(); ++i) {
    const BaselineEntry& e = canonical.entries[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"file\": \"" + escape(e.file) +
           "\", \"line\": " + std::to_string(e.line) + ", \"rule\": \"" +
           escape(e.rule) + "\"}";
  }
  out += canonical.entries.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Baseline baselineFromFindings(const std::vector<Diagnostic>& findings) {
  Baseline baseline;
  baseline.entries.reserve(findings.size());
  for (const Diagnostic& d : findings)
    baseline.entries.push_back(BaselineEntry{d.file, d.line, d.rule});
  std::sort(baseline.entries.begin(), baseline.entries.end());
  baseline.entries.erase(
      std::unique(baseline.entries.begin(), baseline.entries.end()),
      baseline.entries.end());
  return baseline;
}

BaselinePartition applyBaseline(std::vector<Diagnostic> findings,
                                const Baseline& baseline) {
  BaselinePartition result;
  std::set<BaselineEntry> matched;
  for (Diagnostic& d : findings) {
    const BaselineEntry probe{d.file, d.line, d.rule};
    if (baseline.contains(d.file, d.line, d.rule)) {
      matched.insert(probe);
      result.baselined.push_back(std::move(d));
    } else {
      result.fresh.push_back(std::move(d));
    }
  }
  for (const BaselineEntry& e : baseline.entries)
    if (matched.count(e) == 0) result.expired.push_back(e);
  return result;
}

}  // namespace mcsim::lint
