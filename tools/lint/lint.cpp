#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>

#include "baseline.hpp"
#include "layers.hpp"
#include "parsed.hpp"

namespace mcsim::lint {

namespace detail {

// ---------------------------------------------------------------------------
// Shared helpers (declared in parsed.hpp, used by every pass)
// ---------------------------------------------------------------------------

void diag(Diags& out, const ParsedFile& f, int line, const char* rule,
          std::string message) {
  out.push_back(Diagnostic{f.path, line, rule, std::move(message)});
}

int lineOf(const ParsedFile& f, std::size_t offset) {
  auto it = std::upper_bound(f.lineStart.begin(), f.lineStart.end(), offset);
  return static_cast<int>(it - f.lineStart.begin());
}

bool onPreprocLine(const ParsedFile& f, std::size_t offset) {
  const int line = lineOf(f, offset);
  return f.preproc[static_cast<std::size_t>(line - 1)];
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::size_t nextNonSpace(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Index of the previous non-whitespace char strictly before `i`, or npos.
std::size_t prevNonSpace(const std::string& s, std::size_t i) {
  while (i > 0) {
    --i;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
  }
  return std::string::npos;
}

/// `pos` points at '<'; returns the index just past the matching '>', or
/// npos.  Parens are tracked so `foo<decltype(a > b)>` does not terminate
/// early on common cases.
std::size_t matchAngle(const std::string& s, std::size_t pos) {
  int angle = 0;
  int paren = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(') ++paren;
    else if (c == ')') --paren;
    else if (paren == 0 && c == '<') ++angle;
    else if (paren == 0 && c == '>') {
      if (--angle == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// `pos` points at '('; returns the index of the matching ')', or npos.
std::size_t matchParen(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// `pos` points at '{'; returns the index of the matching '}', or npos.
std::size_t matchBrace(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '{') ++depth;
    else if (s[i] == '}') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

bool wholeWordIn(std::string_view haystack, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = haystack.find(word, pos)) != std::string_view::npos) {
    const bool left = pos == 0 || !isIdentChar(haystack[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right = after >= haystack.size() || !isIdentChar(haystack[after]);
    if (left && right) return true;
    pos += word.size();
  }
  return false;
}

std::string memberCallBase(const std::string& b, std::size_t begin) {
  std::size_t prev = prevNonSpace(b, begin);
  if (prev == std::string::npos) return "";
  if (b[prev] == '>' && prev > 0 && b[prev - 1] == '-') {
    --prev;  // `->` member access: continue from the '-'.
  } else if (b[prev] != '.') {
    return "";
  }
  std::size_t p = prevNonSpace(b, prev);
  if (p == std::string::npos) return "";
  if (b[p] == ']' || b[p] == ')') {
    // Walk back over an index/call suffix to the base name.
    const char openCh = b[p] == ']' ? '[' : '(';
    const char closeCh = b[p];
    int depth = 0;
    while (true) {
      if (b[p] == closeCh) ++depth;
      else if (b[p] == openCh && --depth == 0) break;
      if (p == 0) return "";
      --p;
    }
    p = prevNonSpace(b, p);
    if (p == std::string::npos) return "";
  }
  if (!isIdentChar(b[p])) return "";
  std::size_t nb = p;
  while (nb > 0 && isIdentChar(b[nb - 1])) --nb;
  return b.substr(nb, p - nb + 1);
}

}  // namespace detail

namespace {

using detail::Diags;
using detail::IncludeDirective;
using detail::ParsedFile;
using detail::Suppression;
using detail::diag;
using detail::endsWith;
using detail::isIdentChar;
using detail::lineOf;
using detail::matchAngle;
using detail::matchBrace;
using detail::matchParen;
using detail::memberCallBase;
using detail::nextNonSpace;
using detail::onPreprocLine;
using detail::pathUnder;
using detail::prevNonSpace;
using detail::startsWith;
using detail::trim;
using detail::wholeWordIn;

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

constexpr const char* kNoRand = "no-rand";
constexpr const char* kNoWallclock = "no-wallclock";
constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kPtrKey = "ptr-key";
constexpr const char* kSimStdFunction = "sim-std-function";
constexpr const char* kSimHeapAlloc = "sim-heap-alloc";
constexpr const char* kEventTaxonomy = "event-taxonomy";
constexpr const char* kDeprecatedCompat = "deprecated-compat";
constexpr const char* kIncludeHygiene = "include-hygiene";
constexpr const char* kTraceMacro = "trace-macro";
constexpr const char* kUnusedSuppression = "unused-suppression";
constexpr const char* kUnorderedFloatAccum = "unordered-float-accum";
constexpr const char* kRedundantSuppression = "redundant-suppression";

const std::vector<RuleInfo> kCatalog = {
    {kNoRand,
     "rand()/srand()/std::random_device are nondeterministic; use mcsim::Rng "
     "(util/rng.hpp) with an explicit seed"},
    {kNoWallclock,
     "wall-clock reads (time(nullptr), system_clock, clock(), gettimeofday, "
     "localtime/gmtime; steady/high_resolution_clock inside src/) break "
     "bit-stable replay"},
    {kUnorderedIter,
     "iterating a hash-ordered container feeds hash order into output or "
     "accounting; sort first or use an ordered container"},
    {kPtrKey,
     "pointer-keyed map/set iterates in address order, which varies run to "
     "run; key by a stable id instead"},
    {kSimStdFunction,
     "std::function in src/mcsim/sim/ heap-allocates on the event hot path; "
     "use sim::EventFn or a justified allow"},
    {kSimHeapAlloc,
     "naked new/make_shared/make_unique in src/mcsim/sim/ marks a per-event "
     "heap allocation on the hot path"},
    {kEventTaxonomy,
     "obs::EventKind, the Payload variant, kEventKindCount and the "
     "jsonl/sink exporters must stay in lockstep"},
    {kDeprecatedCompat,
     "-Wdeprecated-declarations suppression outside tests/: positional "
     "compat ctors are test-only; migrate to the config-struct API"},
    {kIncludeHygiene,
     "include hygiene: no umbrella include inside src/mcsim/, no relative "
     "includes, util/ and obs/event.hpp keep their layering"},
    {kTraceMacro,
     "span/phase emission in src/mcsim/{sim,engine,runner}/ must go through "
     "the MCSIM_TRACE_* macros so tracing compiles out when disabled"},
    {detail::kLayerOrder,
     "include edge not allowed by the layering DAG (tools/lint/layers.json): "
     "a module may only include the modules it declares as deps"},
    {detail::kLayerConfig,
     "layers.json problem: unparseable file, cyclic module graph, or a "
     "source file mapping to an undeclared module"},
    {detail::kIncludeCycle,
     "include cycle: headers that (transitively) include each other make "
     "layering and incremental builds unreliable"},
    {detail::kPragmaOnce,
     "header without #pragma once: a double inclusion breaks the "
     "one-definition rule"},
    {detail::kMissingInclude,
     "uses another module's symbols without directly including one of its "
     "headers (IWYU): the transitive include that satisfies it today is an "
     "accident"},
    {detail::kRawMutexLock,
     "raw mutex .lock()/.unlock() outside an RAII guard: an early return or "
     "exception leaks the lock; use std::lock_guard/unique_lock/scoped_lock"},
    {detail::kLockOrder,
     "two mutexes acquired in opposite orders within this TU: classic "
     "deadlock shape; pick one order or take both via std::scoped_lock"},
    {detail::kThreadDetach,
     "std::thread::detach orphans the thread past the owner's lifetime; "
     "join (or use the JobQueue pool) so shutdown stays deterministic"},
    {detail::kCvWaitPredicate,
     "condition-variable wait without a predicate misses wakeups and wakes "
     "spuriously; always wait with a predicate re-checking the condition"},
    {kUnorderedFloatAccum,
     "floating-point accumulation inside hash-ordered iteration: the sum "
     "depends on iteration order, which varies across runs and libraries"},
    {detail::kFloatEquality,
     "exact ==/!= against a floating-point literal outside tests/: use a "
     "tolerance, an integer representation, or a justified allow when "
     "exactness is intended"},
    {kUnusedSuppression,
     "an `mcsim-lint: allow(rule)` comment that suppressed nothing (or names "
     "an unknown rule)"},
    {kRedundantSuppression,
     "an `mcsim-lint: allow(rule)` on a line the baseline already tracks; "
     "drop the allow() or delete the baseline entry"},
};

}  // namespace

const std::vector<RuleInfo>& ruleCatalog() { return kCatalog; }

bool isKnownRule(const std::string& id) {
  for (const RuleInfo& r : kCatalog)
    if (id == r.id) return true;
  return false;
}

std::vector<SourceLine> stripSource(const std::string& text) {
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  std::vector<SourceLine> lines(1);
  State state = State::Code;
  std::string rawDelim;  // for R"delim( ... )delim"

  auto codeCh = [&](char c) { lines.back().code.push_back(c); };
  auto commentCh = [&](char c) { lines.back().comment.push_back(c); };
  auto newline = [&] { lines.emplace_back(); };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::LineComment) state = State::Code;
      newline();
      continue;
    }
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          codeCh(' ');
          codeCh(' ');
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          codeCh(' ');
          codeCh(' ');
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !isIdentChar(text[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t j = i + 2;
          rawDelim.clear();
          while (j < n && text[j] != '(') rawDelim.push_back(text[j++]);
          codeCh(' ');  // R
          codeCh('"');
          for (std::size_t k = i + 2; k <= j && k < n; ++k) codeCh(' ');
          i = j;  // at '(' (or end)
          state = State::Raw;
        } else if (c == '"') {
          state = State::String;
          codeCh('"');
        } else if (c == '\'' && !(i > 0 && isIdentChar(text[i - 1]))) {
          // Skip digit separators (1'000'000): a quote directly after an
          // identifier/digit character is not a char literal.
          state = State::Char;
          codeCh('\'');
        } else {
          codeCh(c);
        }
        break;
      case State::LineComment:
        commentCh(c);
        codeCh(' ');
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          codeCh(' ');
          codeCh(' ');
          ++i;
        } else {
          commentCh(c);
          codeCh(' ');
        }
        break;
      case State::String:
        if (c == '\\' && next != '\0') {
          codeCh(' ');
          codeCh(' ');
          ++i;
        } else if (c == '"') {
          state = State::Code;
          codeCh('"');
        } else {
          codeCh(' ');
        }
        break;
      case State::Char:
        if (c == '\\' && next != '\0') {
          codeCh(' ');
          codeCh(' ');
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          codeCh('\'');
        } else {
          codeCh(' ');
        }
        break;
      case State::Raw: {
        // Look for )delim" at this position.
        if (c == ')' && i + rawDelim.size() + 1 < n &&
            text.compare(i + 1, rawDelim.size(), rawDelim) == 0 &&
            text[i + 1 + rawDelim.size()] == '"') {
          for (std::size_t k = 0; k < rawDelim.size() + 1; ++k) codeCh(' ');
          codeCh('"');
          i += rawDelim.size() + 1;
          state = State::Code;
        } else {
          codeCh(' ');
        }
        break;
      }
    }
  }
  return lines;
}

namespace {

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

bool isSimPath(const ParsedFile& f) { return pathUnder(f, "src/mcsim/sim/"); }

/// no-rand + no-wallclock + sim-std-function + sim-heap-alloc + the
/// declaration-collection half of unordered-iter / ptr-key, in one
/// identifier sweep per file.
struct IdentScan {
  std::set<std::string> unorderedNames;  ///< Declared in this file.
};

IdentScan scanIdentifiers(const ParsedFile& f, Diags& out) {
  IdentScan result;
  const std::string& b = f.blob;
  const bool sim = isSimPath(f);
  const bool inLibrary = pathUnder(f, "src/");

  detail::forEachIdentifier(b, [&](std::string_view name, std::size_t begin,
                                   std::size_t end) {
    const std::size_t prev = prevNonSpace(b, begin);
    const char prevCh = prev == std::string::npos ? '\0' : b[prev];
    const std::size_t nxt = nextNonSpace(b, end);
    const char nextCh = nxt < b.size() ? b[nxt] : '\0';
    const bool member = prevCh == '.' || (prevCh == '>' && prev > 0 &&
                                          b[prev - 1] == '-');

    if ((name == "rand" || name == "srand") && !member && nextCh == '(') {
      diag(out, f, lineOf(f, begin), kNoRand,
           std::string(name) + "() is nondeterministic; use mcsim::Rng "
           "(util/rng.hpp) with an explicit seed");
    } else if (name == "random_device") {
      diag(out, f, lineOf(f, begin), kNoRand,
           "std::random_device is nondeterministic; seed mcsim::Rng "
           "explicitly");
    } else if (name == "time" && !member && nextCh == '(') {
      const std::size_t close = matchParen(b, nxt);
      if (close != std::string::npos) {
        const std::string arg = trim(
            std::string_view(b).substr(nxt + 1, close - nxt - 1));
        if (arg == "nullptr" || arg == "NULL" || arg == "0")
          diag(out, f, lineOf(f, begin), kNoWallclock,
               "time(" + arg + ") reads the wall clock; simulation time "
               "comes from Simulator::now()");
      }
    } else if (name == "system_clock" || name == "gettimeofday" ||
               name == "localtime" || name == "gmtime") {
      diag(out, f, lineOf(f, begin), kNoWallclock,
           std::string(name) + " reads the wall clock; simulation time "
           "comes from Simulator::now()");
    } else if ((name == "steady_clock" || name == "high_resolution_clock") &&
               inLibrary) {
      diag(out, f, lineOf(f, begin), kNoWallclock,
           std::string(name) + " is banned inside src/ (the library must "
           "be replay-stable); wall timing belongs in bench/ or tools/");
    } else if (name == "clock" && !member && prevCh != ':' && nextCh == '(') {
      const std::size_t close = matchParen(b, nxt);
      if (close != std::string::npos &&
          trim(std::string_view(b).substr(nxt + 1, close - nxt - 1)).empty())
        diag(out, f, lineOf(f, begin), kNoWallclock,
             "clock() reads the process clock; simulation time comes from "
             "Simulator::now()");
    } else if (name == "function" && sim && prevCh == ':' && prev >= 4 &&
               b.compare(prev - 4, 5, "std::") == 0) {
      diag(out, f, lineOf(f, begin), kSimStdFunction,
           "std::function on the sim hot path heap-allocates per capture; "
           "use sim::EventFn");
    } else if (sim && !onPreprocLine(f, begin) &&
               (name == "make_shared" || name == "make_unique" ||
                name == "malloc" || name == "calloc")) {
      diag(out, f, lineOf(f, begin), kSimHeapAlloc,
           std::string(name) + " in src/mcsim/sim/ marks a per-event heap "
           "allocation on the hot path");
    } else if (sim && name == "new" && !onPreprocLine(f, begin) &&
               nextCh != '(' && nextCh != '\0') {
      // `new (place) T` is placement new and exempt; `new T(...)` is not.
      diag(out, f, lineOf(f, begin), kSimHeapAlloc,
           "naked `new` in src/mcsim/sim/ marks a per-event heap "
           "allocation on the hot path");
    } else if (name == "unordered_map" || name == "unordered_set" ||
               ((name == "map" || name == "set" || name == "multimap" ||
                 name == "multiset") &&
                prevCh == ':')) {
      if (nextCh != '<') return;
      const std::size_t close = matchAngle(b, nxt);
      if (close == std::string::npos) return;

      // ptr-key: pointer in the first top-level template argument (the key
      // for map-likes; for set-likes the first argument is the key anyway).
      {
        int depth = 0;
        std::size_t argEnd = close - 1;
        for (std::size_t i = nxt; i < close; ++i) {
          if (b[i] == '<' || b[i] == '(') ++depth;
          else if (b[i] == '>' || b[i] == ')') --depth;
          else if (b[i] == ',' && depth == 1) {
            argEnd = i;
            break;
          }
        }
        const std::string keyArg =
            trim(std::string_view(b).substr(nxt + 1, argEnd - nxt - 1));
        if (keyArg.find('*') != std::string::npos)
          diag(out, f, lineOf(f, begin), kPtrKey,
               "container keyed by a pointer (" + keyArg + "): iteration "
               "order is address order and varies run to run");
      }

      // unordered-iter declaration half: record the declared name.
      if (name == "unordered_map" || name == "unordered_set") {
        std::size_t i = nextNonSpace(b, close);
        while (i < b.size() && b[i] == '>') i = nextNonSpace(b, i + 1);
        while (i < b.size() && (b[i] == '&' || b[i] == '*'))
          i = nextNonSpace(b, i + 1);
        std::size_t nb = i;
        while (i < b.size() && isIdentChar(b[i])) ++i;
        if (i > nb) {
          const std::string declared(b, nb, i - nb);
          const std::size_t after = nextNonSpace(b, i);
          // `...>& usage() const` declares a function, not a container.
          const bool emptyParens =
              after < b.size() && b[after] == '(' &&
              nextNonSpace(b, after + 1) < b.size() &&
              b[nextNonSpace(b, after + 1)] == ')';
          if (!emptyParens) result.unorderedNames.insert(declared);
        }
      }
    }
  });
  return result;
}

/// Scan a loop-body region for a compound assignment (+=, -=, *=, /=): the
/// unordered-float-accum detection half, invoked once a hash-ordered
/// iteration has been found.
void scanAccumulation(const ParsedFile& f, std::size_t bodyBegin,
                      std::size_t bodyEnd, const std::string& container,
                      Diags& out) {
  const std::string& b = f.blob;
  for (std::size_t i = bodyBegin; i + 1 < bodyEnd && i + 1 < b.size(); ++i) {
    const char c = b[i];
    if ((c == '+' || c == '-' || c == '*' || c == '/') && b[i + 1] == '=' &&
        (i + 2 >= b.size() || b[i + 2] != '=') &&
        (i == 0 || (b[i - 1] != c && b[i - 1] != '<' && b[i - 1] != '>'))) {
      diag(out, f, lineOf(f, i), kUnorderedFloatAccum,
           "accumulation inside hash-ordered iteration over `" + container +
               "`: a floating-point sum here depends on iteration order");
      return;
    }
  }
}

/// unordered-iter detection half: range-for over, or .begin()/.cbegin() on,
/// a name known to be hash-ordered.  Also hosts the unordered-float-accum
/// rule, which needs the same declared-name index.
void scanUnorderedIteration(const ParsedFile& f,
                            const std::set<std::string>& names, Diags& out) {
  if (names.empty()) return;
  const std::string& b = f.blob;
  detail::forEachIdentifier(b, [&](std::string_view name, std::size_t begin,
                                   std::size_t end) {
    if (name == "for") {
      const std::size_t open = nextNonSpace(b, end);
      if (open >= b.size() || b[open] != '(') return;
      const std::size_t close = matchParen(b, open);
      if (close == std::string::npos) return;
      // Find a top-level ':' (range-for); a top-level ';' means classic for.
      int depth = 0;
      std::size_t colon = std::string::npos;
      for (std::size_t i = open + 1; i < close; ++i) {
        const char c = b[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        else if (c == ';' && depth == 0) return;
        else if (c == ':' && depth == 0 &&
                 (i + 1 >= close || b[i + 1] != ':') &&
                 (i == 0 || b[i - 1] != ':')) {
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) return;
      const std::string_view range =
          std::string_view(b).substr(colon + 1, close - colon - 1);
      for (const std::string& n : names)
        if (wholeWordIn(range, n)) {
          diag(out, f, lineOf(f, begin), kUnorderedIter,
               "range-for over hash-ordered container `" + n + "`; order "
               "feeds output/accounting — sort first or use an ordered "
               "container");
          // Float-determinism: a compound assignment inside the body makes
          // the order dependence concrete (sums change across runs).
          std::size_t bodyBegin = nextNonSpace(b, close + 1);
          std::size_t bodyEnd;
          if (bodyBegin < b.size() && b[bodyBegin] == '{') {
            bodyEnd = matchBrace(b, bodyBegin);
            if (bodyEnd == std::string::npos) bodyEnd = b.size();
          } else {
            bodyEnd = b.find(';', bodyBegin);
            if (bodyEnd == std::string::npos) bodyEnd = b.size();
          }
          scanAccumulation(f, bodyBegin, bodyEnd, n, out);
          return;
        }
    } else if (name == "begin" || name == "cbegin") {
      const std::string base = memberCallBase(b, begin);
      if (base.empty() || names.count(base) == 0) return;
      diag(out, f, lineOf(f, begin), kUnorderedIter,
           "`" + base + "." + std::string(name) + "()` iterates a "
           "hash-ordered container; order feeds output/accounting — sort "
           "first or use an ordered container");
      // std::accumulate(m.begin(), ...) over a hash-ordered container is a
      // direct order-dependent reduction.
      const std::size_t prev = prevNonSpace(b, begin);
      std::size_t nb = prev;  // at '.'; walk back over the base name
      while (nb > 0 && isIdentChar(b[nb - 1])) --nb;
      const std::size_t beforeBase = prevNonSpace(b, nb);
      if (beforeBase != std::string::npos && b[beforeBase] == '(') {
        const std::size_t callee = prevNonSpace(b, beforeBase);
        if (callee != std::string::npos && isIdentChar(b[callee])) {
          std::size_t cb = callee;
          while (cb > 0 && isIdentChar(b[cb - 1])) --cb;
          if (b.compare(cb, callee - cb + 1, "accumulate") == 0 ||
              b.compare(cb, callee - cb + 1, "reduce") == 0)
            diag(out, f, lineOf(f, begin), kUnorderedFloatAccum,
                 "std::accumulate/reduce over hash-ordered container `" +
                     base + "`: the reduction depends on iteration order");
        }
      }
    }
  });
}

void scanLines(const ParsedFile& f, Diags& out) {
  const bool inLibrary = pathUnder(f, "src/mcsim/");
  const bool inUtil = pathUnder(f, "src/mcsim/util/");
  const bool isEventHeader = endsWith(f.path, "obs/event.hpp");

  for (const IncludeDirective& d : f.includes) {
    const std::string& inc = d.path;
    if (inLibrary && inc == "mcsim/mcsim.hpp")
      diag(out, f, d.line, kIncludeHygiene,
           "library code must include the specific headers it needs, not "
           "the mcsim.hpp umbrella (keeps the module layering visible)");
    if (startsWith(inc, "../") || inc.find("/../") != std::string::npos)
      diag(out, f, d.line, kIncludeHygiene,
           "relative include `" + inc + "`; use the mcsim/-rooted path");
    if (isEventHeader && startsWith(inc, "mcsim/"))
      diag(out, f, d.line, kIncludeHygiene,
           "obs/event.hpp sits below every other mcsim module and may not "
           "include `" + inc + "`");
    else if (inUtil && startsWith(inc, "mcsim/") &&
             !startsWith(inc, "mcsim/util/") &&
             !startsWith(inc, "mcsim/obs/"))
      diag(out, f, d.line, kIncludeHygiene,
           "util/ may only include mcsim/util/ and mcsim/obs/ headers "
           "(log routing), not `" + inc + "`");
  }
}

/// trace-macro: on the simulation hot path (sim/, engine/, runner/) raw
/// span/phase emission calls must be wrapped in the MCSIM_TRACE_* macros so
/// a tracing-disabled build compiles them out entirely.  obs/ itself (the
/// implementation) and cold callers (tools/, bench/, analysis/) are exempt.
void scanTraceMacro(const ParsedFile& f, Diags& out) {
  if (!(pathUnder(f, "src/mcsim/sim/") || pathUnder(f, "src/mcsim/engine/") ||
        pathUnder(f, "src/mcsim/runner/")))
    return;
  static constexpr const char* kCalls[] = {"ScopedPhase", "beginSpan",
                                           "endSpan", "addCounterSample"};
  for (std::size_t li = 0; li < f.lines.size(); ++li) {
    const std::string& code = f.lines[li].code;
    if (code.find("MCSIM_TRACE_") != std::string::npos) continue;
    for (const char* call : kCalls) {
      if (wholeWordIn(code, call)) {
        diag(out, f, static_cast<int>(li) + 1, kTraceMacro,
             std::string(call) + " on the hot path outside an MCSIM_TRACE_* "
             "macro: direct span/phase emission cannot compile out");
        break;
      }
    }
  }
}

/// deprecated-compat needs the *raw* line (the warning name sits inside a
/// string literal that the code view blanks).  tests/ is exempt: the
/// positional compat ctors exist precisely so tests can pin them.
void scanRawLines(const ParsedFile& f, const std::string& rawText,
                  Diags& out) {
  if (pathUnder(f, "tests/")) return;
  static const std::regex kDeprecated(
      R"(#\s*pragma\s+(GCC|clang)\s+diagnostic\s+ignored\s*"-Wdeprecated)");
  std::istringstream in(rawText);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (std::regex_search(line, kDeprecated))
      diag(out, f, lineNo, kDeprecatedCompat,
           "deprecated-declaration suppression outside tests/: positional "
           "compat ctors are test-only; migrate to the config-struct API");
  }
}

// ---------------------------------------------------------------------------
// event-taxonomy (cross-file)
// ---------------------------------------------------------------------------

const ParsedFile* findBySuffix(const std::vector<ParsedFile>& files,
                               std::string_view suffix) {
  for (const ParsedFile& f : files)
    if (endsWith(f.path, suffix)) return &f;
  return nullptr;
}

/// Enumerators of `enum class EventKind { ... }`, with the line of the
/// opening brace.
std::vector<std::string> parseEnumerators(const ParsedFile& f, int* atLine) {
  std::vector<std::string> names;
  const std::string& b = f.blob;
  const std::size_t tag = b.find("enum class EventKind");
  if (tag == std::string::npos) return names;
  const std::size_t open = b.find('{', tag);
  if (open == std::string::npos) return names;
  if (atLine) *atLine = lineOf(f, tag);
  std::size_t close = b.find('}', open);
  if (close == std::string::npos) return names;
  std::string_view body = std::string_view(b).substr(open + 1, close - open - 1);
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string_view::npos) comma = body.size();
    std::string entry = trim(body.substr(pos, comma - pos));
    const std::size_t eq = entry.find('=');
    if (eq != std::string::npos) entry = trim(entry.substr(0, eq));
    if (!entry.empty()) names.push_back(entry);
    pos = comma + 1;
  }
  return names;
}

/// Alternatives of `using Payload = std::variant<...>` (last :: component).
std::vector<std::string> parseVariant(const ParsedFile& f, int* atLine) {
  std::vector<std::string> names;
  const std::string& b = f.blob;
  const std::size_t tag = b.find("using Payload");
  if (tag == std::string::npos) return names;
  const std::size_t open = b.find('<', tag);
  if (open == std::string::npos) return names;
  if (atLine) *atLine = lineOf(f, tag);
  const std::size_t close = matchAngle(b, open);
  if (close == std::string::npos) return names;
  std::string_view body =
      std::string_view(b).substr(open + 1, close - 1 - (open + 1));
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    const char c = i < body.size() ? body[i] : ',';
    if (c == '<' || c == '(') ++depth;
    else if (c == '>' || c == ')') --depth;
    else if (c == ',' && depth == 0) {
      std::string entry = trim(body.substr(start, i - start));
      const std::size_t sep = entry.rfind("::");
      if (sep != std::string::npos) entry = entry.substr(sep + 2);
      if (!entry.empty()) names.push_back(entry);
      start = i + 1;
    }
  }
  return names;
}

void checkTaxonomy(const std::vector<ParsedFile>& files, Diags& out) {
  const ParsedFile* eventHpp = findBySuffix(files, "obs/event.hpp");
  if (eventHpp == nullptr) return;

  int enumLine = 1;
  int variantLine = 1;
  const std::vector<std::string> kinds = parseEnumerators(*eventHpp, &enumLine);
  const std::vector<std::string> alts = parseVariant(*eventHpp, &variantLine);
  if (kinds.empty()) return;  // No taxonomy in this tree slice.

  // kEventKindCount literal must equal the enumerator count.
  {
    static const std::regex kCount(R"(kEventKindCount\s*=\s*(\d+))");
    std::smatch m;
    if (std::regex_search(eventHpp->blob, m, kCount)) {
      const std::size_t declared = std::stoul(m[1].str());
      if (declared != kinds.size())
        diag(out, *eventHpp,
             lineOf(*eventHpp,
                    static_cast<std::size_t>(m.position(0))),
             kEventTaxonomy,
             "kEventKindCount = " + m[1].str() + " but EventKind has " +
                 std::to_string(kinds.size()) + " enumerators");
    }
  }

  // The variant and the enum must list the same names, in the same order.
  if (!alts.empty()) {
    const std::size_t n = std::min(kinds.size(), alts.size());
    for (std::size_t i = 0; i < n; ++i)
      if (kinds[i] != alts[i]) {
        diag(out, *eventHpp, enumLine, kEventTaxonomy,
             "EventKind[" + std::to_string(i) + "] = " + kinds[i] +
                 " but Payload[" + std::to_string(i) + "] = " + alts[i] +
                 " — the enum order defines the variant index");
        break;
      }
    if (kinds.size() != alts.size())
      diag(out, *eventHpp, variantLine, kEventTaxonomy,
           "EventKind has " + std::to_string(kinds.size()) +
               " enumerators but Payload has " + std::to_string(alts.size()) +
               " alternatives");
  }

  // Every kind needs a `case EventKind::X` in sink.cpp's eventName switch.
  if (const ParsedFile* sink = findBySuffix(files, "obs/sink.cpp")) {
    const std::size_t fn = sink->blob.find("eventName");
    const int anchor = fn == std::string::npos ? 1 : lineOf(*sink, fn);
    for (const std::string& k : kinds)
      if (!wholeWordIn(sink->blob, "EventKind::" + k) ||
          sink->blob.find("case EventKind::" + k) == std::string::npos)
        diag(out, *sink, anchor, kEventTaxonomy,
             "EventKind::" + k + " has no case in eventName() — every kind "
             "needs a stable JSONL type name");
  }

  // Every payload alternative needs a Writer overload in jsonl.cpp.
  if (const ParsedFile* jsonl = findBySuffix(files, "obs/jsonl.cpp")) {
    const std::size_t wr = jsonl->blob.find("struct Writer");
    const int anchor = wr == std::string::npos ? 1 : lineOf(*jsonl, wr);
    for (const std::string& a : (alts.empty() ? kinds : alts)) {
      const std::regex overload("operator\\s*\\(\\s*\\)\\s*\\(\\s*const\\s+"
                                "(\\w+::)*" + a + "\\s*&");
      if (!std::regex_search(jsonl->blob, overload))
        diag(out, *jsonl, anchor, kEventTaxonomy,
             "payload " + a + " has no Writer::operator()(const " + a +
                 "&) — its fields would be dropped from JSONL output");
    }
  }
}

// ---------------------------------------------------------------------------
// Parsing + suppressions
// ---------------------------------------------------------------------------

void collectSuppressions(ParsedFile& f) {
  static const std::regex kAllow(R"(mcsim-lint:\s*allow\(([^)]*)\))");
  for (std::size_t li = 0; li < f.lines.size(); ++li) {
    const std::string& comment = f.lines[li].comment;
    auto begin = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::stringstream args((*it)[1].str());
      std::string rule;
      while (std::getline(args, rule, ',')) {
        rule = trim(rule);
        if (rule.empty()) continue;
        Suppression s;
        s.line = static_cast<int>(li) + 1;
        s.rule = rule;
        s.known = isKnownRule(rule);
        // A trailing comment covers its own line; a standalone comment (no
        // code on the line) covers the first code line after the comment
        // block, so a multi-line justification can precede the code.
        s.target = s.line;
        if (trim(f.lines[li].code).empty()) {
          for (std::size_t j = li + 1; j < f.lines.size(); ++j) {
            if (!trim(f.lines[j].code).empty()) {
              s.target = static_cast<int>(j) + 1;
              break;
            }
          }
        }
        f.sups.push_back(std::move(s));
      }
    }
  }
}

/// Recover `#include` directives: the code view confirms the line is an
/// include (not a comment), the raw line supplies the path the code view
/// blanked.
void collectIncludes(ParsedFile& f, const std::string& rawText) {
  static const std::regex kInclude(R"(^\s*#\s*include\s*(["<])([^">]+)[">])");
  std::vector<std::string> raw;
  raw.reserve(f.lines.size());
  {
    std::istringstream in(rawText);
    std::string line;
    while (std::getline(in, line)) raw.push_back(std::move(line));
  }
  for (std::size_t li = 0; li < f.lines.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(f.lines[li].code, m, kInclude)) continue;
    IncludeDirective d;
    d.line = static_cast<int>(li) + 1;
    d.path = m[2].str();
    d.angled = m[1].str() == "<";
    if (li < raw.size()) {
      std::smatch rm;
      if (std::regex_search(raw[li], rm, kInclude)) {
        d.path = rm[2].str();
        d.angled = rm[1].str() == "<";
      }
    }
    f.includes.push_back(std::move(d));
  }
}

/// Drop diagnostics covered by a same-line or line-above suppression; then
/// report unused, unknown, or baseline-redundant suppressions.
Diags applySuppressions(std::vector<ParsedFile>& files, Diags diags,
                        const Options& options) {
  Diags kept;
  for (Diagnostic& d : diags) {
    ParsedFile* f = nullptr;
    for (ParsedFile& pf : files)
      if (pf.path == d.file) {
        f = &pf;
        break;
      }
    bool suppressed = false;
    if (f != nullptr) {
      for (Suppression& s : f->sups) {
        if (s.rule == d.rule && s.target == d.line) {
          s.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  for (const ParsedFile& f : files) {
    for (const Suppression& s : f.sups) {
      if (options.checkUnusedSuppressions) {
        if (!s.known) {
          kept.push_back(Diagnostic{
              f.path, s.line, kUnusedSuppression,
              "allow(" + s.rule + ") names an unknown rule; see "
              "mcsim-lint --list-rules"});
          continue;
        }
        if (!s.used) {
          kept.push_back(Diagnostic{
              f.path, s.line, kUnusedSuppression,
              "allow(" + s.rule + ") suppressed nothing; remove the stale "
              "suppression"});
          continue;
        }
      }
      if (options.checkSuppressionsAgainstBaseline &&
          options.baseline != nullptr && s.known && s.used &&
          options.baseline->contains(f.path, s.target, s.rule)) {
        kept.push_back(Diagnostic{
            f.path, s.line, kRedundantSuppression,
            "allow(" + s.rule + ") covers line " + std::to_string(s.target) +
                ", which the baseline already tracks; drop the allow() or "
                "delete the baseline entry"});
      }
    }
  }
  return kept;
}

std::vector<ParsedFile> parseAll(const std::vector<FileContent>& files) {
  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const FileContent& fc : files) {
    ParsedFile f;
    f.path = fc.path;
    f.lines = stripSource(fc.text);
    f.lineStart.reserve(f.lines.size());
    std::size_t offset = 0;
    for (const SourceLine& l : f.lines) {
      f.lineStart.push_back(offset);
      offset += l.code.size() + 1;
      if (!f.blob.empty()) f.blob.push_back('\n');
      f.blob += l.code;
      const std::size_t first = l.code.find_first_not_of(" \t");
      f.preproc.push_back(first != std::string::npos && l.code[first] == '#');
    }
    collectSuppressions(f);
    collectIncludes(f, fc.text);
    parsed.push_back(std::move(f));
  }
  return parsed;
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<Diagnostic> lintFiles(const std::vector<FileContent>& files,
                                  const Options& options) {
  std::vector<ParsedFile> parsed = parseAll(files);

  Diags diags;

  // Pass 1: per-file identifier sweeps; members (name_) join a global set so
  // a container declared in the .hpp is still caught iterating in the .cpp.
  std::set<std::string> globalMembers;
  std::vector<std::set<std::string>> localNames(parsed.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    IdentScan scan = scanIdentifiers(parsed[i], diags);
    for (const std::string& n : scan.unorderedNames) {
      if (endsWith(n, "_")) globalMembers.insert(n);
      localNames[i].insert(n);
    }
  }

  // Pass 2: iteration detection + line rules.
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    std::set<std::string> names = globalMembers;
    names.insert(localNames[i].begin(), localNames[i].end());
    scanUnorderedIteration(parsed[i], names, diags);
    scanLines(parsed[i], diags);
    scanTraceMacro(parsed[i], diags);
    scanRawLines(parsed[i], files[i].text, diags);
  }

  // Pass 3: project-wide passes (include graph, concurrency, floats).
  detail::runGraphPasses(parsed, options.layers, diags);
  detail::runConcurrencyPasses(parsed, diags);
  detail::runFloatPasses(parsed, diags);

  checkTaxonomy(parsed, diags);

  diags = applySuppressions(parsed, diags, options);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule && a.message == b.message;
                          }),
              diags.end());
  return diags;
}

std::vector<Diagnostic> lintTree(const std::filesystem::path& root,
                                 std::vector<std::string> subdirs,
                                 const Options& options, std::string* error) {
  namespace fs = std::filesystem;
  if (subdirs.empty()) subdirs = {"src", "tools", "bench", "examples", "tests"};

  std::vector<FileContent> files;
  std::error_code ec;
  if (!fs::exists(root, ec)) {
    // A typo'd root must not report a vacuously clean tree.
    if (error) *error = root.string() + ": no such directory";
    return {};
  }
  for (const std::string& sub : subdirs) {
    const fs::path base = root / sub;
    if (!fs::exists(base, ec)) continue;
    fs::recursive_directory_iterator it(base, ec), end;
    if (ec) {
      if (error) *error = base.string() + ": " + ec.message();
      return {};
    }
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      const fs::path& p = it->path();
      if (it->is_directory()) {
        const std::string name = p.filename().string();
        if (name == "fixtures" || name == "build" || name == ".git")
          it.disable_recursion_pending();
        continue;
      }
      const std::string fn = p.filename().string();
      if (!(endsWith(fn, ".hpp") || endsWith(fn, ".cpp") ||
            endsWith(fn, ".hpp.in")))
        continue;
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        if (error) *error = p.string() + ": cannot read";
        return {};
      }
      std::ostringstream text;
      text << in.rdbuf();
      files.push_back(
          FileContent{fs::relative(p, root).generic_string(), text.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileContent& a, const FileContent& b) {
              return a.path < b.path;
            });

  // Auto-load the checked-in layering DAG when the caller did not supply
  // one: a malformed file is a finding, not a silent skip.
  if (options.layers == nullptr) {
    const fs::path layersPath = root / "tools" / "lint" / "layers.json";
    if (fs::exists(layersPath, ec)) {
      std::ifstream in(layersPath, std::ios::binary);
      std::ostringstream text;
      text << in.rdbuf();
      Expected<LayerGraph> graph = layersFromJson(text.str());
      if (graph.hasValue()) {
        Options withLayers = options;
        withLayers.layers = &graph.value();
        return lintFiles(files, withLayers);
      }
      std::vector<Diagnostic> diags = lintFiles(files, options);
      diags.insert(diags.begin(),
                   Diagnostic{"tools/lint/layers.json", 1, "layer-config",
                              graph.error()});
      return diags;
    }
  }
  return lintFiles(files, options);
}

std::string toJson(const std::vector<Diagnostic>& diagnostics) {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };

  std::map<std::string, std::size_t> counts;
  std::ostringstream os;
  os << "{\"version\":1,\"findings\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    ++counts[d.rule];
    if (i) os << ',';
    os << "{\"file\":\"" << escape(d.file) << "\",\"line\":" << d.line
       << ",\"rule\":\"" << escape(d.rule) << "\",\"message\":\""
       << escape(d.message) << "\"}";
  }
  os << "],\"counts\":{";
  bool first = true;
  for (const auto& [rule, n] : counts) {
    if (!first) os << ',';
    first = false;
    os << '"' << escape(rule) << "\":" << n;
  }
  os << "},\"total\":" << diagnostics.size() << "}";
  return os.str();
}

}  // namespace mcsim::lint
