// The lint baseline (tools/lint/baseline.json): findings present at rule
// adoption, tracked but not blocking.
//
// A new rule family can land strict without a flag-day cleanup: findings the
// tree already had are written into the baseline (mcsim-lint
// --write-baseline), CI fails only on findings *not* in the baseline, and a
// separate shrinks-only check refuses PRs that grow the file.  Entries are
// matched exactly on (file, line, rule); when surrounding edits shift a
// baselined line the finding surfaces as fresh and the stale entry as
// expired — regenerate with --write-baseline and let the shrink check
// arbitrate.  Codec goes through util/json + Expected<> like layers.json.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"
#include "mcsim/util/expected.hpp"

namespace mcsim::lint {

struct BaselineEntry {
  std::string file;
  int line = 1;
  std::string rule;
};

bool operator<(const BaselineEntry& a, const BaselineEntry& b);
bool operator==(const BaselineEntry& a, const BaselineEntry& b);

struct Baseline {
  std::vector<BaselineEntry> entries;  ///< Kept sorted and unique.

  bool contains(const std::string& file, int line,
                const std::string& rule) const;
};

/// Parse a baseline.json document; rejects unknown keys and malformed
/// entries (every rejection names the offending key).
Expected<Baseline> baselineFromJson(const std::string& text);

/// Canonical serialization: sorted entries, one per line (diffable; the
/// shrinks-only CI check counts lines that are entries).
std::string baselineToJson(const Baseline& baseline);

/// Adopt the given findings as the new baseline (sorted, deduplicated).
Baseline baselineFromFindings(const std::vector<Diagnostic>& findings);

/// Split findings into fresh (blocking), baselined (tracked), and expired
/// baseline entries that matched nothing (candidates for deletion).
struct BaselinePartition {
  std::vector<Diagnostic> fresh;
  std::vector<Diagnostic> baselined;
  std::vector<BaselineEntry> expired;
};

BaselinePartition applyBaseline(std::vector<Diagnostic> findings,
                                const Baseline& baseline);

}  // namespace mcsim::lint
