// mcsim-lint CLI driver.  See lint.hpp for the rule catalog and design.
//
//   mcsim-lint [--root DIR] [--json] [--list-rules] [--no-unused-check]
//              [subdir...]
//
// Lints src/ tools/ bench/ examples/ under --root (default: the current
// directory) unless explicit subdirs are given.  Exit status: 0 clean,
// 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void printUsage(std::ostream& os) {
  os << "usage: mcsim-lint [options] [subdir...]\n"
        "  --root DIR         repository root to lint (default: .)\n"
        "  --json             machine-readable findings on stdout\n"
        "  --list-rules       print the rule catalog and exit\n"
        "  --no-unused-check  do not diagnose stale allow() suppressions\n"
        "  subdir...          subdirectories of root to scan\n"
        "                     (default: src tools bench examples)\n"
        "exit status: 0 clean, 1 findings, 2 error\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  mcsim::lint::Options options;
  std::vector<std::string> subdirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const mcsim::lint::RuleInfo& r : mcsim::lint::ruleCatalog())
        std::cout << r.id << "\n    " << r.summary << "\n";
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-unused-check") {
      options.checkUnusedSuppressions = false;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "mcsim-lint: --root needs a value\n";
        return 2;
      }
      root = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mcsim-lint: unknown option " << arg << "\n";
      printUsage(std::cerr);
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }

  std::string error;
  const std::vector<mcsim::lint::Diagnostic> findings =
      mcsim::lint::lintTree(root, subdirs, options, &error);
  if (!error.empty()) {
    std::cerr << "mcsim-lint: " << error << "\n";
    return 2;
  }

  if (json) {
    std::cout << mcsim::lint::toJson(findings) << "\n";
  } else {
    for (const mcsim::lint::Diagnostic& d : findings)
      std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    if (!findings.empty())
      std::cout << "mcsim-lint: " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
