// mcsim-lint CLI driver.  See lint.hpp for the rule catalog and design.
//
//   mcsim-lint [--root DIR] [--format=text|json|github|sarif] [--list-rules]
//              [--layers FILE | --no-layers] [--baseline FILE | --no-baseline]
//              [--write-baseline] [--check-suppressions-against-baseline]
//              [--no-unused-check] [subdir...]
//
// Lints src/ tools/ bench/ examples/ tests/ under --root (default: the
// current directory) unless explicit subdirs are given.  The layering DAG
// (tools/lint/layers.json) and the baseline (tools/lint/baseline.json) are
// picked up from the root automatically when present.  Findings already in
// the baseline are reported but do not block; exit status reflects *fresh*
// findings only: 0 clean, 1 fresh findings, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baseline.hpp"
#include "layers.hpp"
#include "lint.hpp"

namespace {

void printUsage(std::ostream& os) {
  os << "usage: mcsim-lint [options] [subdir...]\n"
        "  --root DIR         repository root to lint (default: .)\n"
        "  --format=FMT       text (default), json, github (workflow\n"
        "                     annotations), or sarif (SARIF 2.1.0)\n"
        "  --json             shorthand for --format=json\n"
        "  --sarif            shorthand for --format=sarif\n"
        "  --list-rules       print the rule catalog and exit\n"
        "  --layers FILE      layering DAG (default:\n"
        "                     ROOT/tools/lint/layers.json if present)\n"
        "  --no-layers        skip the layering pass entirely\n"
        "  --baseline FILE    baseline (default:\n"
        "                     ROOT/tools/lint/baseline.json if present)\n"
        "  --no-baseline      treat every finding as fresh\n"
        "  --write-baseline   adopt all current findings as the baseline\n"
        "                     and write the baseline file\n"
        "  --check-suppressions-against-baseline\n"
        "                     flag allow() comments whose line the baseline\n"
        "                     already tracks (redundant-suppression)\n"
        "  --no-unused-check  do not diagnose stale allow() suppressions\n"
        "  subdir...          subdirectories of root to scan\n"
        "                     (default: src tools bench examples tests)\n"
        "exit status: 0 clean, 1 fresh findings, 2 error\n";
}

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

bool fileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string layersPath;    // explicit --layers
  std::string baselinePath;  // explicit --baseline
  bool noLayers = false;
  bool noBaseline = false;
  bool writeBaseline = false;
  mcsim::lint::Options options;
  std::vector<std::string> subdirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const mcsim::lint::RuleInfo& r : mcsim::lint::ruleCatalog())
        std::cout << r.id << "\n    " << r.summary << "\n";
      return 0;
    } else if (arg == "--json") {
      format = "json";
    } else if (arg == "--sarif") {
      format = "sarif";
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "github" &&
          format != "sarif") {
        std::cerr << "mcsim-lint: unknown format " << format << "\n";
        return 2;
      }
    } else if (arg == "--no-unused-check") {
      options.checkUnusedSuppressions = false;
    } else if (arg == "--no-layers") {
      noLayers = true;
    } else if (arg == "--no-baseline") {
      noBaseline = true;
    } else if (arg == "--write-baseline") {
      writeBaseline = true;
    } else if (arg == "--check-suppressions-against-baseline") {
      options.checkSuppressionsAgainstBaseline = true;
    } else if (arg == "--root" || arg == "--layers" || arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "mcsim-lint: " << arg << " needs a value\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--root") root = value;
      else if (arg == "--layers") layersPath = value;
      else baselinePath = value;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mcsim-lint: unknown option " << arg << "\n";
      printUsage(std::cerr);
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }

  // Layering DAG: an explicit --layers must parse; the default (auto-load
  // inside lintTree) degrades to a layer-config finding instead.
  // --no-layers lets the auto-load happen and strips layer-order /
  // layer-config findings afterwards (lintTree auto-loads whenever
  // options.layers is unset, and an empty LayerGraph is not a valid
  // "no layering" sentinel — the codec requires modules to be non-empty).
  mcsim::lint::LayerGraph layers;
  if (!noLayers && !layersPath.empty()) {
    std::string text;
    if (!readFile(layersPath, &text)) {
      std::cerr << "mcsim-lint: cannot read " << layersPath << "\n";
      return 2;
    }
    mcsim::Expected<mcsim::lint::LayerGraph> parsed =
        mcsim::lint::layersFromJson(text);
    if (!parsed.hasValue()) {
      std::cerr << "mcsim-lint: " << parsed.error() << "\n";
      return 2;
    }
    layers = std::move(parsed.value());
    options.layers = &layers;
  }

  // Baseline: explicit path must parse; the default is picked up from the
  // root when present.
  mcsim::lint::Baseline baseline;
  bool haveBaseline = false;
  if (!noBaseline) {
    std::string path = baselinePath;
    if (path.empty()) {
      const std::string candidate = root + "/tools/lint/baseline.json";
      if (fileExists(candidate)) path = candidate;
    }
    if (!path.empty()) {
      std::string text;
      if (!readFile(path, &text)) {
        std::cerr << "mcsim-lint: cannot read " << path << "\n";
        return 2;
      }
      mcsim::Expected<mcsim::lint::Baseline> parsed =
          mcsim::lint::baselineFromJson(text);
      if (!parsed.hasValue()) {
        std::cerr << "mcsim-lint: " << parsed.error() << "\n";
        return 2;
      }
      baseline = std::move(parsed.value());
      haveBaseline = true;
    }
  }
  if (haveBaseline) options.baseline = &baseline;

  std::string error;
  std::vector<mcsim::lint::Diagnostic> findings =
      mcsim::lint::lintTree(root, subdirs, options, &error);
  if (!error.empty()) {
    std::cerr << "mcsim-lint: " << error << "\n";
    return 2;
  }
  if (noLayers) {
    // --no-layers also disables the auto-loaded DAG's diagnostics.
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [](const mcsim::lint::Diagnostic& d) {
                         return d.rule == "layer-order" ||
                                d.rule == "layer-config";
                       }),
        findings.end());
  }

  if (writeBaseline) {
    const std::string path = baselinePath.empty()
                                 ? root + "/tools/lint/baseline.json"
                                 : baselinePath;
    const mcsim::lint::Baseline adopted =
        mcsim::lint::baselineFromFindings(findings);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "mcsim-lint: cannot write " << path << "\n";
      return 2;
    }
    out << mcsim::lint::baselineToJson(adopted);
    std::cout << "mcsim-lint: wrote " << adopted.entries.size()
              << " baseline entr" << (adopted.entries.size() == 1 ? "y" : "ies")
              << " to " << path << "\n";
    return 0;
  }

  mcsim::lint::BaselinePartition split =
      mcsim::lint::applyBaseline(std::move(findings), baseline);

  if (format == "json") {
    std::cout << mcsim::lint::toJson(split.fresh) << "\n";
  } else if (format == "sarif") {
    std::cout << mcsim::lint::toSarif(split.fresh, split.baselined);
  } else if (format == "github") {
    std::cout << mcsim::lint::toGithubAnnotations(split.fresh,
                                                  split.baselined);
  } else {
    for (const mcsim::lint::Diagnostic& d : split.fresh)
      std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    for (const mcsim::lint::Diagnostic& d : split.baselined)
      std::cout << d.file << ":" << d.line << ": [" << d.rule
                << "] (baselined) " << d.message << "\n";
    for (const mcsim::lint::BaselineEntry& e : split.expired)
      std::cout << e.file << ":" << e.line << ": [" << e.rule
                << "] baseline entry matched nothing; regenerate with "
                   "--write-baseline\n";
    if (!split.fresh.empty() || !split.baselined.empty())
      std::cout << "mcsim-lint: " << split.fresh.size() << " fresh, "
                << split.baselined.size() << " baselined, "
                << split.expired.size() << " expired\n";
  }
  return split.fresh.empty() ? 0 : 1;
}
