#include "layers.hpp"

#include <algorithm>
#include <set>

#include "mcsim/util/json.hpp"

namespace mcsim::lint {
namespace {

using json::JsonObject;
using json::JsonValue;

Unexpected<std::string> fail(const std::string& what) {
  return makeUnexpected("layers.json: " + what);
}

}  // namespace

const LayerModule* LayerGraph::find(const std::string& name) const {
  for (const LayerModule& m : modules)
    if (m.name == name) return &m;
  return nullptr;
}

std::string LayerGraph::moduleOf(const std::string& path) const {
  auto it = files.find(path);
  if (it != files.end()) return it->second;
  return dirModuleOf(path);
}

std::string LayerGraph::dirModuleOf(const std::string& path) {
  constexpr const char* kPrefix = "src/mcsim/";
  constexpr std::size_t kPrefixLen = 10;
  if (path.compare(0, kPrefixLen, kPrefix) != 0) return "";
  const std::size_t slash = path.find('/', kPrefixLen);
  if (slash == std::string::npos) return "";  // src/mcsim/mcsim.hpp etc.
  return path.substr(kPrefixLen, slash - kPrefixLen);
}

Expected<LayerGraph> layersFromJson(const std::string& text) {
  JsonValue doc;
  try {
    doc = json::parseJson(text);
  } catch (const std::exception& e) {
    return fail(std::string("parse error: ") + e.what());
  }
  if (!doc.isObject()) return fail("top level must be an object");

  LayerGraph graph;
  for (const auto& [key, value] : doc.asObject()) {
    if (key == "version") {
      // Exact format-version tag.  mcsim-lint: allow(float-equality)
      if (!value.isNumber() || value.asNumber() != 1.0)
        return fail("\"version\" must be the number 1");
    } else if (key == "modules") {
      if (!value.isArray()) return fail("\"modules\" must be an array");
      for (const JsonValue& entry : value.asArray()) {
        if (!entry.isObject())
          return fail("each module entry must be an object");
        LayerModule mod;
        for (const auto& [mk, mv] : entry.asObject()) {
          if (mk == "name") {
            if (!mv.isString() || mv.asString().empty())
              return fail("module \"name\" must be a non-empty string");
            mod.name = mv.asString();
          } else if (mk == "deps") {
            if (!mv.isArray()) return fail("module \"deps\" must be an array");
            for (const JsonValue& dep : mv.asArray()) {
              if (!dep.isString())
                return fail("module deps must be strings");
              mod.deps.push_back(dep.asString());
            }
          } else {
            return fail("unknown module key \"" + mk + "\"");
          }
        }
        if (mod.name.empty()) return fail("module entry is missing \"name\"");
        graph.modules.push_back(std::move(mod));
      }
    } else if (key == "files") {
      if (!value.isObject()) return fail("\"files\" must be an object");
      for (const auto& [path, mod] : value.asObject()) {
        if (!mod.isString())
          return fail("files[\"" + path + "\"] must name a module");
        graph.files.emplace(path, mod.asString());
      }
    } else {
      return fail("unknown key \"" + key + "\"");
    }
  }
  if (graph.modules.empty()) return fail("\"modules\" must not be empty");

  std::set<std::string> names;
  for (const LayerModule& m : graph.modules)
    if (!names.insert(m.name).second)
      return fail("duplicate module \"" + m.name + "\"");
  for (LayerModule& m : graph.modules) {
    std::sort(m.deps.begin(), m.deps.end());
    m.deps.erase(std::unique(m.deps.begin(), m.deps.end()), m.deps.end());
    for (const std::string& dep : m.deps) {
      if (dep == m.name)
        return fail("module \"" + m.name + "\" depends on itself");
      if (names.count(dep) == 0)
        return fail("module \"" + m.name + "\" depends on undeclared \"" +
                    dep + "\"");
    }
  }
  for (const auto& [path, mod] : graph.files)
    if (names.count(mod) == 0)
      return fail("files[\"" + path + "\"] names undeclared module \"" + mod +
                  "\"");
  std::sort(graph.modules.begin(), graph.modules.end(),
            [](const LayerModule& a, const LayerModule& b) {
              return a.name < b.name;
            });
  return graph;
}

std::string layersToJson(const LayerGraph& graph) {
  LayerGraph canonical = graph;
  std::sort(canonical.modules.begin(), canonical.modules.end(),
            [](const LayerModule& a, const LayerModule& b) {
              return a.name < b.name;
            });

  // Hand-rolled pretty writer: one module per line keeps the committed file
  // diffable; the parser accepts the output (round-trip is pinned in tests).
  std::string out = "{\n  \"version\": 1,\n  \"modules\": [\n";
  for (std::size_t i = 0; i < canonical.modules.size(); ++i) {
    LayerModule mod = canonical.modules[i];
    std::sort(mod.deps.begin(), mod.deps.end());
    out += "    {\"name\": \"" + mod.name + "\", \"deps\": [";
    for (std::size_t j = 0; j < mod.deps.size(); ++j) {
      if (j) out += ", ";
      out += "\"" + mod.deps[j] + "\"";
    }
    out += "]}";
    out += i + 1 < canonical.modules.size() ? ",\n" : "\n";
  }
  out += "  ]";
  if (!canonical.files.empty()) {
    out += ",\n  \"files\": {\n";
    std::size_t i = 0;
    for (const auto& [path, mod] : canonical.files) {
      out += "    \"" + path + "\": \"" + mod + "\"";
      out += ++i < canonical.files.size() ? ",\n" : "\n";
    }
    out += "  }";
  }
  out += "\n}\n";
  return out;
}

std::string layersCycle(const LayerGraph& graph) {
  // Iterative DFS with an explicit color map; the first back edge found
  // (in sorted module order, so deterministically) is rendered as a path.
  enum class Color { White, Grey, Black };
  std::map<std::string, Color> color;
  for (const LayerModule& m : graph.modules) color[m.name] = Color::White;

  std::vector<std::string> path;
  std::string cycle;

  // Recursive lambda via explicit stack-free recursion helper.
  struct Dfs {
    const LayerGraph& graph;
    std::map<std::string, Color>& color;
    std::vector<std::string>& path;
    std::string& cycle;

    bool visit(const std::string& name) {
      color[name] = Color::Grey;
      path.push_back(name);
      if (const LayerModule* m = graph.find(name)) {
        for (const std::string& dep : m->deps) {
          if (color[dep] == Color::Grey) {
            auto it = std::find(path.begin(), path.end(), dep);
            for (; it != path.end(); ++it) cycle += *it + " -> ";
            cycle += dep;
            return true;
          }
          if (color[dep] == Color::White && visit(dep)) return true;
        }
      }
      path.pop_back();
      color[name] = Color::Black;
      return false;
    }
  } dfs{graph, color, path, cycle};

  for (const LayerModule& m : graph.modules) {
    if (color[m.name] == Color::White && dfs.visit(m.name)) break;
  }
  return cycle;
}

}  // namespace mcsim::lint
