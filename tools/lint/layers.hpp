// The checked-in layering DAG (tools/lint/layers.json) and its codec.
//
// mcsim's 13 modules follow a strict bottom-up layering (util → dag/sim →
// engine → obs/faults → runner → workflows/analysis → serve); until v2 that
// layering was enforced only by convention plus two special cases hard-coded
// into the include-hygiene rule.  layers.json makes the whole DAG explicit:
// each module declares the modules its files may include, and the linter's
// include-graph pass diagnoses any edge the DAG does not allow.
//
// Files that genuinely straddle layers (obs/report.* sits above engine while
// obs/sink.* sits below util) are assigned to *virtual* sub-modules via the
// "files" map, so the graph stays an honest DAG instead of collapsing into
// "obs may include everything".  The committed graph is pinned to the actual
// include graph by tests/lint/layers_test.cpp: an edge that stops being used
// must be deleted, a new edge must be declared (or the include fixed).
//
// The codec goes through util/json + Expected<> like the provider profiles:
// every rejection names the key and the constraint it violated.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mcsim/util/expected.hpp"

namespace mcsim::lint {

struct LayerModule {
  std::string name;
  std::vector<std::string> deps;  ///< Modules this module's files may include.
};

struct LayerGraph {
  /// Sorted by name (the codec canonicalizes; order is part of the bytes).
  std::vector<LayerModule> modules;
  /// Exact root-relative path → module, overriding the directory mapping
  /// (virtual sub-modules; the mcsim.hpp umbrella; generated headers).
  std::map<std::string, std::string> files;

  /// The declared module, or nullptr if `name` is not in the DAG.
  const LayerModule* find(const std::string& name) const;

  /// Module a root-relative path belongs to for layering purposes: the
  /// "files" override if present, else the src/mcsim/<dir>/ prefix, else ""
  /// (tools/tests/bench/examples are exempt from layering).
  std::string moduleOf(const std::string& path) const;

  /// Directory-derived module of a path ("src/mcsim/obs/sink.hpp" → "obs"),
  /// ignoring overrides; "" outside src/mcsim/.  Used by the IWYU pass,
  /// which keys on include paths rather than virtual modules.
  static std::string dirModuleOf(const std::string& path);
};

/// Parse a layers.json document.  Rejects unknown keys, non-string deps,
/// deps on undeclared modules, duplicate modules, and file overrides that
/// name undeclared modules.
Expected<LayerGraph> layersFromJson(const std::string& text);

/// Canonical serialization (modules sorted by name, deps sorted): parsing
/// the output yields an identical graph, byte for byte.
std::string layersToJson(const LayerGraph& graph);

/// "" when the declared dependency graph is acyclic; otherwise a rendered
/// cycle like "engine -> obs.session -> engine".
std::string layersCycle(const LayerGraph& graph);

}  // namespace mcsim::lint
