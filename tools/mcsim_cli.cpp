// mcsim — command-line front-end to the simulator.
//
//   mcsim info     --workflow montage:2
//   mcsim simulate --workflow montage:1 --mode cleanup --procs 8 [--trace out.json]
//   mcsim sweep    --workflow montage:4 [--procs 1,2,4,...]
//   mcsim modes    --workflow cybershake
//   mcsim ccr      --workflow montage:1 --procs 8 --targets 0.053,0.5,2
//   mcsim reliability --workflow montage:1 --mtbf 900,3600,14400
//   mcsim explain  --workflow montage:4 --mode cleanup [--json] [--top 20]
//   mcsim dax      --workflow montage:1 --out montage1.dax
//   mcsim survey   --tiles 1000 --shards 8 --jobs 8
//   mcsim serve    --socket /tmp/mcsim.sock --jobs 8
//   mcsim request  --socket /tmp/mcsim.sock --workflow montage:4 --procs 1,16
//
// --workflow accepts montage:<degrees>, cybershake, epigenomics, inspiral,
// sipht, or a path to a DAX file.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "mcsim/mcsim.hpp"

namespace {

using namespace mcsim;

constexpr const char* kUsage = R"(usage: mcsim <command> [options]

commands:
  info      workflow structure and aggregate statistics
  simulate  one execution; prints metrics and costs
  sweep     Question-1 provisioning sweep (Fig 4-6 style)
  modes     Question-2 data-mode comparison (Fig 7-9 style)
  ccr       Fig-11 style CCR sweep
  reliability  cost vs. processor MTBF across the three data modes
  explain   critical-path cost attribution for one execution
  providers list the provider catalog (fee schedules, SKUs, storage tiers)
  optimize  cross-provider placement optimizer: sweep provider x instance
            x storage class x data mode x data placement, rank by total
            cost and mark the cost-makespan Pareto frontier
  dax       write the workflow as a DAX XML file
  survey    build a sky-survey campaign (many Montage tiles via the
            streaming builder) and simulate it as concurrent shards
  serve     run the simulation daemon on a unix socket (NDJSON protocol;
            also answers HTTP "GET /metrics" for Prometheus scrapers)
  request   submit a scenario batch to a running daemon and wait for the
            result (one scenario per --procs entry); prints the JSON reply
  status    poll a job on a running daemon (--job <id>)
  cancel    cancel a job on a running daemon (--job <id>)
  metrics   scrape a running daemon's Prometheus exposition
  shutdown  ask a running daemon to stop
  version   print version, git SHA and build type (also --version)

common options:
  --workflow <spec>   montage:<degrees> | cybershake | epigenomics |
                      inspiral | sipht | <path.dax>       (default montage:1)
  --procs <n|list>    processor count or comma list        (default 8)
  --mode <m>          remote-io | regular | cleanup        (default regular)
  --bandwidth <mbps>  user<->storage link                  (default 10)
  --targets <list>    CCR targets for `ccr`
  --out <path>        output file for `dax` / --trace
  --trace <path>      (simulate) write a Chrome trace JSON
  --trace-out <path>  (simulate/explain) write the causal span trace as
                      Perfetto/Chrome trace-event JSON
  --mctrace-out <p>   (simulate/explain) write the span trace in the compact
                      binary .mctrace format
  --telemetry-dir <d> (simulate) write events.jsonl, metrics.prom and
                      report.json for the run into directory <d>
  --sample-period <s> storage sampling period for --telemetry-dir
                      in simulated seconds                  (default 60)
  --profile           (simulate) emit simulator self-profiling events
                      (phase timers) into the telemetry stream
  --billing <b>       (explain) provisioned | usage   (default provisioned)
  --top <n>           (explain) rows in the top-task table (default 10)
  --json              (explain) machine-readable mcsim.explain.v1 JSON
  --jobs <n>          worker threads for sweep / modes / ccr /
                      reliability; 0 = serial (exact legacy code
                      path, useful for debugging)
                      (default: hardware concurrency)
  --log-level <l>     debug | info | warn | error | off     (default warn)
  --csv               machine-readable output where supported

provider options (simulate / sweep / modes / ccr / reliability / survey
price against one provider; optimize sweeps several):
  --provider <name>   catalog entry to price against  (default amazon-2008)
  --instance <sku>    instance type within the provider    (default first)
  --storage-class <c> storage class within the provider    (default first)
  --providers-dir <d> load the catalog from <d>/*.json instead of the
                      built-in profiles (config/providers/ mirrors them)

optimize options:
  --providers <list>  comma list of catalog names     (default: everything)
  --billing <b>       provisioned | usage                  (default usage)
  --spot              also evaluate spot variants of spot-capable SKUs
  --archive-hosting   also host inputs/outputs on provider storage tiers
  --cross-scratch     also place intermediates off the compute provider
  --sku-granularity   bill at each SKU's granularity instead of per-second
  --requests-per-month <n>  amortize hosted-archive holding costs over n
                      requests (0 = off)
  --top <n>           ranked rows to print                  (default 15)

survey options (survey takes no --workflow; tiles are generated):
  --tiles <n>            mosaic tiles in the campaign        (default 16)
  --tile-degrees <d>     degrees per tile                    (default 1)
  --overlap <f>          fraction of raw inputs shared with
                         the left neighbour tile, 0..0.5     (default 0)
  --runtime-jitter <f>   per-tile CPU jitter fraction, 0..0.9(default 0)
  --release-interval <s> tile release cadence, sim seconds   (default 0)
  --survey-seed <n>      campaign seed                       (default 1)
  --shards <n>           split the campaign into n shard
                         workflows simulated concurrently
                         (default: --jobs; 1 when --overlap > 0)

serve / client options:
  --socket <path>     daemon unix socket path        (default mcsim.sock)
  --queue-depth <n>   (serve) max queued jobs before submits are refused
                      with a retryable "queue full"  (default 64)
  --cache-entries <n> (serve) memo-cache entry bound (default 256)
  --cache-bytes <n>   (serve) memo-cache byte bound  (default 256 MiB)
  --job <id>          (status/cancel) job id from a submit reply
  --base-seed <n>     (request) derive per-scenario fault seeds
  --events            (request) return the job's merged JSONL event
                      stream inside the result reply

fault injection (simulate: single --mtbf; reliability: comma list):
  --mtbf <s|list>     processor MTBF in simulated seconds; 0 = off
  --retries <n>       retry budget per task                 (default 3)
  --retry-policy <p>  fixed | backoff                       (default fixed)
  --retry-delay <s>   delay before re-attempt (backoff base)(default 0)
  --jitter <f>        backoff jitter fraction               (default 0)
  --deadline <s>      (simulate) workflow deadline; 0 = none
  --fault-seed <n>    fault Rng seed                        (default 1)
)";

LogLevel parseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (want debug|info|warn|error|off)");
}

engine::DataMode parseMode(const std::string& name) {
  if (name == "remote-io") return engine::DataMode::RemoteIO;
  if (name == "regular") return engine::DataMode::Regular;
  if (name == "cleanup") return engine::DataMode::DynamicCleanup;
  throw std::invalid_argument("unknown mode '" + name +
                              "' (want remote-io|regular|cleanup)");
}

std::vector<int> parseIntList(const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  if (out.empty()) throw std::invalid_argument("empty list");
  return out;
}

std::vector<double> parseDoubleList(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  if (out.empty()) throw std::invalid_argument("empty list");
  return out;
}

faults::RetryPolicy parseRetryFlags(const ArgParser& args) {
  faults::RetryPolicy retry;
  const std::string policy = args.valueOr("retry-policy", "fixed");
  if (policy == "fixed") retry.kind = faults::RetryPolicyKind::Fixed;
  else if (policy == "backoff")
    retry.kind = faults::RetryPolicyKind::ExponentialBackoff;
  else
    throw std::invalid_argument("unknown retry policy '" + policy +
                                "' (want fixed|backoff)");
  retry.maxRetries = args.intOr("retries", 3);
  retry.delaySeconds = args.numberOr("retry-delay", 0.0);
  retry.jitterFraction = args.numberOr("jitter", 0.0);
  return retry;
}

/// simulate's fault knobs: a single-MTBF crash model plus deadline.
void applyFaultFlags(engine::EngineConfig& cfg, const ArgParser& args) {
  cfg.faults.processor.mtbfSeconds = args.numberOr("mtbf", 0.0);
  cfg.faults.retry = parseRetryFlags(args);
  cfg.faults.deadlineSeconds = args.numberOr("deadline", 0.0);
  cfg.faults.seed =
      static_cast<std::uint64_t>(args.numberOr("fault-seed", 1.0));
}

/// The provider catalog for this invocation: built-in unless
/// --providers-dir points at a directory of profile JSON files.
cloud::ProviderCatalog loadCatalog(const ArgParser& args) {
  if (const auto dir = args.value("providers-dir")) {
    auto loaded = cloud::loadProviderCatalog(*dir);
    if (!loaded) throw std::runtime_error(loaded.error());
    return std::move(loaded.value());
  }
  return cloud::ProviderCatalog::builtin();
}

/// --provider/--instance/--storage-class -> the normalized fee view the
/// sweep-style commands consume.
cloud::Pricing selectPricing(const ArgParser& args) {
  return loadCatalog(args).pricing(args.valueOr("provider", "amazon-2008"),
                                   args.valueOr("instance", ""),
                                   args.valueOr("storage-class", ""));
}

int cmdInfo(const dag::Workflow& wf, const ArgParser&) {
  Table t({"property", "value"}, {Align::Left, Align::Left});
  t.addRow({"name", wf.name()});
  t.addRow({"tasks", std::to_string(wf.taskCount())});
  t.addRow({"files", std::to_string(wf.fileCount())});
  t.addRow({"levels", std::to_string(wf.levelCount())});
  t.addRow({"max level width", std::to_string(dag::maxLevelWidth(wf))});
  t.addRow({"max parallelism", std::to_string(dag::maxParallelism(wf))});
  t.addRow({"total cpu time", formatDuration(wf.totalRuntimeSeconds())});
  t.addRow({"critical path", formatDuration(dag::criticalPathSeconds(wf))});
  t.addRow({"total data", formatBytes(wf.totalFileBytes())});
  t.addRow({"external inputs", formatBytes(wf.externalInputBytes())});
  t.addRow({"workflow outputs", formatBytes(wf.workflowOutputBytes())});
  t.addRow({"CCR @ 10 Mbps",
            std::to_string(wf.ccr(montage::kReferenceBandwidthBytesPerSec))});
  t.print(std::cout);

  const dag::WorkflowStats stats = dag::computeStats(wf);
  std::cout << "\nper-routine profile:\n";
  Table byType({"routine", "tasks", "mean runtime", "total runtime",
                "mean output"});
  for (const auto& [name, type] : stats.byType) {
    byType.addRow({name, std::to_string(type.runtimeSeconds.count),
                   formatDuration(type.runtimeSeconds.mean()),
                   formatDuration(type.runtimeSeconds.total),
                   formatBytes(Bytes(type.outputBytes.mean()))});
  }
  byType.print(std::cout);
  return 0;
}

int cmdSimulate(const dag::Workflow& wf, const ArgParser& args) {
  engine::EngineConfig cfg;
  cfg.mode = parseMode(args.valueOr("mode", "regular"));
  cfg.processors = args.intOr("procs", 8);
  cfg.linkBandwidthBytesPerSec = args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  cfg.trace = true;
  cfg.profile = args.hasFlag("profile");
  applyFaultFlags(cfg, args);

  // --telemetry-dir: observe the whole run and write the three artifacts.
  // Log messages join the same event stream while the session is live.
  std::optional<obs::TelemetrySession> telemetry;
  if (const auto dir = args.value("telemetry-dir")) {
    telemetry.emplace(obs::TelemetryOptions{*dir});
    cfg.samplePeriodSeconds = args.numberOr("sample-period", 60.0);
    setLogSink(telemetry->sink());
  }

  // --trace-out / --mctrace-out: fold the run into a causal span trace.
  const auto traceOut = args.value("trace-out");
  const auto mctraceOut = args.value("mctrace-out");
  obs::TraceStore store;
  std::optional<obs::SpanSink> spanSink;
  obs::FanOutSink observers;
  if (traceOut || mctraceOut) {
    spanSink.emplace(store, analysis::traceTopology(wf));
    observers.add(&*spanSink);
  }
  if (telemetry) observers.add(telemetry->sink());
  if (observers.childCount() > 0) cfg.observer = &observers;

  const auto result = engine::simulateWorkflow(wf, cfg);
  std::cout << engine::summarize(wf, result) << "\n\n";
  engine::printLevelSummary(std::cout, wf, result);
  if (result.processorCrashes + result.tasksFailed + result.tasksAbandoned >
          0 ||
      result.deadlineExceeded) {
    std::cout << "\nfaults: " << result.processorCrashes << " crashes, "
              << result.taskRetries << " retries, " << result.tasksFailed
              << " failed, " << result.tasksAbandoned << " abandoned, "
              << formatDuration(result.wastedCpuSeconds) << " wasted cpu";
    if (result.deadlineExceeded) std::cout << ", DEADLINE EXCEEDED";
    std::cout << "\n";
  }

  const cloud::Pricing pricing = selectPricing(args);
  const auto provisioned = engine::computeCost(
      result, pricing, cloud::CpuBillingMode::Provisioned);
  const auto usage =
      engine::computeCost(result, pricing, cloud::CpuBillingMode::Usage);
  std::cout << "\nprovisioned total " << formatMoney(provisioned.total())
            << ", usage total " << formatMoney(usage.total()) << "\n";

  if (telemetry) {
    setLogSink(nullptr);
    const obs::RunReport report = telemetry->finish(
        wf, result, pricing, cloud::CpuBillingMode::Provisioned);
    std::cout << "telemetry: " << telemetry->eventsPath() << ", "
              << telemetry->metricsPath() << ", " << telemetry->reportPath()
              << " (report total " << formatMoney(report.totals.total())
              << ")\n";
  }

  if (const auto tracePath = args.value("trace")) {
    std::ofstream out(*tracePath);
    if (!out) throw std::runtime_error("cannot write " + *tracePath);
    engine::writeChromeTrace(out, wf, result);
    std::cout << "chrome trace written to " << *tracePath
              << " (open in chrome://tracing)\n";
  }
  if (traceOut) {
    std::ofstream out(*traceOut);
    if (!out) throw std::runtime_error("cannot write " + *traceOut);
    const obs::TraceNames names = analysis::traceNames(wf);
    obs::writePerfettoTrace(out, store, &names);
    std::cout << "span trace written to " << *traceOut
              << " (open in ui.perfetto.dev)\n";
  }
  if (mctraceOut) {
    std::ofstream out(*mctraceOut, std::ios::binary);
    if (!out) throw std::runtime_error("cannot write " + *mctraceOut);
    obs::writeMctrace(out, store);
    std::cout << "binary span trace written to " << *mctraceOut << " ("
              << store.spanCount() << " spans)\n";
  }
  return 0;
}

cloud::CpuBillingMode parseBilling(const std::string& name) {
  if (name == "provisioned") return cloud::CpuBillingMode::Provisioned;
  if (name == "usage") return cloud::CpuBillingMode::Usage;
  throw std::invalid_argument("unknown billing '" + name +
                              "' (want provisioned|usage)");
}

/// Run once with a SpanSink + ReportBuilder observing, then join the span
/// trace's critical path with the report's cost attribution.
int cmdExplain(const dag::Workflow& wf, const ArgParser& args) {
  engine::EngineConfig cfg;
  cfg.mode = parseMode(args.valueOr("mode", "regular"));
  cfg.processors = args.intOr("procs", 8);
  cfg.linkBandwidthBytesPerSec = args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  applyFaultFlags(cfg, args);

  obs::TraceStore store;
  obs::SpanSink spanSink(store, analysis::traceTopology(wf));
  obs::ReportBuilder lineItems;
  obs::FanOutSink fan({&spanSink, &lineItems});
  cfg.observer = &fan;

  const auto result = engine::simulateWorkflow(wf, cfg);
  const auto billing = parseBilling(args.valueOr("billing", "provisioned"));
  const obs::RunReport report =
      lineItems.build(wf, result, selectPricing(args), billing);
  const analysis::Explanation e = analysis::explainRun(wf, store, report);

  if (const auto path = args.value("trace-out")) {
    std::ofstream out(*path);
    if (!out) throw std::runtime_error("cannot write " + *path);
    const obs::TraceNames names = analysis::traceNames(wf);
    obs::writePerfettoTrace(out, store, &names);
  }
  if (const auto path = args.value("mctrace-out")) {
    std::ofstream out(*path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot write " + *path);
    obs::writeMctrace(out, store);
  }

  if (args.hasFlag("json")) {
    analysis::writeExplanationJson(std::cout, e);
  } else {
    const int top = args.intOr("top", 10);
    if (top < 0) throw std::invalid_argument("--top must be >= 0");
    analysis::printExplanation(std::cout, e, static_cast<std::size_t>(top));
  }
  return 0;
}

/// --jobs for the sweep-style commands; default = all hardware threads,
/// 0 = serial (the exact legacy single-threaded code path).
int parseJobs(const ArgParser& args) {
  const int jobs = args.intOr("jobs", runner::defaultJobs());
  if (jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
  return jobs;
}

int cmdSweep(const dag::Workflow& wf, const ArgParser& args) {
  analysis::ProvisioningSweepConfig config;
  if (const auto list = args.value("procs"))
    config.processorCounts = parseIntList(*list);
  config.base.linkBandwidthBytesPerSec =
      args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  config.jobs = parseJobs(args);
  const auto points =
      analysis::provisioningSweep(wf, selectPricing(args), config);
  analysis::provisioningTable(points).print(std::cout);
  return 0;
}

int cmdModes(const dag::Workflow& wf, const ArgParser& args) {
  analysis::DataModeComparisonConfig config;
  config.base.linkBandwidthBytesPerSec =
      args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  config.processorOverride = args.intOr("procs", 0);
  config.jobs = parseJobs(args);
  const auto rows =
      analysis::dataModeComparison(wf, selectPricing(args), config);
  analysis::dataModeTable(rows).print(std::cout);
  return 0;
}

int cmdCcr(const dag::Workflow& wf, const ArgParser& args) {
  analysis::CcrSweepConfig config;
  config.ccrTargets = {0.053, 0.1, 0.2, 0.4, 0.8, 1.6};
  if (const auto list = args.value("targets"))
    config.ccrTargets = parseDoubleList(*list);
  config.processors = args.intOr("procs", 8);
  config.jobs = parseJobs(args);
  const auto points =
      analysis::ccrSweep(wf, selectPricing(args), config);
  analysis::ccrTable(points).print(std::cout);
  return 0;
}

int cmdReliability(const dag::Workflow& wf, const ArgParser& args) {
  analysis::ReliabilityConfig rc;
  rc.mtbfSeconds = {900.0, 3600.0, 14400.0};  // 15 min, 1 h, 4 h
  if (const auto list = args.value("mtbf"))
    rc.mtbfSeconds = parseDoubleList(*list);
  rc.retry = parseRetryFlags(args);
  rc.faultSeed = static_cast<std::uint64_t>(args.numberOr("fault-seed", 1.0));
  rc.processorOverride = args.intOr("procs", 0);
  rc.base.linkBandwidthBytesPerSec =
      args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  rc.jobs = parseJobs(args);
  const auto points =
      analysis::reliabilitySweep(wf, selectPricing(args), rc);
  analysis::reliabilityTable(points).print(std::cout);
  return 0;
}

/// Build a survey campaign through the streaming builder, shard it, and
/// simulate the shards concurrently on the runner.  The only command that
/// does not load --workflow: the campaign is generated, not loaded.
int cmdSurvey(const ArgParser& args) {
  workflows::SurveyConfig sc;
  const double tilesArg = args.numberOr("tiles", 16.0);
  if (!(tilesArg >= 1.0))
    throw std::invalid_argument("--tiles must be >= 1");
  sc.tiles = static_cast<std::uint64_t>(tilesArg);
  sc.tileDegrees = args.numberOr("tile-degrees", 1.0);
  sc.overlapFraction = args.numberOr("overlap", 0.0);
  sc.seed = static_cast<std::uint64_t>(args.numberOr("survey-seed", 1.0));
  sc.runtimeJitterFraction = args.numberOr("runtime-jitter", 0.0);
  sc.releaseIntervalSeconds = args.numberOr("release-interval", 0.0);

  const workflows::SurveyCounts counts = workflows::surveyCounts(sc);
  const int jobs = parseJobs(args);
  int shards = args.intOr("shards", 0);
  if (shards == 0)
    shards = counts.sharedFiles > 0
                 ? 1
                 : static_cast<int>(std::min<std::uint64_t>(
                       sc.tiles,
                       static_cast<std::uint64_t>(std::max(1, jobs))));
  if (shards < 1) throw std::invalid_argument("--shards must be >= 1");

  Table structure({"property", "value"}, {Align::Left, Align::Left});
  structure.addRow({"tiles", std::to_string(counts.tiles)});
  structure.addRow({"grid", std::to_string(counts.cols) + " x " +
                            std::to_string(counts.rows)});
  structure.addRow({"tasks/tile", std::to_string(counts.tasksPerTile)});
  structure.addRow({"tasks", std::to_string(counts.tasks)});
  structure.addRow({"files", std::to_string(counts.files)});
  structure.addRow({"shared input files", std::to_string(counts.sharedFiles)});
  structure.addRow({"shards", std::to_string(shards)});
  structure.print(std::cout);

  // Wall-clock here is fine: this is a tool, not the deterministic core.
  const auto buildStart = std::chrono::steady_clock::now();
  std::vector<dag::Workflow> shardWfs;
  if (shards == 1) {
    shardWfs.push_back(workflows::buildSurveyCampaign(sc));
  } else {
    shardWfs =
        workflows::buildSurveyShards(sc, static_cast<std::uint32_t>(shards));
  }
  const double buildSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    buildStart)
          .count();
  std::cout << "\nbuilt " << counts.tasks << " tasks in "
            << formatDuration(buildSeconds) << " ("
            << static_cast<std::uint64_t>(
                   static_cast<double>(counts.tasks) /
                   std::max(buildSeconds, 1e-9))
            << " tasks/sec)\n\n";

  runner::CampaignOptions options;
  options.engine.mode = parseMode(args.valueOr("mode", "regular"));
  options.engine.processors = args.intOr("procs", 8);
  options.engine.linkBandwidthBytesPerSec =
      args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  applyFaultFlags(options.engine, args);
  options.jobs = jobs;

  const auto simStart = std::chrono::steady_clock::now();
  const runner::CampaignResult campaign = runner::runCampaign(shardWfs, options);
  const double simSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    simStart)
          .count();

  const cloud::Pricing pricing = selectPricing(args);
  Money provisioned;
  Money usage;
  for (const runner::ScenarioResult& shard : campaign.shardResults) {
    provisioned += engine::computeCost(shard.result, pricing,
                                       cloud::CpuBillingMode::Provisioned)
                       .total();
    usage += engine::computeCost(shard.result, pricing,
                                 cloud::CpuBillingMode::Usage)
                 .total();
  }

  Table results({"metric", "value"}, {Align::Left, Align::Left});
  results.addRow({"tasks executed", std::to_string(campaign.tasks)});
  results.addRow({"campaign makespan (concurrent shards)",
                  formatDuration(campaign.makespanSeconds)});
  results.addRow({"serialized makespan (one pool)",
                  formatDuration(campaign.serializedMakespanSeconds)});
  results.addRow({"cpu time", formatDuration(campaign.totalCpuSeconds)});
  results.addRow({"bytes in", formatBytes(campaign.bytesIn)});
  results.addRow({"bytes out", formatBytes(campaign.bytesOut)});
  results.addRow({"cost (provisioned)", formatMoney(provisioned)});
  results.addRow({"cost (usage)", formatMoney(usage)});
  results.addRow({"completed", campaign.completed ? "yes" : "NO"});
  results.addRow({"sim wall time", formatDuration(simSeconds)});
  results.print(std::cout);
  return 0;
}

serve::ServeDaemon* gServeDaemon = nullptr;

/// SIGTERM/SIGINT: requestStop() is async-signal-safe by contract.
void onStopSignal(int) {
  if (gServeDaemon != nullptr) gServeDaemon->requestStop();
}

int cmdServe(const ArgParser& args) {
  serve::DaemonOptions options;
  options.socketPath = args.valueOr("socket", "mcsim.sock");
  options.service.workers = parseJobs(args);
  const int depth = args.intOr("queue-depth", 64);
  if (depth < 1) throw std::invalid_argument("--queue-depth must be >= 1");
  options.service.maxQueuedJobs = static_cast<std::size_t>(depth);
  const double entries = args.numberOr("cache-entries", 256.0);
  const double bytes = args.numberOr("cache-bytes", 256.0 * 1024 * 1024);
  if (entries < 0 || bytes < 0)
    throw std::invalid_argument("cache bounds must be >= 0");
  options.service.cache.maxEntries = static_cast<std::size_t>(entries);
  options.service.cache.maxBytes = static_cast<std::size_t>(bytes);

  serve::ServeDaemon daemon(options);
  gServeDaemon = &daemon;
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  daemon.start();
  // Flush immediately: scripts (and the CI smoke job) wait for this line
  // before connecting.
  std::cout << "mcsim serve: listening on " << daemon.socketPath() << " ("
            << options.service.workers << " workers)" << std::endl;
  daemon.wait();
  gServeDaemon = nullptr;
  std::cout << "mcsim serve: stopped\n";
  return 0;
}

int cmdRequest(const ArgParser& args) {
  json::JsonObject request;
  request["workflow"] = args.valueOr("workflow", "montage:1");
  json::JsonArray scenarios;
  for (int p : parseIntList(args.valueOr("procs", "8"))) {
    json::JsonObject s;
    s["mode"] = args.valueOr("mode", "regular");
    s["processors"] = p;
    s["bandwidth_mbps"] = args.numberOr("bandwidth", 10.0);
    const double mtbf = args.numberOr("mtbf", 0.0);
    if (mtbf > 0.0) {
      s["mtbf_seconds"] = mtbf;
      s["fault_seed"] = args.numberOr("fault-seed", 1.0);
    }
    scenarios.push_back(json::JsonValue(std::move(s)));
  }
  request["scenarios"] = std::move(scenarios);
  if (const auto seed = args.value("base-seed"))
    request["base_seed"] = std::stod(*seed);
  if (args.hasFlag("events")) request["events"] = true;

  serve::ServeClient client(args.valueOr("socket", "mcsim.sock"));
  json::JsonObject submit;
  submit["verb"] = std::string("submit");
  submit["request"] = std::move(request);
  const json::JsonValue submitted = client.call(json::JsonValue(submit));
  if (!submitted.at("ok").asBool()) {
    std::cerr << "mcsim request: " << submitted.at("error").asString()
              << "\n";
    return 1;
  }

  json::JsonObject result;
  result["verb"] = std::string("result");
  result["job"] = submitted.at("job");
  const json::JsonValue reply = client.call(json::JsonValue(result));
  std::cout << json::dumpJson(reply) << "\n";
  return reply.at("ok").asBool() &&
                 reply.at("state").asString() == "completed"
             ? 0
             : 1;
}

/// status / cancel / shutdown: one verb, optional --job, reply printed raw.
int cmdServeVerb(const std::string& verb, const ArgParser& args) {
  json::JsonObject request;
  request["verb"] = verb;
  if (const auto job = args.value("job"))
    request["job"] = std::stod(*job);
  else if (verb != "shutdown")
    throw std::invalid_argument(verb + ": --job <id> required");
  serve::ServeClient client(args.valueOr("socket", "mcsim.sock"));
  const json::JsonValue reply = client.call(json::JsonValue(request));
  std::cout << json::dumpJson(reply) << "\n";
  return reply.at("ok").asBool() ? 0 : 1;
}

int cmdMetrics(const ArgParser& args) {
  std::cout << serve::fetchMetrics(args.valueOr("socket", "mcsim.sock"));
  return 0;
}

/// Fee-schedule rates need more precision than formatMoney's cents — the
/// storage-heavy what-if charges $0.001/GB transfer.
std::string rateCell(Money rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "$%.4g", rate.value());
  return buf;
}

std::string numberCell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

/// `mcsim providers`: the catalog at a glance; --provider narrows to one
/// profile's full SKU and storage-tier detail.
int cmdProviders(const ArgParser& args) {
  const cloud::ProviderCatalog catalog = loadCatalog(args);
  if (const auto name = args.value("provider")) {
    const cloud::ProviderProfile& p = catalog.at(*name);
    std::cout << p.name << " — " << p.displayName << " (" << p.year << ")\n\n";
    Table instances({"instance", "speed", "$/hour", "billing", "spot disc.",
                     "interrupts/h"});
    for (const cloud::InstanceType& sku : p.instanceTypes) {
      instances.addRow(
          {sku.name, numberCell(sku.speedFactor),
           rateCell(sku.hourlyRate),
           cloud::billingGranularityName(sku.granularity),
           sku.spotCapable() ? numberCell(sku.spotDiscount) : "-",
           sku.spotCapable() ? numberCell(sku.interruptionsPerHour)
                             : "-"});
    }
    instances.print(std::cout);
    std::cout << "\n";
    Table tiers({"storage class", "$/GB-month", "retrieval $/GB"});
    for (const cloud::StorageClass& cls : p.storageClasses)
      tiers.addRow({cls.name, rateCell(cls.perGBMonth),
                    rateCell(cls.retrievalPerGB)});
    tiers.print(std::cout);
    std::cout << "\ntransfer: in " << rateCell(p.transfer.inPerGB)
              << "/GB, out " << rateCell(p.transfer.outPerGB) << "/GB\n";
    return 0;
  }
  Table t({"name", "year", "instances", "storage classes", "in $/GB",
           "out $/GB", "display name"});
  for (const auto& [name, p] : catalog.profiles()) {
    t.addRow({name, std::to_string(p.year),
              std::to_string(p.instanceTypes.size()),
              std::to_string(p.storageClasses.size()),
              rateCell(p.transfer.inPerGB),
              rateCell(p.transfer.outPerGB), p.displayName});
  }
  t.print(std::cout);
  std::cout << "\n(use --provider <name> for SKU and storage-tier detail)\n";
  return 0;
}

/// `mcsim optimize`: the cross-provider placement optimizer.
int cmdOptimize(const dag::Workflow& wf, const ArgParser& args) {
  const cloud::ProviderCatalog catalog = loadCatalog(args);
  analysis::OptimizeConfig config;
  if (const auto list = args.value("providers")) {
    std::stringstream ss(*list);
    std::string item;
    while (std::getline(ss, item, ',')) config.providers.push_back(item);
  }
  config.processorOverride = args.intOr("procs", 0);
  config.billing = parseBilling(args.valueOr("billing", "usage"));
  config.skuGranularity = args.hasFlag("sku-granularity");
  config.useSpot = args.hasFlag("spot");
  config.sweepArchiveHosting = args.hasFlag("archive-hosting");
  config.sweepCrossProviderScratch = args.hasFlag("cross-scratch");
  config.requestsPerMonth = args.numberOr("requests-per-month", 0.0);
  config.base.linkBandwidthBytesPerSec =
      args.numberOr("bandwidth", 10.0) * 1e6 / 8.0;
  config.jobs = parseJobs(args);

  const analysis::OptimizeResult result =
      analysis::optimizePlacement(wf, catalog, config);
  const int top = args.intOr("top", 15);
  if (top < 0) throw std::invalid_argument("--top must be >= 0");
  std::cout << result.candidates << " candidates priced from "
            << result.simulations << " simulations\n\n";
  analysis::optimizeTable(result, static_cast<std::size_t>(top))
      .print(std::cout);
  std::cout << "\nrecommendation: "
            << analysis::describeCandidate(result.best()) << "\n";
  return 0;
}

int cmdDax(const dag::Workflow& wf, const ArgParser& args) {
  const auto out = args.value("out");
  if (!out) throw std::invalid_argument("dax: --out <path> required");
  dag::writeDaxFile(wf, *out);
  std::cout << "wrote " << wf.taskCount() << " tasks to " << *out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::cerr << kUsage;
      return 2;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "help") {
      std::cout << kUsage;
      return 0;
    }
    if (command == "--version" || command == "version") {
      std::cout << versionString() << "\n";
      return 0;
    }
    ArgParser args({"workflow", "procs", "mode", "bandwidth", "targets",
                    "out", "trace", "trace-out", "mctrace-out",
                    "telemetry-dir", "sample-period", "log-level", "mtbf",
                    "retries", "retry-policy", "retry-delay", "jitter",
                    "deadline", "fault-seed", "jobs", "billing", "top",
                    "tiles", "tile-degrees", "overlap", "runtime-jitter",
                    "release-interval", "survey-seed", "shards", "socket",
                    "job", "queue-depth", "cache-entries", "cache-bytes",
                    "base-seed", "provider", "providers", "providers-dir",
                    "instance", "storage-class", "requests-per-month"},
                   {"csv", "json", "profile", "events", "spot",
                    "archive-hosting", "cross-scratch", "sku-granularity"});
    args.parse(argc - 2, argv + 2);
    if (const auto level = args.value("log-level"))
      setLogLevel(parseLogLevel(*level));
    // survey generates its campaign; it takes no --workflow.
    if (command == "survey") return cmdSurvey(args);
    // The serve family talks to (or is) the daemon; the daemon loads
    // workflows per request, so none of these load one here.
    if (command == "serve") return cmdServe(args);
    if (command == "request") return cmdRequest(args);
    if (command == "status") return cmdServeVerb("status", args);
    if (command == "cancel") return cmdServeVerb("cancel", args);
    if (command == "shutdown") return cmdServeVerb("shutdown", args);
    if (command == "metrics") return cmdMetrics(args);
    // providers inspects the catalog; no workflow involved.
    if (command == "providers") return cmdProviders(args);
    const dag::Workflow wf =
        serve::loadWorkflowSpec(args.valueOr("workflow", "montage:1"));

    if (command == "info") return cmdInfo(wf, args);
    if (command == "simulate") return cmdSimulate(wf, args);
    if (command == "sweep") return cmdSweep(wf, args);
    if (command == "modes") return cmdModes(wf, args);
    if (command == "ccr") return cmdCcr(wf, args);
    if (command == "reliability") return cmdReliability(wf, args);
    if (command == "explain") return cmdExplain(wf, args);
    if (command == "optimize") return cmdOptimize(wf, args);
    if (command == "dax") return cmdDax(wf, args);
    std::cerr << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mcsim: " << e.what() << "\n";
    return 1;
  }
}
