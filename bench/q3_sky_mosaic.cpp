// Reproduces Question 3: the cost of mosaicking the entire sky (3,900
// four-degree plates; paper: $34,632 on demand, $34,145 pre-staged) and the
// archive-or-recompute break-even for each mosaic size (paper: 21.52 /
// 24.25 / 25.12 months).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const int jobs = bench::parseJobs(argc, argv);

  // -- whole-sky campaign -----------------------------------------------------
  const dag::Workflow wf4 = montage::buildMontageWorkflow(4.0);
  const auto rows4 = analysis::dataModeComparison(
      wf4, amazon, {.queue = &bench::sharedQueue(jobs)});
  const Money onDemand = rows4[1].totalCost();
  const Money preStaged = onDemand - rows4[1].transferInCost;
  // 3,900 plates falls out of the sky tiling at the paper's overlap.
  const auto sky =
      analysis::skyCampaign(analysis::skyPlateCount(4.0), onDemand, preStaged);

  std::cout << sectionBanner(
      "Q3 — whole-sky mosaic campaign, 3,900 four-degree plates "
      "(paper: $34,632 on demand; $34,145 with data pre-staged)");
  Table t({"plan", "per plate", "total"});
  t.addRow({"inputs staged from archive", analysis::moneyCell(sky.perPlateOnDemand),
            formatMoney(sky.totalOnDemand)});
  t.addRow({"inputs pre-staged in cloud", analysis::moneyCell(sky.perPlatePreStaged),
            formatMoney(sky.totalPreStaged)});
  t.print(std::cout);

  // Alternative tiling mentioned in the paper.
  const auto sixDegreePlan = analysis::skyCampaign(
      analysis::skyPlateCount(6.0), onDemand, preStaged);
  std::cout << "\n(alternative tiling: " << sixDegreePlan.plateCount
            << " six-degree plates; per-plate costs would come from the "
               "6-degree workflow — see examples/sky_survey_service)\n";

  // -- archive or recompute ----------------------------------------------------
  std::vector<analysis::ArchivalDecision> decisions;
  std::vector<std::string> labels;
  for (double deg : {1.0, 2.0, 4.0}) {
    const auto params = montage::paramsForDegrees(deg);
    const dag::Workflow wf = montage::buildMontageWorkflow(params);
    const auto rows = analysis::dataModeComparison(
        wf, amazon, {.queue = &bench::sharedQueue(jobs)});
    decisions.push_back(analysis::mosaicArchivalDecision(
        rows[1].cpuCost, params.mosaicBytes, amazon));
    labels.push_back(wf.name());
  }
  std::cout << sectionBanner(
      "Q3 — store the computed mosaic or recompute on demand "
      "(paper: 21.52 / 24.25 / 25.12 months)");
  analysis::archivalDecisionTable(decisions, labels).print(std::cout);
  std::cout << "\nVerdict: a mosaic likely to be requested again within ~2 "
               "years is cheaper to archive than to recompute.\n";
  return 0;
}
