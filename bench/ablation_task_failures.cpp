// Ablation A9: unreliable resources (paper §8: "The reliability and
// availability of the storage and compute resources are also an important
// concern").  Injects per-task transient failure rates and measures the
// retry tax on makespan and on both billing schemes.
#include "common.hpp"

int main(int, char**) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);

  std::cout << sectionBanner(
      "A9 — per-task failure rate vs cost, Montage 1 degree, 16 processors "
      "(failed attempts are re-executed and billed)");
  Table t({"failure rate", "retries", "makespan", "usage cpu $",
           "provisioned total $"});
  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    engine::EngineConfig cfg;
    cfg.processors = 16;
    cfg.mode = engine::DataMode::DynamicCleanup;
    cfg.taskFailureProbability = rate;
    cfg.failureSeed = 2026;
    const auto r = engine::simulateWorkflow(wf, cfg);
    const auto usage =
        engine::computeCost(r, amazon, cloud::CpuBillingMode::Usage);
    const auto provisioned =
        engine::computeCost(r, amazon, cloud::CpuBillingMode::Provisioned);
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.0f%%", rate * 100.0);
    t.addRow({pct, std::to_string(r.taskRetries),
              formatDuration(r.makespanSeconds),
              analysis::moneyCell(usage.cpu),
              analysis::moneyCell(provisioned.totalWithCleanup())});
  }
  t.print(std::cout);
  std::cout << "\nThe expected retry tax is rate/(1-rate) of the CPU bill "
               "under usage billing; under provisioned billing the whole "
               "pool idles through every retry, so the tax is steeper.\n";
  return 0;
}
