// P1: google-benchmark microbenchmarks of the simulator substrate itself —
// event throughput, link fair-share overhead, full workflow simulations per
// second.  These guard the "simulate thousands of sweeps interactively"
// use case the planner depends on.
#include <benchmark/benchmark.h>

#include "mcsim/dag/random_dag.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/sim/link.hpp"
#include "mcsim/sim/simulator.hpp"

namespace {

using namespace mcsim;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    long counter = 0;
    for (int i = 0; i < events; ++i)
      simulator.schedule((i * 37) % 1000, [&counter] { ++counter; });
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_FairShareLink(benchmark::State& state) {
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::Link link(simulator, sim::LinkConfig{.bandwidthBytesPerSec = 1.25e6});
    int done = 0;
    for (int i = 0; i < transfers; ++i)
      link.startTransfer(Bytes(1000.0 + i), [&done] { ++done; });
    simulator.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_FairShareLink)->Arg(100)->Arg(1000);

void BM_MontageSimulation(benchmark::State& state) {
  const double degrees = static_cast<double>(state.range(0));
  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  engine::EngineConfig cfg;
  cfg.processors = 16;
  for (auto _ : state) {
    const auto r = engine::simulateWorkflow(wf, cfg);
    benchmark::DoNotOptimize(r.makespanSeconds);
  }
  state.SetLabel(wf.name() + " (" + std::to_string(wf.taskCount()) + " tasks)");
}
BENCHMARK(BM_MontageSimulation)->Arg(1)->Arg(2)->Arg(4);

// The telemetry-enabled twin of BM_MontageSimulation: same workflow, but a
// flight recorder observing every event.  The delta against the plain run is
// the full cost of the instrumentation when a sink is attached; the plain run
// measures the disabled path (a null-pointer check per emit site).
void BM_MontageSimulationObserved(benchmark::State& state) {
  const double degrees = static_cast<double>(state.range(0));
  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  for (auto _ : state) {
    obs::RingBufferSink ring(1 << 14);
    engine::EngineConfig cfg;
    cfg.processors = 16;
    cfg.observer = &ring;
    const auto r = engine::simulateWorkflow(wf, cfg);
    benchmark::DoNotOptimize(r.makespanSeconds);
    benchmark::DoNotOptimize(ring.size() + ring.dropped());
  }
}
BENCHMARK(BM_MontageSimulationObserved)->Arg(1)->Arg(2)->Arg(4);

void BM_EventQueueThroughputObserved(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    obs::RingBufferSink ring(1 << 12);
    sim::Simulator simulator;
    simulator.setObserver(&ring);
    long counter = 0;
    for (int i = 0; i < events; ++i)
      simulator.schedule((i * 37) % 1000, [&counter] { ++counter; });
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughputObserved)->Arg(1000)->Arg(100000);

void BM_MontageRemoteIoSimulation(benchmark::State& state) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  engine::EngineConfig cfg;
  cfg.processors = 16;
  cfg.mode = engine::DataMode::RemoteIO;
  for (auto _ : state) {
    const auto r = engine::simulateWorkflow(wf, cfg);
    benchmark::DoNotOptimize(r.bytesIn);
  }
}
BENCHMARK(BM_MontageRemoteIoSimulation);

void BM_WorkflowGeneration(benchmark::State& state) {
  const double degrees = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
    benchmark::DoNotOptimize(wf.taskCount());
  }
}
BENCHMARK(BM_WorkflowGeneration)->Arg(1)->Arg(4);

void BM_RandomDagSimulation(benchmark::State& state) {
  std::uint64_t seed = 0;
  engine::EngineConfig cfg;
  cfg.processors = 8;
  for (auto _ : state) {
    const dag::Workflow wf = dag::makeRandomWorkflow(seed++);
    const auto r = engine::simulateWorkflow(wf, cfg);
    benchmark::DoNotOptimize(r.makespanSeconds);
  }
}
BENCHMARK(BM_RandomDagSimulation);

}  // namespace

BENCHMARK_MAIN();
