// Beyond Montage: the paper's closing observation — "Montage is only one of
// a number of scientific applications that can potentially benefit from
// cloud services" — made concrete.  Runs the Question-2 data-mode
// comparison over the workflow gallery (CyberShake, Epigenomics, LIGO
// Inspiral, SIPHT), whose CCRs span the range Fig 11 sweeps synthetically.
#include "common.hpp"

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/workflows/gallery.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const int jobs = bench::parseJobs(argc, argv);

  std::cout << sectionBanner(
      "Workflow gallery — structure and CCR (B = 10 Mbps)");
  Table shape({"workflow", "tasks", "levels", "cpu time", "data", "CCR"});
  const auto gallery = workflows::buildGallery();
  for (const dag::Workflow& wf : gallery) {
    char ccr[32];
    std::snprintf(ccr, sizeof ccr, "%.3f",
                  wf.ccr(montage::kReferenceBandwidthBytesPerSec));
    shape.addRow({wf.name(), std::to_string(wf.taskCount()),
                  std::to_string(wf.levelCount()),
                  formatDuration(wf.totalRuntimeSeconds()),
                  formatBytes(wf.totalFileBytes()), ccr});
  }
  shape.print(std::cout);

  std::cout << sectionBanner(
      "Data-mode economics per workflow (usage billing, full parallelism)");
  Table t({"workflow", "mode", "storage GB-h", "DM $", "cpu $", "total $"});
  for (const dag::Workflow& wf : gallery) {
    for (const auto& row :
         analysis::dataModeComparison(
             wf, amazon, {.queue = &bench::sharedQueue(jobs)})) {
      char gbh[32];
      std::snprintf(gbh, sizeof gbh, "%.3f", row.storageGBHours);
      t.addRow({wf.name(), engine::dataModeName(row.mode), gbh,
                analysis::moneyCell(row.dataManagementCost()),
                analysis::moneyCell(row.cpuCost),
                analysis::moneyCell(row.totalCost())});
    }
  }
  t.print(std::cout);

  std::cout << "\nThe Montage conclusion (storage negligible, cleanup "
               "cheapest, remote I/O priciest) holds across the CPU-bound "
               "workflows; for data-heavy CyberShake the data-management "
               "share of cost grows toward parity with CPU, the regime the "
               "paper's CCR sweep anticipates.\n";
  return 0;
}
