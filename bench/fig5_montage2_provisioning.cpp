// Reproduces Figure 5: execution costs and execution time of the Montage
// 2-degree workflow as provisioned processors sweep 1..128.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  bench::printProvisioningFigure(
      "Fig 5", 2.0,
      {{1, "paper: $2.25 total, 20.5 h"},
       {128, "paper: <$8, <40 min"}},
      bench::wantCsv(argc, argv), bench::parseJobs(argc, argv));
  return 0;
}
