// perf_providers: provider catalog + placement optimizer benchmark.
//
// Three measurements, written to BENCH_providers.json:
//   1. JSON codec throughput: every builtin profile encoded once, then
//      parse+decode+validate in a loop (profiles/second).
//   2. Optimizer wall time over the full catalog (spot + archive hosting)
//      cold, then again against a warm ScenarioMemoCache — the rerun prices
//      every candidate without a single new simulation.
//   3. Identity: with the default placement, the optimizer's per-mode
//      totals must agree with dataModeComparison.  Exits nonzero on
//      divergence, like the other perf benches.
//
//   ./bench/perf_providers [--degrees 1] [--jobs N] [--repeat 3]
//                          [--codec-iters 2000] [--out BENCH_providers.json]
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "mcsim/analysis/placement.hpp"
#include "mcsim/runner/memo.hpp"
#include "mcsim/util/json.hpp"

namespace {

using namespace mcsim;
using Clock = std::chrono::steady_clock;

double argNumber(int argc, char** argv, const std::string& flag,
                 double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return std::stod(argv[i + 1]);
  return fallback;
}

std::string argText(int argc, char** argv, const std::string& flag,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return argv[i + 1];
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const double degrees = argNumber(argc, argv, "degrees", 1.0);
  const int jobs = static_cast<int>(
      argNumber(argc, argv, "jobs", runner::defaultJobs()));
  const int repeat =
      std::max(1, static_cast<int>(argNumber(argc, argv, "repeat", 3.0)));
  const int codecIters = std::max(
      1, static_cast<int>(argNumber(argc, argv, "codec-iters", 2000.0)));
  const std::string outPath =
      argText(argc, argv, "out", "BENCH_providers.json");

  const cloud::ProviderCatalog& catalog = cloud::ProviderCatalog::builtin();
  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);

  // -- 1. codec throughput ---------------------------------------------------
  std::vector<std::string> encoded;
  for (const auto& [name, profile] : catalog.profiles())
    encoded.push_back(json::dumpJson(cloud::providerToJson(profile)));

  auto t0 = Clock::now();
  std::size_t decoded = 0;
  for (int i = 0; i < codecIters; ++i) {
    for (const std::string& text : encoded) {
      const auto profile = cloud::providerFromJson(json::parseJson(text));
      if (!profile) {
        std::cerr << "perf_providers: codec round-trip failed: "
                  << profile.error() << "\n";
        return 1;
      }
      ++decoded;
    }
  }
  const double codecSeconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double profilesPerSec =
      codecSeconds > 0.0 ? static_cast<double>(decoded) / codecSeconds : 0.0;
  std::cout << "codec: " << decoded << " profiles decoded in " << codecSeconds
            << " s (" << static_cast<std::uint64_t>(profilesPerSec)
            << " profiles/sec)\n";

  // -- 2. optimizer cold vs memo-warm ---------------------------------------
  analysis::OptimizeConfig config;
  config.useSpot = true;
  config.sweepArchiveHosting = true;
  config.jobs = jobs;

  double coldBest = 0.0;
  double warmBest = 0.0;
  std::size_t candidates = 0;
  std::size_t simulations = 0;
  for (int r = 0; r < repeat; ++r) {
    runner::ScenarioMemoCache cache;
    config.cache = &cache;
    t0 = Clock::now();
    const analysis::OptimizeResult cold =
        analysis::optimizePlacement(wf, catalog, config);
    const double coldSecs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    t0 = Clock::now();
    const analysis::OptimizeResult warm =
        analysis::optimizePlacement(wf, catalog, config);
    const double warmSecs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    if (cache.stats().hits < warm.simulations) {
      std::cerr << "perf_providers: warm rerun missed the memo cache\n";
      return 1;
    }
    candidates = cold.candidates;
    simulations = cold.simulations;
    if (r == 0 || coldSecs < coldBest) coldBest = coldSecs;
    if (r == 0 || warmSecs < warmBest) warmBest = warmSecs;
    std::cout << "  repeat " << r << ": cold " << coldSecs << " s, warm "
              << warmSecs << " s\n";
  }
  const double warmSpeedup = warmBest > 0.0 ? coldBest / warmBest : 0.0;
  std::cout << "optimizer: " << candidates << " candidates from "
            << simulations << " simulations; cold " << coldBest
            << " s, memo-warm " << warmBest << " s (" << warmSpeedup
            << "x)\n";

  // -- 3. identity vs dataModeComparison ------------------------------------
  bool identical = true;
  for (const char* provider :
       {"amazon-2008", "storage-heavy", "compute-discount"}) {
    analysis::OptimizeConfig one;
    one.providers = {provider};
    one.jobs = jobs;
    const analysis::OptimizeResult result =
        analysis::optimizePlacement(wf, catalog, one);
    const auto rows = analysis::dataModeComparison(
        wf, catalog.pricing(provider), analysis::DataModeComparisonConfig{});
    std::map<engine::DataMode, Money> byMode;
    for (const analysis::PlacementCandidate& c : result.ranked)
      if (!byMode.count(c.mode)) byMode[c.mode] = c.cost.total();
    for (const analysis::DataModeMetrics& row : rows) {
      const double diff =
          std::abs((byMode.at(row.mode) - row.totalCost()).value());
      if (diff > 1e-9) {
        std::cerr << "perf_providers: " << provider << "/"
                  << engine::dataModeName(row.mode) << " diverges by $"
                  << diff << "\n";
        identical = false;
      }
    }
  }

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "perf_providers: cannot write " << outPath << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"provider_catalog_optimizer\",\n"
      << "  \"workflow\": \"" << wf.name() << "\",\n"
      << "  \"profiles\": " << catalog.size() << ",\n"
      << "  \"codec_profiles_per_sec\": " << profilesPerSec << ",\n"
      << "  \"candidates\": " << candidates << ",\n"
      << "  \"simulations\": " << simulations << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"repeats\": " << repeat << ",\n"
      << "  \"optimize_cold_seconds\": " << coldBest << ",\n"
      << "  \"optimize_warm_seconds\": " << warmBest << ",\n"
      << "  \"warm_speedup\": " << warmSpeedup << ",\n"
      << "  \"peak_rss_bytes\": " << bench::peakRssBytes() << ",\n"
      << "  \"identity_ok\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::cout << "identity vs dataModeComparison: "
            << (identical ? "ok" : "DIVERGED") << "; wrote " << outPath
            << "\n";
  return identical ? 0 : 1;
}
