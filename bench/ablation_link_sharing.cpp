// Ablation A4: link contention model.  The default fair-share link divides
// the 10 Mbps user<->storage pipe among concurrent transfers; the dedicated
// model gives every transfer the full bandwidth (infinitely many parallel
// links).  This quantifies how much of the remote-I/O slowdown is
// contention vs serialization.
#include "common.hpp"

int main(int, char**) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);

  std::cout << sectionBanner(
      "A4 — fair-share vs dedicated link, Montage 1 degree, 16 processors");
  Table t({"mode", "link", "makespan", "total cost (usage cpu + DM)"});
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    for (sim::LinkSharing sharing :
         {sim::LinkSharing::FairShare, sim::LinkSharing::Dedicated}) {
      engine::EngineConfig cfg;
      cfg.mode = mode;
      cfg.processors = 16;
      cfg.linkSharing = sharing;
      const auto r = engine::simulateWorkflow(wf, cfg);
      const auto cost =
          engine::computeCost(r, amazon, cloud::CpuBillingMode::Usage);
      t.addRow({engine::dataModeName(mode),
                sharing == sim::LinkSharing::FairShare ? "fair-share"
                                                       : "dedicated",
                formatDuration(r.makespanSeconds),
                analysis::moneyCell(cost.total())});
    }
  }
  t.print(std::cout);
  std::cout << "\nTransfer *costs* are identical (bytes don't change); only "
               "time shifts.  Remote I/O gains the most from an uncontended "
               "link because every task round-trips the WAN.\n";
  return 0;
}
