// Figure 7 (top), literally: "a curve that shows the amount of storage used
// at the resource with the passage of time" (§5), rendered as a text
// sparkline per data-management mode for the Montage 1-degree workflow.
// The GB-hours each mode reports in Fig 7 are the areas under these curves.
#include "common.hpp"

#include <algorithm>
#include <vector>

namespace {

using namespace mcsim;

/// Sample the step curve at `buckets` uniform points over the makespan.
std::vector<double> sample(const UsageCurve& curve, double makespan,
                           std::size_t buckets) {
  std::vector<double> levels(buckets, 0.0);
  const auto events = curve.sortedEvents();
  double level = 0.0;
  std::size_t e = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double t =
        makespan * static_cast<double>(b + 1) / static_cast<double>(buckets);
    while (e < events.size() && events[e].time <= t) level += events[e++].delta;
    levels[b] = level;
  }
  return levels;
}

std::string sparkline(const std::vector<double>& levels, double peak) {
  static const char* kBars[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  std::string out;
  for (double v : levels) {
    const int idx = peak > 0.0
                        ? static_cast<int>(v / peak * 8.0 + 0.5)
                        : 0;
    out += kBars[std::clamp(idx, 0, 8)];
  }
  return out;
}

}  // namespace

int main(int, char**) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);

  std::cout << sectionBanner(
      "Fig 7 (top) — storage used over time, Montage 1 degree, full "
      "parallelism (sparklines share one scale; area = the GB-hours bar)");

  // Common scale: regular mode's peak.
  double sharedPeak = 0.0;
  struct Row {
    std::string mode;
    std::vector<double> levels;
    double gbHours;
    double peakGB;
  };
  std::vector<Row> rows;
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    engine::EngineConfig cfg;
    cfg.mode = mode;
    cfg.processors = 128;
    const auto r = engine::simulateWorkflow(wf, cfg);
    Row row;
    row.mode = engine::dataModeName(mode);
    row.levels = sample(r.storageCurve, r.makespanSeconds, 64);
    row.gbHours = r.storageGBHours();
    row.peakGB = r.peakStorageBytes.gb();
    sharedPeak = std::max(sharedPeak, r.peakStorageBytes.value());
    rows.push_back(std::move(row));
  }

  for (const Row& row : rows) {
    char label[64];
    std::snprintf(label, sizeof label, "%-10s %5.3f GB-h, peak %.2f GB",
                  row.mode.c_str(), row.gbHours, row.peakGB);
    std::cout << "  |" << sparkline(row.levels, sharedPeak) << "|  " << label
              << "\n";
  }
  std::cout << "\nRegular climbs monotonically and holds everything to the "
               "end; cleanup's sawtooth releases files at last use; remote "
               "I/O shows only transient per-task working sets.\n";
  return 0;
}
