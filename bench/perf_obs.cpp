// perf_obs: overhead budget of the span-tracing layer.
//
// Three configurations of the same 4-degree Montage run:
//
//   off  — no observer: the null-sink-check baseline every production run
//          pays (one pointer test per potential emission).
//   null — a NullSink attached: instrumentation reachable but accepts()
//          rejects everything, measuring the enabled-but-ignored cost
//          (budget: ~0%, ±2% noise).
//   span — obs::SpanSink folding the full stream into a TraceStore
//          (budget: < 10% over `off`; measured ~35-55% against the PR-4
//          arena core, whose ~0.34 us/task baseline outruns the ~45 ns/span
//          folding cost — see DESIGN.md § Span model for the honest
//          numbers; the budget line warns but only correctness fails).
//
// Results are compared point-for-point across configurations before any
// timing is trusted (attaching a sink must never change the simulation),
// the .mctrace round-trip is timed and verified, and the `mcsim explain`
// reconciliation identities (makespan tiling to 1e-6, cost split == total
// to 1e-6) are asserted on the traced run.  Writes a BENCH_obs.json
// summary:
//
//   ./bench/perf_obs [--degrees 4] [--repeat 3] [--out BENCH_obs.json]
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "common.hpp"
#include "mcsim/analysis/explain.hpp"
#include "mcsim/obs/report.hpp"
#include "mcsim/obs/trace.hpp"

namespace {

using namespace mcsim;
using Clock = std::chrono::steady_clock;

double argNumber(int argc, char** argv, const std::string& flag,
                 double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return std::stod(argv[i + 1]);
  return fallback;
}

std::string argText(int argc, char** argv, const std::string& flag,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return argv[i + 1];
  return fallback;
}

bool sameResult(const engine::ExecutionResult& a,
                const engine::ExecutionResult& b) {
  // Same core, same config: attaching an observer must change nothing, so
  // exact equality is the contract (no tolerance).
  return a.completed() == b.completed() &&
         a.makespanSeconds == b.makespanSeconds &&
         a.cpuBusySeconds == b.cpuBusySeconds &&
         a.bytesIn.value() == b.bytesIn.value() &&
         a.bytesOut.value() == b.bytesOut.value();
}

double bestOf(int repeat, const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    body();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double degrees = argNumber(argc, argv, "degrees", 4.0);
  const int repeat =
      std::max(1, static_cast<int>(argNumber(argc, argv, "repeat", 3.0)));
  const std::string outPath = argText(argc, argv, "out", "BENCH_obs.json");

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const obs::TraceTopology topo = analysis::traceTopology(wf);

  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::DynamicCleanup;
  cfg.processors = 8;
  cfg.linkSharing = sim::LinkSharing::FairShare;  // the production hot path

  std::cout << "perf_obs: " << wf.name() << " (" << wf.taskCount()
            << " tasks), best of " << repeat << "\n";

  // -- off: no observer ------------------------------------------------------
  engine::ExecutionResult offResult;
  cfg.observer = nullptr;
  const double offSeconds =
      bestOf(repeat, [&] { offResult = engine::simulateWorkflow(wf, cfg); });

  // -- null: attached but rejecting sink ------------------------------------
  engine::ExecutionResult nullResult;
  obs::NullSink nullSink;
  cfg.observer = &nullSink;
  const double nullSeconds =
      bestOf(repeat, [&] { nullResult = engine::simulateWorkflow(wf, cfg); });

  // -- span: full SpanSink folding ------------------------------------------
  engine::ExecutionResult spanResult;
  obs::TraceStore store;
  const double spanSeconds = bestOf(repeat, [&] {
    store = obs::TraceStore();
    obs::SpanSink sink(store, topo);
    cfg.observer = &sink;
    spanResult = engine::simulateWorkflow(wf, cfg);
  });
  cfg.observer = nullptr;

  const bool identical =
      sameResult(offResult, nullResult) && sameResult(offResult, spanResult);
  const double nullOverheadPct =
      offSeconds > 0.0 ? 100.0 * (nullSeconds - offSeconds) / offSeconds : 0.0;
  const double spanOverheadPct =
      offSeconds > 0.0 ? 100.0 * (spanSeconds - offSeconds) / offSeconds : 0.0;
  const double spansPerSecond =
      spanSeconds > 0.0 ? static_cast<double>(store.spanCount()) / spanSeconds
                        : 0.0;
  std::cout << "  off " << offSeconds << " s, null-sink " << nullSeconds
            << " s (" << nullOverheadPct << "%), spans " << spanSeconds
            << " s (" << spanOverheadPct << "%), " << store.spanCount()
            << " spans, agree " << (identical ? "yes" : "NO") << "\n";
  if (spanOverheadPct >= 10.0)
    std::cout << "  WARNING: span overhead above the 10% budget\n";

  // -- .mctrace round-trip ---------------------------------------------------
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  const double writeSeconds = bestOf(repeat, [&] {
    buf.str(std::string());
    buf.clear();
    obs::writeMctrace(buf, store);
  });
  obs::TraceStore reread;
  const double readSeconds = bestOf(repeat, [&] {
    buf.clear();
    buf.seekg(0);
    reread = obs::readMctrace(buf);
  });
  const bool roundTrip = store == reread;
  std::cout << "  mctrace write " << writeSeconds << " s, read "
            << readSeconds << " s, round-trip "
            << (roundTrip ? "exact" : "DIVERGED") << "\n";

  // -- explain reconciliation ------------------------------------------------
  obs::TraceStore explainStore;
  obs::SpanSink explainSpans(explainStore, topo);
  obs::ReportBuilder lineItems;
  obs::FanOutSink fan({&explainSpans, &lineItems});
  cfg.observer = &fan;
  const engine::ExecutionResult explained =
      engine::simulateWorkflow(wf, cfg);
  cfg.observer = nullptr;
  const obs::RunReport report =
      lineItems.build(wf, explained, cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
                      cloud::CpuBillingMode::Provisioned);
  const analysis::Explanation e = analysis::explainRun(wf, explainStore,
                                                       report);
  double bucketSum = 0.0;
  for (double s : e.bucketSeconds) bucketSum += s;
  const bool makespanTiles =
      std::fabs(bucketSum - e.makespanSeconds) <= 1e-6;
  const double costSplit = e.criticalCost.value() + e.slackCost.value() +
                           e.stagingCost.value() + e.unattributedCost.value();
  const bool costsReconcile = std::fabs(costSplit - e.totalCost.value()) <=
                              1e-6;
  std::cout << "  explain: " << e.criticalTasks << "/" << e.totalTasks
            << " tasks critical, makespan tiles "
            << (makespanTiles ? "yes" : "NO") << ", costs reconcile "
            << (costsReconcile ? "yes" : "NO") << "\n";

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "perf_obs: cannot write " << outPath << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"obs_overhead\",\n"
      << "  \"workflow\": \"" << wf.name() << "\",\n"
      << "  \"tasks\": " << wf.taskCount() << ",\n"
      << "  \"repeats\": " << repeat << ",\n"
      << "  \"off_seconds\": " << offSeconds << ",\n"
      << "  \"null_sink_seconds\": " << nullSeconds << ",\n"
      << "  \"span_seconds\": " << spanSeconds << ",\n"
      << "  \"null_sink_overhead_pct\": " << nullOverheadPct << ",\n"
      << "  \"span_overhead_pct\": " << spanOverheadPct << ",\n"
      << "  \"span_count\": " << store.spanCount() << ",\n"
      << "  \"spans_per_second\": " << spansPerSecond << ",\n"
      << "  \"results_agree\": " << (identical ? "true" : "false") << ",\n"
      << "  \"mctrace_write_seconds\": " << writeSeconds << ",\n"
      << "  \"mctrace_read_seconds\": " << readSeconds << ",\n"
      << "  \"mctrace_round_trip\": " << (roundTrip ? "true" : "false")
      << ",\n"
      << "  \"explain_makespan_tiles\": "
      << (makespanTiles ? "true" : "false") << ",\n"
      << "  \"explain_costs_reconcile\": "
      << (costsReconcile ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::cout << "wrote " << outPath << "\n";
  return (identical && roundTrip && makespanTiles && costsReconcile) ? 0 : 1;
}
