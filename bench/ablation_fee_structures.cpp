// Ablation A3: provider fee-structure sensitivity.  Tests the paper's
// conjecture that with expensive storage and cheap transfers the Remote I/O
// mode becomes the cheapest of the three (§6, Question 2a), and shows how a
// compute-discount provider shifts the Question-1 sweet spot.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  const int jobs = bench::parseJobs(argc, argv);

  std::cout << sectionBanner(
      "A3 — data-mode ranking under different fee structures, Montage 1 "
      "degree (usage billing)");
  Table t({"provider", "mode", "storage $", "transfer $", "DM $", "rank"});
  for (const cloud::Pricing& pricing :
       {cloud::ProviderCatalog::builtin().pricing("amazon-2008"), cloud::ProviderCatalog::builtin().pricing("storage-heavy")}) {
    const auto rows = analysis::dataModeComparison(
        wf, pricing, {.queue = &bench::sharedQueue(jobs)});
    // Rank by DM cost.
    std::vector<std::size_t> order = {0, 1, 2};
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rows[a].dataManagementCost() < rows[b].dataManagementCost();
    });
    std::vector<int> rank(3);
    for (std::size_t i = 0; i < order.size(); ++i)
      rank[order[i]] = static_cast<int>(i) + 1;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.addRow({pricing.providerName, engine::dataModeName(rows[i].mode),
                analysis::moneyCell(rows[i].storageCost),
                analysis::moneyCell(rows[i].transferInCost +
                                    rows[i].transferOutCost),
                analysis::moneyCell(rows[i].dataManagementCost()),
                std::to_string(rank[i])});
    }
  }
  t.print(std::cout);
  std::cout << "\nUnder Amazon-2008 fees cleanup wins and remote I/O loses; "
               "with storage 500x dearer and transfers 100x cheaper the "
               "ranking flips, confirming the paper's conjecture -- though "
               "the crossover sits ~10^4x from Amazon's price ratio because "
               "full-parallelism residency is so short.\n";

  std::cout << sectionBanner(
      "A3 — provisioning sweet spot under a compute-discount provider");
  const auto amazonPts = analysis::provisioningSweep(
      wf, cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
      {.processorCounts = {1, 8, 64}, .queue = &bench::sharedQueue(jobs)});
  const auto discountPts = analysis::provisioningSweep(
      wf, cloud::ProviderCatalog::builtin().pricing("compute-discount"),
      {.processorCounts = {1, 8, 64}, .queue = &bench::sharedQueue(jobs)});
  Table t2({"procs", "amazon-2008 total", "compute-discount total"});
  for (std::size_t i = 0; i < amazonPts.size(); ++i) {
    t2.addRow({std::to_string(amazonPts[i].processors),
               analysis::moneyCell(amazonPts[i].totalCost),
               analysis::moneyCell(discountPts[i].totalCost)});
  }
  t2.print(std::cout);
  return 0;
}
