// Ablation A10: multi-provider placement (paper §8: "some providers will
// have a cheaper rate for compute resources while others will have a
// cheaper rate for storage ... applications will have more options to
// consider").  Evaluates every (compute, archive) pairing for the 2-degree
// mosaic service at several request volumes.
#include "common.hpp"

#include "mcsim/analysis/placement.hpp"

int main(int, char**) {
  using namespace mcsim;
  const auto wf = montage::buildMontageWorkflow(2.0);
  const analysis::RequestShape shape = analysis::shapeFromWorkflow(wf);
  const std::vector<cloud::Pricing> providers = {
      cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
      cloud::ProviderCatalog::builtin().pricing("compute-discount"),
      cloud::ProviderCatalog::builtin().pricing("storage-heavy"),
  };

  for (double volume : {1000.0, 18000.0, 100000.0}) {
    char title[128];
    std::snprintf(title, sizeof title,
                  "A10 — placement plans for the 12 TB archive + 2-degree "
                  "service at %.0f requests/month",
                  volume);
    std::cout << sectionBanner(title);
    Table t({"compute", "archive", "co-located", "archive $/mo",
             "cpu $/req", "transfer $/req", "monthly total"});
    const auto plans = analysis::comparePlacements(
        shape, Bytes::fromTB(12.0), volume, providers);
    for (const auto& p : plans) {
      t.addRow({p.computeProvider, p.archiveProvider,
                p.colocated ? "yes" : "no", formatMoney(p.archiveMonthly),
                analysis::moneyCell(p.computePerRequest),
                analysis::moneyCell(p.transferPerRequest),
                formatMoney(p.monthlyTotal)});
    }
    t.print(std::cout);
  }
  std::cout << "\nAt low volume the archive fee dominates (cheap storage "
               "wins); at high volume per-request CPU dominates (cheap "
               "compute wins) and split placement pays cross-provider "
               "transfer on every request — the trade space the paper "
               "predicted applications would have to navigate.\n";
  return 0;
}
