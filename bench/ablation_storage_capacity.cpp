// Ablation A8: storage-constrained execution — the scenario that motivates
// dynamic cleanup in the first place (paper §3 cites "Scheduling
// Data-Intensive Workflows onto Storage-Constrained Distributed
// Resources").  Sweeps the storage cap on the 1-degree workflow and shows
// the feasibility frontier and slowdown per data-management mode.
#include "common.hpp"

int main(int, char**) {
  using namespace mcsim;
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);

  // Unlimited-capacity peaks frame the sweep.
  engine::EngineConfig base;
  base.processors = 16;
  base.mode = engine::DataMode::Regular;
  const auto regularPeak =
      engine::simulateWorkflow(wf, base).peakStorageBytes;
  base.mode = engine::DataMode::DynamicCleanup;
  const auto cleanupRun = engine::simulateWorkflow(wf, base);

  std::cout << sectionBanner(
      "A8 — storage capacity vs feasibility and makespan, Montage 1 degree, "
      "16 processors");
  std::cout << "unconstrained peaks: regular "
            << formatBytes(regularPeak) << ", cleanup "
            << formatBytes(cleanupRun.peakStorageBytes) << "\n\n";

  Table t({"capacity", "mode", "outcome", "makespan", "tasks blocked"});
  for (double gb : {1.5, 1.0, 0.7, 0.5, 0.4}) {
    for (engine::DataMode mode :
         {engine::DataMode::Regular, engine::DataMode::DynamicCleanup}) {
      engine::EngineConfig cfg = base;
      cfg.mode = mode;
      cfg.storageCapacityBytes = gb * 1e9;
      std::string outcome, makespan = "-", blocked = "-";
      try {
        const auto r = engine::simulateWorkflow(wf, cfg);
        outcome = "completes";
        makespan = formatDuration(r.makespanSeconds);
        blocked = std::to_string(r.tasksEverBlocked);
      } catch (const std::runtime_error&) {
        outcome = "INFEASIBLE";
      }
      char cap[32];
      std::snprintf(cap, sizeof cap, "%.1f GB", gb);
      t.addRow({cap, engine::dataModeName(mode), outcome, makespan, blocked});
    }
  }
  t.print(std::cout);
  std::cout << "\nCleanup keeps the workflow feasible well below regular "
               "mode's footprint, trading makespan (blocked tasks wait for "
               "space) for feasibility — the paper's ~50% footprint "
               "reduction claim in action.\n";
  return 0;
}
