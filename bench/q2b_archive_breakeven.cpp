// Reproduces Question 2b: the economics of hosting the 12 TB 2MASS archive
// in the cloud, with the per-request costs taken from the simulated
// 2-degree workflow (paper anchors: $1,800/month, $2.12 vs $2.22 per
// mosaic, 18,000 mosaics/month break-even, $1,200 initial upload).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow wf = montage::buildMontageWorkflow(2.0);
  const auto rows = analysis::dataModeComparison(
      wf, amazon,
      {.queue = &bench::sharedQueue(bench::parseJobs(argc, argv))});
  const auto& regular = rows[1];

  const Money onDemand = regular.totalCost();
  const Money preStaged = onDemand - regular.transferInCost;
  const auto economics = analysis::archiveBreakEven(
      Bytes::fromTB(12.0), preStaged, onDemand, amazon);

  std::cout << sectionBanner(
      "Q2b — 2MASS archive hosting break-even (simulated 2-degree request "
      "costs; paper: $1,800/month, $2.12 vs $2.22, 18,000 requests/month)");
  analysis::archiveEconomicsTable(economics).print(std::cout);
  return 0;
}
