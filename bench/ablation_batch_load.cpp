// Ablation A7: request contention on a shared provisioned pool.
//
// Question 2 assumes the provisioned pool is "larger than the needs of any
// single computation" so every request runs at full parallelism.  This
// ablation quantifies what happens when it is not: k concurrent 1-degree
// requests share one pool, and turnaround (batch makespan) plus the
// provisioned bill grow with load while usage-billed cost stays flat.
#include "common.hpp"

#include "mcsim/dag/merge.hpp"

int main(int, char**) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow request = montage::buildMontageWorkflow(1.0);
  const int pool = 64;

  std::cout << sectionBanner(
      "A7 — concurrent 1-degree requests on a shared 64-processor pool");
  Table t({"requests", "batch makespan", "per-request usage $",
           "pool bill (provisioned)", "pool utilization"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    const dag::Workflow batch = dag::replicateWorkflow(request, k);
    engine::EngineConfig cfg;
    cfg.processors = pool;
    cfg.mode = engine::DataMode::DynamicCleanup;
    const auto r = engine::simulateWorkflow(batch, cfg);
    const auto usage =
        engine::computeCost(r, amazon, cloud::CpuBillingMode::Usage);
    const auto provisioned =
        engine::computeCost(r, amazon, cloud::CpuBillingMode::Provisioned);
    char util[16];
    std::snprintf(util, sizeof util, "%.0f%%", r.utilization() * 100.0);
    t.addRow({std::to_string(k), formatDuration(r.makespanSeconds),
              analysis::moneyCell(usage.totalWithCleanup() /
                                  static_cast<double>(k)),
              formatMoney(provisioned.totalWithCleanup()), util});
  }
  t.print(std::cout);
  std::cout << "\nUsage-billed per-request cost is load-invariant (Fig 10's "
               "premise); the pool's provisioned bill amortizes better as "
               "load fills it — the economics behind the paper's Question-2 "
               "service model.\n";
  return 0;
}
