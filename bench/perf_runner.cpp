// perf_runner: wall-clock benchmark of the mcsim::runner thread pool.
//
// Runs the Question-1 provisioning sweep serially (--jobs 0, the legacy
// code path) and through the runner's worker pool, checks the two point
// sets are identical, and writes a BENCH_runner.json summary:
//
//   ./bench/perf_runner [--degrees 1] [--jobs N] [--repeat 3]
//                       [--ladder-repeat 4] [--out BENCH_runner.json]
//
// --ladder-repeat concatenates the processor ladder with itself to give the
// pool enough scenarios to amortize thread startup; the best-of-N repeat
// wall times keep machine noise out of the committed numbers.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace mcsim;
using Clock = std::chrono::steady_clock;

double argNumber(int argc, char** argv, const std::string& flag,
                 double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return std::stod(argv[i + 1]);
  return fallback;
}

std::string argText(int argc, char** argv, const std::string& flag,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return argv[i + 1];
  return fallback;
}

bool samePoints(const std::vector<analysis::ProvisioningPoint>& a,
                const std::vector<analysis::ProvisioningPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].processors != b[i].processors ||
        a[i].makespanSeconds != b[i].makespanSeconds ||
        a[i].cpuCost != b[i].cpuCost ||
        a[i].storageCost != b[i].storageCost ||
        a[i].storageCleanupCost != b[i].storageCleanupCost ||
        a[i].transferCost != b[i].transferCost ||
        a[i].totalCost != b[i].totalCost ||
        a[i].utilization != b[i].utilization)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const double degrees = argNumber(argc, argv, "degrees", 1.0);
  const int jobs = static_cast<int>(
      argNumber(argc, argv, "jobs", runner::defaultJobs()));
  const int repeat =
      std::max(1, static_cast<int>(argNumber(argc, argv, "repeat", 3.0)));
  const int ladderRepeat = std::max(
      1, static_cast<int>(argNumber(argc, argv, "ladder-repeat", 4.0)));
  const std::string outPath =
      argText(argc, argv, "out", "BENCH_runner.json");

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const cloud::Pricing pricing = cloud::ProviderCatalog::builtin().pricing("amazon-2008");

  analysis::ProvisioningSweepConfig config;
  const auto ladder = analysis::defaultProcessorLadder();
  for (int r = 0; r < ladderRepeat; ++r)
    config.processorCounts.insert(config.processorCounts.end(),
                                  ladder.begin(), ladder.end());

  // Two engine runs (regular + cleanup) per ladder entry.
  const std::size_t scenarios = 2 * config.processorCounts.size();
  std::cout << "perf_runner: " << wf.name() << ", " << scenarios
            << " scenarios, jobs=" << jobs << ", best of " << repeat
            << " repeats\n";

  std::vector<analysis::ProvisioningPoint> serialPoints;
  std::vector<analysis::ProvisioningPoint> parallelPoints;
  double serialBest = 0.0;
  double parallelBest = 0.0;
  for (int r = 0; r < repeat; ++r) {
    config.jobs = 0;
    auto t0 = Clock::now();
    serialPoints = analysis::provisioningSweep(wf, pricing, config);
    const double serial = std::chrono::duration<double>(Clock::now() - t0)
                              .count();

    config.jobs = jobs;
    t0 = Clock::now();
    parallelPoints = analysis::provisioningSweep(wf, pricing, config);
    const double parallel = std::chrono::duration<double>(Clock::now() - t0)
                                .count();

    if (r == 0 || serial < serialBest) serialBest = serial;
    if (r == 0 || parallel < parallelBest) parallelBest = parallel;
    std::cout << "  repeat " << r << ": serial " << serial << " s, jobs="
              << jobs << " " << parallel << " s\n";
  }

  const bool identical = samePoints(serialPoints, parallelPoints);
  const double speedup = parallelBest > 0.0 ? serialBest / parallelBest : 0.0;

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "perf_runner: cannot write " << outPath << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"runner_provisioning_sweep\",\n"
      << "  \"workflow\": \"" << wf.name() << "\",\n"
      << "  \"scenarios\": " << scenarios << ",\n"
      << "  \"repeats\": " << repeat << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"hardware_concurrency\": " << runner::defaultJobs() << ",\n"
      << "  \"serial_seconds\": " << serialBest << ",\n"
      << "  \"parallel_seconds\": " << parallelBest << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"serial_points_per_sec\": "
      << (serialBest > 0.0 ? scenarios / serialBest : 0.0) << ",\n"
      << "  \"parallel_points_per_sec\": "
      << (parallelBest > 0.0 ? scenarios / parallelBest : 0.0) << ",\n"
      << "  \"identical_results\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::cout << "serial " << serialBest << " s, parallel " << parallelBest
            << " s, speedup " << speedup << "x, identical "
            << (identical ? "yes" : "NO") << "; wrote " << outPath << "\n";
  return identical ? 0 : 1;
}
