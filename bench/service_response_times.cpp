// Service under load: Poisson-arriving 1-degree mosaic requests on a shared
// provisioned pool — Question 2's premise ("the requests can run at their
// full level of parallelism") stress-tested.  Reports per-request response
// times (completion minus arrival) vs pool size.
#include "common.hpp"

#include <algorithm>
#include <numeric>

#include "mcsim/dag/merge.hpp"
#include "mcsim/util/rng.hpp"

int main(int, char**) {
  using namespace mcsim;
  const dag::Workflow request = montage::buildMontageWorkflow(1.0);

  // 24 requests over ~8 hours (one every ~20 min on average).
  const int requestCount = 24;
  Rng rng(2026);
  std::vector<double> releases;
  double t = 0.0;
  for (int i = 0; i < requestCount; ++i) {
    releases.push_back(t);
    t += rng.exponential(20.0 * 60.0);
  }
  const std::vector<dag::Workflow> parts(
      static_cast<std::size_t>(requestCount), request);
  const dag::Workflow stream = dag::mergeWorkflowsStaggered(parts, releases);
  const auto offsets = dag::partTaskOffsets(parts);

  std::cout << sectionBanner(
      "Service under load — 24 Poisson-arriving 1-degree requests "
      "(~20 min apart) on one shared pool");
  Table table({"pool size", "mean response", "p95 response", "max response",
               "pool utilization"});
  for (int pool : {8, 16, 32, 64, 128}) {
    engine::EngineConfig cfg;
    cfg.processors = pool;
    cfg.mode = engine::DataMode::DynamicCleanup;
    cfg.trace = true;
    const auto r = engine::simulateWorkflow(stream, cfg);

    std::vector<double> response;
    for (int i = 0; i < requestCount; ++i) {
      double finish = 0.0;
      for (dag::TaskId id = offsets[static_cast<std::size_t>(i)];
           id < offsets[static_cast<std::size_t>(i) + 1]; ++id)
        finish = std::max(finish, r.taskRecords[id].finishTime);
      response.push_back(finish - releases[static_cast<std::size_t>(i)]);
    }
    std::sort(response.begin(), response.end());
    const double mean =
        std::accumulate(response.begin(), response.end(), 0.0) /
        static_cast<double>(response.size());
    const double p95 =
        response[static_cast<std::size_t>(0.95 * (response.size() - 1))];
    char util[16];
    std::snprintf(util, sizeof util, "%.0f%%", r.utilization() * 100.0);
    table.addRow({std::to_string(pool), formatDuration(mean),
                  formatDuration(p95), formatDuration(response.back()), util});
  }
  table.print(std::cout);
  std::cout << "\nSmall pools queue arrivals behind each other (response "
               "times far above a lone request's makespan); beyond the knee "
               "extra processors only burn provisioned cost — Question 2's "
               "\"larger than the needs of any single computation\" sizing "
               "rule quantified.\n";
  return 0;
}
