// Reproduces the §6 CCR table: the communication-to-computation ratio of
// the three Montage workflows at the reference 10 Mbps bandwidth.
#include "common.hpp"

#include "mcsim/dag/algorithms.hpp"

int main(int, char**) {
  using namespace mcsim;
  std::cout << sectionBanner(
      "CCR table — CCR of the Montage workflows at B = 10 Mbps "
      "(paper: 0.053 / 0.053 / 0.045)");
  Table t({"workflow", "tasks", "levels", "max parallelism", "total cpu",
           "total data", "CCR"});
  for (double deg : {1.0, 2.0, 4.0}) {
    const dag::Workflow wf = montage::buildMontageWorkflow(deg);
    char ccr[32];
    std::snprintf(ccr, sizeof ccr, "%.3f",
                  wf.ccr(montage::kReferenceBandwidthBytesPerSec));
    t.addRow({wf.name(), std::to_string(wf.taskCount()),
              std::to_string(wf.levelCount()),
              std::to_string(dag::maxParallelism(wf)),
              formatDuration(wf.totalRuntimeSeconds()),
              formatBytes(wf.totalFileBytes()), ccr});
  }
  t.print(std::cout);
  return 0;
}
