// Ablation A6: storage availability (paper §8: S3 targets 99.9% but "went
// down twice in the first 7 months of 2008 ... the possible impact on the
// applications can be significant").  Injects outage windows into the
// user<->storage link and measures makespan/cost impact per data mode.
#include "common.hpp"

int main(int, char**) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);

  std::cout << sectionBanner(
      "A6 — storage outage impact, Montage 1 degree, 16 processors "
      "(one outage starting 5 minutes in)");
  Table t({"mode", "outage", "makespan", "slowdown", "provisioned cost"});
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    double baseline = 0.0;
    for (double outageMinutes : {0.0, 10.0, 30.0, 60.0}) {
      engine::EngineConfig cfg;
      cfg.mode = mode;
      cfg.processors = 16;
      if (outageMinutes > 0.0)
        cfg.outages.push_back({5.0 * 60.0, outageMinutes * 60.0});
      const auto r = engine::simulateWorkflow(wf, cfg);
      if (outageMinutes == 0.0) baseline = r.makespanSeconds;
      const auto cost = engine::computeCost(
          r, amazon, cloud::CpuBillingMode::Provisioned);
      char slowdown[32];
      std::snprintf(slowdown, sizeof slowdown, "+%.1f%%",
                    100.0 * (r.makespanSeconds - baseline) / baseline);
      t.addRow({engine::dataModeName(mode),
                outageMinutes == 0.0 ? "none"
                                     : formatDuration(outageMinutes * 60.0),
                formatDuration(r.makespanSeconds), slowdown,
                analysis::moneyCell(cost.total())});
    }
  }
  t.print(std::cout);
  std::cout << "\nRemote I/O is exposed for its whole runtime; regular/"
               "cleanup only stall if the outage overlaps stage-in/out -- "
               "but under provisioned billing every stalled minute is still "
               "paid for on all 16 processors.\n";
  return 0;
}
