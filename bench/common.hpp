// Shared plumbing for the figure-reproduction binaries: each bench prints
// one of the paper's figures/tables as an ASCII table (and a CSV block when
// invoked with --csv), using the analysis drivers so tests and benches
// exercise identical code.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "mcsim/analysis/economics.hpp"
#include "mcsim/analysis/experiments.hpp"
#include "mcsim/analysis/report.hpp"
#include "mcsim/cloud/provider.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::bench {

inline bool wantCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--csv") return true;
  return false;
}

/// `--jobs N` from argv: runner worker threads for the sweeps a bench
/// drives.  Default all hardware threads; 0 = serial legacy code path.
inline int parseJobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--jobs") return std::stoi(argv[i + 1]);
  return runner::defaultJobs();
}

/// The bench process's shared JobQueue: one persistent worker pool reused
/// by every sweep a bench drives, instead of a transient pool per call.
/// Built on first use with `workers` threads; later calls ignore the
/// argument (benches parse --jobs once, up front).
runner::JobQueue& sharedQueue(int workers);

/// Peak resident set size of this process so far, in bytes (getrusage
/// ru_maxrss; 0 where unsupported).  Benches report it alongside wall
/// times so memory regressions show up in the committed BENCH_*.json.
std::size_t peakRssBytes();

/// Print the Question-1 provisioning figure (Figs 4/5/6) for one preset.
void printProvisioningFigure(const std::string& figureId, double degrees,
                             const std::vector<analysis::PaperAnchor>& anchors,
                             bool csv, int jobs = 0);

/// Print the data-management figure (Figs 7/8/9) for one preset.
void printDataModeFigure(const std::string& figureId, double degrees,
                         bool csv, int jobs = 0);

}  // namespace mcsim::bench
