// Ablation A5: dispatch policy.  FIFO (the paper's behaviour) vs
// critical-path-first priority across the provisioning ladder, on Montage
// and on an adversarial long-chain workload where FIFO is provably bad.
#include "common.hpp"

int main(int, char**) {
  using namespace mcsim;
  const dag::Workflow montage1 = montage::buildMontageWorkflow(1.0);

  std::cout << sectionBanner(
      "A5 — FIFO vs critical-path-first dispatch, Montage 1 degree");
  Table t({"procs", "fifo makespan", "cp-first makespan", "delta"});
  for (int procs : {2, 4, 8, 16, 32}) {
    engine::EngineConfig cfg;
    cfg.processors = procs;
    cfg.scheduler = engine::SchedulerPolicy::Fifo;
    const double fifo =
        engine::simulateWorkflow(montage1, cfg).makespanSeconds;
    cfg.scheduler = engine::SchedulerPolicy::CriticalPathFirst;
    const double cpf =
        engine::simulateWorkflow(montage1, cfg).makespanSeconds;
    char delta[32];
    std::snprintf(delta, sizeof delta, "%+.1f%%", 100.0 * (cpf - fifo) / fifo);
    t.addRow({std::to_string(procs), formatDuration(fifo),
              formatDuration(cpf), delta});
  }
  t.print(std::cout);
  std::cout << "\nMontage's level structure leaves little room for priority "
               "scheduling -- which is why the paper's FIFO engine is "
               "adequate.  Chain-heavy DAGs are a different story:\n";

  // Adversarial workload: one external file fans out to many short sinks
  // plus the 1-second head of a long chain.
  dag::Workflow adv("chain-heavy");
  const dag::FileId x = adv.addFile("x", Bytes::fromMB(1.0));
  for (int i = 0; i < 16; ++i) {
    const dag::TaskId s = adv.addTask("s" + std::to_string(i), "short", 60.0);
    adv.addInput(s, x);
    adv.addOutput(s, adv.addFile("so" + std::to_string(i), Bytes::fromMB(1.0)));
  }
  dag::FileId prev = adv.addFile("c0", Bytes::fromMB(1.0));
  {
    const dag::TaskId head = adv.addTask("head", "chain", 1.0);
    adv.addInput(head, x);
    adv.addOutput(head, prev);
  }
  for (int i = 1; i <= 8; ++i) {
    const dag::TaskId link = adv.addTask("c" + std::to_string(i), "chain", 120.0);
    adv.addInput(link, prev);
    prev = adv.addFile("cf" + std::to_string(i), Bytes::fromMB(1.0));
    adv.addOutput(link, prev);
  }
  adv.finalize();

  Table t2({"procs", "fifo makespan", "cp-first makespan", "delta"});
  for (int procs : {2, 4, 8}) {
    engine::EngineConfig cfg;
    cfg.processors = procs;
    cfg.scheduler = engine::SchedulerPolicy::Fifo;
    const double fifo = engine::simulateWorkflow(adv, cfg).makespanSeconds;
    cfg.scheduler = engine::SchedulerPolicy::CriticalPathFirst;
    const double cpf = engine::simulateWorkflow(adv, cfg).makespanSeconds;
    char delta[32];
    std::snprintf(delta, sizeof delta, "%+.1f%%", 100.0 * (cpf - fifo) / fifo);
    t2.addRow({std::to_string(procs), formatDuration(fifo),
               formatDuration(cpf), delta});
  }
  t2.print(std::cout);
  return 0;
}
