// Reproduces Figure 9: data-management metrics of the Montage 4-degree
// workflow.
#include "common.hpp"

int main(int argc, char** argv) {
  mcsim::bench::printDataModeFigure("Fig 9", 4.0,
                                    mcsim::bench::wantCsv(argc, argv),
                                    mcsim::bench::parseJobs(argc, argv));
  return 0;
}
