// Reproduces Figure 8: data-management metrics of the Montage 2-degree
// workflow (paper: "cost distributions are similar for all the workflows
// and differ only in magnitude").
#include "common.hpp"

int main(int argc, char** argv) {
  mcsim::bench::printDataModeFigure("Fig 8", 2.0,
                                    mcsim::bench::wantCsv(argc, argv),
                                    mcsim::bench::parseJobs(argc, argv));
  return 0;
}
