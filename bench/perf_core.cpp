// perf_core: wall-clock benchmark of the hot-path simulation-core overhaul.
//
// Two comparisons, both before/after on identical workloads:
//
//   1. single-run — one 4-degree Montage execution on the reference core
//      (EngineConfig::referenceCore = true: lazy-deletion priority-queue
//      calendar, O(n)-rescan link) vs. the optimized core (arena heap,
//      virtual-time link, flat storage curves).
//   2. sweep — a repeated-point provisioning ladder (the planner's access
//      pattern: the same ladder re-evaluated per goal) with the scenario
//      memo cache off vs. on.
//
// Each comparison checks results point-for-point before timing is trusted;
// wall times are best-of-N.  Writes a BENCH_core.json summary:
//
//   ./bench/perf_core [--degrees 4] [--repeat 3] [--ladder-repeat 8]
//                     [--out BENCH_core.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "mcsim/runner/memo.hpp"

namespace {

using namespace mcsim;
using Clock = std::chrono::steady_clock;

double argNumber(int argc, char** argv, const std::string& flag,
                 double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return std::stod(argv[i + 1]);
  return fallback;
}

std::string argText(int argc, char** argv, const std::string& flag,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return argv[i + 1];
  return fallback;
}

/// Relative agreement for differential checks: the virtual-time link
/// accumulates shares in a different floating-point order than the
/// reference rescan, so exact equality is only promised same-core.
bool close(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

bool sameResult(const engine::ExecutionResult& a,
                const engine::ExecutionResult& b) {
  return a.completed() == b.completed() &&
         close(a.makespanSeconds, b.makespanSeconds) &&
         close(a.cpuBusySeconds, b.cpuBusySeconds) &&
         close(a.storageByteSeconds, b.storageByteSeconds) &&
         close(a.bytesIn.value(), b.bytesIn.value()) &&
         close(a.bytesOut.value(), b.bytesOut.value());
}

bool samePoints(const std::vector<analysis::ProvisioningPoint>& a,
                const std::vector<analysis::ProvisioningPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].processors != b[i].processors ||
        a[i].makespanSeconds != b[i].makespanSeconds ||
        a[i].cpuCost != b[i].cpuCost ||
        a[i].storageCost != b[i].storageCost ||
        a[i].storageCleanupCost != b[i].storageCleanupCost ||
        a[i].transferCost != b[i].transferCost ||
        a[i].totalCost != b[i].totalCost ||
        a[i].utilization != b[i].utilization)
      return false;
  }
  return true;
}

double bestOf(int repeat, const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    body();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double degrees = argNumber(argc, argv, "degrees", 4.0);
  const int repeat =
      std::max(1, static_cast<int>(argNumber(argc, argv, "repeat", 3.0)));
  const int ladderRepeat = std::max(
      1, static_cast<int>(argNumber(argc, argv, "ladder-repeat", 8.0)));
  const std::string outPath = argText(argc, argv, "out", "BENCH_core.json");

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const cloud::Pricing pricing = cloud::ProviderCatalog::builtin().pricing("amazon-2008");

  // -- 1. single-run: reference core vs optimized core ----------------------
  engine::EngineConfig single;
  single.mode = engine::DataMode::DynamicCleanup;
  single.processors = 8;
  single.linkSharing = sim::LinkSharing::FairShare;

  std::cout << "perf_core: single-run " << wf.name() << " ("
            << wf.taskCount() << " tasks), best of " << repeat << "\n";

  engine::ExecutionResult refResult, fastResult;
  single.referenceCore = true;
  const double refSeconds = bestOf(
      repeat, [&] { refResult = engine::simulateWorkflow(wf, single); });
  single.referenceCore = false;
  const double fastSeconds = bestOf(
      repeat, [&] { fastResult = engine::simulateWorkflow(wf, single); });
  const bool singleIdentical = sameResult(refResult, fastResult);
  const double singleSpeedup =
      fastSeconds > 0.0 ? refSeconds / fastSeconds : 0.0;
  std::cout << "  reference " << refSeconds << " s, optimized " << fastSeconds
            << " s, speedup " << singleSpeedup << "x, agree "
            << (singleIdentical ? "yes" : "NO") << "\n";

  // -- 2. repeated-point sweep: memo cache off vs on ------------------------
  analysis::ProvisioningSweepConfig sweep;
  const auto ladder = analysis::defaultProcessorLadder();
  for (int r = 0; r < ladderRepeat; ++r)
    sweep.processorCounts.insert(sweep.processorCounts.end(), ladder.begin(),
                                 ladder.end());
  const std::size_t scenarios = 2 * sweep.processorCounts.size();

  // A smaller workflow keeps the cache-off baseline affordable while the
  // ladder still has 64+ scenarios (the planner's repeated-point shape).
  const dag::Workflow sweepWf = montage::buildMontageWorkflow(1.0);
  std::cout << "perf_core: sweep " << sweepWf.name() << ", " << scenarios
            << " scenarios (ladder x" << ladderRepeat << "), serial\n";

  std::vector<analysis::ProvisioningPoint> uncachedPoints, cachedPoints;
  sweep.jobs = 0;
  sweep.cache = nullptr;
  const double uncachedSeconds = bestOf(repeat, [&] {
    uncachedPoints = analysis::provisioningSweep(sweepWf, pricing, sweep);
  });
  runner::MemoStats cacheStats;
  const double cachedSeconds = bestOf(repeat, [&] {
    runner::ScenarioMemoCache cache;  // cold per repeat: in-batch dedup only
    sweep.cache = &cache;
    cachedPoints = analysis::provisioningSweep(sweepWf, pricing, sweep);
    cacheStats = cache.stats();
  });
  sweep.cache = nullptr;
  const bool sweepIdentical = samePoints(uncachedPoints, cachedPoints);
  const double sweepSpeedup =
      cachedSeconds > 0.0 ? uncachedSeconds / cachedSeconds : 0.0;
  std::cout << "  cache-off " << uncachedSeconds << " s, cache-on "
            << cachedSeconds << " s, speedup " << sweepSpeedup
            << "x, identical " << (sweepIdentical ? "yes" : "NO") << " (hits "
            << cacheStats.hits << ", misses " << cacheStats.misses << ")\n";

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "perf_core: cannot write " << outPath << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"core_overhaul\",\n"
      << "  \"repeats\": " << repeat << ",\n"
      << "  \"single_run\": {\n"
      << "    \"workflow\": \"" << wf.name() << "\",\n"
      << "    \"tasks\": " << wf.taskCount() << ",\n"
      << "    \"reference_seconds\": " << refSeconds << ",\n"
      << "    \"optimized_seconds\": " << fastSeconds << ",\n"
      << "    \"speedup\": " << singleSpeedup << ",\n"
      << "    \"results_agree\": " << (singleIdentical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"memo_sweep\": {\n"
      << "    \"workflow\": \"" << sweepWf.name() << "\",\n"
      << "    \"scenarios\": " << scenarios << ",\n"
      << "    \"uncached_seconds\": " << uncachedSeconds << ",\n"
      << "    \"cached_seconds\": " << cachedSeconds << ",\n"
      << "    \"speedup\": " << sweepSpeedup << ",\n"
      << "    \"cache_hits\": " << cacheStats.hits << ",\n"
      << "    \"cache_misses\": " << cacheStats.misses << ",\n"
      << "    \"identical_results\": " << (sweepIdentical ? "true" : "false")
      << "\n"
      << "  }\n"
      << "}\n";
  out.close();

  std::cout << "wrote " << outPath << "\n";
  return (singleIdentical && sweepIdentical) ? 0 : 1;
}
