// Reproduces Figure 11: execution costs of the Montage 1-degree workflow as
// the CCR is artificially scaled (8 provisioned processors, the paper's
// "reasonable compromise between execution cost and execution time").
#include "common.hpp"

#include "mcsim/util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  const std::vector<double> ccrs = {0.053, 0.1, 0.2, 0.4, 0.8,
                                    1.6,   3.2, 6.4, 12.8};
  const auto points = analysis::ccrSweep(
      wf, cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
      {.ccrTargets = ccrs, .processors = 8,
       .queue = &bench::sharedQueue(bench::parseJobs(argc, argv))});
  std::cout << sectionBanner(
      "Fig 11 — Montage 1-degree execution costs vs CCR (8 processors; "
      "file sizes scaled by CCRd/CCRr as in the paper)");
  analysis::ccrTable(points).print(std::cout);

  if (bench::wantCsv(argc, argv)) {
    std::cout << "\n[csv]\n";
    CsvWriter w(std::cout, {"ccr", "makespan_s", "cpu_usd", "storage_usd",
                            "storage_cleanup_usd", "transfer_usd",
                            "total_usd"});
    for (const auto& p : points) {
      char b[7][64];
      std::snprintf(b[0], 64, "%.6g", p.ccr);
      std::snprintf(b[1], 64, "%.6g", p.makespanSeconds);
      std::snprintf(b[2], 64, "%.6g", p.cpuCost.value());
      std::snprintf(b[3], 64, "%.6g", p.storageCost.value());
      std::snprintf(b[4], 64, "%.6g", p.storageCleanupCost.value());
      std::snprintf(b[5], 64, "%.6g", p.transferCost.value());
      std::snprintf(b[6], 64, "%.6g", p.totalCost.value());
      w.writeRow({b[0], b[1], b[2], b[3], b[4], b[5], b[6]});
    }
  }
  return 0;
}
