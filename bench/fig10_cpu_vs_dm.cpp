// Reproduces Figure 10: CPU cost vs aggregated data-management (DM) cost
// for all three Montage workflows under each execution mode.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const int jobs = bench::parseJobs(argc, argv);
  std::vector<analysis::CpuVsDmRow> rows;
  for (double deg : {1.0, 2.0, 4.0}) {
    const dag::Workflow wf = montage::buildMontageWorkflow(deg);
    for (const auto& m :
         analysis::dataModeComparison(
           wf, amazon, {.queue = &bench::sharedQueue(jobs)})) {
      analysis::CpuVsDmRow row;
      row.workflow = wf.name();
      row.mode = m.mode;
      row.cpuCost = m.cpuCost;
      row.dmCost = m.dataManagementCost();
      row.totalCost = m.totalCost();
      rows.push_back(row);
    }
  }
  std::cout << sectionBanner(
      "Fig 10 — CPU vs data management cost, all workflows x modes "
      "(paper CPU anchors: $0.56 / $2.03 / $8.40; regular totals $2.22 and "
      "$8.88 for 2 and 4 degrees)");
  analysis::cpuVsDmTable(rows).print(std::cout);
  return 0;
}
