// Ablation A1: what the paper's per-second normalization hides.  Real 2008
// EC2 billed whole instance-hours; this compares the idealized per-second
// CPU cost against hour-rounded billing across the provisioning ladder.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  const auto ladder = analysis::defaultProcessorLadder();
  const int jobs = bench::parseJobs(argc, argv);
  const auto perSecond = analysis::provisioningSweep(
      wf, amazon,
      {.processorCounts = ladder,
       .granularity = cloud::BillingGranularity::PerSecond,
       .queue = &bench::sharedQueue(jobs)});
  const auto perHour = analysis::provisioningSweep(
      wf, amazon,
      {.processorCounts = ladder,
       .granularity = cloud::BillingGranularity::PerHour,
       .queue = &bench::sharedQueue(jobs)});

  std::cout << sectionBanner(
      "A1 — billing granularity: per-second (paper's idealization) vs "
      "per-instance-hour CPU billing, Montage 1 degree");
  Table t({"procs", "makespan", "cpu $/s-billing", "cpu $/h-billing",
           "overpayment"});
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const double over = perHour[i].cpuCost.value() -
                        perSecond[i].cpuCost.value();
    char pct[32];
    std::snprintf(pct, sizeof pct, "+%.0f%%",
                  100.0 * over / perSecond[i].cpuCost.value());
    t.addRow({std::to_string(ladder[i]),
              formatDuration(perSecond[i].makespanSeconds),
              analysis::moneyCell(perSecond[i].cpuCost),
              analysis::moneyCell(perHour[i].cpuCost), pct});
  }
  t.print(std::cout);
  std::cout << "\nHour-rounding penalizes wide short runs the most: 128 "
               "processors each bill a full hour for minutes of work.\n";
  return 0;
}
