#include "common.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mcsim/util/csv.hpp"
#include "mcsim/util/table.hpp"

namespace mcsim::bench {
namespace {

const cloud::Pricing kAmazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

runner::JobQueue& sharedQueue(int workers) {
  static runner::JobQueue queue([&] {
    runner::JobQueueOptions options;
    options.workers = workers;
    return options;
  }());
  return queue;
}

std::size_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void printProvisioningFigure(const std::string& figureId, double degrees,
                             const std::vector<analysis::PaperAnchor>& anchors,
                             bool csv, int jobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const auto points = analysis::provisioningSweep(
      wf, kAmazon, {.queue = &sharedQueue(jobs)});

  std::cout << sectionBanner(figureId + " — " + wf.name() +
                             ": execution cost and time vs provisioned "
                             "processors (Regular mode, provisioned billing, "
                             "Amazon 2008 fees)");
  analysis::provisioningTable(points, anchors).print(std::cout);

  if (csv) {
    std::cout << "\n[csv]\n";
    CsvWriter w(std::cout, {"processors", "makespan_s", "cpu_usd",
                            "storage_usd", "storage_cleanup_usd",
                            "transfer_usd", "total_usd", "utilization"});
    for (const auto& p : points)
      w.writeRow({std::to_string(p.processors), num(p.makespanSeconds),
                  num(p.cpuCost.value()), num(p.storageCost.value()),
                  num(p.storageCleanupCost.value()),
                  num(p.transferCost.value()), num(p.totalCost.value()),
                  num(p.utilization)});
  }
}

void printDataModeFigure(const std::string& figureId, double degrees,
                         bool csv, int jobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const auto rows =
      analysis::dataModeComparison(wf, kAmazon, {.queue = &sharedQueue(jobs)});

  std::cout << sectionBanner(
      figureId + " — " + wf.name() +
      ": data management metrics across execution modes (full parallelism, "
      "usage billing)");
  analysis::dataModeTable(rows).print(std::cout);

  if (csv) {
    std::cout << "\n[csv]\n";
    CsvWriter w(std::cout,
                {"mode", "makespan_s", "storage_gbh", "bytes_in", "bytes_out",
                 "storage_usd", "in_usd", "out_usd", "dm_usd", "cpu_usd",
                 "total_usd"});
    for (const auto& r : rows)
      w.writeRow({engine::dataModeName(r.mode), num(r.makespanSeconds),
                  num(r.storageGBHours), num(r.bytesIn.value()),
                  num(r.bytesOut.value()), num(r.storageCost.value()),
                  num(r.transferInCost.value()), num(r.transferOutCost.value()),
                  num(r.dataManagementCost().value()), num(r.cpuCost.value()),
                  num(r.totalCost().value())});
  }
}

}  // namespace mcsim::bench
